// FLASH checkpoint (paper §4.4) with REAL data at reduced scale.
//
// Four simulated FLASH processes hold AMR blocks (interior cells wrapped
// in guard cells, 24-variable cells); they checkpoint collectively into
// the variable-major file layout with two-phase I/O and with datatype
// I/O, and an independent reader then verifies the entire file byte by
// byte against the analytic layout — including that guard cells never
// leak into the checkpoint.
//
//   $ ./flash_checkpoint
#include <cstdio>
#include <memory>
#include <vector>

#include "collective/comm.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "workloads/flash.h"

using namespace dtio;
using sim::Task;

namespace {

// The double stored for (rank, block, cell, var); guard cells get a
// poison value that must never appear in the checkpoint.
double cell_value(int rank, int block, std::int64_t cell, int var) {
  return rank * 1e6 + block * 1e3 + static_cast<double>(cell) +
         var * 1e-3;
}
constexpr double kGuardPoison = -777.0;

}  // namespace

int main() {
  workloads::FlashConfig flash{.blocks_per_proc = 4,
                               .interior = 4,
                               .guard = 2,
                               .num_vars = 6};
  constexpr int kRanks = 4;

  for (const auto method :
       {mpiio::Method::kTwoPhase, mpiio::Method::kDatatype}) {
    net::ClusterConfig config;
    config.num_servers = 4;
    config.num_clients = kRanks;
    config.strip_size = 4096;
    pfs::Cluster cluster(config);
    coll::Communicator comm(cluster.scheduler(), cluster.network(),
                            cluster.config(), kRanks);

    std::vector<std::unique_ptr<pfs::Client>> clients;
    std::vector<std::unique_ptr<io::Context>> contexts;
    std::vector<std::unique_ptr<mpiio::File>> files;
    std::vector<std::vector<double>> memory(kRanks);
    const std::int64_t edge = flash.cells_per_edge();
    for (int r = 0; r < kRanks; ++r) {
      clients.push_back(cluster.make_client(r));
      contexts.push_back(std::make_unique<io::Context>(io::Context{
          cluster.scheduler(), *clients.back(), cluster.config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts.back()));

      // Fill this rank's in-memory blocks: interior values + guard poison.
      auto& mem = memory[static_cast<std::size_t>(r)];
      mem.resize(static_cast<std::size_t>(flash.blocks_per_proc *
                                          flash.block_mem_bytes() / 8));
      std::size_t i = 0;
      for (int b = 0; b < flash.blocks_per_proc; ++b) {
        for (std::int64_t z = 0; z < edge; ++z) {
          for (std::int64_t y = 0; y < edge; ++y) {
            for (std::int64_t x = 0; x < edge; ++x) {
              const bool interior =
                  x >= flash.guard && x < flash.guard + flash.interior &&
                  y >= flash.guard && y < flash.guard + flash.interior &&
                  z >= flash.guard && z < flash.guard + flash.interior;
              const std::int64_t cell =
                  interior ? ((z - flash.guard) * flash.interior +
                              (y - flash.guard)) *
                                     flash.interior +
                                 (x - flash.guard)
                           : -1;
              for (int v = 0; v < flash.num_vars; ++v) {
                mem[i++] = interior ? cell_value(r, b, cell, v)
                                    : kGuardPoison;
              }
            }
          }
        }
      }
    }

    // Collective checkpoint.
    for (int r = 0; r < kRanks; ++r) {
      cluster.scheduler().spawn(
          [](mpiio::File& f, coll::Communicator& c,
             const workloads::FlashConfig& fl, int rank,
             const std::vector<double>& mem, mpiio::Method m) -> Task<void> {
            Status s = co_await f.open("/chk", rank == 0);
            if (!s.is_ok()) co_return;
            f.set_view(fl.displacement(rank), types::byte_t(),
                       fl.filetype(kRanks));
            auto memtype = fl.memtype();
            s = co_await f.write_at_all(c, rank, 0, mem.data(), 1, memtype,
                                        m);
            if (!s.is_ok()) {
              std::printf("rank %d write failed: %s\n", rank,
                          s.to_string().c_str());
            }
          }(*files[r], comm, flash, r, memory[static_cast<std::size_t>(r)],
            method));
    }
    cluster.run();

    // Independent verification pass over the whole checkpoint file.
    std::int64_t bad = 0;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const workloads::FlashConfig& fl,
           std::int64_t& errors) -> Task<void> {
          const std::int64_t total = fl.file_bytes(kRanks);
          std::vector<double> whole(static_cast<std::size_t>(total / 8));
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(total, types::byte_t());
          Status s = co_await f.read_at(0, whole.data(), 1, memtype,
                                        mpiio::Method::kDataSieving);
          if (!s.is_ok()) {
            errors = total;
            co_return;
          }
          // Variable-major: var v, then rank, then block, then cell.
          std::size_t i = 0;
          for (int v = 0; v < fl.num_vars; ++v) {
            for (int rank = 0; rank < kRanks; ++rank) {
              for (int b = 0; b < fl.blocks_per_proc; ++b) {
                for (std::int64_t cell = 0; cell < fl.interior_cells();
                     ++cell) {
                  const double expect = cell_value(rank, b, cell, v);
                  if (whole[i] != expect || whole[i] == kGuardPoison) {
                    ++errors;
                  }
                  ++i;
                }
              }
            }
          }
        }(*files[0], flash, bad));
    cluster.run();

    std::printf("  %-18s checkpoint %s (%s, %d ranks, %lld doubles)\n",
                std::string(mpiio::method_name(method)).c_str(),
                bad == 0 ? "VERIFIED" : "CORRUPT",
                format_bytes(static_cast<std::uint64_t>(
                                 flash.file_bytes(kRanks)))
                    .c_str(),
                kRanks,
                static_cast<long long>(flash.file_bytes(kRanks) / 8));
    if (bad != 0) return 1;
  }
  return 0;
}
