// A guided tour of the five access methods on the paper's Figure 1-4
// example: a simple noncontiguous access of five regions.
//
// Writes the dataset once, then reads it back with every method, printing
// exactly the quantities the paper's diagrams illustrate: how many
// file-system operations were issued, how much data was touched at the
// servers, how many bytes of request descriptors crossed the wire, and —
// for two-phase — how much data was re-sent between processes.
//
//   $ ./method_tour                   # the tour
//   $ ./method_tour --trace out.json  # also export the datatype-I/O read
//                                     # as a Chrome trace (Perfetto-loadable)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "collective/comm.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "obs/observability.h"
#include "pfs/cluster.h"
#include "types/datatype.h"

using namespace dtio;
using sim::Task;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
    }
  }
  // Figure 1's pattern: five 4 KiB regions every 16 KiB, read by two
  // processes that interleave (process 0: even regions, 1: odd).
  constexpr std::int64_t kRegion = 4096;
  constexpr std::int64_t kStride = 16384;
  constexpr std::int64_t kRegions = 10;
  constexpr int kRanks = 2;

  const auto methods = {mpiio::Method::kPosix, mpiio::Method::kDataSieving,
                        mpiio::Method::kTwoPhase, mpiio::Method::kList,
                        mpiio::Method::kDatatype};

  std::printf("method tour: %lld regions of %s every %s, 2 readers\n\n",
              static_cast<long long>(kRegions),
              format_bytes(kRegion).c_str(), format_bytes(kStride).c_str());
  std::printf("  %-18s %8s %10s %12s %10s %10s\n", "method", "ops",
              "accessed", "descriptors", "resent", "verified");

  for (const auto method : methods) {
    net::ClusterConfig config;
    config.num_servers = 4;
    config.num_clients = kRanks;
    config.strip_size = 8192;
    pfs::Cluster cluster(config);
    obs::Observability obs;
    const bool trace_this =
        !trace_path.empty() && method == mpiio::Method::kDatatype;
    if (trace_this) cluster.set_observability(&obs);
    coll::Communicator comm(cluster.scheduler(), cluster.network(),
                            cluster.config(), kRanks);

    std::vector<std::unique_ptr<pfs::Client>> clients;
    std::vector<std::unique_ptr<io::Context>> contexts;
    std::vector<std::unique_ptr<mpiio::File>> files;
    for (int r = 0; r < kRanks; ++r) {
      clients.push_back(cluster.make_client(r));
      contexts.push_back(std::make_unique<io::Context>(io::Context{
          cluster.scheduler(), *clients.back(), cluster.config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
    }

    // Seed the file with a ramp.
    std::vector<std::uint8_t> content(
        static_cast<std::size_t>(kRegions * kStride));
    for (std::size_t i = 0; i < content.size(); ++i) {
      content[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
    }
    cluster.scheduler().spawn(
        [](mpiio::File& f, const std::vector<std::uint8_t>& all)
            -> Task<void> {
          (void)co_await f.open("/tour", true);
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(
              static_cast<std::int64_t>(all.size()), types::byte_t());
          (void)co_await f.write_at(0, all.data(), 1, memtype,
                                    mpiio::Method::kDatatype);
        }(*files[0], content));
    cluster.run();

    // Each rank reads its interleaved half through a strided view.
    std::int64_t bad = 0;
    int unsupported = 0;
    for (int r = 0; r < kRanks; ++r) {
      cluster.scheduler().spawn(
          [](mpiio::File& f, coll::Communicator& c, int rank,
             const std::vector<std::uint8_t>& all, mpiio::Method m,
             std::int64_t& errors, int& unsup) -> Task<void> {
            if (rank != 0) (void)co_await f.open("/tour", false);
            // View: this rank's regions (every other kStride window).
            auto region = types::contiguous(kRegion, types::byte_t());
            auto strided = types::resized(region, 0, kRanks * kStride);
            f.set_view(rank * kStride, types::byte_t(), strided);
            auto memtype = types::contiguous(kRegions / kRanks * kRegion,
                                             types::byte_t());
            std::vector<std::uint8_t> buf(
                static_cast<std::size_t>(memtype.size()));
            Status s = co_await f.read_at_all(c, rank, 0, buf.data(), 1,
                                              memtype, m);
            if (s.code() == StatusCode::kUnsupported) {
              ++unsup;
              co_return;
            }
            if (!s.is_ok()) {
              errors += memtype.size();
              co_return;
            }
            for (std::int64_t i = 0; i < memtype.size(); ++i) {
              const std::int64_t reg = i / kRegion;
              const std::int64_t at =
                  (reg * kRanks + rank) * kStride + i % kRegion;
              if (buf[static_cast<std::size_t>(i)] !=
                  all[static_cast<std::size_t>(at)]) {
                ++errors;
              }
            }
          }(*files[r], comm, r, content, method, bad, unsupported));
    }
    cluster.run();

    IoStats stats = clients[0]->stats();
    // Exclude the rank-0 seeding write from the displayed numbers.
    std::printf("  %-18s %8llu %10s %12s %10s %10s\n",
                std::string(mpiio::method_name(method)).c_str(),
                static_cast<unsigned long long>(stats.io_ops - 1),
                format_bytes(stats.accessed_bytes -
                             static_cast<std::uint64_t>(content.size()))
                    .c_str(),
                format_bytes(stats.request_bytes).c_str(),
                stats.resent_bytes ? format_bytes(stats.resent_bytes).c_str()
                                   : "-",
                unsupported ? "n/a" : (bad == 0 ? "yes" : "NO"));
    if (bad != 0) return 1;
    if (trace_this) {
      if (cluster.write_trace(trace_path)) {
        std::printf("\nchrome trace of the datatype-I/O run: %s "
                    "(load in Perfetto / chrome://tracing)\n",
                    trace_path.c_str());
      } else {
        std::fprintf(stderr, "error: could not write %s\n",
                     trace_path.c_str());
        return 1;
      }
    }
  }
  return 0;
}
