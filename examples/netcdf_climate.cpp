// A climate-style dataset through the whole stack the paper's
// introduction describes: application → high-level API (ncio, a
// Parallel-netCDF-flavoured library) → MPI-IO facade → datatype I/O →
// parallel file system.
//
// Four simulated processes collectively write a (time, lat, lon)
// temperature variable, each owning a latitude band for every timestep —
// a structured, strided access that reaches the servers as one dataloop
// per process. A reader then re-opens the dataset by name, discovers the
// schema from the self-describing header, and verifies a time slice.
//
//   $ ./netcdf_climate
#include <cstdio>
#include <memory>
#include <vector>

#include "collective/comm.h"
#include "ncio/dataset.h"
#include "pfs/cluster.h"

using namespace dtio;
using sim::Task;

namespace {

constexpr std::int64_t kTime = 8, kLat = 64, kLon = 128;
constexpr int kRanks = 4;

float temperature(std::int64_t t, std::int64_t lat, std::int64_t lon) {
  return static_cast<float>(t) * 100000 + static_cast<float>(lat) * 1000 +
         static_cast<float>(lon);
}

}  // namespace

int main() {
  net::ClusterConfig config;
  config.num_servers = 8;
  config.num_clients = kRanks;
  pfs::Cluster cluster(config);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), kRanks);

  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<ncio::Dataset>> datasets;
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(cluster.make_client(r));
    contexts.push_back(std::make_unique<io::Context>(io::Context{
        cluster.scheduler(), *clients.back(), cluster.config()}));
    datasets.push_back(std::make_unique<ncio::Dataset>(*contexts.back()));
  }

  // Rank 0 defines the schema.
  cluster.scheduler().spawn([](ncio::Dataset& d) -> Task<void> {
    (void)co_await d.create("/climate.nc");
    const int time = d.def_dim("time", kTime);
    const int lat = d.def_dim("lat", kLat);
    const int lon = d.def_dim("lon", kLon);
    const int dims[] = {time, lat, lon};
    (void)d.def_var("t2m", ncio::NcType::kFloat, dims);
    (void)co_await d.enddef();
  }(*datasets[0]));
  cluster.run();

  // All ranks collectively write their latitude band for all timesteps.
  int finished = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.scheduler().spawn(
        [](ncio::Dataset& d, coll::Communicator& c, int rank,
           int& done) -> Task<void> {
          if (rank != 0) (void)co_await d.open("/climate.nc");
          const std::int64_t band = kLat / kRanks;
          std::vector<float> mine(
              static_cast<std::size_t>(kTime * band * kLon));
          std::size_t i = 0;
          for (std::int64_t t = 0; t < kTime; ++t) {
            for (std::int64_t la = rank * band; la < (rank + 1) * band;
                 ++la) {
              for (std::int64_t lo = 0; lo < kLon; ++lo) {
                mine[i++] = temperature(t, la, lo);
              }
            }
          }
          const std::int64_t starts[] = {0, rank * band, 0};
          const std::int64_t counts[] = {kTime, band, kLon};
          Status s = co_await d.put_vara_all(c, rank, 0, starts, counts,
                                             mine.data());
          if (!s.is_ok()) {
            std::printf("rank %d write failed: %s\n", rank,
                        s.to_string().c_str());
          }
          ++done;
        }(*datasets[r], comm, r, finished));
  }
  cluster.run();

  // A fresh reader: open by name, inspect schema, verify a time slice.
  bool ok = finished == kRanks;
  std::int64_t bad = 0;
  cluster.scheduler().spawn(
      [](io::Context& ctx, std::int64_t& errors, bool& opened) -> Task<void> {
        ncio::Dataset reader(ctx);
        Status s = co_await reader.open("/climate.nc");
        if (!s.is_ok()) {
          opened = false;
          co_return;
        }
        const int v = reader.find_var("t2m");
        std::vector<float> slice(kLat * kLon);
        const std::int64_t starts[] = {5, 0, 0};  // timestep 5
        const std::int64_t counts[] = {1, kLat, kLon};
        s = co_await reader.get_vara(v, starts, counts, slice.data());
        if (!s.is_ok()) {
          opened = false;
          co_return;
        }
        for (std::int64_t la = 0; la < kLat; ++la) {
          for (std::int64_t lo = 0; lo < kLon; ++lo) {
            if (slice[static_cast<std::size_t>(la * kLon + lo)] !=
                temperature(5, la, lo)) {
              ++errors;
            }
          }
        }
      }(*contexts[0], bad, ok));
  cluster.run();
  ok = ok && bad == 0;

  std::printf("netcdf_climate: %s\n", ok ? "VERIFIED" : "FAILED");
  std::printf("  dataset: t2m(time=%lld, lat=%lld, lon=%lld) floats = %s\n",
              static_cast<long long>(kTime), static_cast<long long>(kLat),
              static_cast<long long>(kLon),
              format_bytes(kTime * kLat * kLon * 4).c_str());
  std::printf("  %d ranks wrote latitude bands collectively; a reader "
              "rediscovered the schema from the header and verified "
              "timestep 5 (%lld wrong values)\n",
              kRanks, static_cast<long long>(bad));
  return ok ? 0 : 1;
}
