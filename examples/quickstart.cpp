// Quickstart: the smallest complete dtio program.
//
// Builds a simulated PVFS cluster (4 I/O servers), writes a strided
// dataset with datatype I/O, reads it back, and verifies every byte —
// then prints what actually happened (ops, bytes, simulated time).
//
//   $ ./quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/crc32.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "types/datatype.h"

using namespace dtio;
using sim::Task;

int main() {
  // 1. A cluster: 4 I/O servers, 1 client, 64 KiB strips.
  net::ClusterConfig config;
  config.num_servers = 4;
  config.num_clients = 1;
  pfs::Cluster cluster(config);

  auto client = cluster.make_client(/*rank=*/0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  // 2. A structured access: every fourth 256-byte record of a file.
  auto record = types::contiguous(256, types::byte_t());
  auto every_fourth = types::resized(record, 0, 4 * 256);

  std::vector<std::uint8_t> out(64 * 256);
  std::iota(out.begin(), out.end(), 0);
  std::vector<std::uint8_t> back(out.size(), 0);

  bool ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const types::Datatype& filetype,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& dst,
         bool& verified) -> Task<void> {
        Status s = co_await f.open("/quickstart.dat", /*create=*/true);
        if (!s.is_ok()) {
          std::printf("open failed: %s\n", s.to_string().c_str());
          co_return;
        }
        // The file view: records 0, 4, 8, ... of the file.
        f.set_view(0, types::byte_t(), filetype);

        auto memtype = types::contiguous(
            static_cast<std::int64_t>(src.size()), types::byte_t());
        s = co_await f.write_at(0, src.data(), 1, memtype,
                                mpiio::Method::kDatatype);
        if (!s.is_ok()) co_return;

        s = co_await f.read_at(0, dst.data(), 1, memtype,
                               mpiio::Method::kDatatype);
        if (!s.is_ok()) co_return;
        verified = src == dst;
      }(file, every_fourth, out, back, ok));

  cluster.run();

  const IoStats& stats = client->stats();
  std::printf("quickstart: %s\n", ok ? "VERIFIED" : "FAILED");
  std::printf("  data:      %s written + read back (CRC %08x)\n",
              format_bytes(out.size()).c_str(),
              crc32(std::span<const std::uint8_t>(back.data(), back.size())));
  std::printf("  ops:       %llu file-system operations "
              "(64 strided records each way -> 1 op each)\n",
              static_cast<unsigned long long>(stats.io_ops));
  std::printf("  requests:  %llu server requests, %s of descriptors\n",
              static_cast<unsigned long long>(stats.requests_sent),
              format_bytes(stats.request_bytes).c_str());
  std::printf("  sim time:  %.3f ms\n",
              to_seconds(cluster.scheduler().now()) * 1e3);
  return ok ? 0 : 1;
}
