// Hyperslab I/O: the paper's "other APIs" claim (§3) in action.
//
// A 2-D dataset (rows x columns of doubles) is written once; an
// HDF5-style hyperslab selection — every third column block of the middle
// rows — is then read through datatype I/O WITHOUT constructing any MPI
// datatype by hand: the selection converts directly into the dataloop the
// file system consumes. The same selection read via POSIX I/O shows what
// the concise description replaces.
//
//   $ ./hyperslab_io
#include <cstdio>
#include <vector>

#include "dataloop/serialize.h"
#include "hyperslab/hyperslab.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"

using namespace dtio;
using sim::Task;

int main() {
  constexpr std::int64_t kRows = 512;
  constexpr std::int64_t kCols = 1024;

  net::ClusterConfig config;
  config.num_servers = 4;
  config.num_clients = 1;
  pfs::Cluster cluster(config);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  // Selection: rows 100..399, every third 8-column block.
  const std::int64_t dims[] = {kRows, kCols};
  const hyperslab::DimSelection sel[] = {
      {100, 1, 300, 1},   // rows: contiguous band
      {0, 24, 42, 8},     // cols: 42 blocks of 8, stride 24
  };
  hyperslab::Hyperslab slab(dims, sel);

  std::vector<double> dataset(kRows * kCols);
  for (std::int64_t r = 0; r < kRows; ++r) {
    for (std::int64_t c = 0; c < kCols; ++c) {
      dataset[static_cast<std::size_t>(r * kCols + c)] =
          static_cast<double>(r) * 10000 + static_cast<double>(c);
    }
  }

  std::vector<double> picked(static_cast<std::size_t>(slab.num_selected()));
  bool ok = true;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const hyperslab::Hyperslab& s,
         const std::vector<double>& all, std::vector<double>& out,
         bool& verified) -> Task<void> {
        (void)co_await f.open("/dataset", true);
        f.set_view(0, types::byte_t(), types::byte_t());
        auto whole = types::contiguous(
            static_cast<std::int64_t>(all.size() * 8), types::byte_t());
        (void)co_await f.write_at(0, all.data(), 1, whole,
                                  mpiio::Method::kDatatype);

        // The hyperslab IS the file view.
        f.set_view(0, types::double_t(), s.to_datatype(types::double_t()));
        auto memtype = types::contiguous(s.num_selected() * 8,
                                         types::byte_t());
        Status st = co_await f.read_at(0, out.data(), 1, memtype,
                                       mpiio::Method::kDatatype);
        verified = st.is_ok();
      }(file, slab, dataset, picked, ok));
  cluster.run();

  // Verify each picked value against the selection arithmetic.
  std::int64_t errors = 0;
  std::size_t at = 0;
  for (std::int64_t r = 100; r < 400; ++r) {
    for (std::int64_t blk = 0; blk < 42; ++blk) {
      for (std::int64_t i = 0; i < 8; ++i) {
        const std::int64_t c = blk * 24 + i;
        const double expect = static_cast<double>(r) * 10000 + c;
        if (picked[at++] != expect) ++errors;
      }
    }
  }
  ok = ok && errors == 0 && at == picked.size();

  const auto& loop = slab.to_dataloop(8);
  std::printf("hyperslab_io: %s\n", ok ? "VERIFIED" : "FAILED");
  std::printf("  selection: %lld of %lld doubles (%lld regions)\n",
              static_cast<long long>(slab.num_selected()),
              static_cast<long long>(kRows * kCols),
              static_cast<long long>(loop->region_count()));
  std::printf("  shipped as a dataloop: %lld nodes, %s on the wire "
              "(an offset-length list would be %s)\n",
              static_cast<long long>(loop->node_count()),
              format_bytes(dl::encoded_size(*loop)).c_str(),
              format_bytes(static_cast<std::uint64_t>(
                               loop->region_count() * 16))
                  .c_str());
  std::printf("  file-system ops: %llu (datatype I/O) — POSIX I/O would "
              "need %lld\n",
              static_cast<unsigned long long>(client->stats().io_ops - 1),
              static_cast<long long>(loop->region_count()));
  return ok ? 0 : 1;
}
