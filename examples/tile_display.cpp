// Tile display wall (paper §4.2) with REAL pixel data.
//
// A writer paints whole frames with a deterministic per-pixel pattern;
// six display clients each read their own overlapping tile through a
// subarray file view and verify every pixel they are responsible for.
// The same playback runs under each access method so you can watch the
// op counts diverge while the pixels stay identical.
//
//   $ ./tile_display [frames]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "collective/comm.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "workloads/tile.h"

using namespace dtio;
using sim::Task;

namespace {

std::uint8_t pixel_value(std::int64_t frame, std::int64_t x, std::int64_t y,
                         int channel) {
  return static_cast<std::uint8_t>(frame * 131 + x * 7 + y * 13 +
                                   channel * 29);
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 2;
  workloads::TileConfig tile;

  const mpiio::Method methods[] = {
      mpiio::Method::kPosix, mpiio::Method::kDataSieving,
      mpiio::Method::kList, mpiio::Method::kDatatype};

  std::printf("tile display: %dx%d wall, %d frames of %s, verifying every "
              "pixel per method\n\n",
              tile.tiles_x, tile.tiles_y, frames,
              format_bytes(static_cast<std::uint64_t>(tile.frame_bytes()))
                  .c_str());

  for (const auto method : methods) {
    net::ClusterConfig config;
    config.num_clients = tile.num_clients();
    pfs::Cluster cluster(config);

    std::vector<std::unique_ptr<pfs::Client>> clients;
    std::vector<std::unique_ptr<io::Context>> contexts;
    std::vector<std::unique_ptr<mpiio::File>> files;
    for (int r = 0; r < config.num_clients; ++r) {
      clients.push_back(cluster.make_client(r));
      contexts.push_back(std::make_unique<io::Context>(io::Context{
          cluster.scheduler(), *clients.back(), cluster.config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
    }

    // Paint the frames (plain contiguous writes by client 0).
    cluster.scheduler().spawn(
        [](mpiio::File& f, const workloads::TileConfig& t,
           int nframes) -> Task<void> {
          (void)co_await f.open("/frames", true);
          f.set_view(0, types::byte_t(), types::byte_t());
          std::vector<std::uint8_t> frame(
              static_cast<std::size_t>(t.frame_bytes()));
          for (int fr = 0; fr < nframes; ++fr) {
            std::size_t i = 0;
            for (std::int64_t y = 0; y < t.frame_height(); ++y) {
              for (std::int64_t x = 0; x < t.frame_width(); ++x) {
                for (int c = 0; c < t.bytes_per_pixel; ++c) {
                  frame[i++] = pixel_value(fr, x, y, c);
                }
              }
            }
            auto memtype = types::contiguous(t.frame_bytes(), types::byte_t());
            (void)co_await f.write_at(fr * t.frame_bytes(), frame.data(), 1,
                                      memtype, mpiio::Method::kDatatype);
          }
        }(*files[0], tile, frames));
    cluster.run();

    // Playback: every client reads + verifies its tile each frame.
    std::int64_t bad_pixels = 0;
    const SimTime t0 = cluster.scheduler().now();
    for (int r = 0; r < config.num_clients; ++r) {
      cluster.scheduler().spawn(
          [](mpiio::File& f, const workloads::TileConfig& t, int rank,
             int nframes, mpiio::Method m, std::int64_t& bad) -> Task<void> {
            if (rank != 0) (void)co_await f.open("/frames", false);
            f.set_view(0, types::byte_t(), t.tile_filetype(rank));
            auto memtype = t.memtype();
            std::vector<std::uint8_t> buf(
                static_cast<std::size_t>(t.tile_bytes()));
            const std::int64_t x0 = t.tile_x0(rank);
            const std::int64_t y0 = t.tile_y0(rank);
            for (int fr = 0; fr < nframes; ++fr) {
              Status s = co_await f.read_at(fr * t.tile_bytes(), buf.data(),
                                            1, memtype, m);
              if (!s.is_ok()) {
                bad += t.tile_bytes();
                co_return;
              }
              std::size_t i = 0;
              for (std::int64_t y = 0; y < t.tile_height; ++y) {
                for (std::int64_t x = 0; x < t.tile_width; ++x) {
                  for (int c = 0; c < t.bytes_per_pixel; ++c) {
                    if (buf[i++] != pixel_value(fr, x0 + x, y0 + y, c)) {
                      ++bad;
                    }
                  }
                }
              }
            }
          }(*files[r], tile, r, frames, method, bad_pixels));
    }
    cluster.run();

    const double seconds = to_seconds(cluster.scheduler().now() - t0);
    std::uint64_t ops = 0;
    for (const auto& c : clients) ops += c->stats().io_ops;
    std::printf("  %-18s %s, %.2f sim s, %llu total ops, %lld bad bytes\n",
                std::string(mpiio::method_name(method)).c_str(),
                bad_pixels == 0 ? "all pixels VERIFIED" : "VERIFICATION FAILED",
                seconds, static_cast<unsigned long long>(ops),
                static_cast<long long>(bad_pixels));
    if (bad_pixels != 0) return 1;
  }
  return 0;
}
