// dtio_inspect: offline analysis of dtio bench output.
//
// Reads any mix of Chrome trace files (trace.json, as written by
// Cluster::write_trace) and run reports (BENCH_*.json) and answers "where
// did the time go": the per-phase latency breakdown at p50/p99/p999, the
// slowest individual requests with their span trees, and timeline
// summaries (peak backlog, time over a watermark). With --json it emits a
// machine-readable summary for CI gating.
//
// Spans are rebuilt from the trace's exact integer args (start_ns/dur_ns),
// not the lossy microsecond ts/dur doubles, so the analysis here matches
// the in-process analyzer bit for bit.
//
// Usage:
//   dtio_inspect [options] <trace.json|BENCH_*.json>...
//     --op NAME      analyze only root spans named NAME (e.g. contig_read)
//     --top N        show the N slowest requests with span trees (default 5)
//     --watermark V  report time fraction queue_depth series spent above V
//     --json         machine-readable output

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/phase.h"
#include "obs/span.h"

namespace {

using dtio::SimTime;
using dtio::obs::JsonValue;
using dtio::obs::JsonWriter;
using dtio::obs::OpBreakdown;
using dtio::obs::Phase;
using dtio::obs::PhaseQuantile;
using dtio::obs::PhaseReport;
using dtio::obs::Span;
using dtio::obs::kPhaseCount;
using dtio::obs::phase_from_name;
using dtio::obs::phase_name;

struct TimelineSummary {
  std::string name;
  int node = -1;
  std::uint64_t total = 0;
  double min = 0, max = 0, mean = 0;
  SimTime peak_time = 0;
  double over_watermark = -1;  ///< time fraction above --watermark; -1 unset
};

struct Inputs {
  std::vector<Span> spans;
  std::vector<TimelineSummary> timeline;
  std::string bench;                  ///< from the run report, if given
  std::optional<JsonValue> report;    ///< full report DOM, if given
};

struct Options {
  std::string op_filter;
  int top = 5;
  double watermark = -1;
  bool json = false;
};

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Trace ingestion --------------------------------------------------------

void load_trace_events(const JsonValue& root, const Options& opt, Inputs& in) {
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) return;

  // Timeline counter points, accumulated per (name, node) in first-seen
  // order so output is deterministic.
  struct SeriesAcc {
    std::string name;
    int node;
    std::vector<std::pair<SimTime, double>> points;
  };
  std::vector<SeriesAcc> series;

  for (const JsonValue& ev : events->items) {
    const std::string_view ph = ev.str("ph");
    if (ph == "X") {
      const JsonValue* args = ev.find("args");
      Span s;
      s.node = static_cast<int>(ev.num("pid", -1));
      s.trace = static_cast<std::uint64_t>(ev.num("tid", 0));
      const JsonValue* name = ev.find("name");
      if (name != nullptr) s.name = name->string;
      if (args != nullptr && args->find("start_ns") != nullptr) {
        s.start = static_cast<SimTime>(args->num("start_ns"));
        s.end = s.start + static_cast<SimTime>(args->num("dur_ns"));
      } else {  // fall back to the lossy microsecond fields
        s.start = static_cast<SimTime>(ev.num("ts") * 1000.0);
        s.end = s.start + static_cast<SimTime>(ev.num("dur") * 1000.0);
      }
      if (args != nullptr) {
        s.id = static_cast<std::uint64_t>(args->num("span"));
        s.parent = static_cast<std::uint64_t>(args->num("parent"));
        s.value = static_cast<std::int64_t>(args->num("value"));
        s.phase = phase_from_name(args->str("phase"));
      }
      in.spans.push_back(std::move(s));
    } else if (ph == "C") {
      const std::string_view name = ev.str("name");
      constexpr std::string_view kPrefix = "timeline.";
      if (name.substr(0, kPrefix.size()) != kPrefix) continue;
      const JsonValue* args = ev.find("args");
      if (args == nullptr) continue;
      const int node = static_cast<int>(ev.num("pid", -1));
      const auto t = static_cast<SimTime>(ev.num("ts") * 1000.0);
      const double v = args->num("value");
      const std::string bare(name.substr(kPrefix.size()));
      SeriesAcc* acc = nullptr;
      for (SeriesAcc& s : series) {
        if (s.node == node && s.name == bare) {
          acc = &s;
          break;
        }
      }
      if (acc == nullptr) {
        series.push_back(SeriesAcc{bare, node, {}});
        acc = &series.back();
      }
      acc->points.emplace_back(t, v);
    }
  }

  for (const SeriesAcc& acc : series) {
    TimelineSummary s;
    s.name = acc.name;
    s.node = acc.node;
    s.total = acc.points.size();
    double sum = 0;
    SimTime above = 0;
    for (std::size_t i = 0; i < acc.points.size(); ++i) {
      const auto [t, v] = acc.points[i];
      if (i == 0) {
        s.min = s.max = v;
        s.peak_time = t;
      } else {
        if (v < s.min) s.min = v;
        if (v > s.max) {
          s.max = v;
          s.peak_time = t;
        }
      }
      sum += v;
      if (opt.watermark >= 0 && i + 1 < acc.points.size() &&
          v > opt.watermark) {
        above += acc.points[i + 1].first - t;
      }
    }
    if (!acc.points.empty()) {
      s.mean = sum / static_cast<double>(acc.points.size());
      const SimTime window = acc.points.back().first - acc.points.front().first;
      if (opt.watermark >= 0 && window > 0) {
        s.over_watermark = static_cast<double>(above) /
                           static_cast<double>(window);
      }
    }
    in.timeline.push_back(std::move(s));
  }
}

// ---- Run-report ingestion ---------------------------------------------------

void load_report(JsonValue root, const Options& opt, Inputs& in) {
  in.bench = root.str("bench");
  const JsonValue* timeline = root.find("timeline");
  if (timeline != nullptr && timeline->is_array()) {
    for (const JsonValue& sv : timeline->items) {
      TimelineSummary s;
      s.name = sv.str("name");
      s.node = static_cast<int>(sv.num("node", -1));
      s.total = static_cast<std::uint64_t>(sv.num("total"));
      s.min = sv.num("min");
      s.max = sv.num("max");
      s.mean = sv.num("mean");
      s.peak_time = static_cast<SimTime>(sv.num("peak_time_ns"));
      const JsonValue* points = sv.find("points");
      if (opt.watermark >= 0 && points != nullptr && points->is_array() &&
          points->items.size() > 1) {
        SimTime above = 0;
        for (std::size_t i = 0; i + 1 < points->items.size(); ++i) {
          const JsonValue& p = points->items[i];
          if (p.items.size() == 2 &&
              p.items[1].number > opt.watermark) {
            above += static_cast<SimTime>(points->items[i + 1].items[0].number -
                                          p.items[0].number);
          }
        }
        const auto window = static_cast<SimTime>(
            points->items.back().items[0].number -
            points->items.front().items[0].number);
        if (window > 0) {
          s.over_watermark =
              static_cast<double>(above) / static_cast<double>(window);
        }
      }
      in.timeline.push_back(std::move(s));
    }
  }
  in.report = std::move(root);
}

// ---- Output helpers ---------------------------------------------------------

std::string fmt_ns(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", ns);
  }
  return buf;
}

void print_phase_table(const PhaseReport& r, const std::string& filter) {
  std::printf("phase breakdown%s%s: %llu ops, mean %s (%.1f%% attributed)\n",
              filter.empty() ? "" : " for ", filter.c_str(),
              static_cast<unsigned long long>(r.ops),
              fmt_ns(r.mean_ns).c_str(), 100.0 * r.mean_coverage);
  std::printf("  %-16s %12s", "phase", "mean");
  for (const PhaseQuantile& q : r.quantiles) {
    char head[16];
    std::snprintf(head, sizeof head, "p%g", q.quantile);
    std::printf(" %12s", head);
  }
  std::printf("\n");
  std::printf("  %-16s %12s", "latency", fmt_ns(r.mean_ns).c_str());
  for (const PhaseQuantile& q : r.quantiles) {
    std::printf(" %12s", fmt_ns(q.latency_ns).c_str());
  }
  std::printf("\n");
  for (int p = 1; p < kPhaseCount; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    double any = r.mean_phase_ns[idx];
    for (const PhaseQuantile& q : r.quantiles) any += q.phase_ns[idx];
    if (any <= 0) continue;
    std::printf("  %-16s %12s", phase_name(static_cast<Phase>(p)),
                fmt_ns(r.mean_phase_ns[idx]).c_str());
    for (const PhaseQuantile& q : r.quantiles) {
      std::printf(" %12s", fmt_ns(q.phase_ns[idx]).c_str());
    }
    std::printf("\n");
  }
  std::printf("  %-16s %12.1f%%", "coverage", 100.0 * r.mean_coverage);
  for (const PhaseQuantile& q : r.quantiles) {
    std::printf(" %11.1f%%", 100.0 * q.coverage);
  }
  std::printf("\n");
  for (const PhaseQuantile& q : r.quantiles) {
    std::printf("  p%-5g dominant: %s\n", q.quantile, phase_name(q.dominant));
  }
}

void print_span_tree(const std::vector<const Span*>& trace_spans,
                     const Span* node, int depth) {
  std::printf("    %*s%s [%s] %s (node %d)\n", 2 * depth, "",
              node->name.c_str(),
              node->phase == Phase::kNone ? "-" : phase_name(node->phase),
              fmt_ns(static_cast<double>(node->end - node->start)).c_str(),
              node->node);
  for (const Span* s : trace_spans) {
    if (s->parent == node->id && s != node) {
      print_span_tree(trace_spans, s, depth + 1);
    }
  }
}

void print_slowest(const std::vector<Span>& spans,
                   std::vector<OpBreakdown> ops, int top) {
  std::sort(ops.begin(), ops.end(),
            [](const OpBreakdown& a, const OpBreakdown& b) {
              return a.duration_ns() > b.duration_ns();
            });
  if (ops.size() > static_cast<std::size_t>(top)) {
    ops.resize(static_cast<std::size_t>(top));
  }
  std::printf("\nslowest %zu requests:\n", ops.size());
  for (const OpBreakdown& op : ops) {
    std::printf("  %s trace %llu: %s (%.1f%% attributed)\n", op.name.c_str(),
                static_cast<unsigned long long>(op.trace),
                fmt_ns(op.duration_ns()).c_str(), 100.0 * op.coverage());
    std::vector<const Span*> trace_spans;
    const Span* root = nullptr;
    for (const Span& s : spans) {
      if (s.trace != op.trace) continue;
      trace_spans.push_back(&s);
      if (s.id == op.root) root = &s;
    }
    if (root != nullptr) print_span_tree(trace_spans, root, 0);
  }
}

void print_timeline(const std::vector<TimelineSummary>& timeline,
                    const Options& opt) {
  if (timeline.empty()) return;
  std::printf("\ntimeline series:\n");
  for (const TimelineSummary& s : timeline) {
    std::printf(
        "  %-20s node %3d: %6llu samples  mean %10.1f  peak %10.1f @ %s",
        s.name.c_str(), s.node, static_cast<unsigned long long>(s.total),
        s.mean, s.max, fmt_ns(static_cast<double>(s.peak_time)).c_str());
    if (s.over_watermark >= 0) {
      std::printf("  %5.1f%% above %g", 100.0 * s.over_watermark,
                  opt.watermark);
    }
    std::printf("\n");
  }
}

void write_phase_json(JsonWriter& w, const PhaseReport& r) {
  w.begin_object();
  w.kv("ops", r.ops);
  w.kv("mean_ns", r.mean_ns);
  w.kv("mean_coverage", r.mean_coverage);
  w.key("quantiles").begin_array();
  for (const PhaseQuantile& q : r.quantiles) {
    w.begin_object();
    w.kv("quantile", q.quantile);
    w.kv("latency_ns", q.latency_ns);
    w.kv("attributed_ns", q.attributed_ns);
    w.kv("coverage", q.coverage);
    w.kv("dominant", phase_name(q.dominant));
    w.key("phase_ns").begin_object();
    for (int p = 1; p < kPhaseCount; ++p) {
      const double v = q.phase_ns[static_cast<std::size_t>(p)];
      if (v > 0) w.kv(phase_name(static_cast<Phase>(p)), v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

int usage() {
  std::fprintf(stderr,
               "usage: dtio_inspect [--op NAME] [--top N] [--watermark V] "
               "[--json] <trace.json|BENCH_*.json>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--op" && i + 1 < argc) {
      opt.op_filter = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      opt.top = std::atoi(argv[++i]);
    } else if (arg == "--watermark" && i + 1 < argc) {
      opt.watermark = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) return usage();

  Inputs in;
  for (const std::string& path : files) {
    const auto text = read_file(path);
    if (!text.has_value()) {
      std::fprintf(stderr, "dtio_inspect: cannot read %s\n", path.c_str());
      return 1;
    }
    auto doc = dtio::obs::json_parse(*text);
    if (!doc.has_value()) {
      std::fprintf(stderr, "dtio_inspect: %s is not valid JSON\n",
                   path.c_str());
      return 1;
    }
    if (doc->find("traceEvents") != nullptr) {
      load_trace_events(*doc, opt, in);
    } else if (doc->str("schema").substr(0, 17) == "dtio-bench-report") {
      load_report(std::move(*doc), opt, in);
    } else {
      std::fprintf(stderr, "dtio_inspect: %s: unrecognized document\n",
                   path.c_str());
      return 1;
    }
  }

  // Phase analysis over the trace spans (if a trace was given).
  std::vector<OpBreakdown> ops = dtio::obs::decompose_ops(in.spans);
  if (!opt.op_filter.empty()) {
    std::erase_if(ops, [&](const OpBreakdown& op) {
      return op.name != opt.op_filter;
    });
  }
  const PhaseReport report = dtio::obs::summarize_phases(ops);

  if (opt.json) {
    std::string out;
    JsonWriter w(out);
    w.begin_object();
    w.kv("tool", "dtio_inspect");
    if (!in.bench.empty()) w.kv("bench", std::string_view(in.bench));
    if (!opt.op_filter.empty()) {
      w.kv("op_filter", std::string_view(opt.op_filter));
    }
    w.kv("spans", static_cast<std::uint64_t>(in.spans.size()));
    w.key("phases");
    write_phase_json(w, report);
    // Convenience scalars for shell-level CI gates.
    if (const PhaseQuantile* p99 = report.quantile(99)) {
      w.kv("coverage_p99", p99->coverage);
      w.kv("dominant_p99", phase_name(p99->dominant));
    }
    w.key("timeline").begin_array();
    for (const TimelineSummary& s : in.timeline) {
      w.begin_object();
      w.kv("name", std::string_view(s.name));
      w.kv("node", s.node);
      w.kv("samples", s.total);
      w.kv("min", s.min);
      w.kv("max", s.max);
      w.kv("mean", s.mean);
      w.kv("peak_time_ns", static_cast<std::int64_t>(s.peak_time));
      if (s.over_watermark >= 0) {
        w.kv("watermark", opt.watermark);
        w.kv("over_watermark", s.over_watermark);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", out.c_str());
    return 0;
  }

  if (!in.bench.empty()) std::printf("bench: %s\n", in.bench.c_str());
  if (in.report.has_value()) {
    const JsonValue* methods = in.report->find("methods");
    if (methods != nullptr && methods->is_array()) {
      for (const JsonValue& m : methods->items) {
        const JsonValue* lat = m.find("latency_us");
        const JsonValue* spans = m.find("spans");
        std::printf(
            "  method %-16s %8.2f MB/s  p99 %10.1f us  spans %llu (%llu "
            "dropped)\n",
            std::string(m.str("method")).c_str(), m.num("bandwidth_mb_s"),
            lat != nullptr ? lat->num("p99_us") : 0.0,
            static_cast<unsigned long long>(
                spans != nullptr ? spans->num("recorded") : 0.0),
            static_cast<unsigned long long>(
                spans != nullptr ? spans->num("dropped") : 0.0));
      }
    }
  }
  if (report.ops > 0) {
    if (in.report.has_value()) std::printf("\n");
    print_phase_table(report, opt.op_filter);
    if (opt.top > 0) print_slowest(in.spans, ops, opt.top);
  } else if (!in.spans.empty()) {
    std::printf("no analyzable ops (closed roots with typed phases)\n");
  }
  print_timeline(in.timeline, opt);
  return 0;
}
