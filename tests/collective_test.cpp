// Tests for the collective substrate: communicator primitives (allgather,
// barrier, exchange), two-phase hole handling (read-modify-write), file
// locks under contention, and server robustness against malformed
// datatype requests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "collective/comm.h"
#include "collective/two_phase.h"
#include "common/rng.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"

namespace dtio {
namespace {

using coll::Communicator;
using sim::Task;

net::ClusterConfig small_config(int clients) {
  net::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = clients;
  cfg.strip_size = 1024;
  return cfg;
}

// ---- Communicator primitives -------------------------------------------------

TEST(Comm, Allgather64CollectsRankOrdered) {
  constexpr int kRanks = 5;
  pfs::Cluster cluster(small_config(kRanks));
  Communicator comm(cluster.scheduler(), cluster.network(), cluster.config(),
                    kRanks);
  std::vector<std::vector<std::int64_t>> results(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    cluster.scheduler().spawn(
        [](Communicator& c, int rank,
           std::vector<std::int64_t>& out) -> Task<void> {
          std::vector<std::int64_t> mine{rank * 10, rank * 10 + 1};
          out = co_await c.allgather64(
              rank, Box<std::vector<std::int64_t>>(std::move(mine)));
        }(comm, r, results[static_cast<std::size_t>(r)]));
  }
  cluster.run();
  const std::vector<std::int64_t> expect{0,  1,  10, 11, 20,
                                         21, 30, 31, 40, 41};
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expect) << "rank " << r;
  }
}

TEST(Comm, AllgatherTwiceKeepsTagDisciplineAligned) {
  constexpr int kRanks = 3;
  pfs::Cluster cluster(small_config(kRanks));
  Communicator comm(cluster.scheduler(), cluster.network(), cluster.config(),
                    kRanks);
  int mismatches = 0;
  for (int r = 0; r < kRanks; ++r) {
    cluster.scheduler().spawn(
        [](Communicator& c, int rank, int& bad) -> Task<void> {
          for (int round = 0; round < 4; ++round) {
            std::vector<std::int64_t> mine{rank + round * 100};
            auto all = co_await c.allgather64(
                rank, Box<std::vector<std::int64_t>>(std::move(mine)));
            for (int i = 0; i < 3; ++i) {
              if (all[static_cast<std::size_t>(i)] != i + round * 100) ++bad;
            }
          }
        }(comm, r, mismatches));
  }
  cluster.run();
  EXPECT_EQ(mismatches, 0);
}

TEST(Comm, BarrierSynchronises) {
  constexpr int kRanks = 4;
  pfs::Cluster cluster(small_config(kRanks));
  Communicator comm(cluster.scheduler(), cluster.network(), cluster.config(),
                    kRanks);
  std::vector<SimTime> after(kRanks, -1);
  for (int r = 0; r < kRanks; ++r) {
    cluster.scheduler().spawn(
        [](Communicator& c, sim::Scheduler& s, int rank,
           std::vector<SimTime>& out) -> Task<void> {
          co_await s.delay(rank * 10 * kMillisecond);  // stagger arrival
          co_await c.barrier(rank);
          out[static_cast<std::size_t>(rank)] = s.now();
        }(comm, cluster.scheduler(), r, after));
  }
  cluster.run();
  // Nobody may pass before the last arrival at 30 ms.
  for (const SimTime t : after) EXPECT_GE(t, 30 * kMillisecond);
}

TEST(Comm, ExchangeCarriesRegionsAndData) {
  pfs::Cluster cluster(small_config(2));
  Communicator comm(cluster.scheduler(), cluster.network(), cluster.config(),
                    2);
  coll::ExchangePayload received;
  cluster.scheduler().spawn([](Communicator& c) -> Task<void> {
    coll::ExchangePayload payload;
    payload.regions = {{100, 4}, {200, 4}};
    payload.data = std::make_shared<std::vector<std::uint8_t>>(
        std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});
    co_await c.send_exchange(0, 1, 42,
                             Box<coll::ExchangePayload>(std::move(payload)),
                             8 + 32);
  }(comm));
  cluster.scheduler().spawn(
      [](Communicator& c, coll::ExchangePayload& out) -> Task<void> {
        out = co_await c.recv_exchange(1, 0, 42);
      }(comm, received));
  cluster.run();
  ASSERT_EQ(received.regions.size(), 2u);
  EXPECT_EQ(received.regions[1], (Region{200, 4}));
  ASSERT_NE(received.data, nullptr);
  EXPECT_EQ((*received.data)[7], 8);
}

// ---- Two-phase hole handling ----------------------------------------------------

class TwoPhaseHoles : public ::testing::TestWithParam<net::CbWriteMode> {};

TEST_P(TwoPhaseHoles, SparseCollectiveWritePreservesGapBytes) {
  // Pre-fill the file, then collectively write a SPARSE pattern (holes
  // between contributions): the aggregator must read-modify-write so the
  // prefill survives in the gaps.
  constexpr int kRanks = 2;
  auto cfg = small_config(kRanks);
  cfg.cb_write_noncontig = GetParam();  // RMW, list, or datatype write-back
  pfs::Cluster cluster(cfg);
  Communicator comm(cluster.scheduler(), cluster.network(), cluster.config(),
                    kRanks);
  auto client0 = cluster.make_client(0);
  auto client1 = cluster.make_client(1);
  io::Context ctx0{cluster.scheduler(), *client0, cluster.config()};
  io::Context ctx1{cluster.scheduler(), *client1, cluster.config()};
  mpiio::File f0(ctx0);
  mpiio::File f1(ctx1);

  std::vector<std::uint8_t> prefill(4096, 0xAB);
  cluster.scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& fill) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/holes", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto memtype = types::contiguous(4096, types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, fill.data(), 1, memtype,
                                         mpiio::Method::kDatatype))
                        .is_ok());
      }(f0, prefill));
  cluster.run();

  // Rank r writes 16-byte pieces at offsets r*64 + k*128: half the file
  // stays untouched.
  std::vector<std::uint8_t> payload(16 * 32, 0xCD);
  int done = 0;
  auto writer = [](mpiio::File& f, Communicator& c, int rank,
                   const std::vector<std::uint8_t>& src,
                   int& finished) -> Task<void> {
    if (rank != 0) EXPECT_TRUE((co_await f.open("/holes", false)).is_ok());
    auto piece = types::contiguous(16, types::byte_t());
    auto strided = types::resized(piece, 0, 128);
    f.set_view(rank * 64, types::byte_t(), strided);
    auto memtype = types::contiguous(16 * 32, types::byte_t());
    Status s = co_await f.write_at_all(c, rank, 0, src.data(), 1, memtype,
                                       mpiio::Method::kTwoPhase);
    EXPECT_TRUE(s.is_ok()) << s.to_string();
    ++finished;
  };
  cluster.scheduler().spawn(writer(f0, comm, 0, payload, done));
  cluster.scheduler().spawn(writer(f1, comm, 1, payload, done));
  cluster.run();
  EXPECT_EQ(done, 2);

  bool verified = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, bool& ok) -> Task<void> {
        std::vector<std::uint8_t> back(4096);
        f.set_view(0, types::byte_t(), types::byte_t());
        auto memtype = types::contiguous(4096, types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, back.data(), 1, memtype,
                                        mpiio::Method::kDatatype))
                        .is_ok());
        ok = true;
        for (std::int64_t i = 0; i < 4096; ++i) {
          const std::int64_t in_window = i % 128;
          const bool written =
              (in_window < 16) || (in_window >= 64 && in_window < 80);
          const std::uint8_t expect = written ? 0xCD : 0xAB;
          if (back[static_cast<std::size_t>(i)] != expect) {
            ADD_FAILURE() << "byte " << i << " = " << int{back[
                static_cast<std::size_t>(i)]};
            ok = false;
            break;
          }
        }
      }(f0, verified));
  cluster.run();
  EXPECT_TRUE(verified);
}

INSTANTIATE_TEST_SUITE_P(
    WriteBackModes, TwoPhaseHoles,
    ::testing::Values(net::CbWriteMode::kRmw, net::CbWriteMode::kList,
                      net::CbWriteMode::kDatatype),
    [](const auto& info) {
      switch (info.param) {
        case net::CbWriteMode::kRmw: return "Rmw";
        case net::CbWriteMode::kList: return "List";
        case net::CbWriteMode::kDatatype: return "Datatype";
      }
      return "Unknown";
    });

TEST(TwoPhaseWriteBack, NoncontigModesSkipTheRmwRead) {
  // With list/datatype write-back the aggregators never issue the hull
  // read, so server bytes_read stays zero for the collective write.
  for (const auto mode :
       {net::CbWriteMode::kRmw, net::CbWriteMode::kDatatype}) {
    auto cfg = small_config(2);
    cfg.cb_write_noncontig = mode;
    pfs::Cluster cluster(cfg);
    Communicator comm(cluster.scheduler(), cluster.network(),
                      cluster.config(), 2);
    std::vector<std::unique_ptr<pfs::Client>> clients;
    std::vector<std::unique_ptr<io::Context>> ctxs;
    std::vector<std::unique_ptr<mpiio::File>> files;
    for (int r = 0; r < 2; ++r) {
      clients.push_back(cluster.make_client(r));
      ctxs.push_back(std::make_unique<io::Context>(io::Context{
          cluster.scheduler(), *clients.back(), cluster.config()}));
      files.push_back(std::make_unique<mpiio::File>(*ctxs.back()));
    }
    std::vector<std::uint8_t> payload(16 * 16, 0xEE);
    for (int r = 0; r < 2; ++r) {
      cluster.scheduler().spawn(
          [](mpiio::File& f, Communicator& c, int rank,
             const std::vector<std::uint8_t>& src) -> Task<void> {
            EXPECT_TRUE((co_await f.open("/nb", rank == 0)).is_ok());
            auto piece = types::contiguous(16, types::byte_t());
            // Sparse: only the first 16 of every 256 bytes, per rank.
            auto strided = types::resized(piece, 0, 256);
            f.set_view(rank * 128, types::byte_t(), strided);
            auto memtype = types::contiguous(16 * 16, types::byte_t());
            EXPECT_TRUE((co_await f.write_at_all(c, rank, 0, src.data(), 1,
                                                 memtype,
                                                 mpiio::Method::kTwoPhase))
                            .is_ok());
          }(*files[r], comm, r, payload));
    }
    cluster.run();
    std::uint64_t reads = 0;
    for (int s = 0; s < cfg.num_servers; ++s) {
      reads += cluster.server(s).stats().bytes_read;
    }
    if (mode == net::CbWriteMode::kRmw) {
      EXPECT_GT(reads, 0u) << "RMW must read the hull";
    } else {
      EXPECT_EQ(reads, 0u) << "noncontig write-back must not read";
    }
  }
}

// ---- Locks ------------------------------------------------------------------------

TEST(Locks, FifoContentionSerialisesHolders) {
  pfs::Cluster cluster(small_config(3));
  std::vector<std::unique_ptr<pfs::Client>> clients;
  for (int r = 0; r < 3; ++r) clients.push_back(cluster.make_client(r));
  std::vector<int> grant_order;
  int concurrent = 0;
  int max_concurrent = 0;
  for (int r = 0; r < 3; ++r) {
    cluster.scheduler().spawn(
        [](pfs::Client& c, sim::Scheduler& s, int rank, std::vector<int>& order,
           int& inside, int& peak) -> Task<void> {
          co_await s.delay(rank * kMicrosecond);  // deterministic arrival
          (void)co_await c.lock(7);
          order.push_back(rank);
          ++inside;
          peak = std::max(peak, inside);
          co_await s.delay(10 * kMillisecond);
          --inside;
          (void)co_await c.unlock(7);
        }(*clients[static_cast<std::size_t>(r)], cluster.scheduler(), r,
          grant_order, concurrent, max_concurrent));
  }
  cluster.run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(max_concurrent, 1);
}

TEST(Locks, IndependentHandlesDoNotContend) {
  pfs::Cluster cluster(small_config(2));
  auto c0 = cluster.make_client(0);
  auto c1 = cluster.make_client(1);
  SimTime t0 = -1, t1 = -1;
  cluster.scheduler().spawn(
      [](pfs::Client& c, sim::Scheduler& s, SimTime& out) -> Task<void> {
        (void)co_await c.lock(1);
        co_await s.delay(50 * kMillisecond);
        (void)co_await c.unlock(1);
        out = s.now();
      }(*c0, cluster.scheduler(), t0));
  cluster.scheduler().spawn(
      [](pfs::Client& c, sim::Scheduler& s, SimTime& out) -> Task<void> {
        (void)co_await c.lock(2);
        co_await s.delay(50 * kMillisecond);
        (void)co_await c.unlock(2);
        out = s.now();
      }(*c1, cluster.scheduler(), t1));
  cluster.run();
  // Both finish around 50 ms: no serialisation across handles.
  EXPECT_LT(t0, 60 * kMillisecond);
  EXPECT_LT(t1, 60 * kMillisecond);
}

// ---- Server robustness ---------------------------------------------------------------

TEST(ServerRobustness, MalformedDataloopGetsErrorReply) {
  pfs::Cluster cluster(small_config(1));
  auto client = cluster.make_client(0);
  Status status;
  cluster.scheduler().spawn(
      [](pfs::Client& c, net::Network& net, int node,
         Status& out) -> Task<void> {
        pfs::Request request;
        request.op = pfs::OpKind::kDatatypeRead;
        request.handle = 1;
        request.client_node = node;
        request.reply_tag = pfs::kTagReplyBase + 999;
        pfs::DatatypePayload p;
        p.encoded_loop = std::make_shared<std::vector<std::uint8_t>>(
            std::vector<std::uint8_t>{0xFF, 0x00, 0x13});
        p.count = 1;
        p.stream_length = 8;
        request.payload = std::move(p);
        co_await net.send(node, 0,
                          sim::Message(node, pfs::kTagRequest, 64,
                                       std::move(request)));
        sim::Message msg =
            co_await net.mailbox(node).recv(0, pfs::kTagReplyBase + 999);
        pfs::Reply reply = msg.take<pfs::Reply>();
        out = reply.ok ? Status::ok() : internal_error(reply.error);
        (void)c;
      }(*client, cluster.network(), cluster.config().client_node(0), status));
  cluster.run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(cluster.server(0).stats().bad_requests, 1u);
}

TEST(ServerRobustness, OutOfRangeStreamWindowRejected) {
  pfs::Cluster cluster(small_config(1));
  auto client = cluster.make_client(0);
  bool rejected = false;
  cluster.scheduler().spawn(
      [](pfs::Client& c, bool& out) -> Task<void> {
        auto loop = dl::make_vector(4, 8, 32, dl::make_leaf(1));  // 32 B
        // Window claims 64 bytes of a 32-byte stream.
        Status s = co_await c.read_datatype(5, loop, 0, 1, 0, 64, nullptr);
        out = !s.is_ok();
      }(*client, rejected));
  cluster.run();
  EXPECT_TRUE(rejected);
}

// ---- Utilization report ----------------------------------------------------------------

TEST(Utilization, ReportShowsBusyResources) {
  pfs::Cluster cluster(small_config(1));
  auto client = cluster.make_client(0);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    pfs::MetaResult f = co_await c.create("/u");
    std::vector<std::uint8_t> data(200000, 3);
    (void)co_await c.write_contig(f.handle, 0, data.data(), 200000);
  }(*client));
  cluster.run();
  const std::string report = cluster.utilization_report();
  EXPECT_NE(report.find("servers:"), std::string::npos);
  EXPECT_NE(report.find("clients:"), std::string::npos);
  EXPECT_NE(report.find("fabric:"), std::string::npos);
  // The client pushed 200 KB; its tx must show nonzero utilization.
  EXPECT_EQ(report.find("clients: tx 0%"), std::string::npos) << report;
}

// ---- Datatype cache --------------------------------------------------------------------

TEST(DataloopCache, RepeatedTypesHitTheCache) {
  auto cfg = small_config(1);
  cfg.server.dataloop_cache = true;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    auto loop = dl::make_vector(16, 64, 256, dl::make_leaf(1));
    std::vector<std::uint8_t> data(static_cast<std::size_t>(loop->size), 9);
    for (int round = 0; round < 5; ++round) {
      (void)co_await c.write_datatype(3, loop, 0, 1, 0, loop->size,
                                      data.data());
    }
  }(*client));
  cluster.run();
  std::uint64_t decoded = 0, hits = 0;
  for (int s = 0; s < cluster.config().num_servers; ++s) {
    decoded += cluster.server(s).stats().dataloops_decoded;
    hits += cluster.server(s).stats().dataloop_cache_hits;
  }
  EXPECT_EQ(decoded, 4u);   // once per involved server
  EXPECT_EQ(hits, 16u);     // 4 repeat rounds x 4 servers
}

TEST(DataloopCache, CacheSpeedsUpRepeatedAccess) {
  auto run_once = [&](bool cache) {
    auto cfg = small_config(1);
    cfg.server.dataloop_cache = cache;
    pfs::Cluster cluster(cfg);
    auto client = cluster.make_client(0);
    client->set_transfer_data(false);
    cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
      // A deliberately deep type so decode costs are visible.
      dl::DataloopPtr loop = dl::make_leaf(1);
      for (int d = 0; d < 10; ++d) loop = dl::make_vector(2, 1, 64 << d, loop);
      for (int round = 0; round < 50; ++round) {
        (void)co_await c.write_datatype(3, loop, 0, 1, 0, loop->size, nullptr);
      }
    }(*client));
    cluster.run();
    return cluster.scheduler().now();
  };
  EXPECT_LT(run_once(true), run_once(false));
}

}  // namespace
}  // namespace dtio
