// Fault injection and end-to-end request reliability: FaultPlan
// determinism, timed mailbox receives, timeout/retry/backoff behaviour,
// idempotent replay, CRC rejection of corrupted payloads, server
// crash/restart, and the stale-reply regression (a delayed reply from an
// abandoned attempt must never satisfy a later attempt or a later op).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "net/fault.h"
#include "pfs/cluster.h"
#include "sim/mailbox.h"
#include "sim/scheduler.h"
#include "sim/waitgroup.h"
#include "workloads/tile.h"

namespace dtio {
namespace {

using net::FaultPlan;
using net::FaultSpec;
using pfs::Client;
using pfs::MetaResult;
using sim::Task;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

// ---- FaultPlan unit behaviour ---------------------------------------------

TEST(FaultPlan, SameSeedSameDecisions) {
  const FaultSpec spec{.drop = 0.2, .duplicate = 0.2, .corrupt = 0.2,
                       .delay = 0.2};
  auto run = [&](std::vector<bool>& delivered) {
    FaultPlan plan(99);
    plan.set_default_spec(spec);
    plan.set_corruptor([](sim::Message&, Rng&) { return true; });
    plan.set_log_events(true);
    std::vector<net::FaultEvent> events;
    net::FaultCounters counters;
    for (int i = 0; i < 200; ++i) {
      sim::Message msg(i % 4, 17, 128, i);
      const auto decision =
          plan.apply(i % 4, (i + 1) % 4, i * kMicrosecond, msg);
      delivered.push_back(decision.deliver);
    }
    events = plan.events();
    counters = plan.counters();
    return std::make_pair(events, counters);
  };
  std::vector<bool> delivered_a, delivered_b;
  const auto [events_a, counters_a] = run(delivered_a);
  const auto [events_b, counters_b] = run(delivered_b);
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(counters_a, counters_b);
  EXPECT_GT(counters_a.total(), 0u);
  EXPECT_GT(counters_a.dropped, 0u);
}

TEST(FaultPlan, OutageWindowIsDeterministicAndConsumesNoRandomness) {
  // Plan A: probabilistic drops only. Plan B: same seed, plus an outage
  // window that swallows some messages first. Messages outside the window
  // must get the SAME verdicts in both plans — the outage may not shift
  // the RNG stream.
  const FaultSpec spec{.drop = 0.5};
  FaultPlan plan_a(7), plan_b(7);
  plan_a.set_default_spec(spec);
  plan_b.set_default_spec(spec);
  plan_b.add_outage(/*node=*/2, /*from=*/0, /*until=*/10 * kMicrosecond);

  for (int i = 0; i < 5; ++i) {  // inside the window, node 2 involved
    sim::Message msg(2, 1, 64, i);
    EXPECT_FALSE(plan_b.apply(2, 3, i * kMicrosecond, msg).deliver);
  }
  EXPECT_EQ(plan_b.counters().outage_dropped, 5u);

  for (int i = 0; i < 100; ++i) {  // after the window
    const SimTime now = 20 * kMicrosecond + i;
    sim::Message msg_a(1, 1, 64, i);
    sim::Message msg_b(1, 1, 64, i);
    EXPECT_EQ(plan_a.apply(1, 2, now, msg_a).deliver,
              plan_b.apply(1, 2, now, msg_b).deliver)
        << "message " << i;
  }
  EXPECT_EQ(plan_a.counters().dropped, plan_b.counters().dropped);
}

TEST(FaultPlan, ScopeRestrictsInjectionToLowNodes) {
  FaultPlan plan(1);
  plan.set_default_spec(FaultSpec{.drop = 1.0});
  plan.set_scope_max_node(2);  // only links touching nodes 0 or 1
  sim::Message client_pair(5, 1, 64, 0);
  EXPECT_TRUE(plan.apply(5, 6, 0, client_pair).deliver);
  sim::Message to_server(5, 1, 64, 0);
  EXPECT_FALSE(plan.apply(5, 1, 0, to_server).deliver);
  sim::Message from_server(0, 1, 64, 0);
  EXPECT_FALSE(plan.apply(0, 5, 0, from_server).deliver);
  EXPECT_EQ(plan.counters().dropped, 2u);
}

// ---- Timed receive & WaitGroup --------------------------------------------

TEST(MailboxTimedRecv, ExpiresThenMatchesThenIgnoresStaleTimer) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> first, second;
  SimTime first_at = -1;
  bool done = false;
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb,
                 std::optional<sim::Message>& first, SimTime& first_at,
                 std::optional<sim::Message>& second,
                 bool& done) -> Task<void> {
    first = co_await mb.recv_for(sim::kAnySource, 7, kMillisecond);
    first_at = s.now();
    // The second wait's timer must be a no-op after the match (expiry is
    // id-keyed, so it cannot hit this or any later waiter).
    second = co_await mb.recv_for(sim::kAnySource, 7, 10 * kMillisecond);
    done = true;
  }(sched, mailbox, first, first_at, second, done));
  sched.schedule_call(2 * kMillisecond,
                      [&] { mailbox.deliver(sim::Message(3, 7, 64, 123)); });
  sched.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(first.has_value());
  EXPECT_EQ(first_at, kMillisecond);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->src, 3);
  EXPECT_EQ(second->take<int>(), 123);
}

TEST(WaitGroup, JoinsAfterAllDone) {
  sim::Scheduler sched;
  sim::WaitGroup wg(sched);
  int completed = 0;
  SimTime joined_at = -1;
  for (int i = 1; i <= 3; ++i) {
    wg.add(1);
    sched.spawn([](sim::Scheduler& s, sim::WaitGroup& g, int ms,
                   int& completed) -> Task<void> {
      co_await s.delay(ms * kMillisecond);
      ++completed;
      g.done();
    }(sched, wg, i, completed));
  }
  sched.spawn([](sim::Scheduler& s, sim::WaitGroup& g,
                 SimTime& joined_at) -> Task<void> {
    co_await g.wait();
    joined_at = s.now();
  }(sched, wg, joined_at));
  sched.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(joined_at, 3 * kMillisecond);  // the slowest worker
}

// ---- End-to-end reliability ------------------------------------------------

net::ClusterConfig reliable_config(int servers = 2, int clients = 1) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = clients;
  cfg.strip_size = 1024;
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 5;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  return cfg;
}

TEST(Reliability, RetriesThroughOutageWindow) {
  auto cfg = reliable_config();
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, /*from=*/0, /*until=*/30 * kMillisecond);
  plan.add_outage(/*node=*/1, /*from=*/0, /*until=*/30 * kMillisecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(4000, 11);

  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/outage");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_GT(client->rpc_retries(), 0u);
  EXPECT_GT(client->rpc_timeouts(), 0u);
  EXPECT_GT(plan.counters().outage_dropped, 0u);
}

TEST(Reliability, PermanentOutageSurfacesUnavailable) {
  auto cfg = reliable_config();
  cfg.client.rpc_timeout = 5 * kMillisecond;
  cfg.client.rpc_max_attempts = 3;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, /*from=*/0, /*until=*/kSecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);

  Status status;
  cluster.scheduler().spawn([](Client& c, Status& out) -> Task<void> {
    out = (co_await c.create("/never")).status;
  }(*client, status));
  cluster.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.to_string();
  EXPECT_EQ(client->rpc_timeouts(), 3u);  // every attempt timed out
}

TEST(Reliability, SingleAttemptTimeoutSurfacesTimedOut) {
  auto cfg = reliable_config();
  cfg.client.rpc_timeout = 5 * kMillisecond;
  cfg.client.rpc_max_attempts = 1;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, /*from=*/0, /*until=*/kSecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);

  Status status;
  cluster.scheduler().spawn([](Client& c, Status& out) -> Task<void> {
    out = (co_await c.create("/never")).status;
  }(*client, status));
  cluster.run();
  EXPECT_EQ(status.code(), StatusCode::kTimedOut) << status.to_string();
  EXPECT_EQ(client->rpc_retries(), 0u);
}

TEST(Reliability, CorruptedWriteRejectedThenRetriedClean) {
  auto cfg = reliable_config(/*servers=*/1);
  pfs::Cluster cluster(cfg);
  // Corrupt every message touching server 0 until t=3.5ms: the create
  // (~1ms, meta payload — nothing corruptible) sails through, the first
  // write attempt (~1.1ms) gets its payload bit-flipped in flight, the
  // server rejects it with kDataLoss, and the retry (backoff lands it
  // past the window) carries the clean copy-on-write buffer.
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, /*from=*/0, /*until=*/3500 * kMicrosecond,
                  FaultSpec{.corrupt = 1.0});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 21);

  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/corrupt");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);  // the corrupted attempt never reached disk
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_GE(plan.counters().corrupted, 1u);
  EXPECT_GE(cluster.server(0).stats().crc_rejects, 1u);
  EXPECT_GT(client->rpc_retries(), 0u);
}

TEST(Reliability, LostAckIsReplayedNotReapplied) {
  auto cfg = reliable_config(/*servers=*/1);
  cfg.client.rpc_timeout = 10 * kMillisecond;
  pfs::Cluster cluster(cfg);
  // Drop every message touching server 0 in [T+800us, T+8ms), where T is
  // when the client issues its write: the request (sent ~T+110us) gets
  // through and is APPLIED, but its ack (sent ~T+1.5ms) is lost. The
  // retry at ~T+12ms lands after the window and must hit the replay
  // window — re-acknowledged, not re-executed.
  constexpr SimTime kIssueAt = 5 * kMillisecond;
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, kIssueAt + 800 * kMicrosecond,
                  kIssueAt + 8 * kMillisecond, FaultSpec{.drop = 1.0});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 31);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/replay");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(kIssueAt - sched.now());
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().replays_suppressed, 1u);
  // The write executed exactly once: a re-applied retry would double this.
  EXPECT_EQ(cluster.server(0).stats().bytes_written, 512u);
  EXPECT_GE(plan.counters().dropped, 1u);
}

TEST(Reliability, CrashRestartWritesSurvive) {
  auto cfg = reliable_config(/*servers=*/2);
  cfg.client.rpc_timeout = 15 * kMillisecond;
  pfs::Cluster cluster(cfg);
  // No network faults: the crash alone must be survivable. Server 1 dies
  // at 1ms — with the first write likely queued or in flight — and comes
  // back at 21ms with caches cold. Retries carry the ops through.
  cluster.schedule_server_crash(/*index=*/1, /*at=*/kMillisecond,
                                /*restart_delay=*/20 * kMillisecond);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(4000, 41);  // striped across both servers

  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/crash");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(1).stats().crashes, 1u);
  EXPECT_FALSE(cluster.server(1).crashed());
}

TEST(Reliability, StaleReplyFromAbandonedAttemptIsIgnored) {
  // Regression for the reply-tag hazard: attempt 1's reply is delayed far
  // past the timeout, attempt 2 completes normally, and the stale reply
  // then arrives addressed to a tag nobody will ever wait on again. It
  // must not satisfy attempt 2, corrupt a later op, or hang the run.
  auto cfg = reliable_config(/*servers=*/1);
  cfg.client.rpc_timeout = 5 * kMillisecond;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, 500 * kMicrosecond, 2 * kMillisecond,
                  FaultSpec{.delay = 1.0, .delay_min = 40 * kMillisecond,
                            .delay_max = 40 * kMillisecond});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);

  std::uint64_t handle_a = 0, handle_b = 0, reopened = 0;
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, std::uint64_t& ha, std::uint64_t& hb, std::uint64_t& re,
         bool& done) -> Task<void> {
        MetaResult a = co_await c.create("/stale-a");  // reply delayed 40ms
        EXPECT_TRUE(a.status.is_ok()) << a.status.to_string();
        ha = a.handle;
        MetaResult b = co_await c.create("/stale-b");
        EXPECT_TRUE(b.status.is_ok()) << b.status.to_string();
        hb = b.handle;
        MetaResult back = co_await c.open("/stale-a");
        EXPECT_TRUE(back.status.is_ok()) << back.status.to_string();
        re = back.handle;
        done = true;
      }(*client, handle_a, handle_b, reopened, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->rpc_timeouts(), 1u);
  EXPECT_EQ(client->rpc_retries(), 1u);
  EXPECT_NE(handle_a, 0u);
  EXPECT_NE(handle_b, handle_a);  // the stale reply did not leak into op B
  EXPECT_EQ(reopened, handle_a);
  EXPECT_EQ(plan.counters().delayed, 1u);
}

TEST(Reliability, SameSeedSameChaosRun) {
  // Two runs of the same chaos workload from the same seed must produce
  // identical fault event sequences, identical injection counters, and
  // identical client-side retry totals.
  auto run = [](std::vector<net::FaultEvent>& events,
                net::FaultCounters& counters, std::uint64_t& retries,
                SimTime& end_time) {
    auto cfg = reliable_config(/*servers=*/2);
    cfg.seed = 1234;
    pfs::Cluster cluster(cfg);
    FaultPlan plan(mix_seed(cluster.config().seed, /*salt=*/0xFA));
    plan.set_default_spec(
        FaultSpec{.drop = 0.05, .duplicate = 0.02, .corrupt = 0.01});
    plan.set_log_events(true);
    cluster.set_fault_plan(&plan);
    auto client = cluster.make_client(0);
    const auto data = pattern_bytes(8000, 51);

    bool finished = false;
    cluster.scheduler().spawn(
        [](Client& c, const std::vector<std::uint8_t>& src,
           bool& done) -> Task<void> {
          MetaResult f = co_await c.create("/det");
          EXPECT_TRUE(f.status.is_ok());
          for (int round = 0; round < 4; ++round) {
            Status w = co_await c.write_contig(
                f.handle, round * 100, src.data(),
                static_cast<std::int64_t>(src.size()));
            EXPECT_TRUE(w.is_ok()) << w.to_string();
            std::vector<std::uint8_t> back(src.size());
            Status r = co_await c.read_contig(
                f.handle, round * 100, back.data(),
                static_cast<std::int64_t>(back.size()));
            EXPECT_TRUE(r.is_ok()) << r.to_string();
            EXPECT_EQ(back, src);
          }
          done = true;
        }(*client, data, finished));
    cluster.run();
    EXPECT_TRUE(finished);
    events = plan.events();
    counters = plan.counters();
    retries = client->rpc_retries();
    end_time = cluster.scheduler().now();
  };
  std::vector<net::FaultEvent> events_a, events_b;
  net::FaultCounters counters_a, counters_b;
  std::uint64_t retries_a = 0, retries_b = 0;
  SimTime end_a = 0, end_b = 0;
  run(events_a, counters_a, retries_a, end_a);
  run(events_b, counters_b, retries_b, end_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(counters_a, counters_b);
  EXPECT_EQ(retries_a, retries_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_GT(counters_a.total(), 0u);
}

// ---- Buffer-cache crash durability ------------------------------------------
//
// Write-back trades durability for speed: staged dirty blocks die with the
// process, while blocks already flushed (here: forced out by eviction
// pressure) survive. Write-through loses nothing. Either way the replay
// and CRC machinery must stay correct with the cache in the path.

net::ClusterConfig cache_crash_config(bool write_through) {
  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.strip_size = 4096;
  cfg.server.cache_block_bytes = 256;
  cfg.server.cache_capacity_bytes = 4 * 256;  // 4 blocks
  cfg.server.cache_write_through = write_through;
  cfg.server.cache_dirty_watermark = 1.0;  // only eviction forces flushes
  return cfg;
}

TEST(CacheDurability, WriteBackCrashLosesOnlyUnflushedBlocks) {
  pfs::Cluster cluster(cache_crash_config(/*write_through=*/false));
  auto client = cluster.make_client(0);
  const auto data_a = pattern_bytes(1024, 61);
  const auto data_b = pattern_bytes(1024, 62);
  // Crash after both writes ack, restart before the reads.
  cluster.schedule_server_crash(/*index=*/0, /*at=*/50 * kMillisecond,
                                /*restart_delay=*/10 * kMillisecond);

  std::vector<std::uint8_t> back_a(1024, 0xFF), back_b(1024, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& a, const std::vector<std::uint8_t>& b,
         std::vector<std::uint8_t>& back_a, std::vector<std::uint8_t>& back_b,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/wb-crash");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        // A fills the 4-block cache and stays staged...
        Status wa = co_await c.write_contig(f.handle, 0, a.data(), 1024);
        EXPECT_TRUE(wa.is_ok()) << wa.to_string();
        // ...until B's blocks evict A's, flushing A to the bstream. B is
        // the staged-and-never-flushed data the crash will eat.
        Status wb = co_await c.write_contig(f.handle, 1024, b.data(), 1024);
        EXPECT_TRUE(wb.is_ok()) << wb.to_string();
        co_await sched.delay(100 * kMillisecond - sched.now());
        Status ra = co_await c.read_contig(f.handle, 0, back_a.data(), 1024);
        EXPECT_TRUE(ra.is_ok()) << ra.to_string();
        Status rb = co_await c.read_contig(f.handle, 1024, back_b.data(),
                                           1024);
        EXPECT_TRUE(rb.is_ok()) << rb.to_string();
        done = true;
      }(cluster.scheduler(), *client, data_a, data_b, back_a, back_b,
        finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().crashes, 1u);
  // A was flushed by eviction pressure and survived; B's staged blocks
  // died with the process and read back as holes.
  EXPECT_EQ(back_a, data_a);
  EXPECT_EQ(back_b, std::vector<std::uint8_t>(1024, 0));
  EXPECT_EQ(cluster.server(0).stats().cache_dirty_lost_bytes, 1024u);
  EXPECT_GE(cluster.server(0).stats().cache_dirty_flushed_bytes, 1024u);
}

TEST(CacheDurability, WriteThroughCrashIsLossless) {
  pfs::Cluster cluster(cache_crash_config(/*write_through=*/true));
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(2048, 63);
  cluster.schedule_server_crash(/*index=*/0, /*at=*/50 * kMillisecond,
                                /*restart_delay=*/10 * kMillisecond);

  std::vector<std::uint8_t> back(2048, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/wt-crash");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(f.handle, 0, src.data(), 2048);
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        co_await sched.delay(100 * kMillisecond - sched.now());
        Status r = co_await c.read_contig(f.handle, 0, out.data(), 2048);
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, back, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().crashes, 1u);
  EXPECT_EQ(back, data);  // every acked byte survived the crash
  EXPECT_EQ(cluster.server(0).stats().cache_dirty_lost_bytes, 0u);
}

TEST(CacheDurability, FlushCachesWhileServerCrashedIsSafeNoOp) {
  // Host-side flush_caches() invoked mid-outage, while the server process
  // is down: the crash already destroyed the staged dirty blocks, so the
  // flush must be a no-op — it cannot wedge the run, resurrect lost
  // bytes, or double-flush anything after the restart.
  auto cfg = cache_crash_config(/*write_through=*/false);
  cfg.server.cache_capacity_bytes = 16 * 256;  // no eviction pressure
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(1024, 71);
  cluster.schedule_server_crash(/*index=*/0, /*at=*/50 * kMillisecond,
                                /*restart_delay=*/30 * kMillisecond);
  cluster.scheduler().schedule_call(60 * kMillisecond,
                                    [&cluster] { cluster.flush_caches(); });

  std::vector<std::uint8_t> back(1024, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/flush-crashed");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(f.handle, 0, src.data(), 1024);
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        co_await sched.delay(100 * kMillisecond - sched.now());
        Status r = co_await c.read_contig(f.handle, 0, out.data(), 1024);
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, back, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().crashes, 1u);
  // The staged bytes died with the process; the mid-crash flush neither
  // saved them nor flushed anything.
  EXPECT_EQ(back, std::vector<std::uint8_t>(1024, 0));
  EXPECT_EQ(cluster.server(0).stats().cache_dirty_lost_bytes, 1024u);
  EXPECT_EQ(cluster.server(0).stats().cache_dirty_flushed_bytes, 0u);
}

TEST(CacheDurability, FlushCachesInsideOutageWindowStillFlushes) {
  // A FaultPlan outage only severs the network; flush_caches() is a
  // host-side settle and must work normally inside the window. Dirty
  // bytes flushed during the outage then survive a later crash, and the
  // restart does not flush them a second time.
  auto cfg = cache_crash_config(/*write_through=*/false);
  cfg.server.cache_capacity_bytes = 16 * 256;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, /*from=*/40 * kMillisecond,
                  /*until=*/80 * kMillisecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(1024, 72);
  cluster.scheduler().schedule_call(60 * kMillisecond,
                                    [&cluster] { cluster.flush_caches(); });
  cluster.schedule_server_crash(/*index=*/0, /*at=*/90 * kMillisecond,
                                /*restart_delay=*/30 * kMillisecond);

  std::vector<std::uint8_t> back(1024, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/flush-outage");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(f.handle, 0, src.data(), 1024);
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        co_await sched.delay(150 * kMillisecond - sched.now());
        Status r = co_await c.read_contig(f.handle, 0, out.data(), 1024);
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, back, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().crashes, 1u);
  // Flushed once, inside the outage; the crash then had nothing to lose
  // and the restart flushed nothing a second time. (Host-side flushes
  // land in the cache's own stats, not the per-request server counters.)
  EXPECT_EQ(back, data);
  ASSERT_NE(cluster.server(0).block_cache(), nullptr);
  EXPECT_EQ(cluster.server(0).block_cache()->stats().dirty_flushed_bytes,
            1024u);
  EXPECT_EQ(cluster.server(0).stats().cache_dirty_lost_bytes, 0u);
}

TEST(CacheDurability, ReplaySuppressionStillHoldsWithCacheOn) {
  // LostAckIsReplayedNotReapplied with the buffer cache in the write path:
  // the replay window must still re-ack instead of re-applying, and the
  // bytes must round-trip through the cache.
  auto cfg = reliable_config(/*servers=*/1);
  cfg.client.rpc_timeout = 10 * kMillisecond;
  cfg.server.cache_block_bytes = 256;
  cfg.server.cache_capacity_bytes = 64 * 256;
  pfs::Cluster cluster(cfg);
  constexpr SimTime kIssueAt = 5 * kMillisecond;
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, kIssueAt + 800 * kMicrosecond,
                  kIssueAt + 8 * kMillisecond, FaultSpec{.drop = 1.0});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 64);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/replay-cache");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(kIssueAt - sched.now());
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().replays_suppressed, 1u);
  EXPECT_EQ(cluster.server(0).stats().bytes_written, 512u);
  EXPECT_GT(cluster.server(0).stats().cache_misses, 0u);
}

// ---- Tile-reader acceptance -------------------------------------------------
//
// The paper's display-wall workload under chaos: 16 servers, a 2x2 tile
// grid, 5% drop + 2% duplication + 1% corruption plus one mid-run server
// crash/restart. Every client's tile, read through every applicable I/O
// method, must come back byte-identical to a fault-free run.

struct TileRun {
  /// tiles[method][rank] = the tile bytes that rank read back.
  std::vector<std::vector<std::vector<std::uint8_t>>> tiles;
  bool all_ok = true;
};

TileRun run_tile_workload(const workloads::TileConfig& tc,
                          const std::vector<std::uint8_t>& frame,
                          bool chaos) {
  net::ClusterConfig cfg;
  cfg.num_servers = 16;
  cfg.num_clients = tc.num_clients();
  cfg.strip_size = 256;
  cfg.seed = 42;
  cfg.client.rpc_timeout = 200 * kMillisecond;
  cfg.client.rpc_max_attempts = 6;
  cfg.client.rpc_backoff_base = 10 * kMillisecond;
  pfs::Cluster cluster(cfg);

  FaultPlan plan(mix_seed(cfg.seed, /*salt=*/0x71E));
  if (chaos) {
    plan.set_default_spec(
        FaultSpec{.drop = 0.05, .duplicate = 0.02, .corrupt = 0.01});
    plan.set_scope_max_node(cfg.num_servers);
    cluster.set_fault_plan(&plan);
  }

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::unique_ptr<io::Context>> ctxs;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < tc.num_clients(); ++r) {
    clients.push_back(cluster.make_client(r));
    ctxs.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*ctxs.back()));
  }

  TileRun run;
  // Rank 0 stores the frame; everyone opens the file.
  bool wrote = false;
  cluster.scheduler().spawn(
      [](std::vector<std::unique_ptr<mpiio::File>>& files,
         const std::vector<std::uint8_t>& frame, bool& done) -> Task<void> {
        EXPECT_TRUE((co_await files[0]->open("/frame", true)).is_ok());
        for (std::size_t r = 1; r < files.size(); ++r) {
          EXPECT_TRUE((co_await files[r]->open("/frame", true)).is_ok());
        }
        auto whole = types::contiguous(
            static_cast<std::int64_t>(frame.size()), types::byte_t());
        files[0]->set_view(0, types::byte_t(), types::byte_t());
        Status w = co_await files[0]->write_at(0, frame.data(), 1, whole,
                                               mpiio::Method::kPosix);
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        done = w.is_ok();
      }(files, frame, wrote));
  cluster.run();
  EXPECT_TRUE(wrote);
  run.all_ok = wrote;

  if (chaos) {
    // Server 3 dies during the first read round and comes back mid-run.
    cluster.schedule_server_crash(
        /*index=*/3, cluster.scheduler().now() + 2 * kMillisecond,
        /*restart_delay=*/40 * kMillisecond);
  }

  const mpiio::Method methods[] = {
      mpiio::Method::kPosix, mpiio::Method::kDataSieving,
      mpiio::Method::kList, mpiio::Method::kDatatype};
  for (const mpiio::Method method : methods) {
    std::vector<std::vector<std::uint8_t>> round(
        static_cast<std::size_t>(tc.num_clients()));
    for (int r = 0; r < tc.num_clients(); ++r) {
      round[static_cast<std::size_t>(r)].assign(
          static_cast<std::size_t>(tc.tile_bytes()), 0);
      cluster.scheduler().spawn(
          [](mpiio::File& f, const workloads::TileConfig& tc, int rank,
             mpiio::Method m, std::vector<std::uint8_t>& out,
             bool& all_ok) -> Task<void> {
            f.set_view(0, types::byte_t(), tc.tile_filetype(rank));
            Status st = co_await f.read_at(0, out.data(), 1, tc.memtype(), m);
            EXPECT_TRUE(st.is_ok())
                << "rank " << rank << " via " << mpiio::method_name(m) << ": "
                << st.to_string();
            if (!st.is_ok()) all_ok = false;
          }(*files[static_cast<std::size_t>(r)], tc, r, method,
            round[static_cast<std::size_t>(r)], run.all_ok));
    }
    cluster.run();  // all four tiles of this round read concurrently
    run.tiles.push_back(std::move(round));
  }
  if (chaos) {
    EXPECT_EQ(cluster.server(3).stats().crashes, 1u);
    EXPECT_FALSE(cluster.server(3).crashed());
  }
  return run;
}

TEST(TileChaos, AllMethodsByteIdenticalToFaultFreeRun) {
  workloads::TileConfig tc;
  tc.tiles_x = 2;
  tc.tiles_y = 2;
  tc.tile_width = 48;
  tc.tile_height = 16;
  tc.overlap_x = 8;
  tc.overlap_y = 4;
  const auto frame = pattern_bytes(
      static_cast<std::size_t>(tc.frame_bytes()), 0xF00D);

  const TileRun clean = run_tile_workload(tc, frame, /*chaos=*/false);
  const TileRun chaos = run_tile_workload(tc, frame, /*chaos=*/true);
  ASSERT_TRUE(clean.all_ok);
  ASSERT_TRUE(chaos.all_ok);
  ASSERT_EQ(clean.tiles.size(), chaos.tiles.size());
  for (std::size_t m = 0; m < clean.tiles.size(); ++m) {
    for (int r = 0; r < tc.num_clients(); ++r) {
      EXPECT_EQ(clean.tiles[m][static_cast<std::size_t>(r)],
                chaos.tiles[m][static_cast<std::size_t>(r)])
          << "method " << m << " rank " << r;
    }
  }
  // Spot-check against the frame itself: row 0 of rank 0's tile.
  const std::size_t row_bytes =
      static_cast<std::size_t>(tc.tile_width) * tc.bytes_per_pixel;
  EXPECT_EQ(std::memcmp(clean.tiles[0][0].data(), frame.data(), row_bytes), 0);
}

// ---- Write-behind batch reliability ----------------------------------------
//
// A kBatchWrite envelope is unsequenced; each coalesced sub-op carries its
// own (client, op_seq) replay identity. These tests pin the per-sub-op
// exactly-once contract under duplication and crash, and the AIMD
// regression that one shed/timeout reply halves the window once regardless
// of how many sub-ops the envelope carried.

TEST(WriteBehindFaults, DuplicatedEnvelopeAppliesEachSubOpOnce) {
  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.client.write_behind_bytes = 1024 * 1024;  // nothing auto-flushes
  cfg.client.rpc_timeout = 200 * kMillisecond;
  cfg.client.rpc_max_attempts = 4;
  pfs::Cluster cluster(cfg);

  // Duplicate EVERY client<->server message: the flush envelope arrives
  // twice, so the second copy must re-ack all sub-ops via the replay
  // window without re-applying a byte.
  FaultPlan plan(23);
  plan.set_default_spec(FaultSpec{.duplicate = 1.0});
  plan.set_scope_max_node(cfg.num_servers);
  cluster.set_fault_plan(&plan);

  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(256, 77);
  constexpr int kRuns = 6;

  std::vector<std::uint8_t> back(kRuns * 1024, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         std::vector<std::uint8_t>& out, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/wb-dup");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        // Disjoint runs with gaps: no coalescing, 6 sub-ops in one batch.
        for (int i = 0; i < kRuns; ++i) {
          Status w = co_await c.write_contig(f.handle, i * 1024, src.data(),
                                             256);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
        }
        Status flushed = co_await c.flush_write_behind();
        EXPECT_TRUE(flushed.is_ok()) << flushed.to_string();
        Status r = co_await c.read_contig(
            f.handle, 0, out.data(), static_cast<std::int64_t>(out.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(*client, data, back, finished));
  cluster.run();
  ASSERT_TRUE(finished);

  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(std::memcmp(back.data() + i * 1024, data.data(), 256), 0)
        << "run " << i;
  }
  const pfs::ServerStats& st = cluster.server(0).stats();
  // Envelope handled twice; every sub-op applied exactly once, the
  // duplicate's copies all replay-suppressed.
  EXPECT_EQ(st.batch_requests, 2u);
  EXPECT_EQ(st.batch_sub_ops, 2u * kRuns);
  EXPECT_EQ(st.batch_subs_replayed, static_cast<std::uint64_t>(kRuns));
  EXPECT_EQ(st.bytes_written, static_cast<std::uint64_t>(kRuns) * 256u);
  EXPECT_EQ(client->wb_batches(), 1u);
}

TEST(WriteBehindFaults, BatchFlushSurvivesMidFlushCrash) {
  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.client.write_behind_bytes = 1024 * 1024;
  cfg.client.rpc_timeout = 50 * kMillisecond;
  cfg.client.rpc_max_attempts = 6;
  cfg.client.rpc_backoff_base = 10 * kMillisecond;
  pfs::Cluster cluster(cfg);
  // The server dies just as the flush goes out and loses its replay
  // window; the retried envelope re-applies the same physical bytes, so
  // exactly-once degrades safely to idempotent-replay.
  cluster.schedule_server_crash(/*index=*/0, /*at=*/10 * kMillisecond,
                                /*restart_delay=*/30 * kMillisecond);

  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(2048, 78);

  std::vector<std::uint8_t> back(2048, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/wb-crash-flush");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        // Flush launched just before the crash fires: the first attempt
        // dies with the server, retries carry it through the restart.
        co_await sched.delay(9 * kMillisecond - sched.now());
        Status flushed = co_await c.flush_write_behind();
        EXPECT_TRUE(flushed.is_ok()) << flushed.to_string();
        Status r = co_await c.read_contig(
            f.handle, 0, out.data(), static_cast<std::int64_t>(out.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, back, finished));
  cluster.run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(back, data);
  EXPECT_EQ(cluster.server(0).stats().crashes, 1u);
  EXPECT_GE(client->rpc_retries(), 1u);
}

TEST(WriteBehindFaults, BatchTimeoutHalvesWindowOncePerReplyNotPerSubOp) {
  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 1;
  cfg.client.write_behind_bytes = 1024 * 1024;
  cfg.client.flow_window = 8;
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 2;
  cfg.client.rpc_backoff_base = 5 * kMillisecond;
  cfg.client.rpc_backoff_jitter = 0;
  pfs::Cluster cluster(cfg);
  // Down for the whole flush: both attempts time out. With 10 sub-ops in
  // the envelope, a per-sub-op decrease would slam the window to the floor
  // (1); the correct one-decrease-per-reply leaves 8 -> 4 -> 2.
  cluster.schedule_server_crash(/*index=*/0, /*at=*/10 * kMillisecond,
                                /*restart_delay=*/5000 * kMillisecond);

  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(128, 79);

  Status flush_status;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, Status& flush_out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/wb-window");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        for (int i = 0; i < 10; ++i) {  // gaps: 10 distinct sub-ops
          Status w = co_await c.write_contig(f.handle, i * 512, src.data(),
                                             128);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
        }
        co_await sched.delay(12 * kMillisecond - sched.now());
        flush_out = co_await c.flush_write_behind();
        done = true;
      }(cluster.scheduler(), *client, data, flush_status, finished));
  cluster.run();
  ASSERT_TRUE(finished);

  // Retries exhausted against a dead server: typed reliability error.
  EXPECT_FALSE(flush_status.is_ok());
  EXPECT_TRUE(flush_status.code() == StatusCode::kUnavailable ||
              flush_status.code() == StatusCode::kTimedOut)
      << flush_status.to_string();
  EXPECT_EQ(client->wb_batches(), 1u);
  // Two timed-out attempts, two halvings — NOT ten.
  EXPECT_EQ(client->lane_health(0).window, 2);
}

}  // namespace
}  // namespace dtio
