// Tests for the MPI-IO facade: open/create semantics, file views with
// non-byte etypes, view offsets, file size queries, and misuse guards.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "collective/comm.h"
#include "mpiio/file.h"
#include "mpiio/hints.h"
#include "pfs/cluster.h"

namespace dtio {
namespace {

using mpiio::Method;
using sim::Task;

struct World {
  explicit World(int clients = 1) {
    net::ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.num_clients = clients;
    cfg.strip_size = 1024;
    cluster = std::make_unique<pfs::Cluster>(cfg);
    for (int r = 0; r < clients; ++r) {
      clients_.push_back(cluster->make_client(r));
      contexts_.push_back(std::make_unique<io::Context>(io::Context{
          cluster->scheduler(), *clients_.back(), cluster->config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts_.back()));
    }
  }
  std::unique_ptr<pfs::Cluster> cluster;
  std::vector<std::unique_ptr<pfs::Client>> clients_;
  std::vector<std::unique_ptr<io::Context>> contexts_;
  std::vector<std::unique_ptr<mpiio::File>> files;
};

TEST(MpiioFile, OpenMissingFileFails) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    out = co_await f.open("/missing", /*create=*/false);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(w.files[0]->is_open());
}

TEST(MpiioFile, CreateThenReopenKeepsHandle) {
  World w;
  std::uint64_t h1 = 0, h2 = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, std::uint64_t& a, std::uint64_t& b) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/file", true)).is_ok());
        a = f.handle();
        EXPECT_TRUE((co_await f.open("/file", true)).is_ok());  // create-or-open
        b = f.handle();
      }(*w.files[0], h1, h2));
  w.cluster->run();
  EXPECT_NE(h1, 0u);
  EXPECT_EQ(h1, h2);
}

TEST(MpiioFile, EtypeScalesViewOffsets) {
  // etype = int32: read_at(offset) counts 4-byte elements, not bytes.
  World w;
  std::vector<std::int32_t> values(64);
  std::iota(values.begin(), values.end(), 1000);
  std::int32_t got = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::int32_t>& src,
         std::int32_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/etype", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(
            static_cast<std::int64_t>(src.size() * 4), types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, src.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        // Now view the file as int32s and read element 17.
        f.set_view(0, types::int32_t_(), types::int32_t_());
        EXPECT_TRUE((co_await f.read_at(17, &out, 1, types::int32_t_(),
                                        Method::kPosix))
                        .is_ok());
      }(*w.files[0], values, got));
  w.cluster->run();
  EXPECT_EQ(got, 1017);
}

TEST(MpiioFile, DisplacementShiftsTheView) {
  World w;
  std::vector<std::uint8_t> raw(256);
  std::iota(raw.begin(), raw.end(), 0);
  std::uint8_t got = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& src,
         std::uint8_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/disp", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(256, types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, src.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        f.set_view(100, types::byte_t(), types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, &out, 1, types::byte_t(),
                                        Method::kList))
                        .is_ok());
      }(*w.files[0], raw, got));
  w.cluster->run();
  EXPECT_EQ(got, 100);
}

TEST(MpiioFile, SizeReflectsHighestWrite) {
  World w;
  std::int64_t size = -1;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, std::int64_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/size", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        std::vector<std::uint8_t> data(100, 1);
        auto bytes = types::contiguous(100, types::byte_t());
        EXPECT_TRUE((co_await f.write_at(5000, data.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        out = co_await f.size();
      }(*w.files[0], size));
  w.cluster->run();
  EXPECT_EQ(size, 5100);
}

TEST(MpiioFile, TwoPhaseRejectedOnIndependentPath) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    EXPECT_TRUE((co_await f.open("/tp", true)).is_ok());
    std::uint8_t byte = 0;
    out = co_await f.read_at(0, &byte, 1, types::byte_t(),
                             Method::kTwoPhase);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MpiioFile, ZeroCountIsANoOp) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    EXPECT_TRUE((co_await f.open("/zero", true)).is_ok());
    out = co_await f.write_at(0, nullptr, 0, types::int32_t_(),
                              Method::kDatatype);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(w.clients_[0]->stats().requests_sent, 0u);
}

TEST(MpiioFile, CollectiveOnViewWithDifferentMethodsAgrees) {
  // Two ranks write halves with different methods under write_at_all's
  // fallback; the bytes must land identically to a contiguous oracle.
  World w(2);
  coll::Communicator comm(w.cluster->scheduler(), w.cluster->network(),
                          w.cluster->config(), 2);
  std::vector<std::uint8_t> data(2048);
  std::iota(data.begin(), data.end(), 0);
  int done = 0;
  for (int r = 0; r < 2; ++r) {
    w.cluster->scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c, int rank,
           const std::vector<std::uint8_t>& src, int& finished) -> Task<void> {
          EXPECT_TRUE((co_await f.open("/mix", rank == 0)).is_ok());
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(1024, types::byte_t());
          const Method m = rank == 0 ? Method::kList : Method::kDatatype;
          EXPECT_TRUE((co_await f.write_at_all(c, rank, rank * 1024,
                                               src.data() + rank * 1024, 1,
                                               memtype, m))
                          .is_ok());
          ++finished;
        }(*w.files[r], comm, r, data, done));
  }
  w.cluster->run();
  EXPECT_EQ(done, 2);

  bool ok = false;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& expect,
         bool& verified) -> Task<void> {
        std::vector<std::uint8_t> back(2048);
        auto memtype = types::contiguous(2048, types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, back.data(), 1, memtype,
                                        Method::kDataSieving))
                        .is_ok());
        verified = back == expect;
      }(*w.files[0], data, ok));
  w.cluster->run();
  EXPECT_TRUE(ok);
}

TEST(Hints, ParsesRomioVocabulary) {
  const std::pair<std::string_view, std::string_view> pairs[] = {
      {"cb_buffer_size", "8M"},
      {"ind_rd_buffer_size", "512k"},
      {"striping_unit", "131072"},
      {"romio_cb_write", "disable"},
      {"romio_ds_read", "enable"},
      {"pvfs_listio_max_regions", "128"},
      {"pvfs_dtype_cache", "enable"},
      {"some_unknown_key", "whatever"},  // ignored per MPI semantics
  };
  auto parsed = mpiio::Hints::parse(pairs);
  ASSERT_TRUE(parsed.is_ok());
  const mpiio::Hints& h = parsed.value();
  EXPECT_EQ(h.cb_buffer_size, 8 * kMiB);
  EXPECT_EQ(h.ind_rd_buffer_size, 512 * kKiB);
  EXPECT_EQ(h.striping_unit, 131072u);
  EXPECT_EQ(h.cb_write, mpiio::Toggle::kDisable);
  EXPECT_EQ(h.ds_read, mpiio::Toggle::kEnable);
  EXPECT_EQ(h.listio_max_regions, 128u);
  EXPECT_TRUE(h.dtype_cache);
}

TEST(Hints, BadValuesAreErrors) {
  const std::pair<std::string_view, std::string_view> bad_size[] = {
      {"cb_buffer_size", "lots"}};
  EXPECT_FALSE(mpiio::Hints::parse(bad_size).is_ok());
  const std::pair<std::string_view, std::string_view> bad_toggle[] = {
      {"romio_cb_read", "yes"}};
  EXPECT_FALSE(mpiio::Hints::parse(bad_toggle).is_ok());
  const std::pair<std::string_view, std::string_view> zero[] = {
      {"striping_unit", "0"}};
  EXPECT_FALSE(mpiio::Hints::parse(zero).is_ok());
}

TEST(Hints, ApplyFoldsIntoClusterConfig) {
  const std::pair<std::string_view, std::string_view> pairs[] = {
      {"cb_buffer_size", "1M"},
      {"striping_unit", "32k"},
      {"pvfs_listio_max_regions", "32"},
      {"pvfs_dtype_cache", "enable"},
  };
  auto h = mpiio::Hints::parse(pairs);
  ASSERT_TRUE(h.is_ok());
  net::ClusterConfig cfg;
  h.value().apply(cfg);
  EXPECT_EQ(cfg.cb_buffer_size, kMiB);
  EXPECT_EQ(cfg.strip_size, 32 * kKiB);
  EXPECT_EQ(cfg.list_io_max_regions, 32u);
  EXPECT_TRUE(cfg.server.dataloop_cache);
}

TEST(Hints, MethodSelectionHonoursToggles) {
  mpiio::Hints h;
  EXPECT_EQ(h.choose_collective(false), Method::kTwoPhase);
  EXPECT_EQ(h.choose_independent(false), Method::kDatatype);
  h.cb_write = mpiio::Toggle::kDisable;
  EXPECT_EQ(h.choose_collective(true), Method::kDatatype);
  h.ds_read = mpiio::Toggle::kEnable;
  EXPECT_EQ(h.choose_independent(false), Method::kDataSieving);
  // Sieving writes never selected on lock-free PVFS.
  h.ds_write = mpiio::Toggle::kEnable;
  EXPECT_EQ(h.choose_independent(true), Method::kDatatype);
}

}  // namespace
}  // namespace dtio
