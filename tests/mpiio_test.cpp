// Tests for the MPI-IO facade: open/create semantics, file views with
// non-byte etypes, view offsets, file size queries, and misuse guards.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "collective/comm.h"
#include "mpiio/file.h"
#include "mpiio/hints.h"
#include "pfs/cluster.h"

namespace dtio {
namespace {

using mpiio::Method;
using sim::Task;

struct World {
  explicit World(int clients = 1) {
    net::ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.num_clients = clients;
    cfg.strip_size = 1024;
    cluster = std::make_unique<pfs::Cluster>(cfg);
    for (int r = 0; r < clients; ++r) {
      clients_.push_back(cluster->make_client(r));
      contexts_.push_back(std::make_unique<io::Context>(io::Context{
          cluster->scheduler(), *clients_.back(), cluster->config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts_.back()));
    }
  }
  std::unique_ptr<pfs::Cluster> cluster;
  std::vector<std::unique_ptr<pfs::Client>> clients_;
  std::vector<std::unique_ptr<io::Context>> contexts_;
  std::vector<std::unique_ptr<mpiio::File>> files;
};

TEST(MpiioFile, OpenMissingFileFails) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    out = co_await f.open("/missing", /*create=*/false);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(w.files[0]->is_open());
}

TEST(MpiioFile, CreateThenReopenKeepsHandle) {
  World w;
  std::uint64_t h1 = 0, h2 = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, std::uint64_t& a, std::uint64_t& b) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/file", true)).is_ok());
        a = f.handle();
        EXPECT_TRUE((co_await f.open("/file", true)).is_ok());  // create-or-open
        b = f.handle();
      }(*w.files[0], h1, h2));
  w.cluster->run();
  EXPECT_NE(h1, 0u);
  EXPECT_EQ(h1, h2);
}

TEST(MpiioFile, EtypeScalesViewOffsets) {
  // etype = int32: read_at(offset) counts 4-byte elements, not bytes.
  World w;
  std::vector<std::int32_t> values(64);
  std::iota(values.begin(), values.end(), 1000);
  std::int32_t got = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::int32_t>& src,
         std::int32_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/etype", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(
            static_cast<std::int64_t>(src.size() * 4), types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, src.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        // Now view the file as int32s and read element 17.
        f.set_view(0, types::int32_t_(), types::int32_t_());
        EXPECT_TRUE((co_await f.read_at(17, &out, 1, types::int32_t_(),
                                        Method::kPosix))
                        .is_ok());
      }(*w.files[0], values, got));
  w.cluster->run();
  EXPECT_EQ(got, 1017);
}

TEST(MpiioFile, DisplacementShiftsTheView) {
  World w;
  std::vector<std::uint8_t> raw(256);
  std::iota(raw.begin(), raw.end(), 0);
  std::uint8_t got = 0;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& src,
         std::uint8_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/disp", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(256, types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, src.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        f.set_view(100, types::byte_t(), types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, &out, 1, types::byte_t(),
                                        Method::kList))
                        .is_ok());
      }(*w.files[0], raw, got));
  w.cluster->run();
  EXPECT_EQ(got, 100);
}

TEST(MpiioFile, SizeReflectsHighestWrite) {
  World w;
  std::int64_t size = -1;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, std::int64_t& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/size", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        std::vector<std::uint8_t> data(100, 1);
        auto bytes = types::contiguous(100, types::byte_t());
        EXPECT_TRUE((co_await f.write_at(5000, data.data(), 1, bytes,
                                         Method::kDatatype))
                        .is_ok());
        out = co_await f.size();
      }(*w.files[0], size));
  w.cluster->run();
  EXPECT_EQ(size, 5100);
}

TEST(MpiioFile, TwoPhaseRejectedOnIndependentPath) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    EXPECT_TRUE((co_await f.open("/tp", true)).is_ok());
    std::uint8_t byte = 0;
    out = co_await f.read_at(0, &byte, 1, types::byte_t(),
                             Method::kTwoPhase);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MpiioFile, ZeroCountIsANoOp) {
  World w;
  Status status;
  w.cluster->scheduler().spawn([](mpiio::File& f, Status& out) -> Task<void> {
    EXPECT_TRUE((co_await f.open("/zero", true)).is_ok());
    out = co_await f.write_at(0, nullptr, 0, types::int32_t_(),
                              Method::kDatatype);
  }(*w.files[0], status));
  w.cluster->run();
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(w.clients_[0]->stats().requests_sent, 0u);
}

TEST(MpiioFile, CollectiveOnViewWithDifferentMethodsAgrees) {
  // Two ranks write halves with different methods under write_at_all's
  // fallback; the bytes must land identically to a contiguous oracle.
  World w(2);
  coll::Communicator comm(w.cluster->scheduler(), w.cluster->network(),
                          w.cluster->config(), 2);
  std::vector<std::uint8_t> data(2048);
  std::iota(data.begin(), data.end(), 0);
  int done = 0;
  for (int r = 0; r < 2; ++r) {
    w.cluster->scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c, int rank,
           const std::vector<std::uint8_t>& src, int& finished) -> Task<void> {
          EXPECT_TRUE((co_await f.open("/mix", rank == 0)).is_ok());
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(1024, types::byte_t());
          const Method m = rank == 0 ? Method::kList : Method::kDatatype;
          EXPECT_TRUE((co_await f.write_at_all(c, rank, rank * 1024,
                                               src.data() + rank * 1024, 1,
                                               memtype, m))
                          .is_ok());
          ++finished;
        }(*w.files[r], comm, r, data, done));
  }
  w.cluster->run();
  EXPECT_EQ(done, 2);

  bool ok = false;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& expect,
         bool& verified) -> Task<void> {
        std::vector<std::uint8_t> back(2048);
        auto memtype = types::contiguous(2048, types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, back.data(), 1, memtype,
                                        Method::kDataSieving))
                        .is_ok());
        verified = back == expect;
      }(*w.files[0], data, ok));
  w.cluster->run();
  EXPECT_TRUE(ok);
}

// ---- Split-phase (nonblocking) I/O ------------------------------------------

TEST(SplitPhase, IwriteTestWaitRetiresAndDataLands) {
  World w;
  std::vector<std::uint8_t> src(4096);
  std::iota(src.begin(), src.end(), 0);
  std::vector<std::uint8_t> back(4096, 0xFF);
  bool immediate_done = true;
  bool finished = false;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& data,
         std::vector<std::uint8_t>& out, bool& early,
         bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/iw", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(4096, types::byte_t());
        mpiio::IoRequest req =
            f.iwrite_at(0, data.data(), 1, bytes, Method::kDatatype);
        EXPECT_TRUE(req.valid());
        // The background op has not had a single event yet: test() must
        // report in-flight without retiring the handle.
        early = mpiio::File::test(req);
        EXPECT_TRUE(req.valid());
        const Status st = co_await f.wait(req);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        EXPECT_FALSE(req.valid());  // retired
        // Waiting a retired handle is MPI_REQUEST_NULL: trivially ok.
        EXPECT_TRUE((co_await f.wait(req)).is_ok());
        mpiio::IoRequest rd =
            f.iread_at(0, out.data(), 1, bytes, Method::kList);
        EXPECT_TRUE((co_await f.wait(rd)).is_ok());
        done = true;
      }(*w.files[0], src, back, immediate_done, finished));
  w.cluster->run();
  ASSERT_TRUE(finished);
  EXPECT_FALSE(immediate_done);
  EXPECT_EQ(back, src);
}

TEST(SplitPhase, ComputeOverlapsIo) {
  // iwrite + simulated compute + wait must finish sooner than the same
  // write issued blocking before the same compute: the point of the
  // split-phase API is that the RPC's network/server time and the compute
  // delay share the same wall-clock (sim-clock) window.
  constexpr SimTime kCompute = 5 * kMillisecond;
  auto run = [](bool split) {
    World w;
    std::vector<std::uint8_t> src(256 * 1024, 7);
    SimTime elapsed = -1;
    w.cluster->scheduler().spawn(
        [](mpiio::File& f, sim::Scheduler& sched,
           const std::vector<std::uint8_t>& data, bool nonblocking,
           SimTime& out) -> Task<void> {
          EXPECT_TRUE((co_await f.open("/ov", true)).is_ok());
          f.set_view(0, types::byte_t(), types::byte_t());
          auto bytes = types::contiguous(
              static_cast<std::int64_t>(data.size()), types::byte_t());
          const SimTime start = sched.now();
          if (nonblocking) {
            mpiio::IoRequest req =
                f.iwrite_at(0, data.data(), 1, bytes, Method::kDatatype);
            co_await sched.delay(kCompute);
            EXPECT_TRUE((co_await f.wait(req)).is_ok());
          } else {
            EXPECT_TRUE(
                (co_await f.write_at(0, data.data(), 1, bytes,
                                     Method::kDatatype))
                    .is_ok());
            co_await sched.delay(kCompute);
          }
          out = sched.now() - start;
        }(*w.files[0], w.cluster->scheduler(), src, split, elapsed));
    w.cluster->run();
    return elapsed;
  };
  const SimTime overlapped = run(true);
  const SimTime sequential = run(false);
  ASSERT_GT(overlapped, 0);
  ASSERT_GT(sequential, 0);
  EXPECT_LT(overlapped, sequential);
  // The overlap window is at least the compute delay, so the saving must
  // be a real chunk of it, not scheduling noise.
  EXPECT_GT(sequential - overlapped, kCompute / 2);
}

TEST(SplitPhase, ErrorsSurfaceThroughWaitAndWaitAll) {
  World w;
  std::vector<std::uint8_t> src(1024, 3);
  Status bad_status;
  Status all_status;
  bool finished = false;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, const std::vector<std::uint8_t>& data, Status& bad,
         Status& all, bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/ie", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto bytes = types::contiguous(1024, types::byte_t());
        // Two-phase is collective-only: the invalid_argument produced by
        // the background op must come out of wait, not be swallowed.
        mpiio::IoRequest bad_req =
            f.iwrite_at(0, data.data(), 1, bytes, Method::kTwoPhase);
        bad = co_await f.wait(bad_req);
        // wait_all: good + bad + good — first error wins, all retired.
        std::vector<mpiio::IoRequest> reqs;
        reqs.push_back(f.iwrite_at(0, data.data(), 1, bytes, Method::kList));
        reqs.push_back(
            f.iwrite_at(4096, data.data(), 1, bytes, Method::kTwoPhase));
        reqs.push_back(
            f.iwrite_at(8192, data.data(), 1, bytes, Method::kPosix));
        all = co_await f.wait_all(reqs);
        for (const mpiio::IoRequest& r : reqs) EXPECT_FALSE(r.valid());
        done = true;
      }(*w.files[0], src, bad_status, all_status, finished));
  w.cluster->run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(bad_status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(all_status.code(), StatusCode::kInvalidArgument);
}

TEST(SplitPhase, OutOfOrderWaitAndPolledTest) {
  World w;
  std::vector<std::uint8_t> a(8192, 0xA5), b(512, 0x5A);
  std::vector<std::uint8_t> back(8192 + 512, 0);
  bool finished = false;
  w.cluster->scheduler().spawn(
      [](mpiio::File& f, sim::Scheduler& sched,
         const std::vector<std::uint8_t>& big,
         const std::vector<std::uint8_t>& small,
         std::vector<std::uint8_t>& out, bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/ooo", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto big_t = types::contiguous(8192, types::byte_t());
        auto small_t = types::contiguous(512, types::byte_t());
        // Issue big-then-small; retire small-then-big. The small write
        // finishes first; waiting it must not disturb the big one.
        mpiio::IoRequest r_big =
            f.iwrite_at(0, big.data(), 1, big_t, Method::kDatatype);
        mpiio::IoRequest r_small =
            f.iwrite_at(8192, small.data(), 1, small_t, Method::kDatatype);
        EXPECT_TRUE((co_await f.wait(r_small)).is_ok());
        // Poll the big one to completion through test().
        Status st;
        while (!mpiio::File::test(r_big, &st)) {
          co_await sched.delay(100 * kMicrosecond);
        }
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        auto whole = types::contiguous(8192 + 512, types::byte_t());
        EXPECT_TRUE(
            (co_await f.read_at(0, out.data(), 1, whole, Method::kPosix))
                .is_ok());
        done = true;
      }(*w.files[0], w.cluster->scheduler(), a, b, back, finished));
  w.cluster->run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(std::memcmp(back.data(), a.data(), a.size()), 0);
  EXPECT_EQ(std::memcmp(back.data() + a.size(), b.data(), b.size()), 0);
}

TEST(SplitPhase, CollectivePostAllFlushesOnceAtBarrier) {
  // Write-behind on, watermark high: each rank's write_at_all stages
  // locally and the collective's closing flush ships ONE batch envelope
  // per involved server per rank.
  net::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 2;
  cfg.strip_size = 1024;
  cfg.client.write_behind_bytes = 1024 * 1024;
  pfs::Cluster cluster(cfg);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < 2; ++r) {
    clients.push_back(cluster.make_client(r));
    contexts.push_back(std::make_unique<io::Context>(io::Context{
        cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), 2);
  std::vector<std::uint8_t> data(16384);
  std::iota(data.begin(), data.end(), 0);
  int done = 0;
  for (int r = 0; r < 2; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c, int rank,
           const std::vector<std::uint8_t>& src, int& finished) -> Task<void> {
          EXPECT_TRUE((co_await f.open("/postall", rank == 0)).is_ok());
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(8192, types::byte_t());
          EXPECT_TRUE((co_await f.write_at_all(c, rank, rank * 8192,
                                               src.data() + rank * 8192, 1,
                                               memtype, Method::kList))
                          .is_ok());
          ++finished;
        }(*files[r], comm, r, data, done));
  }
  cluster.run();
  ASSERT_EQ(done, 2);
  for (int r = 0; r < 2; ++r) {
    // One flush event per rank (the collective's closing flush), which
    // fanned out as one envelope per involved server.
    EXPECT_EQ(clients[r]->wb_flushes(),
              clients[r]->wb_batches());
    EXPECT_GT(clients[r]->wb_batches(), 0u);
    EXPECT_LE(clients[r]->wb_batches(),
              static_cast<std::uint64_t>(cfg.num_servers));
    EXPECT_EQ(clients[r]->write_behind_staged_bytes(), 0);
  }
  // The data is durable server-side after the collective returns.
  std::vector<std::uint8_t> back(16384, 0xFF);
  bool ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, std::vector<std::uint8_t>& out,
         bool& done_flag) -> Task<void> {
        auto whole = types::contiguous(16384, types::byte_t());
        done_flag = (co_await f.read_at(0, out.data(), 1, whole,
                                        Method::kPosix))
                        .is_ok();
      }(*files[0], back, ok));
  cluster.run();
  ASSERT_TRUE(ok);
  EXPECT_EQ(back, data);
}

TEST(Hints, ParsesRomioVocabulary) {
  const std::pair<std::string_view, std::string_view> pairs[] = {
      {"cb_buffer_size", "8M"},
      {"ind_rd_buffer_size", "512k"},
      {"striping_unit", "131072"},
      {"romio_cb_write", "disable"},
      {"romio_ds_read", "enable"},
      {"pvfs_listio_max_regions", "128"},
      {"pvfs_dtype_cache", "enable"},
      {"some_unknown_key", "whatever"},  // ignored per MPI semantics
  };
  auto parsed = mpiio::Hints::parse(pairs);
  ASSERT_TRUE(parsed.is_ok());
  const mpiio::Hints& h = parsed.value();
  EXPECT_EQ(h.cb_buffer_size, 8 * kMiB);
  EXPECT_EQ(h.ind_rd_buffer_size, 512 * kKiB);
  EXPECT_EQ(h.striping_unit, 131072u);
  EXPECT_EQ(h.cb_write, mpiio::Toggle::kDisable);
  EXPECT_EQ(h.ds_read, mpiio::Toggle::kEnable);
  EXPECT_EQ(h.listio_max_regions, 128u);
  EXPECT_TRUE(h.dtype_cache);
}

TEST(Hints, BadValuesAreErrors) {
  const std::pair<std::string_view, std::string_view> bad_size[] = {
      {"cb_buffer_size", "lots"}};
  EXPECT_FALSE(mpiio::Hints::parse(bad_size).is_ok());
  const std::pair<std::string_view, std::string_view> bad_toggle[] = {
      {"romio_cb_read", "yes"}};
  EXPECT_FALSE(mpiio::Hints::parse(bad_toggle).is_ok());
  const std::pair<std::string_view, std::string_view> zero[] = {
      {"striping_unit", "0"}};
  EXPECT_FALSE(mpiio::Hints::parse(zero).is_ok());
}

TEST(Hints, ApplyFoldsIntoClusterConfig) {
  const std::pair<std::string_view, std::string_view> pairs[] = {
      {"cb_buffer_size", "1M"},
      {"striping_unit", "32k"},
      {"pvfs_listio_max_regions", "32"},
      {"pvfs_dtype_cache", "enable"},
  };
  auto h = mpiio::Hints::parse(pairs);
  ASSERT_TRUE(h.is_ok());
  net::ClusterConfig cfg;
  h.value().apply(cfg);
  EXPECT_EQ(cfg.cb_buffer_size, kMiB);
  EXPECT_EQ(cfg.strip_size, 32 * kKiB);
  EXPECT_EQ(cfg.list_io_max_regions, 32u);
  EXPECT_TRUE(cfg.server.dataloop_cache);
}

TEST(Hints, MethodSelectionHonoursToggles) {
  mpiio::Hints h;
  EXPECT_EQ(h.choose_collective(false), Method::kTwoPhase);
  EXPECT_EQ(h.choose_independent(false), Method::kDatatype);
  h.cb_write = mpiio::Toggle::kDisable;
  EXPECT_EQ(h.choose_collective(true), Method::kDatatype);
  h.ds_read = mpiio::Toggle::kEnable;
  EXPECT_EQ(h.choose_independent(false), Method::kDataSieving);
  // Sieving writes never selected on lock-free PVFS.
  h.ds_write = mpiio::Toggle::kEnable;
  EXPECT_EQ(h.choose_independent(true), Method::kDatatype);
}

}  // namespace
}  // namespace dtio
