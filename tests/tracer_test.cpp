// Tests for the event tracer: recording through the cluster plumbing,
// CSV output, ring-buffer truncation, and zero overhead when detached.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "pfs/cluster.h"
#include "sim/tracer.h"

namespace dtio {
namespace {

using sim::Task;
using sim::TraceEvent;
using sim::Tracer;

TEST(Tracer, RecordsInOrderAndDumpsCsv) {
  Tracer tracer;
  tracer.record({100 * kMicrosecond, "send", 0, 1, 7, 64, ""});
  tracer.record({250 * kMicrosecond, "deliver", 1, 0, 7, 64, ""});
  tracer.record({300 * kMicrosecond, "request", 1, 16, 7, 0, "contig_read"});
  EXPECT_EQ(tracer.total_recorded(), 3u);
  EXPECT_FALSE(tracer.truncated());

  std::ostringstream out;
  tracer.dump_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_us,kind,node,peer,tag,bytes,detail"),
            std::string::npos);
  EXPECT_NE(csv.find("100,send,0,1,7,64,"), std::string::npos);
  EXPECT_NE(csv.find("300,request,1,16,7,0,contig_read"), std::string::npos);
}

TEST(Tracer, CsvQuotesFieldsWithSpecials) {
  Tracer tracer;
  // detail/kind are string_views that must outlive the tracer: literals.
  tracer.record({1 * kMicrosecond, "send", 0, 1, 0, 0, "plain_detail"});
  tracer.record({2 * kMicrosecond, "send", 0, 1, 0, 0, "a,b"});
  tracer.record({3 * kMicrosecond, "od,d", 0, 1, 0, 0, "say \"hi\""});
  tracer.record({4 * kMicrosecond, "send", 0, 1, 0, 0, "line\nbreak"});

  std::ostringstream out;
  tracer.dump_csv(out);
  const std::string csv = out.str();
  // Plain fields stay bare.
  EXPECT_NE(csv.find("1,send,0,1,0,0,plain_detail\n"), std::string::npos);
  // Commas force quoting; embedded quotes double (RFC 4180).
  EXPECT_NE(csv.find("2,send,0,1,0,0,\"a,b\"\n"), std::string::npos);
  EXPECT_NE(csv.find("3,\"od,d\",0,1,0,0,\"say \"\"hi\"\"\"\n"),
            std::string::npos);
  EXPECT_NE(csv.find("4,send,0,1,0,0,\"line\nbreak\"\n"), std::string::npos);
}

TEST(Tracer, CsvQuotingSurvivesRingWrap) {
  Tracer tracer(/*capacity=*/3);
  static const char* const kDetails[] = {"d,0", "d,1", "d,2", "d,3", "d,4"};
  for (int i = 0; i < 5; ++i) {
    tracer.record({i * kMillisecond, "send", i, 0, 0, 0, kDetails[i]});
  }
  EXPECT_TRUE(tracer.truncated());

  std::ostringstream out;
  tracer.dump_csv(out);
  const std::string csv = out.str();
  // Survivors are 2..4, oldest first, each detail quoted.
  EXPECT_EQ(csv.find("\"d,0\""), std::string::npos);
  EXPECT_EQ(csv.find("\"d,1\""), std::string::npos);
  const auto p2 = csv.find("2000,send,2,0,0,0,\"d,2\"");
  const auto p3 = csv.find("3000,send,3,0,0,0,\"d,3\"");
  const auto p4 = csv.find("4000,send,4,0,0,0,\"d,4\"");
  ASSERT_NE(p2, std::string::npos);
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p4, std::string::npos);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
}

TEST(Tracer, RingTruncatesOldestFirst) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.record({i * kMillisecond, "send", i, 0, 0, 0, ""});
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_TRUE(tracer.truncated());
  std::ostringstream out;
  tracer.dump_csv(out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.find("0,send,0"), std::string::npos);  // oldest dropped
  // The surviving four are 6..9, oldest first.
  const auto pos6 = csv.find("6000,send,6");
  const auto pos9 = csv.find("9000,send,9");
  EXPECT_NE(pos6, std::string::npos);
  EXPECT_NE(pos9, std::string::npos);
  EXPECT_LT(pos6, pos9);
}

TEST(Tracer, CapturesClusterProtocolActivity) {
  net::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 1;
  pfs::Cluster cluster(cfg);
  Tracer tracer;
  cluster.set_tracer(&tracer);

  auto client = cluster.make_client(0);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    pfs::MetaResult f = co_await c.create("/traced");
    std::vector<std::uint8_t> data(1000, 1);
    (void)co_await c.write_contig(f.handle, 0, data.data(), 1000);
  }(*client));
  cluster.run();

  // Expect at least: meta request send+deliver+reply, data request(s).
  EXPECT_GE(tracer.total_recorded(), 6u);
  bool saw_meta = false, saw_write = false, saw_send = false;
  SimTime last = 0;
  std::size_t in_order = 0;
  for (const TraceEvent& e : tracer.events()) {
    if (e.kind == "request" && e.detail == "meta_create") saw_meta = true;
    if (e.kind == "request" && e.detail == "contig_write") saw_write = true;
    if (e.kind == "send") saw_send = true;
    if (e.time >= last) ++in_order;
    last = e.time;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_write);
  EXPECT_TRUE(saw_send);
  EXPECT_EQ(in_order, tracer.events().size());  // chronological

  // Detach: no further recording.
  const std::uint64_t before = tracer.total_recorded();
  cluster.set_tracer(nullptr);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    (void)co_await c.stat("/traced");
  }(*client));
  cluster.run();
  EXPECT_EQ(tracer.total_recorded(), before);
}

}  // namespace
}  // namespace dtio
