// Validate the reproduction workloads against the paper's published
// numbers: frame/tile sizes and op counts from Table 1, block sizes and
// piece counts from Table 2, and FLASH geometry from Table 3 / §4.4.
#include <gtest/gtest.h>

#include "common/region.h"
#include "dataloop/cursor.h"
#include "io/joint.h"
#include "io/view.h"
#include "workloads/block3d.h"
#include "workloads/flash.h"
#include "workloads/tile.h"

namespace dtio::workloads {
namespace {

std::int64_t count_joint_pieces(const types::Datatype& memtype,
                                std::int64_t count,
                                const io::FileView& view) {
  const std::int64_t total = count * memtype.size();
  const io::StreamWindow window = io::make_window(view, 0, total);
  io::JointWalker walker(io::make_mem_cursor(memtype, count),
                         io::make_file_cursor(view, window));
  io::JointWalker::Piece piece;
  std::int64_t pieces = 0;
  while (walker.next(piece)) ++pieces;
  return pieces;
}

// ---- Tile reader (Table 1) ----------------------------------------------------

TEST(Tile, FrameGeometryMatchesPaper) {
  TileConfig cfg;
  EXPECT_EQ(cfg.num_clients(), 6);
  EXPECT_EQ(cfg.frame_width(), 2532);   // 3*1024 - 2*270
  EXPECT_EQ(cfg.frame_height(), 1408);  // 2*768 - 128
  // "Each frame is 10.2 MBytes."
  EXPECT_EQ(cfg.frame_bytes(), 10'695'168);
  EXPECT_NEAR(static_cast<double>(cfg.frame_bytes()) / 1e6, 10.7, 0.5);
  // Desired data per client: 2.25 MB.
  EXPECT_EQ(cfg.tile_bytes(), 2'359'296);
}

TEST(Tile, PosixOpCountIs768PerFrame) {
  TileConfig cfg;
  // One op per tile row: 768 per client per frame (Table 1).
  io::FileView view{0, types::byte_t(), cfg.tile_filetype(0)};
  EXPECT_EQ(count_joint_pieces(cfg.memtype(), 1, view), 768);
}

TEST(Tile, FiletypeCoversExactTilePixels) {
  TileConfig cfg;
  for (int rank = 0; rank < cfg.num_clients(); ++rank) {
    auto type = cfg.tile_filetype(rank);
    EXPECT_EQ(type.size(), cfg.tile_bytes());
    EXPECT_EQ(type.extent(), cfg.frame_bytes());
    auto regions = type.flatten(0, 1);
    EXPECT_EQ(static_cast<std::int64_t>(regions.size()), 768);
    for (const Region& r : regions) EXPECT_EQ(r.length, 3072);
  }
}

TEST(Tile, NeighbourTilesOverlap) {
  TileConfig cfg;
  // Horizontal neighbours share 270 pixel columns.
  auto left = cfg.tile_filetype(0).flatten(0, 1);
  auto right = cfg.tile_filetype(1).flatten(0, 1);
  // Row 0 of tile 0 is [0, 3072); row 0 of tile 1 starts at pixel 754.
  EXPECT_EQ(right.front().offset, (1024 - 270) * 3);
  EXPECT_LT(right.front().offset, left.front().end());  // overlap
}

TEST(Tile, InstancesTileFrames) {
  TileConfig cfg;
  auto type = cfg.tile_filetype(0);
  auto two_frames = type.flatten(0, 2);
  EXPECT_EQ(static_cast<std::int64_t>(two_frames.size()), 2 * 768);
  EXPECT_EQ(two_frames[768].offset, cfg.frame_bytes());
}

// ---- 3-D block (Table 2) -------------------------------------------------------

TEST(Block3d, GeometryMatchesPaperAt8Clients) {
  Block3dConfig cfg;  // m = 2 -> 8 clients
  EXPECT_EQ(cfg.num_clients(), 8);
  EXPECT_EQ(cfg.block_dim(), 300);
  // Desired per client: 103 MB (= 300^3 * 4 bytes).
  EXPECT_EQ(cfg.block_bytes(), 108'000'000);
  // POSIX ops per client: 90 000.
  EXPECT_EQ(cfg.rows_per_block(), 90'000);
  // File: 600^3 * 4 = 864 MB.
  EXPECT_EQ(cfg.file_bytes(), 864'000'000);
}

TEST(Block3d, GeometryAt27And64Clients) {
  Block3dConfig cfg27{.blocks_per_edge = 3};
  EXPECT_EQ(cfg27.num_clients(), 27);
  EXPECT_EQ(cfg27.block_dim(), 200);
  EXPECT_EQ(cfg27.block_bytes(), 32'000'000);   // paper: 30.5 MB(iB)
  EXPECT_EQ(cfg27.rows_per_block(), 40'000);    // paper: 40 000 ops

  Block3dConfig cfg64{.blocks_per_edge = 4};
  EXPECT_EQ(cfg64.num_clients(), 64);
  EXPECT_EQ(cfg64.block_bytes(), 13'500'000);   // paper: 12.9 MiB
  EXPECT_EQ(cfg64.rows_per_block(), 22'500);    // paper: 22 500 ops
}

TEST(Block3d, BlocksPartitionTheFile) {
  Block3dConfig cfg{.dim = 12, .blocks_per_edge = 2};
  std::vector<bool> covered(static_cast<std::size_t>(cfg.file_bytes()), false);
  for (int rank = 0; rank < cfg.num_clients(); ++rank) {
    for (const Region& r : cfg.block_filetype(rank).flatten(0, 1)) {
      for (std::int64_t b = r.offset; b < r.end(); ++b) {
        EXPECT_FALSE(covered[static_cast<std::size_t>(b)])
            << "byte " << b << " claimed twice";
        covered[static_cast<std::size_t>(b)] = true;
      }
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(Block3d, JointPiecesAreRows) {
  Block3dConfig cfg{.dim = 24, .blocks_per_edge = 2};
  io::FileView view{0, types::byte_t(), cfg.block_filetype(3)};
  EXPECT_EQ(count_joint_pieces(cfg.memtype(), 1, view),
            cfg.rows_per_block());
}

// ---- FLASH (Table 3) -------------------------------------------------------------

TEST(Flash, GeometryMatchesPaper) {
  FlashConfig cfg;
  EXPECT_EQ(cfg.cells_per_edge(), 16);
  EXPECT_EQ(cfg.interior_cells(), 512);
  EXPECT_EQ(cfg.cell_bytes(), 192);
  // Desired data per client: 7.5 MB.
  EXPECT_EQ(cfg.bytes_per_proc(), 7'864'320);
  // POSIX ops per client: 983 040.
  EXPECT_EQ(cfg.joint_pieces(), 983'040);
  // "Every processor adds 7 MBytes to the file": dataset 14 MB at 2
  // clients to 896 MB at 128.
  EXPECT_EQ(cfg.file_bytes(2), 15'728'640);
  EXPECT_EQ(cfg.file_bytes(128), 1'006'632'960);
  EXPECT_EQ(cfg.var_chunk_bytes(), 327'680);
}

TEST(Flash, MemtypeCoversInteriorOnly) {
  FlashConfig cfg{.blocks_per_proc = 2};
  auto memtype = cfg.memtype();
  EXPECT_EQ(memtype.size(),
            2 * cfg.interior_cells() * cfg.num_vars * cfg.var_bytes);
  auto regions = memtype.flatten(0, 1);
  // All pieces are single 8-byte variables (nothing coalesces across the
  // 192-byte cells).
  EXPECT_EQ(static_cast<std::int64_t>(regions.size()),
            2 * cfg.interior_cells() * cfg.num_vars);
  for (const Region& r : regions) EXPECT_EQ(r.length, 8);
}

TEST(Flash, SmallConfigJointPieceCount) {
  FlashConfig cfg{.blocks_per_proc = 2, .interior = 4, .guard = 1,
                  .num_vars = 3};
  io::FileView view{cfg.displacement(1), types::byte_t(), cfg.filetype(4)};
  EXPECT_EQ(count_joint_pieces(cfg.memtype(), 1, view), cfg.joint_pieces());
  EXPECT_EQ(cfg.joint_pieces(), 2 * 64 * 3);
}

TEST(Flash, FiletypesOfAllRanksPartitionTheFile) {
  FlashConfig cfg{.blocks_per_proc = 2, .interior = 2, .guard = 1,
                  .num_vars = 3};
  const int nprocs = 3;
  std::vector<bool> covered(
      static_cast<std::size_t>(cfg.file_bytes(nprocs)), false);
  for (int rank = 0; rank < nprocs; ++rank) {
    auto regions =
        cfg.filetype(nprocs).flatten(cfg.displacement(rank), 1);
    for (const Region& r : regions) {
      for (std::int64_t b = r.offset; b < r.end(); ++b) {
        EXPECT_FALSE(covered[static_cast<std::size_t>(b)]);
        covered[static_cast<std::size_t>(b)] = true;
      }
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(Flash, MemoryStreamOrderIsVariableMajor) {
  FlashConfig cfg{.blocks_per_proc = 1, .interior = 1, .guard = 1,
                  .num_vars = 2};
  // One interior cell at (1,1,1) of a 3^3 block; vars 0 and 1. Disable
  // coalescing to observe raw stream order (the two 8-byte variables are
  // adjacent and would merge).
  auto regions = dl::flatten(cfg.memtype().dataloop(), 0, 1,
                             /*coalesce=*/false);
  ASSERT_EQ(regions.size(), 2u);
  const std::int64_t cell_at = (1 * 9 + 1 * 3 + 1) * cfg.cell_bytes();
  EXPECT_EQ(regions[0].offset, cell_at);       // var 0 first
  EXPECT_EQ(regions[1].offset, cell_at + 8);   // then var 1
}

}  // namespace
}  // namespace dtio::workloads
