// Tests for the access-method layer and MPI-IO facade: every method must
// produce byte-identical files and buffers (cross-method write/read
// matrix), two-phase must redistribute correctly across ranks, and the
// per-method I/O characteristics (op counts, accessed bytes) must match
// the analytic expectations that back the paper's Tables 1-3.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "collective/comm.h"
#include "common/rng.h"
#include "io/joint.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "types/datatype.h"

namespace dtio {
namespace {

using mpiio::Method;
using sim::Task;

net::ClusterConfig test_config(int servers = 4, int clients = 2,
                               bool locking = false) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = clients;
  cfg.strip_size = 1024;
  cfg.sieve_buffer_size = 8 * 1024;
  cfg.cb_buffer_size = 8 * 1024;
  cfg.file_locking = locking;
  return cfg;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

/// One simulated process writing `count` memtype instances through `view`,
/// then reading back with (possibly) a different method.
struct RwResult {
  Status write_status;
  Status read_status;
  std::vector<std::uint8_t> read_back;
  IoStats stats;
};

RwResult run_write_read(Method write_method, Method read_method,
                        const io::FileView& view,
                        const types::Datatype& memtype, std::int64_t count,
                        const std::vector<std::uint8_t>& mem_image,
                        bool locking = false) {
  pfs::Cluster cluster(test_config(4, 1, locking));
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);
  RwResult result;
  result.read_back.assign(mem_image.size(), 0);

  cluster.scheduler().spawn(
      [](mpiio::File& f, const io::FileView& v, const types::Datatype& t,
         std::int64_t n, const std::vector<std::uint8_t>& src,
         std::vector<std::uint8_t>& dst, Method wm, Method rm,
         RwResult& out) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/rw", true)).is_ok());
        f.set_view(v.displacement, v.etype, v.filetype);
        out.write_status = co_await f.write_at(0, src.data(), n, t, wm);
        if (out.write_status.is_ok()) {
          out.read_status = co_await f.read_at(0, dst.data(), n, t, rm);
        }
      }(file, view, memtype, count, mem_image, result.read_back, write_method,
        read_method, result));
  cluster.run();
  result.stats = client->stats();
  return result;
}

/// Compare only the bytes the memory datatype actually touches.
void expect_typed_equal(const types::Datatype& memtype, std::int64_t count,
                        const std::vector<std::uint8_t>& a,
                        const std::vector<std::uint8_t>& b) {
  for (const Region& r : memtype.flatten(0, count)) {
    for (std::int64_t i = r.offset; i < r.end(); ++i) {
      ASSERT_EQ(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)])
          << "at byte " << i;
    }
  }
}

// ---- Cross-method matrix -----------------------------------------------------

struct MatrixCase {
  Method write;
  Method read;
};

class MethodMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MethodMatrix, NoncontigMemNoncontigFileRoundTrip) {
  const auto [write_method, read_method] = GetParam();
  // Memory: 30 blocks of 8 bytes every 20. File: vector of 16-byte blocks
  // every 100 bytes (crosses strip boundaries).
  auto memtype = types::hvector(30, 8, 20, types::byte_t());
  auto filetype = types::hvector(5, 16, 100, types::byte_t());
  io::FileView view{64, types::byte_t(), filetype};
  const std::int64_t count = 1;

  auto image = pattern_bytes(static_cast<std::size_t>(memtype.extent()), 21);
  const bool locking = write_method == Method::kDataSieving;
  auto result = run_write_read(write_method, read_method, view, memtype,
                               count, image, locking);
  ASSERT_TRUE(result.write_status.is_ok()) << result.write_status.to_string();
  ASSERT_TRUE(result.read_status.is_ok()) << result.read_status.to_string();
  expect_typed_equal(memtype, count, image, result.read_back);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, MethodMatrix,
    ::testing::Values(MatrixCase{Method::kPosix, Method::kPosix},
                      MatrixCase{Method::kPosix, Method::kList},
                      MatrixCase{Method::kPosix, Method::kDatatype},
                      MatrixCase{Method::kPosix, Method::kDataSieving},
                      MatrixCase{Method::kList, Method::kPosix},
                      MatrixCase{Method::kList, Method::kList},
                      MatrixCase{Method::kList, Method::kDatatype},
                      MatrixCase{Method::kDatatype, Method::kPosix},
                      MatrixCase{Method::kDatatype, Method::kList},
                      MatrixCase{Method::kDatatype, Method::kDatatype},
                      MatrixCase{Method::kDatatype, Method::kDataSieving},
                      MatrixCase{Method::kDataSieving, Method::kDatatype}),
    [](const auto& info) {
      auto slug = [](Method m) -> std::string {
        switch (m) {
          case Method::kPosix:
            return "Posix";
          case Method::kDataSieving:
            return "Sieve";
          case Method::kTwoPhase:
            return "TwoPhase";
          case Method::kList:
            return "List";
          case Method::kDatatype:
            return "Datatype";
        }
        return "Unknown";
      };
      return slug(info.param.write) + "Then" + slug(info.param.read);
    });

// ---- Method-specific behaviours -------------------------------------------------

TEST(Methods, SieveWriteUnsupportedWithoutLocking) {
  auto memtype = types::contiguous(64, types::byte_t());
  io::FileView view{0, types::byte_t(),
                    types::hvector(4, 16, 64, types::byte_t())};
  auto image = pattern_bytes(64, 3);
  auto result = run_write_read(Method::kDataSieving, Method::kPosix, view,
                               memtype, 1, image, /*locking=*/false);
  EXPECT_EQ(result.write_status.code(), StatusCode::kUnsupported);
}

TEST(Methods, PosixOpCountEqualsJointPieces) {
  // 10 joint pieces of 8 bytes each.
  auto memtype = types::contiguous(80, types::byte_t());
  auto filetype = types::hvector(10, 8, 50, types::byte_t());
  io::FileView view{0, types::byte_t(), filetype};
  auto image = pattern_bytes(80, 5);
  auto result = run_write_read(Method::kPosix, Method::kPosix, view, memtype,
                               1, image);
  // 10 write ops + 10 read ops.
  EXPECT_EQ(result.stats.io_ops, 20u);
}

TEST(Methods, ListBatchesAtRegionCap) {
  // 100 joint pieces with a 64-region cap => 2 list calls per direction.
  auto memtype = types::contiguous(800, types::byte_t());
  auto filetype = types::hvector(100, 8, 50, types::byte_t());
  io::FileView view{0, types::byte_t(), filetype};
  auto image = pattern_bytes(800, 6);
  auto result = run_write_read(Method::kList, Method::kList, view, memtype, 1,
                               image);
  EXPECT_EQ(result.stats.io_ops, 4u);
  // List descriptors ship 16 bytes per region on the wire.
  EXPECT_GE(result.stats.request_bytes, 2 * 100u * 16u);
}

TEST(Methods, DatatypeSingleOpRegardlessOfComplexity) {
  auto memtype = types::contiguous(800, types::byte_t());
  auto filetype = types::hvector(100, 8, 50, types::byte_t());
  io::FileView view{0, types::byte_t(), filetype};
  auto image = pattern_bytes(800, 7);
  auto result = run_write_read(Method::kDatatype, Method::kDatatype, view,
                               memtype, 1, image);
  EXPECT_EQ(result.stats.io_ops, 2u);  // one write + one read
  // The shipped descriptor is a dataloop, far smaller than 100 regions.
  EXPECT_LT(result.stats.request_bytes, 100u * 16u);
}

TEST(Methods, SievingAccessesHullNotJustDesired) {
  // 8 pieces of 8 bytes spread over 3.5 KiB: sieving reads the hull.
  auto memtype = types::contiguous(64, types::byte_t());
  auto filetype = types::hvector(8, 8, 500, types::byte_t());
  io::FileView view{0, types::byte_t(), filetype};
  auto image = pattern_bytes(64, 8);
  auto result = run_write_read(Method::kPosix, Method::kDataSieving, view,
                               memtype, 1, image);
  // Read side accessed the full hull (3508 bytes) vs 64 desired.
  EXPECT_GT(result.stats.accessed_bytes, 3000u);
}

TEST(Methods, DesiredBytesCountedOncePerCall) {
  auto memtype = types::contiguous(64, types::byte_t());
  io::FileView view{0, types::byte_t(),
                    types::hvector(8, 8, 100, types::byte_t())};
  auto image = pattern_bytes(64, 9);
  auto result = run_write_read(Method::kDatatype, Method::kDataSieving, view,
                               memtype, 1, image);
  EXPECT_EQ(result.stats.desired_bytes, 128u);  // 64 write + 64 read
}

TEST(Methods, SievingRegionsStraddlingWindowBoundaries) {
  // Hull of ~40 KiB with an 8 KiB sieve buffer: five windows, and the
  // 3 KiB regions straddle window boundaries — the extraction bookkeeping
  // must split them correctly.
  auto memtype = types::contiguous(10 * 3072, types::byte_t());
  auto filetype = types::hvector(10, 3072, 4000, types::byte_t());
  io::FileView view{128, types::byte_t(), filetype};
  auto image = pattern_bytes(10 * 3072, 23);
  auto result = run_write_read(Method::kDatatype, Method::kDataSieving, view,
                               memtype, 1, image);
  ASSERT_TRUE(result.write_status.is_ok());
  ASSERT_TRUE(result.read_status.is_ok());
  expect_typed_equal(memtype, 1, image, result.read_back);
  // Five window reads (hull ~39.7 KiB / 8 KiB buffer).
  EXPECT_EQ(result.stats.io_ops - 1, 5u);
}

TEST(Methods, ListExactlyAtRegionCapBoundary) {
  // Exactly 64 and 65 joint pieces: 1 vs 2 list calls.
  for (const std::int64_t pieces : {64, 65}) {
    auto memtype = types::contiguous(pieces * 8, types::byte_t());
    auto filetype = types::hvector(pieces, 8, 50, types::byte_t());
    io::FileView view{0, types::byte_t(), filetype};
    auto image = pattern_bytes(static_cast<std::size_t>(pieces * 8), 31);
    auto result = run_write_read(Method::kList, Method::kDatatype, view,
                                 memtype, 1, image);
    ASSERT_TRUE(result.write_status.is_ok());
    expect_typed_equal(memtype, 1, image, result.read_back);
    const std::uint64_t expected_calls = pieces == 64 ? 1u : 2u;
    EXPECT_EQ(result.stats.io_ops, expected_calls + 1) << pieces;
  }
}

TEST(Methods, MultiInstanceAccessTilesTheView) {
  // count > 1 memtype instances against a tiled file view.
  auto memtype = types::hvector(4, 16, 32, types::byte_t());  // 64 B/inst
  auto filetype = types::resized(
      types::contiguous(64, types::byte_t()), 0, 256);
  io::FileView view{0, types::byte_t(), filetype};
  auto image = pattern_bytes(
      static_cast<std::size_t>(memtype.extent() * 3 + 64), 37);
  auto result = run_write_read(Method::kDatatype, Method::kPosix, view,
                               memtype, 3, image);
  ASSERT_TRUE(result.write_status.is_ok());
  ASSERT_TRUE(result.read_status.is_ok());
  expect_typed_equal(memtype, 3, image, result.read_back);
}

// ---- Collective (two-phase) -------------------------------------------------------

struct CollectiveWorld {
  explicit CollectiveWorld(int nclients, bool locking = false)
      : cluster(test_config(4, nclients, locking)),
        comm(cluster.scheduler(), cluster.network(), cluster.config(),
             nclients) {
    for (int r = 0; r < nclients; ++r) {
      clients.push_back(cluster.make_client(r));
      contexts.push_back(std::make_unique<io::Context>(io::Context{
          cluster.scheduler(), *clients.back(), cluster.config()}));
      files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
    }
  }
  pfs::Cluster cluster;
  coll::Communicator comm;
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
};

TEST(TwoPhase, InterleavedWriteThenReadBack) {
  // 4 ranks write interleaved 64-byte records (rank r owns record i where
  // i % 4 == r) — the classic two-phase-friendly pattern of Figure 3.
  constexpr int kRanks = 4;
  constexpr std::int64_t kRecord = 64;
  constexpr std::int64_t kRecords = 40;  // per rank
  CollectiveWorld world(kRanks);

  std::vector<std::vector<std::uint8_t>> images;
  for (int r = 0; r < kRanks; ++r) {
    images.push_back(pattern_bytes(kRecord * kRecords,
                                   100 + static_cast<std::uint64_t>(r)));
  }
  int completed = 0;
  for (int r = 0; r < kRanks; ++r) {
    world.cluster.scheduler().spawn(
        [](CollectiveWorld& w, int rank, const std::vector<std::uint8_t>& src,
           int& done) -> Task<void> {
          mpiio::File& f = *w.files[static_cast<std::size_t>(rank)];
          EXPECT_TRUE((co_await f.open("/tp", rank == 0)).is_ok());
          // View: my records, strided by kRanks records.
          auto filetype = types::resized(
              types::contiguous(kRecord, types::byte_t()), 0,
              kRanks * kRecord);
          f.set_view(rank * kRecord, types::byte_t(), filetype);
          auto memtype = types::contiguous(kRecord * kRecords,
                                           types::byte_t());
          Status s = co_await f.write_at_all(w.comm, rank, 0, src.data(), 1,
                                             memtype, Method::kTwoPhase);
          EXPECT_TRUE(s.is_ok()) << s.to_string();
          ++done;
        }(world, r, images[static_cast<std::size_t>(r)], completed));
  }
  // Rank 0 opens with create; give it a head start so others find the file.
  world.cluster.run();
  EXPECT_EQ(completed, kRanks);

  // Verify with an independent contiguous read of the whole file.
  bool verified = false;
  world.cluster.scheduler().spawn(
      [](CollectiveWorld& w, const std::vector<std::vector<std::uint8_t>>& all,
         bool& done) -> Task<void> {
        mpiio::File& f = *w.files[0];
        std::vector<std::uint8_t> whole(kRanks * kRecord * kRecords);
        f.set_view(0, types::byte_t(), types::byte_t());
        auto memtype = types::contiguous(
            static_cast<std::int64_t>(whole.size()), types::byte_t());
        Status s = co_await f.read_at(0, whole.data(), 1, memtype,
                                      Method::kDataSieving);
        EXPECT_TRUE(s.is_ok());
        for (std::int64_t i = 0; i < kRanks * kRecords; ++i) {
          const int owner = static_cast<int>(i % kRanks);
          const std::int64_t record_of_owner = i / kRanks;
          EXPECT_TRUE(std::equal(
              whole.begin() + i * kRecord, whole.begin() + (i + 1) * kRecord,
              all[static_cast<std::size_t>(owner)].begin() +
                  record_of_owner * kRecord))
              << "record " << i;
        }
        done = true;
      }(world, images, verified));
  world.cluster.run();
  EXPECT_TRUE(verified);
}

TEST(TwoPhase, ReadRedistributesAcrossRanks) {
  constexpr int kRanks = 3;
  constexpr std::int64_t kRecord = 128;
  constexpr std::int64_t kRecords = 30;
  CollectiveWorld world(kRanks);
  const auto whole = pattern_bytes(
      static_cast<std::size_t>(kRanks * kRecord * kRecords), 55);

  // Seed the file contiguously.
  world.cluster.scheduler().spawn(
      [](CollectiveWorld& w, const std::vector<std::uint8_t>& src)
          -> Task<void> {
        mpiio::File& f = *w.files[0];
        EXPECT_TRUE((co_await f.open("/tpr", true)).is_ok());
        auto memtype = types::contiguous(
            static_cast<std::int64_t>(src.size()), types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, src.data(), 1, memtype,
                                         Method::kDatatype))
                        .is_ok());
      }(world, whole));
  world.cluster.run();

  std::vector<std::vector<std::uint8_t>> results(
      kRanks, std::vector<std::uint8_t>(kRecord * kRecords, 0));
  int completed = 0;
  for (int r = 0; r < kRanks; ++r) {
    world.cluster.scheduler().spawn(
        [](CollectiveWorld& w, int rank, std::vector<std::uint8_t>& dst,
           int& done) -> Task<void> {
          mpiio::File& f = *w.files[static_cast<std::size_t>(rank)];
          if (rank != 0) EXPECT_TRUE((co_await f.open("/tpr", false)).is_ok());
          auto filetype = types::resized(
              types::contiguous(kRecord, types::byte_t()), 0,
              kRanks * kRecord);
          f.set_view(rank * kRecord, types::byte_t(), filetype);
          auto memtype = types::contiguous(kRecord * kRecords,
                                           types::byte_t());
          Status s = co_await f.read_at_all(w.comm, rank, 0, dst.data(), 1,
                                            memtype, Method::kTwoPhase);
          EXPECT_TRUE(s.is_ok()) << s.to_string();
          ++done;
        }(world, r, results[static_cast<std::size_t>(r)], completed));
  }
  world.cluster.run();
  EXPECT_EQ(completed, kRanks);

  for (int r = 0; r < kRanks; ++r) {
    for (std::int64_t rec = 0; rec < kRecords; ++rec) {
      const std::int64_t file_record = rec * kRanks + r;
      EXPECT_TRUE(std::equal(
          results[static_cast<std::size_t>(r)].begin() + rec * kRecord,
          results[static_cast<std::size_t>(r)].begin() + (rec + 1) * kRecord,
          whole.begin() + file_record * kRecord))
          << "rank " << r << " record " << rec;
    }
  }
  // Most data crossed ranks: resent bytes are substantial.
  std::uint64_t resent = 0;
  for (const auto& c : world.clients) resent += c->stats().resent_bytes;
  EXPECT_GT(resent, static_cast<std::uint64_t>(whole.size()) / 2);
}

TEST(TwoPhase, CollectiveFallbackRunsIndependentMethod) {
  constexpr int kRanks = 2;
  CollectiveWorld world(kRanks);
  const auto data = pattern_bytes(4096, 77);
  int completed = 0;
  for (int r = 0; r < kRanks; ++r) {
    world.cluster.scheduler().spawn(
        [](CollectiveWorld& w, int rank, const std::vector<std::uint8_t>& src,
           int& done) -> Task<void> {
          mpiio::File& f = *w.files[static_cast<std::size_t>(rank)];
          EXPECT_TRUE((co_await f.open("/fb", rank == 0)).is_ok());
          f.set_view(0, types::byte_t(), types::byte_t());
          auto memtype = types::contiguous(2048, types::byte_t());
          Status s = co_await f.write_at_all(
              w.comm, rank, rank * 2048, src.data() + rank * 2048, 1, memtype,
              Method::kDatatype);
          EXPECT_TRUE(s.is_ok());
          ++done;
        }(world, r, data, completed));
  }
  world.cluster.run();
  EXPECT_EQ(completed, kRanks);
}

// ---- Joint walker ------------------------------------------------------------------

TEST(Joint, PairsBothSidesAtMinGranularity) {
  // Memory: 4 x 8B blocks every 16; file: 2 x 16B blocks every 64.
  auto memtype = types::hvector(4, 8, 16, types::byte_t());
  auto filetype = types::hvector(2, 16, 64, types::byte_t());
  io::FileView view{0, types::byte_t(), filetype};
  const io::StreamWindow window = io::make_window(view, 0, 32);
  io::JointWalker walker(io::make_mem_cursor(memtype, 1),
                         io::make_file_cursor(view, window));
  std::vector<io::JointWalker::Piece> pieces;
  io::JointWalker::Piece p;
  while (walker.next(p)) pieces.push_back(p);
  // Joint granularity = 8 bytes (memory side): 4 pieces.
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].mem_offset, 0);
  EXPECT_EQ(pieces[0].file_offset, 0);
  EXPECT_EQ(pieces[1].mem_offset, 16);
  EXPECT_EQ(pieces[1].file_offset, 8);
  EXPECT_EQ(pieces[2].mem_offset, 32);
  EXPECT_EQ(pieces[2].file_offset, 64);
  EXPECT_EQ(pieces[3].mem_offset, 48);
  EXPECT_EQ(pieces[3].file_offset, 72);
  for (const auto& piece : pieces) EXPECT_EQ(piece.length, 8);
}

TEST(Joint, WindowSeekAlignsFileSide) {
  auto filetype = types::hvector(4, 8, 32, types::byte_t());
  io::FileView view{100, types::byte_t(), filetype};
  // Start 12 bytes into the stream: mid-second-block.
  const io::StreamWindow window = io::make_window(view, 12, 8);
  auto memtype = types::contiguous(8, types::byte_t());
  io::JointWalker walker(io::make_mem_cursor(memtype, 1),
                         io::make_file_cursor(view, window));
  std::vector<io::JointWalker::Piece> pieces;
  io::JointWalker::Piece p;
  while (walker.next(p)) pieces.push_back(p);
  ASSERT_EQ(pieces.size(), 2u);
  // Stream byte 12 = block 1 (bytes 8..16) at displacement 100+32, +4.
  EXPECT_EQ(pieces[0].file_offset, 100 + 32 + 4);
  EXPECT_EQ(pieces[0].length, 4);
  EXPECT_EQ(pieces[1].file_offset, 100 + 64);
  EXPECT_EQ(pieces[1].length, 4);
}

}  // namespace
}  // namespace dtio
