// Unit tests for the simulated interconnect: transfer timing, packet
// pipelining, link contention, loopback, and byte accounting.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/network.h"
#include "sim/scheduler.h"

namespace dtio::net {
namespace {

using sim::kAnySource;
using sim::Message;
using sim::Scheduler;
using sim::Task;

NetConfig simple_config() {
  NetConfig cfg;
  cfg.bandwidth_bytes_per_s = 1e6;  // 1 MB/s: 1 byte == 1 us
  cfg.latency = 100 * kMicrosecond;
  cfg.mtu = 1000;
  cfg.per_message_overhead_bytes = 0;
  cfg.fabric_bandwidth_bytes_per_s = 0;  // per-link timing tests
  return cfg;
}

TEST(Network, SmallMessageTiming) {
  Scheduler sched;
  Network net(sched, 2, simple_config());
  SimTime send_done = -1, recv_done = -1;
  sched.spawn([](Scheduler& s, Network& n, SimTime& out) -> Task<void> {
    co_await n.send(0, 1, Message(kAnySource, 1, 500, 0));
    out = s.now();
  }(sched, net, send_done));
  sched.spawn([](Scheduler& s, Network& n, SimTime& out) -> Task<void> {
    (void)co_await n.mailbox(1).recv();
    out = s.now();
  }(sched, net, recv_done));
  sched.run();
  // tx serialisation: 500 us. Delivery: + latency 100 us + rx 500 us.
  EXPECT_EQ(send_done, 500 * kMicrosecond);
  EXPECT_EQ(recv_done, 1100 * kMicrosecond);
}

TEST(Network, LargeMessagePipelinesAcrossPackets) {
  Scheduler sched;
  Network net(sched, 2, simple_config());
  SimTime recv_done = -1;
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    co_await n.send(0, 1, Message(kAnySource, 1, 10'000, 0));
  }(sched, net));
  sched.spawn([](Scheduler& s, Network& n, SimTime& out) -> Task<void> {
    (void)co_await n.mailbox(1).recv();
    out = s.now();
  }(sched, net, recv_done));
  sched.run();
  // 10 packets of 1000 B pipeline: total ~ 10 ms tx + latency + one packet
  // rx, far below the 20 ms a store-and-forward whole-message model costs.
  EXPECT_EQ(recv_done, (10'000 + 100 + 1000) * kMicrosecond);
}

TEST(Network, SendersShareTxLink) {
  Scheduler sched;
  Network net(sched, 3, simple_config());
  std::vector<SimTime> recv_times(2, -1);
  // Node 0 sends to nodes 1 and 2 concurrently; both transfers serialize
  // on node 0's tx link, so aggregate time doubles.
  for (int dst = 1; dst <= 2; ++dst) {
    sched.spawn([](Scheduler&, Network& n, int d) -> Task<void> {
      co_await n.send(0, d, Message(kAnySource, 9, 5000, 0));
    }(sched, net, dst));
    sched.spawn([](Scheduler& s, Network& n, int d,
                   std::vector<SimTime>& out) -> Task<void> {
      (void)co_await n.mailbox(d).recv();
      out[static_cast<std::size_t>(d - 1)] = s.now();
    }(sched, net, dst, recv_times));
  }
  sched.run();
  const SimTime slower = std::max(recv_times[0], recv_times[1]);
  EXPECT_GE(slower, 10'000 * kMicrosecond);
}

TEST(Network, IncastSharesRxLink) {
  Scheduler sched;
  Network net(sched, 3, simple_config());
  std::vector<SimTime> done;
  for (int src = 0; src <= 1; ++src) {
    sched.spawn([](Scheduler&, Network& n, int s_) -> Task<void> {
      co_await n.send(s_, 2, Message(kAnySource, 5, 5000, 0));
    }(sched, net, src));
  }
  sched.spawn([](Scheduler& s, Network& n, std::vector<SimTime>& out)
                  -> Task<void> {
    (void)co_await n.mailbox(2).recv();
    out.push_back(s.now());
    (void)co_await n.mailbox(2).recv();
    out.push_back(s.now());
  }(sched, net, done));
  sched.run();
  ASSERT_EQ(done.size(), 2u);
  // Receiver's rx link carries 10000 bytes total: second message cannot
  // complete before 10 ms of rx serialization.
  EXPECT_GE(done[1], 10'000 * kMicrosecond);
}

TEST(Network, LoopbackBypassesLinks) {
  Scheduler sched;
  auto cfg = simple_config();
  Network net(sched, 2, cfg);
  SimTime recv_done = -1;
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    co_await n.send(1, 1, Message(kAnySource, 2, 1'000'000, 0));
  }(sched, net));
  sched.spawn([](Scheduler& s, Network& n, SimTime& out) -> Task<void> {
    (void)co_await n.mailbox(1).recv();
    out = s.now();
  }(sched, net, recv_done));
  sched.run();
  EXPECT_EQ(recv_done, simple_config().loopback_latency);
  EXPECT_EQ(net.node_tx_bytes(1), 0u);
}

TEST(Network, MessageBodySurvivesTransfer) {
  Scheduler sched;
  Network net(sched, 2, simple_config());
  std::string got;
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    co_await n.send(0, 1, Message(kAnySource, 3, 10,
                                  std::string("payload-intact")));
  }(sched, net));
  sched.spawn([](Scheduler&, Network& n, std::string& out) -> Task<void> {
    Message m = co_await n.mailbox(1).recv(0, 3);
    out = m.as<std::string>();
  }(sched, net, got));
  sched.run();
  EXPECT_EQ(got, "payload-intact");
}

TEST(Network, AccountsBytesAndMessages) {
  Scheduler sched;
  NetConfig cfg = simple_config();
  cfg.per_message_overhead_bytes = 64;
  Network net(sched, 2, cfg);
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    co_await n.send(0, 1, Message(kAnySource, 1, 1000, 0));
    co_await n.send(0, 1, Message(kAnySource, 2, 0, 0));
  }(sched, net));
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    (void)co_await n.mailbox(1).recv(0, 1);
    (void)co_await n.mailbox(1).recv(0, 2);
  }(sched, net));
  sched.run();
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_wire_bytes(), 1000u + 64 + 64);
  EXPECT_EQ(net.node_tx_bytes(0), 1128u);
  EXPECT_EQ(net.node_rx_bytes(1), 1128u);
}

TEST(Network, OrderingPreservedPerSenderPair) {
  Scheduler sched;
  Network net(sched, 2, simple_config());
  std::vector<std::uint64_t> tags;
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    for (std::uint64_t t = 0; t < 10; ++t) {
      co_await n.send(0, 1, Message(kAnySource, t, 100, 0));
    }
  }(sched, net));
  sched.spawn([](Scheduler&, Network& n,
                 std::vector<std::uint64_t>& out) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      Message m = co_await n.mailbox(1).recv();
      out.push_back(m.tag);
    }
  }(sched, net, tags));
  sched.run();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(tags[i], i);
}

TEST(Network, FabricCapsAggregateThroughput) {
  // 4 senders, 4 receivers, per-link 1 MB/s, fabric 2 MB/s: aggregate is
  // fabric-bound at ~2 MB/s instead of 4.
  Scheduler sched;
  NetConfig cfg = simple_config();
  cfg.fabric_bandwidth_bytes_per_s = 2e6;
  Network net(sched, 8, cfg);
  int remaining = 4;
  SimTime all_done = -1;
  for (int i = 0; i < 4; ++i) {
    sched.spawn([](Scheduler&, Network& n, int src) -> Task<void> {
      co_await n.send(src, src + 4,
                      Message(kAnySource, 1, 1'000'000, 0));
    }(sched, net, i));
    sched.spawn([](Scheduler& s, Network& n, int dst, int& left,
                   SimTime& done) -> Task<void> {
      (void)co_await n.mailbox(dst).recv();
      if (--left == 0) done = s.now();
    }(sched, net, i + 4, remaining, all_done));
  }
  sched.run();
  // 4 MB through a 2 MB/s fabric: at least 2 s (plus pipeline tails).
  EXPECT_GE(all_done, 2 * kSecond);
  EXPECT_LT(all_done, 3 * kSecond);
}

TEST(Network, FabricIdleForLoopback) {
  Scheduler sched;
  NetConfig cfg = simple_config();
  cfg.fabric_bandwidth_bytes_per_s = 1e6;
  Network net(sched, 2, cfg);
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    co_await n.send(1, 1, Message(kAnySource, 9, 500'000, 0));
  }(sched, net));
  sched.spawn([](Scheduler&, Network& n) -> Task<void> {
    (void)co_await n.mailbox(1).recv();
  }(sched, net));
  sched.run();
  ASSERT_NE(net.fabric(), nullptr);
  EXPECT_DOUBLE_EQ(net.fabric()->busy_integral(), 0.0);
}

}  // namespace
}  // namespace dtio::net
