// Tests for the PVFS-like file system: striping math, sparse bstreams,
// metadata operations, and end-to-end data round trips through all three
// interfaces (contiguous, list, datatype) including cross-interface
// write-with-one/read-with-another oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "dataloop/dataloop.h"
#include "pfs/bstream.h"
#include "pfs/cluster.h"
#include "pfs/layout.h"

namespace dtio::pfs {
namespace {

using sim::Task;

// ---- Layout -------------------------------------------------------------------

TEST(Layout, PlaceRoundRobin) {
  FileLayout layout(4, 100);
  EXPECT_EQ(layout.place(0).server, 0);
  EXPECT_EQ(layout.place(99).server, 0);
  EXPECT_EQ(layout.place(100).server, 1);
  EXPECT_EQ(layout.place(399).server, 3);
  EXPECT_EQ(layout.place(400).server, 0);    // second stripe
  EXPECT_EQ(layout.place(400).physical, 100);
  EXPECT_EQ(layout.place(50).physical, 50);
  EXPECT_EQ(layout.place(150).physical, 50);
}

TEST(Layout, LogicalInvertsPlace) {
  FileLayout layout(16, 64 * 1024);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto offset = static_cast<std::int64_t>(rng.next_below(1u << 30));
    const auto p = layout.place(offset);
    EXPECT_EQ(layout.logical(p.server, p.physical), offset);
  }
}

TEST(Layout, MapRegionSplitsAtStripBoundaries) {
  FileLayout layout(2, 10);
  std::vector<std::tuple<int, Region, std::int64_t>> pieces;
  layout.map_region(Region{5, 20}, [&](int s, Region r, std::int64_t pos) {
    pieces.emplace_back(s, r, pos);
  });
  // [5,10) srv0 phys[5,10); [10,20) srv1 phys[0,10); [20,25) srv0 phys[10,15)
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], std::make_tuple(0, Region{5, 5}, std::int64_t{0}));
  EXPECT_EQ(pieces[1], std::make_tuple(1, Region{0, 10}, std::int64_t{5}));
  EXPECT_EQ(pieces[2], std::make_tuple(0, Region{10, 5}, std::int64_t{15}));
}

TEST(Layout, MapRegionsTracksStreamAcrossRegions) {
  FileLayout layout(2, 10);
  const std::vector<Region> regions{{0, 4}, {30, 4}};
  std::vector<std::int64_t> stream_positions;
  layout.map_regions(regions, [&](int, Region, std::int64_t pos) {
    stream_positions.push_back(pos);
  });
  EXPECT_EQ(stream_positions, (std::vector<std::int64_t>{0, 4}));
}

TEST(Layout, ServersTouched) {
  FileLayout layout(4, 10);
  EXPECT_EQ(layout.servers_touched({0, 5}), 1);
  EXPECT_EQ(layout.servers_touched({0, 11}), 2);
  EXPECT_EQ(layout.servers_touched({0, 1000}), 4);  // capped at server count
  EXPECT_EQ(layout.servers_touched({0, 0}), 0);
}

TEST(Layout, IntersectsServerEdges) {
  FileLayout layout(4, 10);  // stripe 40; server 1 owns [10,20), [50,60), ...
  EXPECT_TRUE(layout.intersects_server({10, 1}, 1));
  EXPECT_TRUE(layout.intersects_server({19, 1}, 1));
  EXPECT_FALSE(layout.intersects_server({20, 1}, 1));   // first byte after
  EXPECT_FALSE(layout.intersects_server({0, 10}, 1));   // ends exactly at strip
  EXPECT_TRUE(layout.intersects_server({0, 11}, 1));    // one byte inside
  EXPECT_TRUE(layout.intersects_server({15, 100}, 1));  // starts mid-strip
  EXPECT_FALSE(layout.intersects_server({10, 0}, 1));   // empty region
  EXPECT_TRUE(layout.intersects_server({20, 31}, 1));   // reaches next stripe
  EXPECT_FALSE(layout.intersects_server({20, 30}, 1));  // stops one short
  // Negative offsets (exotic resized types): floor-division stripe math.
  EXPECT_TRUE(layout.intersects_server({-25, 10}, 1));   // [-25,-15) in [-30,-20)
  EXPECT_FALSE(layout.intersects_server({-20, 10}, 1));  // [-20,-10) is server 2
  EXPECT_TRUE(layout.intersects_server({-5, 20}, 1));    // crosses into [10,20)
}

TEST(Layout, IntersectsServerMatchesBruteForce) {
  Rng rng(17);
  for (const auto& [servers, strip] :
       {std::pair{3, std::int64_t{7}}, {16, std::int64_t{64}},
        {1, std::int64_t{10}}}) {
    FileLayout layout(servers, strip);
    for (int trial = 0; trial < 2000; ++trial) {
      const auto offset =
          static_cast<std::int64_t>(rng.next_below(4096)) - 2048;
      const auto length = static_cast<std::int64_t>(rng.next_below(300));
      for (int s = 0; s < servers; ++s) {
        bool expected = false;
        for (std::int64_t b = offset; b < offset + length; ++b) {
          // place() uses truncating division; derive the owner via
          // explicit floor math so negative offsets are handled too.
          const std::int64_t S = layout.stripe_size();
          std::int64_t within = b % S;
          if (within < 0) within += S;
          if (static_cast<int>(within / strip) == s) {
            expected = true;
            break;
          }
        }
        EXPECT_EQ(layout.intersects_server({offset, length}, s), expected)
            << "servers=" << servers << " strip=" << strip
            << " region=[" << offset << "," << offset + length << ") s=" << s;
      }
    }
  }
}

TEST(Layout, MaxServerBytesBoundsAnyWindow) {
  FileLayout layout(4, 10);
  EXPECT_EQ(layout.max_server_bytes(0), 0);
  EXPECT_EQ(layout.max_server_bytes(5), 5);     // clipped to the window
  EXPECT_EQ(layout.max_server_bytes(400), 120); // 10 full stripes + 2 strips
  // Property: no placement of a window can put more than the bound on one
  // server — worst case is a window aligned to maximise partial strips.
  for (std::int64_t window : {1, 9, 10, 11, 39, 40, 41, 100, 399}) {
    std::int64_t worst = 0;
    for (std::int64_t start = 0; start < layout.stripe_size(); ++start) {
      std::int64_t per_server[4] = {0, 0, 0, 0};
      layout.map_region({start, window}, [&](int s, Region r, std::int64_t) {
        per_server[s] += r.length;
      });
      for (const std::int64_t b : per_server) worst = std::max(worst, b);
    }
    EXPECT_GE(layout.max_server_bytes(window), worst) << "window " << window;
  }
}

// ---- Bstream -------------------------------------------------------------------

TEST(BstreamStore, ReadBackAndZeroFill) {
  Bstream bs;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  bs.write(100, data);
  std::vector<std::uint8_t> out(9, 0xFF);
  bs.read(98, out);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0, 0, 1, 2, 3, 4, 5, 0, 0}));
  EXPECT_EQ(bs.size(), 105);
}

TEST(BstreamStore, CrossPageWrites) {
  Bstream bs;
  std::vector<std::uint8_t> data(3 * Bstream::kPageSize);
  Rng rng(5);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::int64_t at = Bstream::kPageSize / 2;
  bs.write(at, data);
  std::vector<std::uint8_t> out(data.size());
  bs.read(at, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(bs.resident_pages(), 4u);
}

TEST(BstreamStore, SparseFilesStaySparse) {
  Bstream bs;
  bs.write(1000LL * Bstream::kPageSize, std::vector<std::uint8_t>{1});
  EXPECT_EQ(bs.resident_pages(), 1u);
  EXPECT_EQ(bs.size(), 1000LL * Bstream::kPageSize + 1);
}

TEST(BstreamStore, NoteWriteOnlyAdvancesSize) {
  Bstream bs;
  bs.note_write(500, 100);
  EXPECT_EQ(bs.size(), 600);
  EXPECT_EQ(bs.resident_pages(), 0u);
}

// ---- End-to-end fixture -----------------------------------------------------------

net::ClusterConfig small_config(int servers = 4, int clients = 2) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = clients;
  cfg.strip_size = 1024;  // small strips exercise splitting
  return cfg;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

TEST(EndToEnd, CreateOpenRemove) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  bool finished = false;
  cluster.scheduler().spawn([](Client& c, bool& done) -> Task<void> {
    MetaResult created = co_await c.create("/a");
    EXPECT_TRUE(created.status.is_ok());
    EXPECT_NE(created.handle, 0u);

    MetaResult duplicate = co_await c.create("/a");
    EXPECT_FALSE(duplicate.status.is_ok());

    MetaResult opened = co_await c.open("/a");
    EXPECT_TRUE(opened.status.is_ok());
    EXPECT_EQ(opened.handle, created.handle);

    MetaResult missing = co_await c.open("/nope");
    EXPECT_FALSE(missing.status.is_ok());

    MetaResult removed = co_await c.remove("/a");
    EXPECT_TRUE(removed.status.is_ok());
    MetaResult gone = co_await c.open("/a");
    EXPECT_FALSE(gone.status.is_ok());
    done = true;
  }(*client, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, ContigWriteReadAcrossStripes) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(10000, 42);  // spans several stripes
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/contig");
        EXPECT_TRUE(f.status.is_ok());
        Status w = co_await c.write_contig(f.handle, 500, src.data(),
                                           static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok());

        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(f.handle, 500, back.data(),
                                          static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok());
        EXPECT_EQ(back, src);

        MetaResult st = co_await c.stat("/contig");
        EXPECT_TRUE(st.status.is_ok());
        EXPECT_EQ(st.size, 500 + static_cast<std::int64_t>(src.size()));
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, ListWriteReadRoundTrip) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  const std::vector<Region> regions{{0, 100}, {2000, 50}, {5000, 300}};
  const auto stream = pattern_bytes(450, 7);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<Region>& regs,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/list");
        EXPECT_TRUE(f.status.is_ok());
        EXPECT_TRUE((co_await c.write_list(f.handle, regs, src.data())).is_ok());
        std::vector<std::uint8_t> back(src.size(), 0);
        EXPECT_TRUE((co_await c.read_list(f.handle, regs, back.data())).is_ok());
        EXPECT_EQ(back, src);
        done = true;
      }(*client, regions, stream, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, DatatypeWriteReadRoundTrip) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  // Strided file pattern crossing strip boundaries: 40 blocks of 96 bytes
  // every 250.
  auto filetype = dl::make_vector(40, 96, 250, dl::make_leaf(1));
  const auto stream = pattern_bytes(static_cast<std::size_t>(filetype->size),
                                    11);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, dl::DataloopPtr* type,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/dt");
        EXPECT_TRUE(f.status.is_ok());
        EXPECT_TRUE((co_await c.write_datatype(f.handle, *type, 123, 1, 0,
                                              (*type)->size, src.data())).is_ok());
        std::vector<std::uint8_t> back(src.size(), 0);
        EXPECT_TRUE((co_await c.read_datatype(f.handle, *type, 123, 1, 0,
                                             (*type)->size, back.data())).is_ok());
        EXPECT_EQ(back, src);
        done = true;
      }(*client, &filetype, stream, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, DatatypeStreamWindowIsRespected) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  auto filetype = dl::make_vector(10, 8, 64, dl::make_leaf(1));  // 80 bytes
  const auto stream = pattern_bytes(80, 13);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, dl::DataloopPtr* type,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/win");
        EXPECT_TRUE(f.status.is_ok());
        // Write the whole stream, then read back only window [24, 56).
        EXPECT_TRUE((co_await c.write_datatype(f.handle, *type, 0, 1, 0, 80,
                                              src.data())).is_ok());
        std::vector<std::uint8_t> part(32, 0);
        EXPECT_TRUE((co_await c.read_datatype(f.handle, *type, 0, 1, 24, 32,
                                             part.data())).is_ok());
        EXPECT_TRUE(std::equal(part.begin(), part.end(), src.begin() + 24));
        done = true;
      }(*client, &filetype, stream, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, CrossInterfaceOracle) {
  // Write with the datatype interface, read back with list and contig:
  // all three views of the file must agree byte-for-byte.
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  auto filetype = dl::make_vector(8, 32, 200, dl::make_leaf(1));  // 256 B
  const auto stream = pattern_bytes(256, 17);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, dl::DataloopPtr* type,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/oracle");
        EXPECT_TRUE(f.status.is_ok());
        EXPECT_TRUE((co_await c.write_datatype(f.handle, *type, 0, 1, 0, 256,
                                              src.data())).is_ok());

        // The same regions, described explicitly.
        std::vector<Region> regions;
        for (int b = 0; b < 8; ++b) regions.push_back({b * 200, 32});
        std::vector<std::uint8_t> via_list(256, 0);
        EXPECT_TRUE((co_await c.read_list(f.handle, regions, via_list.data())).is_ok());
        EXPECT_EQ(via_list, src);

        // Contig read of one block plus its gap.
        std::vector<std::uint8_t> via_contig(200, 0);
        EXPECT_TRUE((co_await c.read_contig(f.handle, 200, via_contig.data(),
                                           200)).is_ok());
        EXPECT_TRUE(std::equal(via_contig.begin(), via_contig.begin() + 32,
                               src.begin() + 32));
        // Gap bytes were never written: zero-filled.
        for (std::size_t i = 32; i < 200; ++i) EXPECT_EQ(via_contig[i], 0);
        done = true;
      }(*client, &filetype, stream, finished));
  cluster.run();
  EXPECT_TRUE(finished);
}

TEST(EndToEnd, MultipleClientsDisjointWrites) {
  auto cfg = small_config(4, 4);
  Cluster cluster(cfg);
  std::vector<std::unique_ptr<Client>> clients;
  for (int r = 0; r < 4; ++r) clients.push_back(cluster.make_client(r));
  std::vector<std::vector<std::uint8_t>> data;
  for (int r = 0; r < 4; ++r) {
    data.push_back(pattern_bytes(5000, 100 + static_cast<std::uint64_t>(r)));
  }
  int finished = 0;

  // Rank 0 creates; all ranks write disjoint 5000-byte segments.
  cluster.scheduler().spawn([](Cluster& cl, Client& c) -> Task<void> {
    (void)co_await c.create("/shared");
    (void)cl;
  }(cluster, *clients[0]));
  cluster.run();  // settle create first

  for (int r = 0; r < 4; ++r) {
    cluster.scheduler().spawn(
        [](Client& c, const std::vector<std::uint8_t>& src, int rank,
           int& done) -> Task<void> {
          MetaResult f = co_await c.open("/shared");
          EXPECT_TRUE(f.status.is_ok());
          EXPECT_TRUE((co_await c.write_contig(
              f.handle, rank * 5000, src.data(),
              static_cast<std::int64_t>(src.size()))).is_ok());
          ++done;
        }(*clients[static_cast<std::size_t>(r)],
          data[static_cast<std::size_t>(r)], r, finished));
  }
  cluster.run();
  EXPECT_EQ(finished, 4);

  bool verified = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::vector<std::uint8_t>>& all,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.open("/shared");
        std::vector<std::uint8_t> back(20000);
        EXPECT_TRUE((co_await c.read_contig(f.handle, 0, back.data(), 20000)).is_ok());
        for (int r = 0; r < 4; ++r) {
          EXPECT_TRUE(std::equal(all[static_cast<std::size_t>(r)].begin(),
                                 all[static_cast<std::size_t>(r)].end(),
                                 back.begin() + r * 5000))
              << "rank " << r;
        }
        done = true;
      }(*clients[0], data, verified));
  cluster.run();
  EXPECT_TRUE(verified);
}

TEST(EndToEnd, OverlappingWritesResolveDeterministically) {
  // Two clients write the same range; the simulated-time order decides,
  // and repeated runs agree byte for byte.
  auto run_once = []() {
    Cluster cluster(small_config(2, 2));
    auto c0 = cluster.make_client(0);
    auto c1 = cluster.make_client(1);
    const auto a = pattern_bytes(4096, 111);
    const auto b = pattern_bytes(4096, 222);
    cluster.scheduler().spawn([](Client& c) -> Task<void> {
      (void)co_await c.create("/ow");
    }(*c0));
    cluster.run();
    for (int r = 0; r < 2; ++r) {
      cluster.scheduler().spawn(
          [](Client& c, const std::vector<std::uint8_t>& src,
             int rank) -> Task<void> {
            MetaResult f = co_await c.open("/ow");
            (void)co_await c.write_contig(f.handle, 0, src.data(),
                                          4096 - rank);  // overlap
          }(r == 0 ? *c0 : *c1, r == 0 ? a : b, r));
    }
    cluster.run();
    std::vector<std::uint8_t> back(4096);
    cluster.scheduler().spawn(
        [](Client& c, std::vector<std::uint8_t>& out) -> Task<void> {
          MetaResult f = co_await c.open("/ow");
          (void)co_await c.read_contig(f.handle, 0, out.data(), 4096);
        }(*c0, back));
    cluster.run();
    return back;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EndToEnd, TimingOnlyModeMatchesTimingOfRealTransfer) {
  // The whole point of timing-only mode: identical simulated time and
  // counters, no data movement.
  auto run_once = [](bool transfer) {
    Cluster cluster(small_config());
    auto client = cluster.make_client(0);
    client->set_transfer_data(transfer);
    const auto data = pattern_bytes(50000, 1);
    cluster.scheduler().spawn(
        [](Client& c, const std::vector<std::uint8_t>& src) -> Task<void> {
          MetaResult f = co_await c.create("/t");
          (void)co_await c.write_contig(f.handle, 0, src.data(),
                                        static_cast<std::int64_t>(src.size()));
          std::vector<std::uint8_t> back(src.size());
          (void)co_await c.read_contig(f.handle, 0, back.data(),
                                       static_cast<std::int64_t>(back.size()));
        }(*client, data));
    cluster.run();
    return std::make_tuple(cluster.scheduler().now(), client->stats().io_ops,
                           client->stats().accessed_bytes,
                           cluster.server(0).stats().bytes_written);
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

TEST(EndToEnd, StatsCountOpsAndBytes) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(3000, 2);
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src) -> Task<void> {
        MetaResult f = co_await c.create("/s");
        (void)co_await c.write_contig(f.handle, 0, src.data(), 3000);
        (void)co_await c.read_contig(f.handle, 0,
                                     const_cast<std::uint8_t*>(src.data()),
                                     3000);
      }(*client, data));
  cluster.run();
  const IoStats& stats = client->stats();
  EXPECT_EQ(stats.io_ops, 2u);
  // desired_bytes is owned by the I/O-method layer (data sieving reads
  // more than desired); the raw client counts only accessed bytes.
  EXPECT_EQ(stats.desired_bytes, 0u);
  EXPECT_EQ(stats.accessed_bytes, 6000u);
  // 3000 B with 1024 B strips: pieces 0..1023, 1024..2047, 2048..2999 on
  // three servers; same for the read.
  EXPECT_EQ(stats.regions_client, 6u);
  EXPECT_EQ(stats.requests_sent, 6u);
}

TEST(EndToEnd, ServerStatsTrackProcessing) {
  Cluster cluster(small_config());
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(2048, 3);
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src) -> Task<void> {
        MetaResult f = co_await c.create("/sv");
        (void)co_await c.write_contig(f.handle, 0, src.data(), 2048);
      }(*client, data));
  cluster.run();
  // Strips are 1024 B: servers 0 and 1 each received one request of 1024 B.
  EXPECT_EQ(cluster.server(0).stats().bytes_written, 1024u);
  EXPECT_EQ(cluster.server(1).stats().bytes_written, 1024u);
  EXPECT_EQ(cluster.server(2).stats().bytes_written, 0u);
  // Metadata + its data request.
  EXPECT_GE(cluster.server(0).stats().requests, 2u);
}

// ---- Pruned dataloop expansion ------------------------------------------------

/// Round-trip a datatype write+read on a fresh cluster with the given
/// pruned_expansion setting; returns the read-back payload and the
/// server-side counters the pruning must (and must not) change.
struct DatatypeRunResult {
  std::vector<std::uint8_t> back;
  std::uint64_t regions_walked = 0;
  std::uint64_t subtrees_skipped = 0;
  std::uint64_t pieces_pruned = 0;
  /// Per-server (my_pieces, bytes_read, bytes_written): identical with
  /// pruning on and off — pruning may only skip work, never data.
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>
      per_server;
};

DatatypeRunResult run_datatype_roundtrip(dl::DataloopPtr filetype,
                                         std::int64_t displacement,
                                         std::int64_t count,
                                         const std::vector<std::uint8_t>& stream,
                                         bool pruned) {
  net::ClusterConfig cfg = small_config();
  cfg.server.pruned_expansion = pruned;
  Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  DatatypeRunResult result;
  result.back.assign(stream.size(), 0);
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, dl::DataloopPtr type, std::int64_t disp, std::int64_t n,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& back,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/pruned");
        EXPECT_TRUE(f.status.is_ok());
        const auto len = static_cast<std::int64_t>(src.size());
        EXPECT_TRUE((co_await c.write_datatype(f.handle, type, disp, n, 0, len,
                                               src.data())).is_ok());
        EXPECT_TRUE((co_await c.read_datatype(f.handle, type, disp, n, 0, len,
                                              back.data())).is_ok());
        done = true;
      }(*client, filetype, displacement, count, stream, result.back, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  for (int s = 0; s < cfg.num_servers; ++s) {
    const ServerStats& st = cluster.server(s).stats();
    result.regions_walked += st.regions_walked;
    result.subtrees_skipped += st.subtrees_skipped;
    result.pieces_pruned += st.pieces_pruned;
    result.per_server.emplace_back(st.my_pieces, st.bytes_read,
                                   st.bytes_written);
  }
  return result;
}

TEST(EndToEnd, PrunedExpansionMatchesFullExpansionRandomized) {
  // Property: for random strided/indexed file patterns, servers with
  // subtree pruning on must produce byte-identical payloads and identical
  // per-server piece/byte counts as full expansion — only the number of
  // regions walked may shrink.
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    dl::DataloopPtr filetype;
    if (rng.next_below(2) == 0) {
      const std::int64_t bl = rng.next_range(1, 200);
      filetype = dl::make_vector(rng.next_range(4, 40), bl,
                                 bl + rng.next_range(1, 700),
                                 dl::make_leaf(1));
    } else {
      const std::int64_t nblocks = rng.next_range(3, 12);
      std::vector<std::int64_t> lens;
      std::vector<std::int64_t> offs;
      std::int64_t at = 0;
      for (std::int64_t b = 0; b < nblocks; ++b) {
        const std::int64_t bl = rng.next_range(1, 64);
        lens.push_back(bl);
        offs.push_back(at);
        at += bl * 4 + rng.next_range(1, 900);
      }
      filetype = dl::make_indexed(lens, offs, dl::make_leaf(4));
    }
    const std::int64_t count = rng.next_range(1, 3);
    const std::int64_t displacement = rng.next_range(0, 2000);
    const auto stream = pattern_bytes(
        static_cast<std::size_t>(filetype->size * count), 100 + trial);

    const auto pruned =
        run_datatype_roundtrip(filetype, displacement, count, stream, true);
    const auto full =
        run_datatype_roundtrip(filetype, displacement, count, stream, false);

    EXPECT_EQ(pruned.back, stream) << "trial " << trial;
    EXPECT_EQ(full.back, stream) << "trial " << trial;
    EXPECT_EQ(pruned.per_server, full.per_server) << "trial " << trial;
    EXPECT_LE(pruned.regions_walked, full.regions_walked) << "trial " << trial;
    EXPECT_EQ(full.subtrees_skipped, 0u);
    EXPECT_EQ(full.pieces_pruned, 0u);
  }
}

TEST(EndToEnd, PrunedExpansionSkipsOtherServersSubtrees) {
  // Deterministic shape: 64 strip-sized rows, each landing wholly in one
  // strip, with stride 5 strips — row k lands on server k mod 4, so each
  // server owns exactly 16 rows and must probe (not walk) the other 48
  // per request.
  auto filetype = dl::make_vector(64, 1024, 5 * 1024, dl::make_leaf(1));
  const auto stream = pattern_bytes(static_cast<std::size_t>(filetype->size), 5);
  const auto pruned = run_datatype_roundtrip(filetype, 0, 1, stream, true);
  const auto full = run_datatype_roundtrip(filetype, 0, 1, stream, false);
  EXPECT_EQ(pruned.back, stream);
  EXPECT_GT(pruned.subtrees_skipped, 0u);
  EXPECT_GT(pruned.pieces_pruned, 0u);
  // Full expansion walks all 64 pieces on each of the 4 servers (touched
  // by both the write and the read); pruning cuts the aggregate walk at
  // least 2x even counting the unprunable own pieces.
  EXPECT_GE(full.regions_walked, 2 * pruned.regions_walked);
}

TEST(EndToEnd, DataloopCacheEvictsLeastRecentlyUsed) {
  net::ClusterConfig cfg = small_config(1, 1);
  cfg.server.dataloop_cache = true;
  cfg.server.dataloop_cache_entries = 2;
  Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  // Request pattern A B A C A with room for 2 entries. True LRU keeps A
  // hot (B is the eviction victim when C arrives): 3 decodes, 2 hits.
  // FIFO would evict A on C's arrival and re-decode it: 4 decodes, 1 hit.
  auto type_a = dl::make_vector(4, 8, 32, dl::make_leaf(1));
  auto type_b = dl::make_vector(2, 16, 64, dl::make_leaf(1));
  auto type_c = dl::make_vector(8, 4, 16, dl::make_leaf(1));
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, dl::DataloopPtr a, dl::DataloopPtr b, dl::DataloopPtr cc,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/lru");
        EXPECT_TRUE(f.status.is_ok());
        std::vector<std::uint8_t> buf(64, 0);
        for (const dl::DataloopPtr& type : {a, b, a, cc, a}) {
          EXPECT_TRUE((co_await c.read_datatype(f.handle, type, 0, 1, 0,
                                                type->size, buf.data()))
                          .is_ok());
        }
        done = true;
      }(*client, type_a, type_b, type_c, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().dataloops_decoded, 3u);
  EXPECT_EQ(cluster.server(0).stats().dataloop_cache_hits, 2u);
}

}  // namespace
}  // namespace dtio::pfs
