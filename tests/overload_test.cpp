// Overload protection and tail-latency robustness: server admission
// control (bounded request queues, typed kOverloaded sheds with
// retry_after hints), client AIMD flow control, per-server health
// tracking with a circuit breaker, hedged reads against stragglers, and
// deterministic degraded-node windows. Plus the mailbox primitives the
// layer is built on (timed receives at edge cases, two-tag receives,
// queued-byte accounting) and age-based replay-window expiry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "pfs/cluster.h"
#include "sim/mailbox.h"
#include "sim/scheduler.h"
#include "sim/tracer.h"

namespace dtio {
namespace {

using net::FaultPlan;
using net::FaultSpec;
using pfs::Client;
using pfs::MetaResult;
using sim::Task;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

net::ClusterConfig overload_config(int servers = 1, int clients = 1) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = clients;
  cfg.strip_size = 1024;
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 8;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  return cfg;
}

bool trace_has(const sim::Tracer& tracer, std::string_view kind) {
  for (const auto& e : tracer.events()) {
    if (e.kind == kind) return true;
  }
  return false;
}

// ---- Mailbox timed-receive edge cases --------------------------------------

TEST(MailboxTimedRecv, ZeroTimeoutTakesQueuedMessage) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  sched.schedule_call(500 * kMicrosecond,
                      [&] { mailbox.deliver(sim::Message(2, 7, 64, 41)); });
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb,
                 std::optional<sim::Message>& got) -> Task<void> {
    co_await s.delay(kMillisecond);
    // Ready path: the message is already queued, so a zero timeout still
    // returns it without suspending.
    got = co_await mb.recv_for(sim::kAnySource, 7, 0);
  }(sched, mailbox, got));
  sched.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->take<int>(), 41);
}

TEST(MailboxTimedRecv, ZeroTimeoutExpiresImmediatelyWhenEmpty) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  SimTime expired_at = -1;
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb,
                 std::optional<sim::Message>& got,
                 SimTime& expired_at) -> Task<void> {
    co_await s.delay(kMillisecond);
    got = co_await mb.recv_for(sim::kAnySource, 7, 0);
    expired_at = s.now();
  }(sched, mailbox, got, expired_at));
  sched.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(expired_at, kMillisecond);  // no simulated time consumed
}

TEST(MailboxTimedRecv, DeadlineExactArrivalLoses) {
  // The expiry callback is scheduled when the waiter parks; a delivery
  // scheduled later for the very same instant runs after it. The receive
  // must report a timeout and the message must stay queued, not vanish.
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  sched.spawn([](sim::Mailbox& mb,
                 std::optional<sim::Message>& got) -> Task<void> {
    got = co_await mb.recv_for(sim::kAnySource, 7, 5 * kMillisecond);
  }(mailbox, got));
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb) -> Task<void> {
    co_await s.delay(5 * kMillisecond);
    mb.deliver(sim::Message(1, 7, 64, 9));
  }(sched, mailbox));
  sched.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(mailbox.queued(), 1u);
}

TEST(MailboxTimedRecv, ClearQueueWhileWaiterParkedExpiresCleanly) {
  // clear_queue (the crash path) discards undelivered messages but leaves
  // parked waiters alone: the timed waiter still expires on schedule and
  // the mailbox keeps working afterwards.
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> first, second;
  std::size_t cleared = 0;
  sched.spawn([](sim::Mailbox& mb, std::optional<sim::Message>& first,
                 std::optional<sim::Message>& second) -> Task<void> {
    first = co_await mb.recv_for(sim::kAnySource, 7, 5 * kMillisecond);
    second = co_await mb.recv_for(sim::kAnySource, 7, 10 * kMillisecond);
  }(mailbox, first, second));
  sched.schedule_call(kMillisecond,
                      [&] { mailbox.deliver(sim::Message(1, 9, 64, 1)); });
  sched.schedule_call(2 * kMillisecond, [&] { cleared = mailbox.clear_queue(); });
  sched.schedule_call(6 * kMillisecond,
                      [&] { mailbox.deliver(sim::Message(1, 7, 64, 2)); });
  sched.run();
  EXPECT_EQ(cleared, 1u);
  EXPECT_FALSE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->take<int>(), 2);
  EXPECT_EQ(mailbox.queued_bytes(), 0u);
}

TEST(MailboxQueuedBytes, TracksDeliverTakeAndClear) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  sched.schedule_call(500 * kMicrosecond, [&] {
    mailbox.deliver(sim::Message(1, 7, 100, 1));
    mailbox.deliver(sim::Message(1, 9, 50, 2));
  });
  bool done = false;
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb, bool& done) -> Task<void> {
    co_await s.delay(kMillisecond);
    EXPECT_EQ(mb.queued_bytes(), 150u);
    auto got = co_await mb.recv_for(sim::kAnySource, 7, 0);
    EXPECT_TRUE(got.has_value());
    EXPECT_EQ(mb.queued_bytes(), 50u);  // the 100-byte message left
    mb.clear_queue();
    EXPECT_EQ(mb.queued_bytes(), 0u);
    done = true;
  }(sched, mailbox, done));
  sched.run();
  EXPECT_TRUE(done);
}

// ---- Two-tag receive (the hedging primitive) -------------------------------

TEST(MailboxRecv2, FirstDeliveryWinsByTag) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  sched.spawn([](sim::Mailbox& mb,
                 std::optional<sim::Message>& got) -> Task<void> {
    got = co_await mb.recv2_for(sim::kAnySource, 7, 9, 10 * kMillisecond);
  }(mailbox, got));
  sched.schedule_call(kMillisecond,
                      [&] { mailbox.deliver(sim::Message(1, 9, 64, 90)); });
  sched.schedule_call(2 * kMillisecond,
                      [&] { mailbox.deliver(sim::Message(1, 7, 64, 70)); });
  sched.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 9u);
  EXPECT_EQ(got->take<int>(), 90);
  // The losing reply parks unclaimed instead of being mistaken for anything.
  EXPECT_EQ(mailbox.queued(), 1u);
}

TEST(MailboxRecv2, ReadyPathTakesQueuedSecondTag) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  SimTime got_at = -1;
  sched.schedule_call(500 * kMicrosecond,
                      [&] { mailbox.deliver(sim::Message(1, 9, 64, 90)); });
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb,
                 std::optional<sim::Message>& got,
                 SimTime& got_at) -> Task<void> {
    co_await s.delay(kMillisecond);
    got = co_await mb.recv2_for(sim::kAnySource, 7, 9, kMillisecond);
    got_at = s.now();
  }(sched, mailbox, got, got_at));
  sched.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 9u);
  EXPECT_EQ(got_at, kMillisecond);  // immediate, no suspension
}

TEST(MailboxRecv2, TimesOutWhenNeitherTagArrives) {
  sim::Scheduler sched;
  sim::Mailbox mailbox(sched);
  std::optional<sim::Message> got;
  SimTime expired_at = -1;
  sched.spawn([](sim::Scheduler& s, sim::Mailbox& mb,
                 std::optional<sim::Message>& got,
                 SimTime& expired_at) -> Task<void> {
    got = co_await mb.recv2_for(sim::kAnySource, 7, 9, 3 * kMillisecond);
    expired_at = s.now();
  }(sched, mailbox, got, expired_at));
  sched.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(expired_at, 3 * kMillisecond);
}

// ---- Server admission control ----------------------------------------------

TEST(Admission, UnboundedConfigNeverSheds) {
  auto cfg = overload_config();
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8 * 1024, 51);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/unbounded");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int oks = 0;
  for (int i = 0; i < 8; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 1024, src.data() + i * 1024,
                                             1024);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, oks));
  }
  cluster.run();
  EXPECT_EQ(oks, 8);
  EXPECT_EQ(cluster.server(0).stats().sheds_depth, 0u);
  EXPECT_EQ(cluster.server(0).stats().sheds_bytes, 0u);
  EXPECT_EQ(client->overloads_seen(), 0u);
}

TEST(Admission, DepthBoundShedsAndRetriesRecover) {
  auto cfg = overload_config();
  cfg.server.max_queue_depth = 1;
  pfs::Cluster cluster(cfg);
  sim::Tracer tracer;
  cluster.set_tracer(&tracer);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(6 * 2048, 52);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/depth");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int oks = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 2048, src.data() + i * 2048,
                                             2048);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, oks));
  }
  cluster.run();

  bool verified = false;
  cluster.scheduler().spawn(
      [](Client& c, std::uint64_t h, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            h, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);  // every shed write eventually applied once
        done = true;
      }(*client, handle, data, verified));
  cluster.run();

  EXPECT_EQ(oks, 6);
  EXPECT_TRUE(verified);
  EXPECT_GT(cluster.server(0).stats().sheds_depth, 0u);
  EXPECT_GT(cluster.server(0).stats().max_backlog, 1u);
  EXPECT_GT(client->overloads_seen(), 0u);
  EXPECT_GT(client->rpc_retries(), 0u);
  EXPECT_TRUE(trace_has(tracer, "shed"));
}

TEST(Admission, ByteBoundShedsAndRetriesRecover) {
  auto cfg = overload_config();
  cfg.server.max_queued_bytes = 4096;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(6 * 8192, 53);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/bytes");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int oks = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 8192, src.data() + i * 8192,
                                             8192);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, oks));
  }
  cluster.run();
  EXPECT_EQ(oks, 6);
  EXPECT_GT(cluster.server(0).stats().sheds_bytes, 0u);
  EXPECT_GT(client->overloads_seen(), 0u);
}

TEST(Admission, LockTrafficIsNeverShed) {
  // The client lock path has no retry layer (untimed recv); a shed reply
  // would strand it. Flood a depth-1 server and issue lock/unlock through
  // the storm: the data ops shed and retry, the lock ops sail through.
  auto cfg = overload_config();
  cfg.server.max_queue_depth = 1;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(6 * 2048, 54);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/locked");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int oks = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 2048, src.data() + i * 2048,
                                             2048);
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, oks));
  }
  bool lock_ok = false;
  cluster.scheduler().spawn(
      [](Client& c, std::uint64_t h, bool& lock_ok) -> Task<void> {
        Status l = co_await c.lock(h);
        EXPECT_TRUE(l.is_ok()) << l.to_string();
        Status u = co_await c.unlock(h);
        EXPECT_TRUE(u.is_ok()) << u.to_string();
        lock_ok = l.is_ok() && u.is_ok();
      }(*client, handle, lock_ok));
  cluster.run();
  EXPECT_EQ(oks, 6);
  EXPECT_TRUE(lock_ok);
  EXPECT_GT(cluster.server(0).stats().sheds_depth, 0u);
}

// ---- Client AIMD flow control ----------------------------------------------

TEST(FlowControl, WindowShrinksUnderTimeoutsThenRecovers) {
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 5 * kMillisecond;
  cfg.client.flow_window = 8;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, 5 * kMillisecond, 40 * kMillisecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(1024, 55);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/aimd");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(5 * kMillisecond - sched.now());
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_GE(client->rpc_timeouts(), 3u);
  const auto health = client->lane_health(0);
  // Each timeout halved the window (8 -> 4 -> 2 -> 1); the successes after
  // the outage climbed it back additively, well short of the cap.
  EXPECT_LT(health.window, 8);
  EXPECT_GE(health.window, 1);
  EXPECT_GT(health.ewma_latency_ns, 0.0);
}

std::uint64_t backlog_with_flow_window(int flow_window) {
  auto cfg = overload_config();
  cfg.client.flow_window = flow_window;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8 * 1024, 56);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/backlog");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int oks = 0;
  for (int i = 0; i < 8; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 1024, src.data() + i * 1024,
                                             1024);
          EXPECT_TRUE(w.is_ok()) << w.to_string();
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, oks));
  }
  cluster.run();
  EXPECT_EQ(oks, 8);
  return cluster.server(0).stats().max_backlog;
}

TEST(FlowControl, TinyWindowBoundsServerBacklog) {
  const std::uint64_t unbounded = backlog_with_flow_window(0);
  const std::uint64_t window_one = backlog_with_flow_window(1);
  // Eight concurrent writes: without flow control they pile up at the
  // server; with a window of one the client itself serializes them.
  EXPECT_GE(unbounded, 3u);
  EXPECT_LE(window_one, 1u);
}

TEST(FlowControl, ConcurrentOpsStayCorrectUnderTinyWindow) {
  auto cfg = overload_config();
  cfg.client.flow_window = 2;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(6 * 2048, 57);

  std::uint64_t handle = 0;
  cluster.scheduler().spawn([](Client& c, std::uint64_t& h) -> Task<void> {
    MetaResult f = co_await c.create("/window2");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    h = f.handle;
  }(*client, handle));
  cluster.run();

  int write_oks = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          Status w = co_await c.write_contig(h, i * 2048, src.data() + i * 2048,
                                             2048);
          if (w.is_ok()) ++oks;
        }(*client, handle, i, data, write_oks));
  }
  cluster.run();

  int read_oks = 0;
  for (int i = 0; i < 6; ++i) {
    cluster.scheduler().spawn(
        [](Client& c, std::uint64_t h, int i,
           const std::vector<std::uint8_t>& src, int& oks) -> Task<void> {
          std::vector<std::uint8_t> back(2048);
          Status r = co_await c.read_contig(h, i * 2048, back.data(), 2048);
          EXPECT_TRUE(r.is_ok()) << r.to_string();
          const bool match = std::equal(back.begin(), back.end(),
                                        src.begin() + i * 2048);
          EXPECT_TRUE(match) << "slice " << i;
          if (r.is_ok() && match) ++oks;
        }(*client, handle, i, data, read_oks));
  }
  cluster.run();
  EXPECT_EQ(write_oks, 6);
  EXPECT_EQ(read_oks, 6);
}

// ---- Circuit breaker --------------------------------------------------------

TEST(Breaker, DisabledByDefaultNeverFailsFast) {
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 3 * kMillisecond;
  cfg.client.rpc_max_attempts = 3;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, 0, kSecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);

  Status status;
  cluster.scheduler().spawn([](Client& c, Status& out) -> Task<void> {
    out = (co_await c.create("/nobreaker")).status;
  }(*client, status));
  cluster.run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.to_string();
  EXPECT_EQ(client->breaker_fast_fails(), 0u);
  EXPECT_EQ(client->lane_health(0).breaker, 0);
}

TEST(Breaker, OpensAfterConsecutiveTimeoutsAndFailsFast) {
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 3 * kMillisecond;
  cfg.client.rpc_max_attempts = 5;
  cfg.client.rpc_backoff_base = kMillisecond;
  cfg.client.breaker_failures = 3;
  cfg.client.breaker_open_duration = 200 * kMillisecond;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, 5 * kMillisecond, 10 * kSecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 58);

  Status first, second;
  std::uint64_t timeouts_after_first = 0;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, Status& first, Status& second,
         std::uint64_t& timeouts_after_first) -> Task<void> {
        MetaResult f = co_await c.create("/breaker");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(5 * kMillisecond - sched.now());
        first = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        timeouts_after_first = c.rpc_timeouts();
        // The breaker opened mid-op; this op must fail in microseconds
        // without burning a single additional timeout.
        second = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
      }(cluster.scheduler(), *client, data, first, second,
        timeouts_after_first));
  cluster.run();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable) << first.to_string();
  EXPECT_EQ(second.code(), StatusCode::kUnavailable) << second.to_string();
  EXPECT_GE(client->breaker_fast_fails(), 1u);
  EXPECT_EQ(client->rpc_timeouts(), timeouts_after_first);
  EXPECT_EQ(client->lane_health(0).breaker, 1);  // still open
}

TEST(Breaker, HalfOpenProbeRecoversAfterOutageEnds) {
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 3 * kMillisecond;
  cfg.client.rpc_max_attempts = 3;
  cfg.client.rpc_backoff_base = kMillisecond;
  cfg.client.breaker_failures = 2;
  cfg.client.breaker_open_duration = 20 * kMillisecond;
  pfs::Cluster cluster(cfg);
  sim::Tracer tracer;
  cluster.set_tracer(&tracer);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, 5 * kMillisecond, 60 * kMillisecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 59);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/halfopen");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(6 * kMillisecond - sched.now());
        Status w;
        for (int tries = 0; tries < 40; ++tries) {
          w = co_await c.write_contig(
              f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
          if (w.is_ok()) break;
          co_await sched.delay(10 * kMillisecond);
        }
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_GE(client->breaker_fast_fails(), 1u);
  EXPECT_EQ(client->lane_health(0).breaker, 0);  // closed again
  EXPECT_TRUE(trace_has(tracer, "breaker_open"));
  EXPECT_TRUE(trace_has(tracer, "breaker_half_open"));
  EXPECT_TRUE(trace_has(tracer, "breaker_close"));
}

// A half-open probe answered with a definitive application-level error
// (kNotFound here) proves the server alive and must settle the probe: the
// breaker closes and the consecutive-failure count resets. Regression
// test for the probe wedging half-open with probe_in_flight stuck set,
// which made every later RPC to a healthy server fail fast forever.
TEST(Breaker, ErrorReplyProbeSettlesHalfOpenBreaker) {
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 3 * kMillisecond;
  cfg.client.rpc_max_attempts = 2;
  cfg.client.rpc_backoff_base = kMillisecond;
  cfg.client.breaker_failures = 2;
  cfg.client.breaker_open_duration = 20 * kMillisecond;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_outage(/*node=*/0, 5 * kMillisecond, 60 * kMillisecond);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 61);

  Status probe, after;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, Status& probe, Status& after,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/probe");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(6 * kMillisecond - sched.now());
        // Two timed-out attempts during the outage trip the breaker.
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_FALSE(w.is_ok());
        // Past outage end and cool-down, probe the half-open lane with an
        // op whose reply is a definitive error.
        co_await sched.delay(100 * kMillisecond);
        probe = (co_await c.open("/missing")).status;
        after = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        done = true;
      }(cluster.scheduler(), *client, data, probe, after, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(probe.code(), StatusCode::kNotFound) << probe.to_string();
  EXPECT_TRUE(after.is_ok()) << after.to_string();
  EXPECT_EQ(client->lane_health(0).breaker, 0);  // closed by the error reply
  EXPECT_EQ(client->lane_health(0).consecutive_failures, 0);
}

// ---- Hedged reads -----------------------------------------------------------

// Config for straggler scenarios: one strip per server so an 8 KiB read
// maps to one 8 KiB region per touched server. Healthy attempt latency is
// ~2.3 ms; degraded 4x it is ~6.4 ms, so a 5 ms timeout sits between the
// two and the hedge's extended deadline (quantile + fresh timeout) covers
// the slow-but-alive primary.
net::ClusterConfig straggler_config(int servers) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = 1;
  cfg.strip_size = 8192;
  cfg.client.rpc_timeout = 5 * kMillisecond;
  cfg.client.rpc_max_attempts = 10;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  return cfg;
}

TEST(Hedging, OffByDefaultIssuesNoHedges) {
  auto cfg = straggler_config(1);
  cfg.client.rpc_timeout = 100 * kMillisecond;  // no timeouts either
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  plan.add_degraded(/*node=*/0, 2 * kMillisecond, 50 * kMillisecond, 4.0);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8192, 60);

  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/nohedge");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < 5; ++i) {
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
          EXPECT_EQ(back, src);
        }
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->hedges_issued(), 0u);
  EXPECT_GT(cluster.server(0).stats().degraded_requests, 0u);
}

TEST(Hedging, RequiresMinimumSamplesBeforeArming) {
  auto cfg = straggler_config(1);
  cfg.client.rpc_timeout = 100 * kMillisecond;
  cfg.client.hedge_quantile = 95;
  cfg.client.hedge_min_samples = 1000;  // never reached in this run
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8192, 61);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, FaultPlan& plan, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/minsamples");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < 5; ++i) {
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
        }
        plan.add_degraded(0, sched.now(), sched.now() + 30 * kMillisecond, 4.0);
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), plan, *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->hedges_issued(), 0u);
}

TEST(Hedging, HedgeWinsWhenPrimaryRequestIsDropped) {
  auto cfg = straggler_config(1);
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.hedge_quantile = 95;
  cfg.client.hedge_min_samples = 8;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8192, 62);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, FaultPlan& plan, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/hedgewin");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < 16; ++i) {  // arm the lane's latency quantile
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
        }
        // Swallow the primary request (in flight ~100-200 us after issue);
        // the hedge fires at the lane's p95 (~2.3 ms), far past the window,
        // and its reply is the one that completes the op — no timeout.
        plan.add_window(/*node=*/0, sched.now() + 20 * kMicrosecond,
                        sched.now() + 400 * kMicrosecond,
                        FaultSpec{.drop = 1.0});
        std::fill(back.begin(), back.end(), 0);
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), plan, *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->hedges_issued(), 1u);
  EXPECT_EQ(client->hedges_won(), 1u);
  EXPECT_EQ(client->rpc_timeouts(), 0u);
  EXPECT_GE(plan.counters().dropped, 1u);
}

TEST(Hedging, SlowButAlivePrimaryCountsViaExtendedDeadline) {
  // A 4x-degraded server pushes the attempt past rpc_timeout. Without
  // hedging that is a discarded attempt; with it, the hedge extends the
  // wait by a fresh timeout on both tags and the slow primary's reply
  // still completes the op — no timeout, no retry.
  auto cfg = straggler_config(1);
  cfg.client.hedge_quantile = 95;
  cfg.client.hedge_min_samples = 8;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8192, 63);

  SimTime degraded_read_latency = 0;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, FaultPlan& plan, Client& c,
         const std::vector<std::uint8_t>& src, SimTime& latency,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/slowprimary");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < 16; ++i) {
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
        }
        plan.add_degraded(0, sched.now(), sched.now() + 30 * kMillisecond, 4.0);
        std::fill(back.begin(), back.end(), 0);
        const SimTime t0 = sched.now();
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        latency = sched.now() - t0;
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), plan, *client, data, degraded_read_latency,
        finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->hedges_issued(), 1u);
  EXPECT_EQ(client->hedges_won(), 0u);  // the primary got there first
  EXPECT_EQ(client->rpc_timeouts(), 0u);
  EXPECT_EQ(client->rpc_retries(), 0u);
  // The op outlived rpc_timeout — only the extended deadline saved it.
  EXPECT_GT(degraded_read_latency, cluster.config().client.rpc_timeout);
}

TEST(Hedging, BreakerOpenDuringHedgeDelaySuppressesHedge) {
  // Fail-fast hedging: a hedge armed while the lane was healthy must NOT
  // be issued if the breaker opens during the hedge delay — aiming a
  // second copy at a server already judged down is the one place extra
  // load cannot help. Timeline (T = outage start, all deterministic with
  // jitter off): a concurrent write times out at T+20ms (failure 1) and
  // again at T+42ms, opening the breaker. The probe read issues at T+41ms
  // — breaker still closed, hedge armed at the lane's p95 (~2.3ms) — and
  // reaches its hedge-issue point at ~T+43.3ms with the breaker now open:
  // the hedge is suppressed and the primary gets the full fresh timeout.
  auto cfg = straggler_config(1);
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 5;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  cfg.client.rpc_backoff_jitter = 0;  // exact breaker-open timing
  cfg.client.hedge_quantile = 95;
  cfg.client.hedge_min_samples = 8;
  cfg.client.breaker_failures = 2;
  pfs::Cluster cluster(cfg);
  FaultPlan plan(5);
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(8192, 65);

  Status write_status, read_status;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, FaultPlan& plan, Client& c,
         const std::vector<std::uint8_t>& src, Status& write_status,
         Status& read_status, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/suppress");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < 16; ++i) {  // arm the lane's latency quantile
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
        }
        const SimTime t0 = sched.now();
        plan.add_outage(/*node=*/0, t0, t0 + 300 * kMillisecond);
        // Writes never hedge, so this one only feeds the breaker: its two
        // timeouts open it at t0+42ms.
        sched.spawn([](Client& c, std::uint64_t handle,
                       const std::vector<std::uint8_t>& src,
                       Status& out) -> Task<void> {
          out = co_await c.write_contig(
              handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        }(c, f.handle, src, write_status));
        // A fresh op issued while the breaker is open (t0+50ms, inside the
        // 50 ms cool-down that starts at t0+42ms) fails fast: microseconds,
        // not a burned timeout. The breaker check is per RPC, so it must be
        // a new op, not a retry of one already in flight.
        sched.spawn([](sim::Scheduler& sched, Client& c, std::uint64_t handle,
                       SimTime at, std::int64_t n) -> Task<void> {
          co_await sched.delay(at - sched.now());
          std::vector<std::uint8_t> buf(static_cast<std::size_t>(n));
          const SimTime t1 = sched.now();
          Status fast = co_await c.read_contig(handle, 0, buf.data(), n);
          EXPECT_FALSE(fast.is_ok());
          EXPECT_LT(sched.now() - t1, kMillisecond);
        }(sched, c, f.handle, t0 + 50 * kMillisecond,
          static_cast<std::int64_t>(src.size())));
        co_await sched.delay(t0 + 41 * kMillisecond - sched.now());
        read_status = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        done = true;
      }(cluster.scheduler(), plan, *client, data, write_status, read_status,
        finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(client->hedges_suppressed(), 1u);
  EXPECT_EQ(client->hedges_issued(), 0u);  // suppressed, not merely lost
  EXPECT_GT(client->breaker_fast_fails(), 0u);
  // The outage outlives both ops' retry budgets; they fail typed.
  EXPECT_FALSE(write_status.is_ok()) << write_status.to_string();
  EXPECT_FALSE(read_status.is_ok()) << read_status.to_string();
  EXPECT_GT(plan.counters().outage_dropped, 0u);
}

// ---- Degraded-node windows --------------------------------------------------

TEST(DegradedWindows, FactorIsMaxOverMatchingWindows) {
  FaultPlan plan(1);
  EXPECT_FALSE(plan.has_degraded_windows());
  plan.add_degraded(/*node=*/2, kMillisecond, 3 * kMillisecond, 2.0);
  plan.add_degraded(/*node=*/2, 2 * kMillisecond, 4 * kMillisecond, 5.0);
  plan.add_degraded(/*node=*/3, 0, 10 * kMillisecond, 8.0);
  EXPECT_TRUE(plan.has_degraded_windows());
  EXPECT_DOUBLE_EQ(plan.degraded_factor(2, 0), 1.0);          // before
  EXPECT_DOUBLE_EQ(plan.degraded_factor(2, kMillisecond), 2.0);
  EXPECT_DOUBLE_EQ(plan.degraded_factor(2, 2500 * kMicrosecond), 5.0);  // max
  EXPECT_DOUBLE_EQ(plan.degraded_factor(2, 3500 * kMicrosecond), 5.0);
  EXPECT_DOUBLE_EQ(plan.degraded_factor(2, 4 * kMillisecond), 1.0);  // end excl
  EXPECT_DOUBLE_EQ(plan.degraded_factor(0, kMillisecond), 1.0);  // other node
  EXPECT_DOUBLE_EQ(plan.degraded_factor(3, kMillisecond), 8.0);
}

TEST(DegradedWindows, ConsumeNoRandomness) {
  // Two plans with the same seed, one with a degraded window added: every
  // probabilistic verdict must be identical — the window may not shift
  // the RNG stream.
  const FaultSpec spec{.drop = 0.5};
  FaultPlan plan_a(7), plan_b(7);
  plan_a.set_default_spec(spec);
  plan_b.set_default_spec(spec);
  plan_b.add_degraded(/*node=*/2, 0, 10 * kMicrosecond, 4.0);
  for (int i = 0; i < 100; ++i) {
    const SimTime now = i * kMicrosecond;
    sim::Message msg_a(1, 1, 64, i);
    sim::Message msg_b(1, 1, 64, i);
    EXPECT_EQ(plan_a.apply(1, 2, now, msg_a).deliver,
              plan_b.apply(1, 2, now, msg_b).deliver)
        << "message " << i;
  }
  EXPECT_EQ(plan_a.counters().dropped, plan_b.counters().dropped);
}

struct StragglerRun {
  SimTime end_time = 0;
  std::uint64_t degraded_requests = 0;
  std::uint64_t retries = 0;
  bool ok = false;
};

StragglerRun run_straggler(bool degraded) {
  auto cfg = overload_config();
  cfg.seed = 4321;
  cfg.client.rpc_timeout = 100 * kMillisecond;  // slow, not broken
  pfs::Cluster cluster(cfg);
  FaultPlan plan(mix_seed(cluster.config().seed, /*salt=*/0xD9));
  if (degraded) {
    plan.add_degraded(/*node=*/0, 5 * kMillisecond, 500 * kMillisecond, 4.0);
  }
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(4096, 64);

  StragglerRun out;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         StragglerRun& out) -> Task<void> {
        MetaResult f = co_await c.create("/straggler");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        bool all = w.is_ok();
        for (int i = 0; i < 10; ++i) {
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
          all = all && r.is_ok() && back == src;
        }
        out.ok = all;
      }(*client, data, out));
  cluster.run();
  out.end_time = cluster.scheduler().now();
  out.degraded_requests = cluster.server(0).stats().degraded_requests;
  out.retries = client->rpc_retries();
  return out;
}

TEST(DegradedWindows, StragglerSlowsTheRunButStaysCorrect) {
  const StragglerRun clean = run_straggler(false);
  const StragglerRun slow = run_straggler(true);
  EXPECT_TRUE(clean.ok);
  EXPECT_TRUE(slow.ok);
  EXPECT_EQ(clean.degraded_requests, 0u);
  EXPECT_GT(slow.degraded_requests, 0u);
  EXPECT_GT(slow.end_time, clean.end_time);
}

TEST(DegradedWindows, SameSeedSameRun) {
  const StragglerRun a = run_straggler(true);
  const StragglerRun b = run_straggler(true);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.degraded_requests, b.degraded_requests);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_TRUE(a.ok && b.ok);
}

// ---- Replay-window age expiry -----------------------------------------------

TEST(ReplayWindow, ExpiredAckReexecutesIdempotently) {
  // The LostAck scenario, but with a replay-window age far shorter than
  // the retry interval: by the time the retry lands, the stored ack has
  // been evicted and the write re-executes — which is safe, because the
  // retry carries the same bytes to the same offset.
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 10 * kMillisecond;
  cfg.client.rpc_max_attempts = 5;
  cfg.server.replay_window_max_age = 5 * kMillisecond;
  pfs::Cluster cluster(cfg);
  constexpr SimTime kIssueAt = 5 * kMillisecond;
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, kIssueAt + 800 * kMicrosecond,
                  kIssueAt + 8 * kMillisecond, FaultSpec{.drop = 1.0});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 65);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/expired");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(kIssueAt - sched.now());
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().replays_suppressed, 0u);
  EXPECT_GE(cluster.server(0).stats().replays_expired, 1u);
  // Re-executed, not replayed: the write applied twice (idempotently).
  EXPECT_EQ(cluster.server(0).stats().bytes_written, 1024u);
}

TEST(ReplayWindow, AgeZeroMeansCountOnlyEviction) {
  // max_age == 0 disables age-based expiry: the stored ack survives to
  // the retry and the write is suppressed exactly as in the base test.
  auto cfg = overload_config();
  cfg.client.rpc_timeout = 10 * kMillisecond;
  cfg.server.replay_window_max_age = 0;
  pfs::Cluster cluster(cfg);
  constexpr SimTime kIssueAt = 5 * kMillisecond;
  FaultPlan plan(5);
  plan.add_window(/*node=*/0, kIssueAt + 800 * kMicrosecond,
                  kIssueAt + 8 * kMillisecond, FaultSpec{.drop = 1.0});
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(512, 66);

  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/countonly");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        co_await sched.delay(kIssueAt - sched.now());
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(cluster.server(0).stats().replays_suppressed, 1u);
  EXPECT_EQ(cluster.server(0).stats().replays_expired, 0u);
  EXPECT_EQ(cluster.server(0).stats().bytes_written, 512u);
}

// ---- The tail-latency acceptance scenario ----------------------------------

struct ArmResult {
  std::vector<SimTime> latencies;
  bool all_ok = false;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t timeouts = 0;
};

SimTime percentile_exact(std::vector<SimTime> v, double p) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::max<std::int64_t>(0, static_cast<std::int64_t>(
          p / 100.0 * static_cast<double>(v.size()) + 0.5) - 1));
  return v[std::min(rank, v.size() - 1)];
}

// One ablation arm: two servers, 16 KiB reads striped 8 KiB per server,
// open-loop at a fixed pace. After a healthy warmup, server 1 becomes a
// 4x straggler for 150 ms. With hedging off, every read touching the
// window burns timeout-and-retry cycles until the window passes; with
// hedging (+ breaker) on, the extended hedge deadline rides out the slow
// primary and the op completes at the degraded service time.
ArmResult run_degraded_arm(bool hedging_on) {
  constexpr int kWarmupReads = 20;
  constexpr int kMeasuredReads = 100;
  constexpr SimTime kPace = 25 * kMillisecond;
  constexpr SimTime kWindow = 150 * kMillisecond;

  auto cfg = straggler_config(/*servers=*/2);
  cfg.seed = 20260807;
  if (hedging_on) {
    cfg.client.hedge_quantile = 95;
    cfg.client.hedge_min_samples = 8;
    cfg.client.breaker_failures = 6;
    cfg.client.flow_window = 8;
  }
  pfs::Cluster cluster(cfg);
  FaultPlan plan(mix_seed(cluster.config().seed, /*salt=*/0xAB1E));
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);
  const auto src = pattern_bytes(16384, 67);

  ArmResult out;
  out.all_ok = true;
  out.latencies.assign(kMeasuredReads, 0);

  // Phase 1: create, write, healthy warmup (arms the hedge quantile).
  std::uint64_t handle = 0;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src, std::uint64_t& h,
         ArmResult& out) -> Task<void> {
        MetaResult f = co_await c.create("/tail");
        if (!f.status.is_ok()) { out.all_ok = false; co_return; }
        h = f.handle;
        Status w = co_await c.write_contig(
            h, 0, src.data(), static_cast<std::int64_t>(src.size()));
        if (!w.is_ok()) out.all_ok = false;
        std::vector<std::uint8_t> back(src.size());
        for (int i = 0; i < kWarmupReads; ++i) {
          Status r = co_await c.read_contig(
              h, 0, back.data(), static_cast<std::int64_t>(back.size()));
          if (!r.is_ok() || back != src) out.all_ok = false;
        }
      }(*client, src, handle, out));
  cluster.run();
  EXPECT_TRUE(out.all_ok) << "warmup failed (hedging_on=" << hedging_on << ")";

  // Phase 2: server 1 degrades 4x for kWindow; open-loop paced reads so
  // a slow op cannot shield the ops behind it from the window.
  const SimTime t0 = cluster.scheduler().now() + 2 * kMillisecond;
  plan.add_degraded(/*node=*/1, t0, t0 + kWindow, 4.0);
  for (int i = 0; i < kMeasuredReads; ++i) {
    cluster.scheduler().spawn(
        [](sim::Scheduler& sched, Client& c, std::uint64_t h,
           const std::vector<std::uint8_t>& src, SimTime due, int slot,
           ArmResult& out) -> Task<void> {
          co_await sched.delay(due - sched.now());
          std::vector<std::uint8_t> back(src.size());
          const SimTime start = sched.now();
          Status r = co_await c.read_contig(
              h, 0, back.data(), static_cast<std::int64_t>(back.size()));
          out.latencies[static_cast<std::size_t>(slot)] = sched.now() - start;
          if (!r.is_ok() || back != src) out.all_ok = false;
        }(cluster.scheduler(), *client, handle, src, t0 + i * kPace, i, out));
  }
  cluster.run();

  out.hedges_issued = client->hedges_issued();
  out.hedges_won = client->hedges_won();
  out.timeouts = client->rpc_timeouts();
  return out;
}

TEST(Overload, HedgingImprovesDegradedTailAtLeast2x) {
  const ArmResult off = run_degraded_arm(false);
  const ArmResult on = run_degraded_arm(true);

  // Equal correctness: every read in both arms returned byte-identical
  // file contents.
  EXPECT_TRUE(off.all_ok);
  EXPECT_TRUE(on.all_ok);

  EXPECT_EQ(off.hedges_issued, 0u);
  EXPECT_GE(on.hedges_issued, 4u);   // every read inside the window hedged
  EXPECT_GT(off.timeouts, 0u);       // the off arm burned timeout cycles

  const SimTime p99_off = percentile_exact(off.latencies, 99);
  const SimTime p99_on = percentile_exact(on.latencies, 99);
  ASSERT_GT(p99_on, 0);
  const double ratio = static_cast<double>(p99_off) /
                       static_cast<double>(p99_on);
  EXPECT_GE(ratio, 2.0) << "read p99 off=" << p99_off / 1000 << "us on="
                        << p99_on / 1000 << "us (ratio " << ratio << ")";
}

TEST(Overload, DegradedArmIsDeterministic) {
  const ArmResult a = run_degraded_arm(true);
  const ArmResult b = run_degraded_arm(true);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.hedges_issued, b.hedges_issued);
  EXPECT_EQ(a.hedges_won, b.hedges_won);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

// ---- Observability: p999 and filtered histogram merges ----------------------

TEST(RunReport, LatencySummaryIncludesP999) {
  obs::Histogram h;
  for (int i = 0; i < 900; ++i) h.record(1000);      // 1 us
  for (int i = 0; i < 90; ++i) h.record(10'000);     // 10 us
  for (int i = 0; i < 10; ++i) h.record(100'000);    // 100 us
  const auto s = obs::LatencySummary::from(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.p99_us, s.p50_us);
  EXPECT_GT(s.p999_us, s.p99_us);
  EXPECT_LE(s.p999_us, s.max_us);

  obs::RunReport report;
  report.bench = "overload_test";
  obs::MethodReport m;
  m.method = "datatype";
  m.latency = s;
  report.methods.push_back(m);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"p999_us\""), std::string::npos);
}

TEST(Metrics, MergedHistogramFiltersByLabelSubstring) {
  obs::MetricsRegistry reg;
  reg.histogram("lat", obs::label("op", "read", "node", 0)).record(5);
  reg.histogram("lat", obs::label("op", "read", "node", 1)).record(7);
  reg.histogram("lat", obs::label("op", "write", "node", 0)).record(9);
  reg.histogram("other", obs::label("op", "read", "node", 0)).record(11);
  EXPECT_EQ(reg.merged_histogram("lat").count(), 3u);
  EXPECT_EQ(reg.merged_histogram("lat", "op=read").count(), 2u);
  EXPECT_EQ(reg.merged_histogram("lat", "op=write").count(), 1u);
  EXPECT_EQ(reg.merged_histogram("lat", "op=stat").count(), 0u);
}

}  // namespace
}  // namespace dtio
