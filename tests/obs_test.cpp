// Tests for the observability layer: metrics registry semantics, histogram
// percentile accuracy, span collection and cross-layer parenting through a
// live cluster run, and both exporters (Chrome trace JSON, run report).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/phase.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "pfs/cluster.h"

namespace dtio::obs {
namespace {

using sim::Task;

// ---- Metrics registry --------------------------------------------------------

TEST(MetricsRegistry, SameKeyYieldsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("reqs", "node=1");
  Counter& b = reg.counter("reqs", "node=1");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("reqs", "node=2");
  EXPECT_NE(&a, &c);
  a.add(3);
  c.add(4);
  EXPECT_EQ(reg.counter_total("reqs"), 7u);
  EXPECT_EQ(reg.counter_total("absent"), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelHelpersFormat) {
  EXPECT_EQ(label("op", "read"), "op=read");
  EXPECT_EQ(label("node", std::int64_t{7}), "node=7");
  EXPECT_EQ(label("op", "read", "node", 3), "op=read,node=3");
}

TEST(MetricsRegistry, MergedHistogramSpansLabelSets) {
  MetricsRegistry reg;
  reg.histogram("lat", "node=0").record(100);
  reg.histogram("lat", "node=1").record(300);
  reg.histogram("other", "").record(999);
  const Histogram merged = reg.merged_histogram("lat");
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 100);
  EXPECT_EQ(merged.max(), 300);
  EXPECT_DOUBLE_EQ(merged.mean(), 200.0);
}

TEST(MetricsRegistry, ExportIsValidJson) {
  MetricsRegistry reg;
  reg.counter("c", "k=\"quoted\"").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(42);
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
}

// ---- Histogram ---------------------------------------------------------------

TEST(Histogram, ExactStatsAndBoundedPercentileError) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log-linear buckets with 8 sub-buckets bound relative error at 1/8.
  for (const double p : {50.0, 90.0, 99.0}) {
    const double exact = p * 10.0;  // nearest-rank on 1..1000
    const double got = h.percentile(p);
    EXPECT_NEAR(got, exact, exact / 8.0) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  // p100 lands in the max's bucket; its representative value stays within
  // the 1/8 relative bound and inside the [min, max] envelope.
  EXPECT_NEAR(h.percentile(100), 1000.0, 1000.0 / 8.0);
  EXPECT_LE(h.percentile(100), 1000.0);
}

TEST(Histogram, SingleValueIsEveryPercentile) {
  Histogram h;
  h.record(777);
  for (const double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 777.0);
  }
}

TEST(Histogram, EmptyAndNegative) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  h.record(-5);  // clamps to zero
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

// ---- Span collector ----------------------------------------------------------

TEST(SpanCollector, ParentingAndLookup) {
  SpanCollector spans;
  const std::uint64_t trace = spans.new_trace();
  const SpanId root = spans.begin("op", 0, 100, 0, trace);
  const SpanId child = spans.begin("rpc", 0, 150, root, trace);
  spans.set_value(child, 4096);
  spans.end(child, 300);
  spans.end(root, 400);

  const Span* r = spans.find(root);
  const Span* c = spans.find(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->trace, trace);
  EXPECT_EQ(c->value, 4096);
  EXPECT_EQ(c->end, 300);
  EXPECT_EQ(r->end, 400);
  EXPECT_EQ(spans.find(0), nullptr);
}

TEST(SpanCollector, KeepFirstCapacity) {
  SpanCollector spans(/*capacity=*/2);
  EXPECT_NE(spans.begin("a", 0, 0), 0u);
  EXPECT_NE(spans.begin("b", 0, 0), 0u);
  EXPECT_EQ(spans.begin("c", 0, 0), 0u);  // dropped
  EXPECT_EQ(spans.dropped(), 1u);
  spans.end(0, 10);           // null id: ignored
  spans.set_value(0, 1);      // null id: ignored
  EXPECT_EQ(spans.spans().size(), 2u);
}

// ---- Cross-layer span propagation through a live cluster ---------------------

const Span* find_span(const Observability& obs, std::string_view name) {
  for (const Span& s : obs.spans.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(Observability, ClusterRunLinksSpansAcrossLayers) {
  net::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 1;
  pfs::Cluster cluster(cfg);
  Observability obs;
  cluster.set_observability(&obs);

  auto client = cluster.make_client(0);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    pfs::MetaResult f = co_await c.create("/obs");
    std::vector<std::uint8_t> data(200'000, 1);
    (void)co_await c.write_contig(f.handle, 0, data.data(),
                                  static_cast<std::int64_t>(data.size()));
  }(*client));
  cluster.run();

  // Client op root span for the write, with its own trace.
  const Span* op = find_span(obs, "contig_write");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->parent, 0u);
  EXPECT_NE(op->trace, 0u);
  EXPECT_GE(op->end, op->start);
  EXPECT_EQ(op->value, 200'000);

  // rpc child under the op; server_handle under the rpc; disk under the
  // server_handle — all on the op's trace.
  const Span* rpc = find_span(obs, "rpc");
  ASSERT_NE(rpc, nullptr);
  bool rpc_under_op = false;
  for (const Span& s : obs.spans.spans()) {
    if (s.name == "rpc" && s.parent == op->id && s.trace == op->trace) {
      rpc_under_op = true;
    }
  }
  EXPECT_TRUE(rpc_under_op);

  bool handle_under_rpc = false, disk_under_handle = false, net_on_trace = false;
  for (const Span& s : obs.spans.spans()) {
    if (s.name == "server_handle" && s.trace == op->trace) {
      const Span* parent = obs.spans.find(s.parent);
      if (parent != nullptr && parent->name == "rpc") handle_under_rpc = true;
      for (const Span& d : obs.spans.spans()) {
        if (d.name == "disk" && d.parent == s.id) disk_under_handle = true;
      }
    }
    if (s.name == "net_send" && s.trace == op->trace) net_on_trace = true;
  }
  EXPECT_TRUE(handle_under_rpc);
  EXPECT_TRUE(disk_under_handle);
  EXPECT_TRUE(net_on_trace);

  // Every span opened by the run was closed, and the client latency
  // histogram saw every op (create + write, plus any meta traffic).
  for (const Span& s : obs.spans.spans()) {
    EXPECT_GE(s.end, s.start) << s.name;
  }
  const Histogram lat = obs.metrics.merged_histogram("client_op_latency_ns");
  EXPECT_GE(lat.count(), 2u);
  EXPECT_EQ(obs.metrics.counter_total("server_requests_total"),
            obs.metrics.counter_total("net_messages_total") / 2);
}

TEST(Observability, DisabledRunMatchesEnabledTiming) {
  const auto run = [](Observability* obs) {
    net::ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 1;
    pfs::Cluster cluster(cfg);
    if (obs != nullptr) cluster.set_observability(obs);
    auto client = cluster.make_client(0);
    cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
      pfs::MetaResult f = co_await c.create("/same");
      (void)co_await c.write_contig(f.handle, 0, nullptr, 1 << 20);
      (void)co_await c.read_contig(f.handle, 4096, nullptr, 1 << 18);
    }(*client));
    cluster.run();
    return cluster.scheduler().now();
  };
  Observability obs;
  // Instrumentation records but never perturbs the simulation.
  EXPECT_EQ(run(nullptr), run(&obs));
  EXPECT_FALSE(obs.spans.spans().empty());
}

// ---- Exporters ---------------------------------------------------------------

TEST(ChromeTrace, ExportsValidLoadableJson) {
  Observability obs;
  const std::uint64_t trace = obs.spans.new_trace();
  const SpanId root = obs.spans.begin("op \"x\"", 1, 1000, 0, trace);
  const SpanId child = obs.spans.begin("disk", 0, 2000, root, trace);
  obs.spans.set_value(child, 4096);
  obs.spans.end(child, 5000);
  obs.spans.end(root, 9000);
  obs.spans.sample("queue_depth", 0, 1500, 3.0);

  ChromeTraceOptions opts;
  opts.node_names = {"srv0", "cli0"};
  std::ostringstream out;
  write_chrome_trace(obs, out, opts);
  const std::string doc = out.str();

  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"srv0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);   // spans
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);   // counter track
  EXPECT_NE(doc.find("\"queue_depth\""), std::string::npos);
  // ts/dur are microseconds: the root span is ts=1, dur=8.
  EXPECT_NE(doc.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":8"), std::string::npos);
}

TEST(ChromeTrace, OpenSpanGetsNonNegativeDuration) {
  Observability obs;
  obs.spans.begin("never_closed", 0, 500);  // end stays -1
  std::ostringstream out;
  write_chrome_trace(obs, out);
  EXPECT_TRUE(json_valid(out.str()));
  EXPECT_EQ(out.str().find("-"), std::string::npos);  // no negative numbers
}

TEST(RunReport, ToJsonMatchesSchema) {
  RunReport report;
  report.bench = "unit";
  report.params["clients"] = 6;
  MethodReport m;
  m.method = "Datatype I/O";
  m.sim_seconds = 1.5;
  m.bandwidth_mb_s = 43.5;
  m.events = 1234;
  m.per_client.desired_bytes = 100;
  Histogram h;
  h.record(2'000'000);  // 2 ms in ns
  m.latency = LatencySummary::from(h);
  report.methods.push_back(m);
  report.scalars["extra"] = 0.25;

  const std::string doc = report.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"dtio-bench-report-v2\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"spans\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"Datatype I/O\""), std::string::npos);
  EXPECT_NE(doc.find("\"scalars\""), std::string::npos);
  // Nanoseconds became microseconds in the latency summary.
  EXPECT_DOUBLE_EQ(m.latency.p50_us, 2000.0);
  EXPECT_EQ(m.latency.count, 1u);
}

TEST(JsonValidator, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1,2.5,-3e2,\"s\",true,null]"));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
}

TEST(JsonParser, ParsesDocumentsAndRejectsMalformed) {
  const auto doc = json_parse(
      "{\"a\":[1,2,{\"b\":\"x\\ny\"}],\"n\":-2.5e3,\"t\":true,\"z\":null}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
  EXPECT_EQ(a->items[2].str("b"), "x\ny");
  EXPECT_DOUBLE_EQ(doc->num("n"), -2500.0);
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_EQ(doc->find("z")->kind, JsonValue::Kind::kNull);
  EXPECT_EQ(doc->find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc->num("missing", 7.0), 7.0);

  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("{} trailing").has_value());
  EXPECT_FALSE(json_parse("{\"a\":}").has_value());
}

TEST(JsonParser, RoundTripsWriterOutput) {
  std::string text;
  JsonWriter w(text);
  w.begin_object();
  w.kv("name", "sp\"an\n");
  w.kv("count", std::uint64_t{42});
  w.key("xs").begin_array().value(1.5).value(-3).end_array();
  w.end_object();
  const auto doc = json_parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  EXPECT_EQ(doc->str("name"), "sp\"an\n");
  EXPECT_DOUBLE_EQ(doc->num("count"), 42.0);
  EXPECT_DOUBLE_EQ(doc->find("xs")->items[0].number, 1.5);
}

// ---- Histogram quantile edge cases -------------------------------------------

TEST(Histogram, MergedAcrossManyLabelSetsKeepsQuantiles) {
  MetricsRegistry reg;
  // Three label sets contributing disjoint ranges; the merged histogram
  // must see all of them for its quantiles to make sense.
  for (std::int64_t v = 1; v <= 400; ++v) {
    reg.histogram("lat", "node=0").record(v);
  }
  for (std::int64_t v = 401; v <= 800; ++v) {
    reg.histogram("lat", "op=read").record(v);
  }
  for (std::int64_t v = 801; v <= 1000; ++v) {
    reg.histogram("lat", "").record(v);
  }
  const Histogram merged = reg.merged_histogram("lat");
  EXPECT_EQ(merged.count(), 1000u);
  EXPECT_EQ(merged.min(), 1);
  EXPECT_EQ(merged.max(), 1000);
  for (const double p : {50.0, 99.0}) {
    const double exact = p * 10.0;
    EXPECT_NEAR(merged.percentile(p), exact, exact / 8.0) << "p" << p;
  }
}

TEST(Histogram, P999OnSparseBuckets) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);  // empty
  h.record(5'000'000);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 5'000'000.0);  // single sample
  // 999 fast ops and one 100x outlier: p99.9 must land in the outlier's
  // bucket even though every intermediate bucket is empty.
  Histogram sparse;
  for (int i = 0; i < 999; ++i) sparse.record(1000);
  sparse.record(100'000);
  EXPECT_NEAR(sparse.percentile(50), 1000.0, 1000.0 / 8.0);
  EXPECT_NEAR(sparse.percentile(99.9), 100'000.0, 100'000.0 / 8.0);
}

// ---- Timeline ring buffer ----------------------------------------------------

TEST(Timeline, RingRetainsNewestAndTracksAllTimeStats) {
  TimelineSeries s("queue_depth", 3, /*capacity=*/4);
  for (int i = 1; i <= 10; ++i) {
    s.push(i * 100, static_cast<double>(i == 7 ? 99 : i));
  }
  EXPECT_EQ(s.total(), 10u);
  EXPECT_EQ(s.dropped(), 6u);
  const std::vector<TimelinePoint> pts = s.points();
  ASSERT_EQ(pts.size(), 4u);  // newest four, in time order
  EXPECT_EQ(pts.front().time, 700);
  EXPECT_EQ(pts.back().time, 1000);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].time, pts[i].time);
  }
  // Summary stats cover every point ever pushed, not just the ring.
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 99.0);
  EXPECT_EQ(s.peak_time(), 700);
  EXPECT_DOUBLE_EQ(s.mean(), (1 + 2 + 3 + 4 + 5 + 6 + 99 + 8 + 9 + 10) / 10.0);
}

TEST(Timeline, SeriesCreatedOnFirstUseInInsertionOrder) {
  Timeline tl;
  tl.set_capacity(2);
  TimelineSeries& a = tl.series("queue_depth", 0);
  TimelineSeries& b = tl.series("queue_depth", 1);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&tl.series("queue_depth", 0), &a);
  ASSERT_EQ(tl.all().size(), 2u);
  EXPECT_EQ(tl.all()[0]->node(), 0);
  EXPECT_EQ(tl.all()[1]->node(), 1);
}

// ---- Phase attribution -------------------------------------------------------

Span make_span(SpanId id, SpanId parent, std::uint64_t trace,
               const char* name, SimTime start, SimTime end,
               Phase phase = Phase::kNone) {
  Span s;
  s.id = id;
  s.parent = parent;
  s.trace = trace;
  s.name = name;
  s.start = start;
  s.end = end;
  s.phase = phase;
  return s;
}

TEST(PhaseAnalysis, UnionsOverlapsAndClipsToOpWindow) {
  std::vector<Span> spans;
  spans.push_back(make_span(1, 0, 10, "contig_read", 0, 100));
  // Two overlapping disk spans: union is [10, 40) = 30 ns, not 40.
  spans.push_back(make_span(2, 1, 10, "disk", 10, 30, Phase::kServerDisk));
  spans.push_back(make_span(3, 1, 10, "disk", 20, 40, Phase::kServerDisk));
  // Queue wait, partly outside the op window: clipped to [40, 100).
  spans.push_back(
      make_span(4, 1, 10, "server_queue", 40, 120, Phase::kServerQueue));
  // A different trace must not leak in.
  spans.push_back(make_span(5, 0, 11, "contig_read", 0, 50));
  spans.push_back(
      make_span(6, 5, 11, "disk", 0, 50, Phase::kServerDisk));

  std::vector<OpBreakdown> ops = decompose_ops(spans);
  ASSERT_EQ(ops.size(), 2u);
  const OpBreakdown* op = nullptr;
  for (const OpBreakdown& o : ops) {
    if (o.trace == 10) op = &o;
  }
  ASSERT_NE(op, nullptr);
  EXPECT_DOUBLE_EQ(op->phase_ns[static_cast<std::size_t>(Phase::kServerDisk)],
                   30.0);
  EXPECT_DOUBLE_EQ(op->phase_ns[static_cast<std::size_t>(Phase::kServerQueue)],
                   60.0);
  // Disk and queue don't overlap, so attributed is their sum.
  EXPECT_DOUBLE_EQ(op->attributed_ns, 90.0);
  EXPECT_DOUBLE_EQ(op->coverage(), 0.9);
}

TEST(PhaseAnalysis, SkipsOpenRootsAndUntypedTraces) {
  std::vector<Span> spans;
  // Open root (end < start sentinel): not analyzable.
  spans.push_back(make_span(1, 0, 10, "contig_read", 50, -1));
  spans.push_back(make_span(2, 1, 10, "disk", 60, 70, Phase::kServerDisk));
  // Closed root whose trace has only untyped spans: skipped too.
  spans.push_back(make_span(3, 0, 11, "contig_read", 0, 100));
  spans.push_back(make_span(4, 3, 11, "rpc", 10, 90));
  EXPECT_TRUE(decompose_ops(spans).empty());
}

TEST(PhaseAnalysis, SummaryQuantilesAndDominantPhase) {
  // 100 ops of 100 ns each, fully queue-bound, plus one 2'000 ns op that
  // is disk-bound. The p50 tail set (the slowest half) is dominated by
  // queue time (50 x 100 ns vs 1'800 ns of disk); the p99.9 tail set is
  // just the outlier, so disk wins there.
  std::vector<Span> spans;
  SpanId next = 1;
  for (std::uint64_t t = 1; t <= 100; ++t) {
    const SpanId root = next++;
    spans.push_back(make_span(root, 0, t, "contig_read", 0, 100));
    spans.push_back(make_span(next++, root, t, "server_queue", 0, 100,
                              Phase::kServerQueue));
  }
  const SpanId big = next++;
  spans.push_back(make_span(big, 0, 999, "contig_read", 0, 2'000));
  spans.push_back(
      make_span(next++, big, 999, "disk", 0, 1'800, Phase::kServerDisk));

  const PhaseReport report = summarize_phases(decompose_ops(spans));
  EXPECT_EQ(report.ops, 101u);
  ASSERT_EQ(report.quantiles.size(), 3u);
  const PhaseQuantile* p50 = report.quantile(50);
  const PhaseQuantile* p999 = report.quantile(99.9);
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p999, nullptr);
  EXPECT_DOUBLE_EQ(p50->latency_ns, 100.0);
  EXPECT_EQ(p50->dominant, Phase::kServerQueue);
  EXPECT_DOUBLE_EQ(p999->latency_ns, 2'000.0);
  EXPECT_EQ(p999->dominant, Phase::kServerDisk);
  EXPECT_DOUBLE_EQ(p999->coverage, 0.9);
  EXPECT_EQ(summarize_phases({}).ops, 0u);
}

TEST(PhaseAnalysis, PhaseNamesRoundTrip) {
  for (int p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    EXPECT_EQ(phase_from_name(phase_name(phase)), phase);
  }
  EXPECT_EQ(phase_from_name("no_such_phase"), Phase::kNone);
  EXPECT_EQ(phase_from_name(""), Phase::kNone);
}

// ---- Sampler and typed spans through a live cluster --------------------------

TEST(Observability, SamplerDoesNotPerturbSimulation) {
  const auto run = [](Observability* obs, std::uint64_t* events) {
    net::ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 1;
    pfs::Cluster cluster(cfg);
    if (obs != nullptr) cluster.set_observability(obs);
    auto client = cluster.make_client(0);
    cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
      pfs::MetaResult f = co_await c.create("/sampled");
      (void)co_await c.write_contig(f.handle, 0, nullptr, 1 << 20);
      (void)co_await c.read_contig(f.handle, 4096, nullptr, 1 << 18);
    }(*client));
    cluster.run();
    *events = cluster.scheduler().events_processed();
    return cluster.scheduler().now();
  };
  ObsConfig cfg;
  cfg.sample_period = 10 * kMicrosecond;
  Observability obs(cfg);
  std::uint64_t detached_events = 0, attached_events = 0;
  const SimTime detached = run(nullptr, &detached_events);
  const SimTime attached = run(&obs, &attached_events);
  // The telemetry side-channel must not shift time or consume events.
  EXPECT_EQ(detached, attached);
  EXPECT_EQ(detached_events, attached_events);
  EXPECT_FALSE(obs.timeline.empty());
  // The sampler covered the run: per-server queue depth plus the
  // cluster-wide network series, each with more than one point.
  const TimelineSeries* queue = nullptr;
  const TimelineSeries* net = nullptr;
  for (const auto& s : obs.timeline.all()) {
    if (s->name() == "queue_depth" && s->node() == 0) queue = s.get();
    if (s->name() == "net_inflight_bytes") net = s.get();
  }
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(net, nullptr);
  EXPECT_GT(queue->total(), 1u);
  EXPECT_GT(net->max(), 0.0);
}

TEST(Observability, QueueWaitSpanEmittedUnderBacklog) {
  // Two clients against one slow server: the second request must wait in
  // the mailbox while the first is decoded, producing a retroactive
  // server_queue span on its trace.
  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = 2;
  cfg.server.request_overhead = kMillisecond;
  pfs::Cluster cluster(cfg);
  Observability obs;
  cluster.set_observability(&obs);
  auto c0 = cluster.make_client(0);
  auto c1 = cluster.make_client(1);
  std::uint64_t handle = 0;
  cluster.scheduler().spawn(
      [](pfs::Client& c, std::uint64_t& h) -> Task<void> {
        pfs::MetaResult f = co_await c.create("/wait");
        h = f.handle;
        (void)co_await c.write_contig(f.handle, 0, nullptr, 65536);
      }(*c0, handle));
  cluster.run();
  for (pfs::Client* c : {c0.get(), c1.get()}) {
    cluster.scheduler().spawn(
        [](pfs::Client& cl, std::uint64_t h) -> Task<void> {
          (void)co_await cl.read_contig(h, 0, nullptr, 4096);
        }(*c, handle));
  }
  cluster.run();

  const Span* queue = find_span(obs, "server_queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->phase, Phase::kServerQueue);
  EXPECT_GT(queue->end, queue->start);
  EXPECT_NE(queue->trace, 0u);
  // Parented as a sibling of server_handle under the op's rpc span.
  const Span* parent = obs.spans.find(queue->parent);
  ASSERT_NE(parent, nullptr);
  // Typed phases now cover most of that read; the analyzer sees it.
  std::vector<OpBreakdown> ops = decompose_ops(obs.spans);
  bool queued_read = false;
  for (const OpBreakdown& op : ops) {
    if (op.name == "contig_read" &&
        op.phase_ns[static_cast<std::size_t>(Phase::kServerQueue)] > 0) {
      queued_read = true;
      EXPECT_GT(op.coverage(), 0.5);
    }
  }
  EXPECT_TRUE(queued_read);
}

TEST(RunReport, TimelineAndPhasesSections) {
  RunReport report;
  report.bench = "unit";
  Timeline tl;
  tl.series("queue_depth", 0).push(1000, 3.0);
  tl.series("queue_depth", 0).push(2000, 5.0);
  report.add_timeline(tl);

  std::vector<Span> spans;
  spans.push_back(make_span(1, 0, 10, "contig_read", 0, 100));
  spans.push_back(
      make_span(2, 1, 10, "server_queue", 0, 80, Phase::kServerQueue));
  report.phases.emplace_back("contig_read",
                             summarize_phases(decompose_ops(spans)));

  const std::string doc = report.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  const auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  const JsonValue* timeline = parsed->find("timeline");
  ASSERT_NE(timeline, nullptr);
  ASSERT_EQ(timeline->items.size(), 1u);
  EXPECT_EQ(timeline->items[0].str("name"), "queue_depth");
  EXPECT_DOUBLE_EQ(timeline->items[0].num("max"), 5.0);
  const JsonValue* phases = parsed->find("phases");
  ASSERT_NE(phases, nullptr);
  const JsonValue* read = phases->find("contig_read");
  ASSERT_NE(read, nullptr);
  EXPECT_DOUBLE_EQ(read->num("ops"), 1.0);
  EXPECT_DOUBLE_EQ(read->num("mean_coverage"), 0.8);
}

}  // namespace
}  // namespace dtio::obs
