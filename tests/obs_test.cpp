// Tests for the observability layer: metrics registry semantics, histogram
// percentile accuracy, span collection and cross-layer parenting through a
// live cluster run, and both exporters (Chrome trace JSON, run report).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "pfs/cluster.h"

namespace dtio::obs {
namespace {

using sim::Task;

// ---- Metrics registry --------------------------------------------------------

TEST(MetricsRegistry, SameKeyYieldsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("reqs", "node=1");
  Counter& b = reg.counter("reqs", "node=1");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("reqs", "node=2");
  EXPECT_NE(&a, &c);
  a.add(3);
  c.add(4);
  EXPECT_EQ(reg.counter_total("reqs"), 7u);
  EXPECT_EQ(reg.counter_total("absent"), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, LabelHelpersFormat) {
  EXPECT_EQ(label("op", "read"), "op=read");
  EXPECT_EQ(label("node", std::int64_t{7}), "node=7");
  EXPECT_EQ(label("op", "read", "node", 3), "op=read,node=3");
}

TEST(MetricsRegistry, MergedHistogramSpansLabelSets) {
  MetricsRegistry reg;
  reg.histogram("lat", "node=0").record(100);
  reg.histogram("lat", "node=1").record(300);
  reg.histogram("other", "").record(999);
  const Histogram merged = reg.merged_histogram("lat");
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 100);
  EXPECT_EQ(merged.max(), 300);
  EXPECT_DOUBLE_EQ(merged.mean(), 200.0);
}

TEST(MetricsRegistry, ExportIsValidJson) {
  MetricsRegistry reg;
  reg.counter("c", "k=\"quoted\"").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(42);
  const std::string doc = reg.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
}

// ---- Histogram ---------------------------------------------------------------

TEST(Histogram, ExactStatsAndBoundedPercentileError) {
  Histogram h;
  for (std::int64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Log-linear buckets with 8 sub-buckets bound relative error at 1/8.
  for (const double p : {50.0, 90.0, 99.0}) {
    const double exact = p * 10.0;  // nearest-rank on 1..1000
    const double got = h.percentile(p);
    EXPECT_NEAR(got, exact, exact / 8.0) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  // p100 lands in the max's bucket; its representative value stays within
  // the 1/8 relative bound and inside the [min, max] envelope.
  EXPECT_NEAR(h.percentile(100), 1000.0, 1000.0 / 8.0);
  EXPECT_LE(h.percentile(100), 1000.0);
}

TEST(Histogram, SingleValueIsEveryPercentile) {
  Histogram h;
  h.record(777);
  for (const double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 777.0);
  }
}

TEST(Histogram, EmptyAndNegative) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  h.record(-5);  // clamps to zero
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

// ---- Span collector ----------------------------------------------------------

TEST(SpanCollector, ParentingAndLookup) {
  SpanCollector spans;
  const std::uint64_t trace = spans.new_trace();
  const SpanId root = spans.begin("op", 0, 100, 0, trace);
  const SpanId child = spans.begin("rpc", 0, 150, root, trace);
  spans.set_value(child, 4096);
  spans.end(child, 300);
  spans.end(root, 400);

  const Span* r = spans.find(root);
  const Span* c = spans.find(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->trace, trace);
  EXPECT_EQ(c->value, 4096);
  EXPECT_EQ(c->end, 300);
  EXPECT_EQ(r->end, 400);
  EXPECT_EQ(spans.find(0), nullptr);
}

TEST(SpanCollector, KeepFirstCapacity) {
  SpanCollector spans(/*capacity=*/2);
  EXPECT_NE(spans.begin("a", 0, 0), 0u);
  EXPECT_NE(spans.begin("b", 0, 0), 0u);
  EXPECT_EQ(spans.begin("c", 0, 0), 0u);  // dropped
  EXPECT_EQ(spans.dropped(), 1u);
  spans.end(0, 10);           // null id: ignored
  spans.set_value(0, 1);      // null id: ignored
  EXPECT_EQ(spans.spans().size(), 2u);
}

// ---- Cross-layer span propagation through a live cluster ---------------------

const Span* find_span(const Observability& obs, std::string_view name) {
  for (const Span& s : obs.spans.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(Observability, ClusterRunLinksSpansAcrossLayers) {
  net::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 1;
  pfs::Cluster cluster(cfg);
  Observability obs;
  cluster.set_observability(&obs);

  auto client = cluster.make_client(0);
  cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
    pfs::MetaResult f = co_await c.create("/obs");
    std::vector<std::uint8_t> data(200'000, 1);
    (void)co_await c.write_contig(f.handle, 0, data.data(),
                                  static_cast<std::int64_t>(data.size()));
  }(*client));
  cluster.run();

  // Client op root span for the write, with its own trace.
  const Span* op = find_span(obs, "contig_write");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->parent, 0u);
  EXPECT_NE(op->trace, 0u);
  EXPECT_GE(op->end, op->start);
  EXPECT_EQ(op->value, 200'000);

  // rpc child under the op; server_handle under the rpc; disk under the
  // server_handle — all on the op's trace.
  const Span* rpc = find_span(obs, "rpc");
  ASSERT_NE(rpc, nullptr);
  bool rpc_under_op = false;
  for (const Span& s : obs.spans.spans()) {
    if (s.name == "rpc" && s.parent == op->id && s.trace == op->trace) {
      rpc_under_op = true;
    }
  }
  EXPECT_TRUE(rpc_under_op);

  bool handle_under_rpc = false, disk_under_handle = false, net_on_trace = false;
  for (const Span& s : obs.spans.spans()) {
    if (s.name == "server_handle" && s.trace == op->trace) {
      const Span* parent = obs.spans.find(s.parent);
      if (parent != nullptr && parent->name == "rpc") handle_under_rpc = true;
      for (const Span& d : obs.spans.spans()) {
        if (d.name == "disk" && d.parent == s.id) disk_under_handle = true;
      }
    }
    if (s.name == "net_send" && s.trace == op->trace) net_on_trace = true;
  }
  EXPECT_TRUE(handle_under_rpc);
  EXPECT_TRUE(disk_under_handle);
  EXPECT_TRUE(net_on_trace);

  // Every span opened by the run was closed, and the client latency
  // histogram saw every op (create + write, plus any meta traffic).
  for (const Span& s : obs.spans.spans()) {
    EXPECT_GE(s.end, s.start) << s.name;
  }
  const Histogram lat = obs.metrics.merged_histogram("client_op_latency_ns");
  EXPECT_GE(lat.count(), 2u);
  EXPECT_EQ(obs.metrics.counter_total("server_requests_total"),
            obs.metrics.counter_total("net_messages_total") / 2);
}

TEST(Observability, DisabledRunMatchesEnabledTiming) {
  const auto run = [](Observability* obs) {
    net::ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 1;
    pfs::Cluster cluster(cfg);
    if (obs != nullptr) cluster.set_observability(obs);
    auto client = cluster.make_client(0);
    cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
      pfs::MetaResult f = co_await c.create("/same");
      (void)co_await c.write_contig(f.handle, 0, nullptr, 1 << 20);
      (void)co_await c.read_contig(f.handle, 4096, nullptr, 1 << 18);
    }(*client));
    cluster.run();
    return cluster.scheduler().now();
  };
  Observability obs;
  // Instrumentation records but never perturbs the simulation.
  EXPECT_EQ(run(nullptr), run(&obs));
  EXPECT_FALSE(obs.spans.spans().empty());
}

// ---- Exporters ---------------------------------------------------------------

TEST(ChromeTrace, ExportsValidLoadableJson) {
  Observability obs;
  const std::uint64_t trace = obs.spans.new_trace();
  const SpanId root = obs.spans.begin("op \"x\"", 1, 1000, 0, trace);
  const SpanId child = obs.spans.begin("disk", 0, 2000, root, trace);
  obs.spans.set_value(child, 4096);
  obs.spans.end(child, 5000);
  obs.spans.end(root, 9000);
  obs.spans.sample("queue_depth", 0, 1500, 3.0);

  ChromeTraceOptions opts;
  opts.node_names = {"srv0", "cli0"};
  std::ostringstream out;
  write_chrome_trace(obs, out, opts);
  const std::string doc = out.str();

  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"srv0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);   // spans
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);   // counter track
  EXPECT_NE(doc.find("\"queue_depth\""), std::string::npos);
  // ts/dur are microseconds: the root span is ts=1, dur=8.
  EXPECT_NE(doc.find("\"ts\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":8"), std::string::npos);
}

TEST(ChromeTrace, OpenSpanGetsNonNegativeDuration) {
  Observability obs;
  obs.spans.begin("never_closed", 0, 500);  // end stays -1
  std::ostringstream out;
  write_chrome_trace(obs, out);
  EXPECT_TRUE(json_valid(out.str()));
  EXPECT_EQ(out.str().find("-"), std::string::npos);  // no negative numbers
}

TEST(RunReport, ToJsonMatchesSchema) {
  RunReport report;
  report.bench = "unit";
  report.params["clients"] = 6;
  MethodReport m;
  m.method = "Datatype I/O";
  m.sim_seconds = 1.5;
  m.bandwidth_mb_s = 43.5;
  m.events = 1234;
  m.per_client.desired_bytes = 100;
  Histogram h;
  h.record(2'000'000);  // 2 ms in ns
  m.latency = LatencySummary::from(h);
  report.methods.push_back(m);
  report.scalars["extra"] = 0.25;

  const std::string doc = report.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"schema\":\"dtio-bench-report-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"Datatype I/O\""), std::string::npos);
  EXPECT_NE(doc.find("\"scalars\""), std::string::npos);
  // Nanoseconds became microseconds in the latency summary.
  EXPECT_DOUBLE_EQ(m.latency.p50_us, 2000.0);
  EXPECT_EQ(m.latency.count, 1u);
}

TEST(JsonValidator, AcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[1,2.5,-3e2,\"s\",true,null]"));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{} trailing"));
  EXPECT_FALSE(json_valid("{\"a\":}"));
  EXPECT_FALSE(json_valid("[1,]"));
}

}  // namespace
}  // namespace dtio::obs
