// Unit tests for the discrete-event engine: scheduling order, coroutine
// task composition, resources, mailboxes, barriers, determinism.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/barrier.h"
#include "sim/mailbox.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace dtio::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_EQ(sched.now(), 0);
  EXPECT_EQ(sched.events_processed(), 0u);
}

TEST(Scheduler, DelayAdvancesClock) {
  Scheduler sched;
  SimTime seen = -1;
  sched.spawn([](Scheduler& s, SimTime& out) -> Task<void> {
    co_await s.delay(5 * kMicrosecond);
    out = s.now();
  }(sched, seen));
  sched.run();
  EXPECT_EQ(seen, 5 * kMicrosecond);
}

TEST(Scheduler, SameTimeEventsRunInSpawnOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.spawn([](Scheduler& s, std::vector<int>& out, int id) -> Task<void> {
      co_await s.delay(0);
      out.push_back(id);
    }(sched, order, i));
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, NestedTasksReturnValues) {
  Scheduler sched;
  int result = 0;
  sched.spawn([](Scheduler& s, int& out) -> Task<void> {
    auto child = [](Scheduler& sc, int v) -> Task<int> {
      co_await sc.delay(kMicrosecond);
      co_return v * 2;
    };
    const int a = co_await child(s, 21);
    const int b = co_await child(s, a);
    out = b;
  }(sched, result));
  sched.run();
  EXPECT_EQ(result, 84);
  EXPECT_EQ(sched.now(), 2 * kMicrosecond);
}

TEST(Scheduler, ExceptionInChildPropagatesToParent) {
  Scheduler sched;
  bool caught = false;
  sched.spawn([](Scheduler& s, bool& flag) -> Task<void> {
    auto child = [](Scheduler& sc) -> Task<void> {
      co_await sc.delay(1);
      throw std::runtime_error("boom");
    };
    try {
      co_await child(s);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  }(sched, caught));
  sched.run();
  EXPECT_TRUE(caught);
}

TEST(Scheduler, UncaughtProcessExceptionSurfacesFromRun) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    co_await s.delay(1);
    throw std::runtime_error("unhandled");
  }(sched));
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Scheduler, TracksProcessCompletion) {
  Scheduler sched;
  for (int i = 0; i < 3; ++i) {
    sched.spawn(
        [](Scheduler& s, int d) -> Task<void> { co_await s.delay(d); }(sched, i));
  }
  EXPECT_EQ(sched.processes_spawned(), 3u);
  sched.run();
  EXPECT_EQ(sched.processes_finished(), 3u);
}

TEST(Resource, SerializesUnitCapacity) {
  Scheduler sched;
  Resource disk(sched, 1);
  std::vector<SimTime> completion;
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Scheduler& s, Resource& r,
                   std::vector<SimTime>& out) -> Task<void> {
      co_await r.use(10 * kMicrosecond);
      out.push_back(s.now());
    }(sched, disk, completion));
  }
  sched.run();
  ASSERT_EQ(completion.size(), 3u);
  EXPECT_EQ(completion[0], 10 * kMicrosecond);
  EXPECT_EQ(completion[1], 20 * kMicrosecond);
  EXPECT_EQ(completion[2], 30 * kMicrosecond);
}

TEST(Resource, CapacityTwoOverlaps) {
  Scheduler sched;
  Resource pool(sched, 2);
  std::vector<SimTime> completion;
  for (int i = 0; i < 4; ++i) {
    sched.spawn([](Scheduler&, Resource& r, std::vector<SimTime>& out,
                   Scheduler& s) -> Task<void> {
      co_await r.use(10 * kMicrosecond);
      out.push_back(s.now());
    }(sched, pool, completion, sched));
  }
  sched.run();
  ASSERT_EQ(completion.size(), 4u);
  EXPECT_EQ(completion[0], 10 * kMicrosecond);
  EXPECT_EQ(completion[1], 10 * kMicrosecond);
  EXPECT_EQ(completion[2], 20 * kMicrosecond);
  EXPECT_EQ(completion[3], 20 * kMicrosecond);
}

TEST(Resource, FifoFairness) {
  Scheduler sched;
  Resource r(sched, 1);
  std::vector<int> grant_order;
  for (int i = 0; i < 5; ++i) {
    sched.spawn([](Scheduler& s, Resource& res, std::vector<int>& out,
                   int id) -> Task<void> {
      co_await s.delay(id);  // stagger arrival
      co_await res.acquire();
      out.push_back(id);
      co_await s.delay(100);
      res.release();
    }(sched, r, grant_order, i));
  }
  sched.run();
  EXPECT_EQ(grant_order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, BusyIntegralMeasuresUtilization) {
  Scheduler sched;
  Resource r(sched, 1);
  sched.spawn([](Scheduler& s, Resource& res) -> Task<void> {
    co_await res.use(30 * kMicrosecond);
    co_await s.delay(10 * kMicrosecond);
  }(sched, r));
  sched.run();
  EXPECT_DOUBLE_EQ(r.busy_integral(), 30.0 * kMicrosecond);
}

TEST(Resource, BusyIntegralExactUnderContention) {
  Scheduler sched;
  Resource r(sched, 1);
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Resource& res) -> Task<void> {
      co_await res.use(10 * kMicrosecond);
    }(r));
  }
  sched.run();
  // Three serialized 10us holds; release hands the unit straight to the
  // next waiter (in_use never dips), so the device shows no idle gap:
  // integral exactly 30us over a 30us run -> utilization 1.0.
  EXPECT_EQ(sched.now(), 30 * kMicrosecond);
  EXPECT_DOUBLE_EQ(r.busy_integral(), 30.0 * kMicrosecond);
}

TEST(Resource, BusyIntegralCountsEachUnit) {
  Scheduler sched;
  Resource r(sched, 2);
  for (int i = 0; i < 2; ++i) {
    sched.spawn([](Resource& res) -> Task<void> {
      co_await res.use(10 * kMicrosecond);
    }(r));
  }
  sched.run();
  // Both units busy over the same 10us window: the integral is unit-time,
  // so utilization = 20us / (10us * capacity 2) = 1.0.
  EXPECT_EQ(sched.now(), 10 * kMicrosecond);
  EXPECT_DOUBLE_EQ(r.busy_integral(), 20.0 * kMicrosecond);
}

TEST(Resource, BusyIntegralIncludesOpenHold) {
  Scheduler sched;
  Resource r(sched, 1);
  double mid = -1.0;
  sched.spawn([](Scheduler& s, Resource& res, double& m) -> Task<void> {
    co_await res.acquire();
    co_await s.delay(5 * kMicrosecond);
    m = res.busy_integral();  // still holding: open interval counts
    res.release();
  }(sched, r, mid));
  sched.run();
  EXPECT_DOUBLE_EQ(mid, 5.0 * kMicrosecond);
  EXPECT_DOUBLE_EQ(r.busy_integral(), 5.0 * kMicrosecond);
}

TEST(Mailbox, DeliverBeforeRecv) {
  Scheduler sched;
  Mailbox box(sched);
  box.deliver(Message(3, 7, 0, 42));
  int got = 0;
  sched.spawn([](Mailbox& mb, int& out) -> Task<void> {
    Message m = co_await mb.recv(3, 7);
    out = m.as<int>();
  }(box, got));
  sched.run();
  EXPECT_EQ(got, 42);
}

TEST(Mailbox, RecvBeforeDeliver) {
  Scheduler sched;
  Mailbox box(sched);
  int got = 0;
  sched.spawn([](Mailbox& mb, int& out) -> Task<void> {
    Message m = co_await mb.recv();
    out = m.as<int>();
  }(box, got));
  sched.spawn([](Scheduler& s, Mailbox& mb) -> Task<void> {
    co_await s.delay(kMillisecond);
    mb.deliver(Message(0, 1, 0, 99));
  }(sched, box));
  sched.run();
  EXPECT_EQ(got, 99);
}

TEST(Mailbox, TagFilterSkipsNonMatching) {
  Scheduler sched;
  Mailbox box(sched);
  box.deliver(Message(0, 1, 0, 10));
  box.deliver(Message(0, 2, 0, 20));
  std::vector<int> got;
  sched.spawn([](Mailbox& mb, std::vector<int>& out) -> Task<void> {
    Message m2 = co_await mb.recv(kAnySource, 2);
    out.push_back(m2.as<int>());
    Message m1 = co_await mb.recv(kAnySource, 1);
    out.push_back(m1.as<int>());
  }(box, got));
  sched.run();
  EXPECT_EQ(got, (std::vector<int>{20, 10}));
}

TEST(Mailbox, SourceFilterMatchesSpecificSender) {
  Scheduler sched;
  Mailbox box(sched);
  box.deliver(Message(5, 0, 0, 50));
  box.deliver(Message(6, 0, 0, 60));
  int got = 0;
  sched.spawn([](Mailbox& mb, int& out) -> Task<void> {
    Message m = co_await mb.recv(6, kAnyTag);
    out = m.as<int>();
  }(box, got));
  sched.run();
  EXPECT_EQ(got, 60);
}

TEST(Barrier, ReleasesAllAtLastArrival) {
  Scheduler sched;
  Barrier barrier(sched, 3);
  std::vector<SimTime> pass_times;
  for (int i = 0; i < 3; ++i) {
    sched.spawn([](Scheduler& s, Barrier& b, std::vector<SimTime>& out,
                   int id) -> Task<void> {
      co_await s.delay(id * 10 * kMicrosecond);
      co_await b.arrive_and_wait();
      out.push_back(s.now());
    }(sched, barrier, pass_times, i));
  }
  sched.run();
  ASSERT_EQ(pass_times.size(), 3u);
  for (const SimTime t : pass_times) EXPECT_EQ(t, 20 * kMicrosecond);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Scheduler sched;
  Barrier barrier(sched, 2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    sched.spawn([](Scheduler& s, Barrier& b, int& done, int id) -> Task<void> {
      for (int round = 0; round < 3; ++round) {
        co_await s.delay((id + 1) * kMicrosecond);
        co_await b.arrive_and_wait();
      }
      ++done;
    }(sched, barrier, rounds_done, i));
  }
  sched.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_EQ(barrier.generation(), 3u);
}

TEST(Determinism, SameProgramSameEventCountAndTime) {
  auto run_once = []() -> std::pair<SimTime, std::uint64_t> {
    Scheduler sched;
    Resource r(sched, 2);
    Barrier b(sched, 4);
    for (int i = 0; i < 4; ++i) {
      sched.spawn([](Scheduler& s, Resource& res, Barrier& bar,
                     int id) -> Task<void> {
        for (int k = 0; k < 10; ++k) {
          co_await res.use((id + k + 1) * kMicrosecond);
          co_await bar.arrive_and_wait();
        }
        co_await s.delay(id);
      }(sched, r, b, i));
    }
    sched.run();
    return {sched.now(), sched.events_processed()};
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
}

TEST(Scheduler, TaskReturnsMoveOnlyValues) {
  Scheduler sched;
  std::unique_ptr<int> result;
  sched.spawn([](Scheduler& s, std::unique_ptr<int>& out) -> Task<void> {
    auto child = [](Scheduler& sc) -> Task<std::unique_ptr<int>> {
      co_await sc.delay(1);
      co_return std::make_unique<int>(99);
    };
    out = co_await child(s);
  }(sched, result));
  sched.run();
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(*result, 99);
}

TEST(Scheduler, ScheduleCallRunsAtTheRightTime) {
  Scheduler sched;
  std::vector<SimTime> fired;
  sched.schedule_call(5 * kMicrosecond, [&] { fired.push_back(sched.now()); });
  sched.schedule_call(2 * kMicrosecond, [&] { fired.push_back(sched.now()); });
  sched.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{2 * kMicrosecond, 5 * kMicrosecond}));
}

TEST(Fire, ExceptionSurfacesFromRun) {
  Scheduler sched;
  sched.spawn([](Scheduler& s) -> Task<void> {
    auto boom = [](Scheduler& sc) -> Fire {
      co_await sc.delay(kMicrosecond);
      throw std::runtime_error("fire failure");
    };
    s.start(boom(s));
    co_await s.delay(kMillisecond);
  }(sched));
  EXPECT_THROW(sched.run(), std::runtime_error);
}

TEST(Fire, FrameSelfDestructs) {
  // Millions of fire-and-forget frames must not accumulate: spawn many and
  // rely on completion (ASan builds catch leaks of still-live frames).
  Scheduler sched;
  std::uint64_t completed = 0;
  sched.spawn([](Scheduler& s, std::uint64_t& done) -> Task<void> {
    auto tick = [](Scheduler& sc, std::uint64_t& d) -> Fire {
      co_await sc.delay(1);
      ++d;
    };
    for (int i = 0; i < 10000; ++i) s.start(tick(s, done));
    co_await s.delay(kMillisecond);
  }(sched, completed));
  sched.run();
  EXPECT_EQ(completed, 10000u);
}

}  // namespace
}  // namespace dtio::sim
