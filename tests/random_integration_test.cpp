// Randomised end-to-end integration property: for random (memory type,
// file type, displacement, count) combinations, every access method must
// produce byte-identical results — write with a random method, read back
// with ALL methods, compare against a locally computed oracle image of
// the file.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "dataloop/cursor.h"
#include "io/joint.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "net/fault.h"
#include "pfs/cluster.h"

namespace dtio {
namespace {

using mpiio::Method;
using sim::Task;

/// Random monotonic file-suitable datatype (offsets nondecreasing).
types::Datatype random_filetype(Rng& rng, int depth) {
  if (depth == 0) {
    return types::byte_t();
  }
  auto inner = random_filetype(rng, depth - 1);
  switch (rng.next_below(4)) {
    case 0:
      return types::contiguous(rng.next_range(1, 4), inner);
    case 1: {
      const std::int64_t bl = rng.next_range(1, 3);
      return types::hvector(rng.next_range(1, 4), bl,
                            bl * inner.extent() +
                                rng.next_range(0, 32),
                            inner);
    }
    case 2: {
      const std::int64_t count = rng.next_range(1, 4);
      std::vector<std::int64_t> lens, offs;
      std::int64_t at = rng.next_range(0, 8) * inner.extent();
      for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t bl = rng.next_range(1, 2);
        lens.push_back(bl);
        offs.push_back(at);
        at += bl * inner.extent() + rng.next_range(1, 40);
      }
      return types::hindexed(lens, offs, inner);
    }
    default: {
      auto base = types::contiguous(rng.next_range(1, 3), inner);
      return types::resized(base, 0,
                            base.extent() + rng.next_range(0, 24));
    }
  }
}

struct Scenario {
  types::Datatype memtype;
  types::Datatype filetype;
  std::int64_t displacement;
  std::int64_t mem_count;
  std::int64_t offset_etypes;
};

Scenario random_scenario(Rng& rng) {
  Scenario s;
  s.filetype = random_filetype(rng, static_cast<int>(rng.next_range(1, 3)));
  // Memory type with matching total size: contiguous or strided.
  const std::int64_t mem_count = rng.next_range(1, 3);
  // total bytes must be a multiple of memtype size; choose memtype size
  // freely and cover whatever window it implies.
  if (rng.next_below(2)) {
    s.memtype = types::contiguous(rng.next_range(8, 200), types::byte_t());
  } else {
    const std::int64_t bl = rng.next_range(2, 16);
    s.memtype = types::hvector(rng.next_range(2, 10), bl,
                               bl + rng.next_range(0, 16), types::byte_t());
  }
  s.mem_count = mem_count;
  s.displacement = rng.next_range(0, 512);
  s.offset_etypes = rng.next_range(0, 64);
  return s;
}

class RandomIntegration : public ::testing::TestWithParam<int> {};

TEST_P(RandomIntegration, AllMethodsAgreeWithOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
  const Scenario sc = random_scenario(rng);
  const std::int64_t total = sc.mem_count * sc.memtype.size();

  // Memory image: the typed buffer the application writes from.
  const std::int64_t mem_span = sc.memtype.extent() * sc.mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  // Oracle: expected file bytes, computed with the joint walker alone.
  std::map<std::int64_t, std::uint8_t> expected_file;
  {
    io::FileView view{sc.displacement, types::byte_t(), sc.filetype};
    const io::StreamWindow window =
        io::make_window(view, sc.offset_etypes, total);
    io::JointWalker walker(io::make_mem_cursor(sc.memtype, sc.mem_count),
                           io::make_file_cursor(view, window));
    io::JointWalker::Piece piece;
    while (walker.next(piece)) {
      for (std::int64_t i = 0; i < piece.length; ++i) {
        expected_file[piece.file_offset + i] =
            mem_image[static_cast<std::size_t>(piece.mem_offset + i)];
      }
    }
    ASSERT_EQ(static_cast<std::int64_t>(expected_file.size()), total)
        << "oracle: file regions must be disjoint";
  }

  // One cluster; write once with a random method, read back with all.
  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;  // small strips stress splitting
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  const Method write_methods[] = {Method::kPosix, Method::kList,
                                  Method::kDatatype};
  const Method write_method =
      write_methods[rng.next_below(3)];

  bool wrote = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Scenario& s,
         const std::vector<std::uint8_t>& image, Method wm,
         bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/rand", true)).is_ok());
        f.set_view(s.displacement, types::byte_t(), s.filetype);
        Status st = co_await f.write_at(s.offset_etypes, image.data(),
                                        s.mem_count, s.memtype, wm);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        done = st.is_ok();
      }(file, sc, mem_image, write_method, wrote));
  cluster.run();
  ASSERT_TRUE(wrote);

  // Verify raw file contents against the oracle.
  {
    std::int64_t file_end = 0;
    for (const auto& [off, byte] : expected_file) {
      file_end = std::max(file_end, off + 1);
    }
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(file_end), 0);
    bool read_ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, std::vector<std::uint8_t>& out,
           bool& done) -> Task<void> {
          f.set_view(0, types::byte_t(), types::byte_t());
          auto whole = types::contiguous(
              static_cast<std::int64_t>(out.size()), types::byte_t());
          done = (co_await f.read_at(0, out.data(), 1, whole,
                                     mpiio::Method::kPosix))
                     .is_ok();
        }(file, raw, read_ok));
    cluster.run();
    ASSERT_TRUE(read_ok);
    for (const auto& [off, byte] : expected_file) {
      ASSERT_EQ(raw[static_cast<std::size_t>(off)], byte)
          << "file byte " << off << " after "
          << mpiio::method_name(write_method);
    }
  }

  // Read back through the view with every method; compare the typed
  // memory bytes.
  for (const Method read_method :
       {Method::kPosix, Method::kDataSieving, Method::kList,
        Method::kDatatype}) {
    std::vector<std::uint8_t> back(mem_image.size(), 0);
    bool read_ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const Scenario& s, std::vector<std::uint8_t>& out,
           Method rm, bool& done) -> Task<void> {
          f.set_view(s.displacement, types::byte_t(), s.filetype);
          done = (co_await f.read_at(s.offset_etypes, out.data(),
                                     s.mem_count, s.memtype, rm))
                     .is_ok();
        }(file, sc, back, read_method, read_ok));
    cluster.run();
    ASSERT_TRUE(read_ok) << mpiio::method_name(read_method);
    for (const Region& r : sc.memtype.flatten(0, sc.mem_count)) {
      for (std::int64_t i = r.offset; i < r.end(); ++i) {
        ASSERT_EQ(back[static_cast<std::size_t>(i)],
                  mem_image[static_cast<std::size_t>(i)])
            << "mem byte " << i << " via " << mpiio::method_name(read_method)
            << " after " << mpiio::method_name(write_method);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, RandomIntegration, ::testing::Range(0, 25));

// ---- Pruned-expansion equivalence -----------------------------------------
//
// Stripe-aware pruned expansion is a server-side work optimisation: with
// the flag on, servers skip dataloop subtrees that miss their strips; with
// it off they walk everything and discard. The two must be externally
// indistinguishable — same payload bytes, same per-server piece and byte
// counts — for arbitrary (memtype, filetype, displacement, window)
// combinations.

struct PrunedRun {
  std::vector<std::uint8_t> back;
  std::uint64_t regions_walked = 0;
  std::uint64_t subtrees_skipped = 0;
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>
      per_server;  ///< (my_pieces, bytes_read, bytes_written)
};

PrunedRun run_datatype_io(const Scenario& sc,
                          const std::vector<std::uint8_t>& mem_image,
                          bool pruned_expansion) {
  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;
  cfg.server.pruned_expansion = pruned_expansion;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  PrunedRun run;
  run.back.assign(mem_image.size(), 0);
  bool ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Scenario& s,
         const std::vector<std::uint8_t>& image,
         std::vector<std::uint8_t>& out, bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/pruned", true)).is_ok());
        f.set_view(s.displacement, types::byte_t(), s.filetype);
        Status w = co_await f.write_at(s.offset_etypes, image.data(),
                                       s.mem_count, s.memtype,
                                       Method::kDatatype);
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        Status r = co_await f.read_at(s.offset_etypes, out.data(), s.mem_count,
                                      s.memtype, Method::kDatatype);
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = w.is_ok() && r.is_ok();
      }(file, sc, mem_image, run.back, ok));
  cluster.run();
  EXPECT_TRUE(ok);
  for (int s = 0; s < cfg.num_servers; ++s) {
    const pfs::ServerStats& st = cluster.server(s).stats();
    run.regions_walked += st.regions_walked;
    run.subtrees_skipped += st.subtrees_skipped;
    run.per_server.emplace_back(st.my_pieces, st.bytes_read, st.bytes_written);
  }
  return run;
}

class PrunedEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PrunedEquivalence, DatatypeIOIsUnchangedByPruning) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 69621 + 7);
  const Scenario sc = random_scenario(rng);
  const std::int64_t mem_span = sc.memtype.extent() * sc.mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  const PrunedRun pruned = run_datatype_io(sc, mem_image, true);
  const PrunedRun full = run_datatype_io(sc, mem_image, false);

  EXPECT_EQ(pruned.back, full.back);
  // Every memory byte the access touches must round-trip.
  for (const Region& r : sc.memtype.flatten(0, sc.mem_count)) {
    for (std::int64_t i = r.offset; i < r.end(); ++i) {
      ASSERT_EQ(pruned.back[static_cast<std::size_t>(i)],
                mem_image[static_cast<std::size_t>(i)])
          << "mem byte " << i;
    }
  }
  EXPECT_EQ(pruned.per_server, full.per_server);
  EXPECT_LE(pruned.regions_walked, full.regions_walked);
  EXPECT_EQ(full.subtrees_skipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PrunedEquivalence, ::testing::Range(0, 15));

// ---- Buffer-cache equivalence ----------------------------------------------
//
// The server buffer cache is a timing optimisation: with it on (write-back
// or write-through, tiny capacity so eviction/flush paths fire constantly)
// or off, the same workload must leave byte-identical file contents and
// every read method must return byte-identical data. Write with a random
// method, read back with ALL methods, then settle write-back dirt and
// compare the raw file image across all three configurations and against
// the oracle.

struct CacheRun {
  std::vector<std::uint8_t> raw;  ///< whole-file bytes after settle
  std::vector<std::vector<std::uint8_t>> backs;  ///< per read method
  bool ok = true;
};

CacheRun run_cached_scenario(const Scenario& sc,
                             const std::vector<std::uint8_t>& mem_image,
                             Method write_method, std::int64_t file_end,
                             int cache_mode /*0=off 1=write-back 2=through*/) {
  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;
  if (cache_mode != 0) {
    // Tiny cache (8 blocks of 512) so the scenario's working set overflows
    // it: evictions, dirty flushes, and readahead all fire mid-run.
    cfg.server.cache_block_bytes = 512;
    cfg.server.cache_capacity_bytes = 8 * 512;
    cfg.server.cache_write_through = cache_mode == 2;
  }
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  CacheRun run;
  bool wrote = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Scenario& s,
         const std::vector<std::uint8_t>& image, Method wm,
         bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/cached", true)).is_ok());
        f.set_view(s.displacement, types::byte_t(), s.filetype);
        Status st = co_await f.write_at(s.offset_etypes, image.data(),
                                        s.mem_count, s.memtype, wm);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        done = st.is_ok();
      }(file, sc, mem_image, write_method, wrote));
  cluster.run();
  EXPECT_TRUE(wrote);
  run.ok = wrote;

  for (const Method read_method :
       {Method::kPosix, Method::kDataSieving, Method::kList,
        Method::kDatatype}) {
    std::vector<std::uint8_t> back(mem_image.size(), 0);
    bool read_ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const Scenario& s, std::vector<std::uint8_t>& out,
           Method rm, bool& done) -> Task<void> {
          f.set_view(s.displacement, types::byte_t(), s.filetype);
          done = (co_await f.read_at(s.offset_etypes, out.data(), s.mem_count,
                                     s.memtype, rm))
                     .is_ok();
        }(file, sc, back, read_method, read_ok));
    cluster.run();
    EXPECT_TRUE(read_ok) << mpiio::method_name(read_method);
    run.ok = run.ok && read_ok;
    run.backs.push_back(std::move(back));
  }

  // Settle staged write-back data (no-op for off/write-through), then read
  // the raw file image.
  cluster.flush_caches();
  run.raw.assign(static_cast<std::size_t>(file_end), 0);
  bool raw_ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        f.set_view(0, types::byte_t(), types::byte_t());
        auto whole = types::contiguous(static_cast<std::int64_t>(out.size()),
                                       types::byte_t());
        done = (co_await f.read_at(0, out.data(), 1, whole, Method::kPosix))
                   .is_ok();
      }(file, run.raw, raw_ok));
  cluster.run();
  EXPECT_TRUE(raw_ok);
  run.ok = run.ok && raw_ok;
  return run;
}

class CacheEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CacheEquivalence, CacheOnOffByteIdenticalAcrossAllMethods) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 13);
  const Scenario sc = random_scenario(rng);
  const std::int64_t mem_span = sc.memtype.extent() * sc.mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  // Oracle image (same walker as AllMethodsAgreeWithOracle).
  std::map<std::int64_t, std::uint8_t> expected_file;
  {
    const std::int64_t total = sc.mem_count * sc.memtype.size();
    io::FileView view{sc.displacement, types::byte_t(), sc.filetype};
    const io::StreamWindow window =
        io::make_window(view, sc.offset_etypes, total);
    io::JointWalker walker(io::make_mem_cursor(sc.memtype, sc.mem_count),
                           io::make_file_cursor(view, window));
    io::JointWalker::Piece piece;
    while (walker.next(piece)) {
      for (std::int64_t i = 0; i < piece.length; ++i) {
        expected_file[piece.file_offset + i] =
            mem_image[static_cast<std::size_t>(piece.mem_offset + i)];
      }
    }
  }
  std::int64_t file_end = 0;
  for (const auto& [off, byte] : expected_file) {
    file_end = std::max(file_end, off + 1);
  }

  const Method write_methods[] = {Method::kPosix, Method::kList,
                                  Method::kDatatype};
  const Method wm = write_methods[rng.next_below(3)];

  const CacheRun off = run_cached_scenario(sc, mem_image, wm, file_end, 0);
  const CacheRun wb = run_cached_scenario(sc, mem_image, wm, file_end, 1);
  const CacheRun wt = run_cached_scenario(sc, mem_image, wm, file_end, 2);
  ASSERT_TRUE(off.ok && wb.ok && wt.ok);

  // Raw file contents identical across configurations and per the oracle.
  EXPECT_EQ(off.raw, wb.raw) << "write-back changed the file image";
  EXPECT_EQ(off.raw, wt.raw) << "write-through changed the file image";
  for (const auto& [at, byte] : expected_file) {
    ASSERT_EQ(off.raw[static_cast<std::size_t>(at)], byte)
        << "file byte " << at;
  }
  // Every read method returned identical bytes in all three runs.
  ASSERT_EQ(off.backs.size(), wb.backs.size());
  for (std::size_t m = 0; m < off.backs.size(); ++m) {
    EXPECT_EQ(off.backs[m], wb.backs[m]) << "read method " << m;
    EXPECT_EQ(off.backs[m], wt.backs[m]) << "read method " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CacheEquivalence, ::testing::Range(0, 12));

// ---- Write-behind equivalence ----------------------------------------------
//
// Client write-behind is a timing optimisation: with it on (tiny watermark
// so mid-op flushes fire, or huge watermark so everything drains via
// read-after-write overlap and the explicit flush) or off, the same
// workload must leave byte-identical file contents and every read method
// must return byte-identical data. The reads interleave with staged data,
// exercising the RAW drain path; the final raw image is read after an
// explicit flush.

struct WbRunResult {
  std::vector<std::uint8_t> raw;  ///< whole-file bytes after flush
  std::vector<std::vector<std::uint8_t>> backs;  ///< per read method
  std::uint64_t flushes = 0;
  std::uint64_t batches = 0;
  bool ok = true;
};

WbRunResult run_wb_scenario(const Scenario& sc,
                            const std::vector<std::uint8_t>& mem_image,
                            Method write_method, std::int64_t file_end,
                            std::int64_t write_behind_bytes) {
  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;
  cfg.client.write_behind_bytes = write_behind_bytes;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  WbRunResult run;
  bool wrote = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Scenario& s,
         const std::vector<std::uint8_t>& image, Method wm,
         bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/wb", true)).is_ok());
        f.set_view(s.displacement, types::byte_t(), s.filetype);
        Status st = co_await f.write_at(s.offset_etypes, image.data(),
                                        s.mem_count, s.memtype, wm);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        done = st.is_ok();
      }(file, sc, mem_image, write_method, wrote));
  cluster.run();
  EXPECT_TRUE(wrote);
  run.ok = wrote;

  // Reads while data may still be staged: read-after-write overlap must
  // drain the staging buffers first, so every method sees the new bytes.
  for (const Method read_method :
       {Method::kPosix, Method::kDataSieving, Method::kList,
        Method::kDatatype}) {
    std::vector<std::uint8_t> back(mem_image.size(), 0);
    bool read_ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const Scenario& s, std::vector<std::uint8_t>& out,
           Method rm, bool& done) -> Task<void> {
          f.set_view(s.displacement, types::byte_t(), s.filetype);
          done = (co_await f.read_at(s.offset_etypes, out.data(), s.mem_count,
                                     s.memtype, rm))
                     .is_ok();
        }(file, sc, back, read_method, read_ok));
    cluster.run();
    EXPECT_TRUE(read_ok) << mpiio::method_name(read_method);
    run.ok = run.ok && read_ok;
    run.backs.push_back(std::move(back));
  }

  // Explicit flush (MPI_File_sync analogue), then the raw file image.
  bool flushed = false;
  cluster.scheduler().spawn([](mpiio::File& f, bool& done) -> Task<void> {
    done = (co_await f.flush()).is_ok();
  }(file, flushed));
  cluster.run();
  EXPECT_TRUE(flushed);
  run.ok = run.ok && flushed;
  EXPECT_EQ(client->write_behind_staged_bytes(), 0);

  run.raw.assign(static_cast<std::size_t>(file_end), 0);
  bool raw_ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        f.set_view(0, types::byte_t(), types::byte_t());
        auto whole = types::contiguous(static_cast<std::int64_t>(out.size()),
                                       types::byte_t());
        done = (co_await f.read_at(0, out.data(), 1, whole, Method::kPosix))
                   .is_ok();
      }(file, run.raw, raw_ok));
  cluster.run();
  EXPECT_TRUE(raw_ok);
  run.ok = run.ok && raw_ok;
  run.flushes = client->wb_flushes();
  run.batches = client->wb_batches();
  return run;
}

class WriteBehindEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(WriteBehindEquivalence, OnOffByteIdenticalAcrossAllMethods) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 28629 + 5);
  const Scenario sc = random_scenario(rng);
  const std::int64_t mem_span = sc.memtype.extent() * sc.mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  // Oracle image (same walker as AllMethodsAgreeWithOracle).
  std::map<std::int64_t, std::uint8_t> expected_file;
  {
    const std::int64_t total = sc.mem_count * sc.memtype.size();
    io::FileView view{sc.displacement, types::byte_t(), sc.filetype};
    const io::StreamWindow window =
        io::make_window(view, sc.offset_etypes, total);
    io::JointWalker walker(io::make_mem_cursor(sc.memtype, sc.mem_count),
                           io::make_file_cursor(view, window));
    io::JointWalker::Piece piece;
    while (walker.next(piece)) {
      for (std::int64_t i = 0; i < piece.length; ++i) {
        expected_file[piece.file_offset + i] =
            mem_image[static_cast<std::size_t>(piece.mem_offset + i)];
      }
    }
  }
  std::int64_t file_end = 0;
  for (const auto& [off, byte] : expected_file) {
    file_end = std::max(file_end, off + 1);
  }

  const Method write_methods[] = {Method::kPosix, Method::kList,
                                  Method::kDatatype};
  const Method wm = write_methods[rng.next_below(3)];

  // off | tiny watermark (mid-op flushes fire constantly) | huge watermark
  // (nothing auto-flushes: RAW drains + the explicit flush do all the work).
  const WbRunResult off = run_wb_scenario(sc, mem_image, wm, file_end, 0);
  const WbRunResult tiny = run_wb_scenario(sc, mem_image, wm, file_end, 512);
  const WbRunResult big =
      run_wb_scenario(sc, mem_image, wm, file_end, 16 * 1024 * 1024);
  ASSERT_TRUE(off.ok && tiny.ok && big.ok);

  EXPECT_EQ(off.raw, tiny.raw) << "tiny-watermark write-behind changed bytes";
  EXPECT_EQ(off.raw, big.raw) << "big-watermark write-behind changed bytes";
  for (const auto& [at, byte] : expected_file) {
    ASSERT_EQ(off.raw[static_cast<std::size_t>(at)], byte)
        << "file byte " << at;
  }
  ASSERT_EQ(off.backs.size(), tiny.backs.size());
  for (std::size_t m = 0; m < off.backs.size(); ++m) {
    EXPECT_EQ(off.backs[m], tiny.backs[m]) << "read method " << m;
    EXPECT_EQ(off.backs[m], big.backs[m]) << "read method " << m;
  }
  // Write-behind genuinely engaged in the on-runs and not in the off-run.
  EXPECT_EQ(off.flushes, 0u);
  EXPECT_GT(tiny.flushes, 0u);
  EXPECT_GT(big.flushes, 0u);
  EXPECT_EQ(tiny.batches, tiny.flushes);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, WriteBehindEquivalence,
                         ::testing::Range(0, 12));

// ---- Chaos sweep -----------------------------------------------------------
//
// The reliability contract under injected faults: with timeouts + retries
// armed, every operation either succeeds with byte-identical data or
// returns a typed reliability error (kUnavailable / kTimedOut /
// kDataLoss). It never hangs (the run completing IS the assertion — CI
// adds a wall-clock watchdog) and never silently corrupts (an ok status
// with wrong bytes, or an untyped kInternal, fails the test).

bool typed_reliability_error(const Status& st) {
  return st.code() == StatusCode::kUnavailable ||
         st.code() == StatusCode::kTimedOut ||
         st.code() == StatusCode::kDataLoss;
}

class RandomChaos : public ::testing::TestWithParam<int> {};

TEST_P(RandomChaos, OpsSucceedByteIdenticalOrFailTyped) {
  // Scenario seed: the documented DTIO_SEED plumbing — one env var
  // reproduces the whole sweep.
  Rng rng(mix_seed(run_seed(/*fallback=*/7),
                   static_cast<std::uint64_t>(GetParam())));
  const Scenario sc = random_scenario(rng);
  const std::int64_t mem_span = sc.memtype.extent() * sc.mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;
  cfg.seed = mix_seed(11, static_cast<std::uint64_t>(GetParam()));
  // Generous deadline (worst-case service here is ~ms) so every timeout
  // in the run is a real fault, not scheduling noise.
  cfg.client.rpc_timeout = 200 * kMillisecond;
  cfg.client.rpc_max_attempts = 6;
  cfg.client.rpc_backoff_base = 10 * kMillisecond;
  pfs::Cluster cluster(cfg);

  net::FaultPlan plan(mix_seed(cfg.seed, /*salt=*/0xC4A05));
  net::FaultSpec spec;
  const int variant = GetParam() % 5;
  switch (variant) {
    case 0: spec.drop = 0.05; break;
    case 1: spec.duplicate = 0.05; break;
    case 2: spec.corrupt = 0.05; break;
    default:  // combined; variant 4 adds a mid-run crash below
      spec.drop = 0.05;
      spec.duplicate = 0.02;
      spec.corrupt = 0.01;
      spec.delay = 0.02;
      break;
  }
  plan.set_default_spec(spec);
  // Fault only client<->server links; collective client<->client traffic
  // (none in this single-client sweep, but the scope is the documented
  // chaos-mode setting) has no retry layer.
  plan.set_scope_max_node(cfg.num_servers);
  cluster.set_fault_plan(&plan);
  if (variant == 4) {
    cluster.schedule_server_crash(/*index=*/1, /*at=*/5 * kMillisecond,
                                  /*restart_delay=*/30 * kMillisecond);
  }

  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  const Method write_methods[] = {Method::kPosix, Method::kList,
                                  Method::kDatatype};
  const Method write_method = write_methods[rng.next_below(3)];

  Status write_status;
  bool opened = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Scenario& s,
         const std::vector<std::uint8_t>& image, Method wm, bool& opened,
         Status& out) -> Task<void> {
        const Status open_st = co_await f.open("/chaos", true);
        opened = open_st.is_ok();
        if (!opened) {
          out = open_st;
          co_return;
        }
        f.set_view(s.displacement, types::byte_t(), s.filetype);
        out = co_await f.write_at(s.offset_etypes, image.data(), s.mem_count,
                                  s.memtype, wm);
      }(file, sc, mem_image, write_method, opened, write_status));
  cluster.run();
  if (!opened || !write_status.is_ok()) {
    EXPECT_TRUE(typed_reliability_error(write_status))
        << "untyped failure: " << write_status.to_string();
    return;  // nothing durable to compare against
  }

  // Every read must round-trip byte-identically or fail typed.
  for (const Method read_method :
       {Method::kPosix, Method::kDataSieving, Method::kList,
        Method::kDatatype}) {
    std::vector<std::uint8_t> back(mem_image.size(), 0);
    Status read_status;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const Scenario& s, std::vector<std::uint8_t>& out,
           Method rm, Status& st) -> Task<void> {
          f.set_view(s.displacement, types::byte_t(), s.filetype);
          st = co_await f.read_at(s.offset_etypes, out.data(), s.mem_count,
                                  s.memtype, rm);
        }(file, sc, back, read_method, read_status));
    cluster.run();
    if (!read_status.is_ok()) {
      EXPECT_TRUE(typed_reliability_error(read_status))
          << "untyped failure via " << mpiio::method_name(read_method) << ": "
          << read_status.to_string();
      continue;
    }
    for (const Region& r : sc.memtype.flatten(0, sc.mem_count)) {
      for (std::int64_t i = r.offset; i < r.end(); ++i) {
        ASSERT_EQ(back[static_cast<std::size_t>(i)],
                  mem_image[static_cast<std::size_t>(i)])
            << "silent corruption at mem byte " << i << " via "
            << mpiio::method_name(read_method) << " after "
            << mpiio::method_name(write_method);
      }
    }
  }
  // Injection totals are probabilistic (a small scenario can draw zero
  // faults), so assert the plan was genuinely in the send path instead.
  EXPECT_EQ(cluster.network().fault_plan(), &plan);
  if (variant == 4) EXPECT_EQ(cluster.server(1).stats().crashes, 1u);
}

INSTANTIATE_TEST_SUITE_P(Variants, RandomChaos, ::testing::Range(0, 15));

}  // namespace
}  // namespace dtio
