// Tests for the HDF5-style hyperslab front-end: brute-force oracle over
// element coordinates, datatype/dataloop equivalence, validation, and an
// end-to-end write/read through the simulated file system.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"
#include "dataloop/cursor.h"
#include "hyperslab/hyperslab.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"

namespace dtio::hyperslab {
namespace {

using sim::Task;

/// Brute-force: byte regions of all selected elements, in row-major order.
std::vector<Region> oracle_regions(const Hyperslab& slab,
                                   std::int64_t el_size) {
  const auto& dims = slab.dims();
  std::vector<std::int64_t> coords(dims.size(), 0);
  std::vector<Region> out;
  while (true) {
    if (slab.contains(coords)) {
      std::int64_t flat = 0;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        flat = flat * dims[d] + coords[d];
      }
      out.push_back({flat * el_size, el_size});
    }
    // Odometer increment.
    std::size_t d = dims.size();
    while (d-- > 0) {
      if (++coords[d] < dims[d]) break;
      coords[d] = 0;
      if (d == 0) {
        coalesce_adjacent(out);
        return out;
      }
    }
  }
}

TEST(Hyperslab, SimpleStridedColumns) {
  // 4x8 space; every other column pair, rows 1..2.
  const std::int64_t dims[] = {4, 8};
  const DimSelection sel[] = {{1, 1, 2, 1}, {0, 4, 2, 2}};
  Hyperslab slab(dims, sel);
  EXPECT_EQ(slab.num_selected(), 2 * 4);
  EXPECT_TRUE(slab.contains(std::vector<std::int64_t>{1, 0}));
  EXPECT_TRUE(slab.contains(std::vector<std::int64_t>{2, 5}));
  EXPECT_FALSE(slab.contains(std::vector<std::int64_t>{0, 0}));
  EXPECT_FALSE(slab.contains(std::vector<std::int64_t>{1, 2}));
  EXPECT_FALSE(slab.contains(std::vector<std::int64_t>{3, 4}));

  auto regions = dl::flatten(slab.to_dataloop(1), 0, 1);
  EXPECT_EQ(regions, oracle_regions(slab, 1));
}

TEST(Hyperslab, DatatypeAndDataloopAgree) {
  const std::int64_t dims[] = {5, 6, 7};
  const DimSelection sel[] = {{0, 2, 2, 1}, {1, 3, 2, 2}, {2, 5, 1, 3}};
  Hyperslab slab(dims, sel);
  auto via_loop = dl::flatten(slab.to_dataloop(4), 0, 1);
  auto via_type = slab.to_datatype(types::int32_t_()).flatten(0, 1);
  EXPECT_EQ(via_loop, via_type);
  EXPECT_EQ(via_type, oracle_regions(slab, 4));
  EXPECT_EQ(slab.to_datatype(types::int32_t_()).size(),
            slab.num_selected() * 4);
}

TEST(Hyperslab, ExtentSpansWholeDataspace) {
  const std::int64_t dims[] = {3, 4};
  const DimSelection sel[] = {{0, 1, 1, 1}, {1, 2, 2, 1}};
  Hyperslab slab(dims, sel);
  EXPECT_EQ(slab.to_datatype(types::double_t()).extent(), 3 * 4 * 8);
  EXPECT_EQ(slab.to_dataloop(8)->extent, 3 * 4 * 8);
}

TEST(Hyperslab, ValidationRejectsBadSelections) {
  const std::int64_t dims[] = {4, 4};
  const DimSelection overlap[] = {{0, 1, 1, 1}, {0, 2, 2, 3}};
  EXPECT_THROW(Hyperslab(dims, overlap), std::invalid_argument);
  const DimSelection outside[] = {{0, 1, 1, 1}, {2, 2, 2, 1}};
  EXPECT_THROW(Hyperslab(dims, outside), std::invalid_argument);
  const DimSelection negative[] = {{-1, 1, 1, 1}, {0, 1, 1, 1}};
  EXPECT_THROW(Hyperslab(dims, negative), std::invalid_argument);
  const DimSelection wrong_arity[] = {{0, 1, 1, 1}};
  EXPECT_THROW(Hyperslab(dims, wrong_arity), std::invalid_argument);
}

class HyperslabProperty : public ::testing::TestWithParam<int> {};

TEST_P(HyperslabProperty, RandomSelectionsMatchOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2357);
  const auto ndims = static_cast<std::size_t>(rng.next_range(1, 3));
  std::vector<std::int64_t> dims;
  std::vector<DimSelection> sel;
  for (std::size_t d = 0; d < ndims; ++d) {
    const std::int64_t size = rng.next_range(4, 12);
    DimSelection s;
    s.block = rng.next_range(1, 3);
    s.stride = s.block + rng.next_range(0, 3);
    const std::int64_t max_count =
        (size - s.block) / s.stride + 1;
    s.count = rng.next_range(1, std::max<std::int64_t>(1, max_count));
    s.start = rng.next_range(0, size - ((s.count - 1) * s.stride + s.block));
    dims.push_back(size);
    sel.push_back(s);
  }
  Hyperslab slab(dims, sel);
  const std::int64_t el = rng.next_range(1, 8);
  auto regions = dl::flatten(slab.to_dataloop(el), 0, 1);
  EXPECT_EQ(regions, oracle_regions(slab, el));
  EXPECT_EQ(total_length(regions), slab.num_selected() * el);
}

INSTANTIATE_TEST_SUITE_P(Random, HyperslabProperty, ::testing::Range(0, 30));

// ---- Union selections (H5S_SELECT_OR) -----------------------------------------

TEST(Selection, UnionDeduplicatesOverlaps) {
  const std::int64_t dims[] = {8, 8};
  Selection sel(dims);
  const DimSelection rows_0_3[] = {{0, 1, 4, 1}, {0, 1, 8, 1}};
  const DimSelection rows_2_5[] = {{2, 1, 4, 1}, {0, 1, 8, 1}};
  sel.select_or(rows_0_3);
  sel.select_or(rows_2_5);
  EXPECT_EQ(sel.num_slabs(), 2u);
  // Rows 0..5 of 8 columns, overlap (rows 2..3) counted once.
  EXPECT_EQ(sel.num_selected(), 6 * 8);
  EXPECT_TRUE(sel.contains(std::vector<std::int64_t>{5, 7}));
  EXPECT_FALSE(sel.contains(std::vector<std::int64_t>{6, 0}));
  // Rows 0..5 are contiguous in element space: one merged region.
  EXPECT_EQ(sel.element_regions(), (std::vector<Region>{{0, 48}}));
}

TEST(Selection, DisjointSlabsKeepSeparateRegions) {
  const std::int64_t dims[] = {16};
  Selection sel(dims);
  const DimSelection a[] = {{0, 1, 2, 1}};
  const DimSelection b[] = {{10, 2, 3, 1}};
  sel.select_or(a);
  sel.select_or(b);
  EXPECT_EQ(sel.element_regions(),
            (std::vector<Region>{{0, 2}, {10, 1}, {12, 1}, {14, 1}}));
  EXPECT_EQ(sel.num_selected(), 5);
}

TEST(Selection, UnionDatatypeMatchesMembership) {
  const std::int64_t dims[] = {6, 10};
  Selection sel(dims);
  const DimSelection block_a[] = {{0, 1, 2, 1}, {0, 3, 3, 2}};
  const DimSelection block_b[] = {{1, 1, 3, 1}, {4, 1, 4, 1}};
  sel.select_or(block_a);
  sel.select_or(block_b);
  auto type = sel.to_datatype(types::int32_t_());
  EXPECT_EQ(type.size(), sel.num_selected() * 4);
  EXPECT_EQ(type.extent(), 6 * 10 * 4);
  // Every flattened byte maps back to a selected element and vice versa.
  std::int64_t covered = 0;
  for (const Region& r : type.flatten(0, 1)) {
    EXPECT_EQ(r.offset % 4, 0);
    EXPECT_EQ(r.length % 4, 0);
    for (std::int64_t el = r.offset / 4; el < r.end() / 4; ++el) {
      const std::int64_t coords[] = {el / 10, el % 10};
      EXPECT_TRUE(sel.contains(coords)) << "element " << el;
      ++covered;
    }
  }
  EXPECT_EQ(covered, sel.num_selected());
}

TEST(Selection, RegionUnionPrimitive) {
  std::vector<Region> messy{{10, 5}, {0, 4}, {12, 10}, {3, 2}, {40, 0}};
  EXPECT_EQ(region_union(std::move(messy)),
            (std::vector<Region>{{0, 5}, {10, 12}}));
  EXPECT_TRUE(region_union({}).empty());
}

TEST(Hyperslab, EndToEndThroughTheFileSystem) {
  // Write a full 2-D dataset, read back a hyperslab with datatype I/O,
  // verify against the oracle.
  net::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.strip_size = 512;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  const std::int64_t dims[] = {16, 32};
  const DimSelection sel[] = {{2, 3, 4, 2}, {1, 6, 5, 3}};
  Hyperslab slab(dims, sel);

  std::vector<std::uint8_t> dataset(16 * 32);
  std::iota(dataset.begin(), dataset.end(), 0);
  std::vector<std::uint8_t> picked(
      static_cast<std::size_t>(slab.num_selected()), 0);
  bool ok = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const Hyperslab& s,
         const std::vector<std::uint8_t>& all, std::vector<std::uint8_t>& out,
         bool& verified) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/h5", true)).is_ok());
        f.set_view(0, types::byte_t(), types::byte_t());
        auto whole = types::contiguous(
            static_cast<std::int64_t>(all.size()), types::byte_t());
        EXPECT_TRUE((co_await f.write_at(0, all.data(), 1, whole,
                                         mpiio::Method::kDatatype))
                        .is_ok());
        // Select through the hyperslab view (the HDF5-layer path).
        f.set_view(0, types::byte_t(), s.to_datatype(types::byte_t()));
        auto memtype = types::contiguous(s.num_selected(), types::byte_t());
        EXPECT_TRUE((co_await f.read_at(0, out.data(), 1, memtype,
                                        mpiio::Method::kDatatype))
                        .is_ok());
        verified = true;
      }(file, slab, dataset, picked, ok));
  cluster.run();
  ASSERT_TRUE(ok);

  const auto expect = oracle_regions(slab, 1);
  std::size_t at = 0;
  for (const Region& r : expect) {
    for (std::int64_t i = r.offset; i < r.end(); ++i) {
      ASSERT_EQ(picked[at++], dataset[static_cast<std::size_t>(i)])
          << "element " << i;
    }
  }
  EXPECT_EQ(at, picked.size());
}

}  // namespace
}  // namespace dtio::hyperslab
