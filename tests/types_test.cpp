// Tests for the MPI-like datatype layer: constructor metrics (size /
// extent / lb per MPI composition rules), envelope/contents introspection,
// the type-to-dataloop conversion, and flattening of the paper's workload
// types (tile subarrays, 3-D block subarrays, FLASH-like structs).
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/region.h"
#include "common/rng.h"
#include "dataloop/cursor.h"
#include "types/datatype.h"

namespace dtio::types {
namespace {

// ---- Named types ------------------------------------------------------------

TEST(Named, BasicTypeSizes) {
  EXPECT_EQ(byte_t().size(), 1);
  EXPECT_EQ(char_t().size(), 1);
  EXPECT_EQ(int32_t_().size(), 4);
  EXPECT_EQ(int64_t_().size(), 8);
  EXPECT_EQ(float_t().size(), 4);
  EXPECT_EQ(double_t().size(), 8);
  EXPECT_EQ(double_t().extent(), 8);
  EXPECT_TRUE(double_t().is_contiguous());
  EXPECT_EQ(double_t().combiner(), Combiner::kNamed);
}

TEST(Named, SingletonsShareNodes) {
  EXPECT_EQ(int32_t_(), int32_t_());
  EXPECT_FALSE(int32_t_() == int64_t_());
}

TEST(Named, CustomNamedType) {
  auto t = make_named("complex128", 16);
  EXPECT_EQ(t.size(), 16);
  EXPECT_THROW(make_named("zero", 0), std::invalid_argument);
}

// ---- Constructor metrics ------------------------------------------------------

TEST(Constructors, ContiguousMetrics) {
  auto t = contiguous(100, int32_t_());
  EXPECT_EQ(t.size(), 400);
  EXPECT_EQ(t.extent(), 400);
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.type_node_count(), 2);
}

TEST(Constructors, VectorMetricsElementStride) {
  // 3 blocks of 2 ints every 10 ints.
  auto t = vector(3, 2, 10, int32_t_());
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(), 2 * 10 * 4 + 2 * 4);
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Constructors, HvectorMetricsByteStride) {
  auto t = hvector(3, 2, 40, int32_t_());
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(), 2 * 40 + 8);
}

TEST(Constructors, IndexedMetrics) {
  const std::int64_t lens[] = {2, 1};
  const std::int64_t displs[] = {0, 5};  // elements
  auto t = indexed(lens, displs, int32_t_());
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.extent(), 6 * 4);
  EXPECT_EQ(t.lb(), 0);
}

TEST(Constructors, HindexedNegativeDisplacement) {
  const std::int64_t lens[] = {1, 1};
  const std::int64_t displs[] = {-8, 8};  // bytes
  auto t = hindexed(lens, displs, int32_t_());
  EXPECT_EQ(t.lb(), -8);
  EXPECT_EQ(t.extent(), 20);
}

TEST(Constructors, IndexedBlockMetrics) {
  const std::int64_t displs[] = {0, 4, 10};
  auto t = indexed_block(2, displs, int32_t_());
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(), 10 * 4 + 2 * 4);
}

TEST(Constructors, StructMetrics) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t displs[] = {0, 8};
  const Datatype kinds[] = {int64_t_(), int32_t_()};
  auto t = create_struct(lens, displs, kinds);
  EXPECT_EQ(t.size(), 16);
  EXPECT_EQ(t.extent(), 16);
}

TEST(Constructors, ResizedMetrics) {
  auto t = resized(contiguous(2, int32_t_()), 0, 32);
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.extent(), 32);
  EXPECT_FALSE(t.is_contiguous());  // trailing gap between instances
}

TEST(Constructors, InvalidArgumentsThrow) {
  EXPECT_THROW(contiguous(-1, int32_t_()), std::invalid_argument);
  EXPECT_THROW(contiguous(3, Datatype{}), std::invalid_argument);
  const std::int64_t lens[] = {1};
  const std::int64_t displs[] = {0, 1};
  EXPECT_THROW(indexed(lens, displs, int32_t_()), std::invalid_argument);
  const std::int64_t sizes[] = {4, 4};
  const std::int64_t subsizes[] = {2, 5};
  const std::int64_t starts[] = {0, 0};
  EXPECT_THROW(subarray(sizes, subsizes, starts, Order::kC, int32_t_()),
               std::invalid_argument);
}

// ---- Envelope / contents -------------------------------------------------------

TEST(Contents, VectorRoundTrip) {
  auto t = vector(3, 2, 10, int32_t_());
  const TypeContents c = t.contents();
  EXPECT_EQ(c.combiner, Combiner::kVector);
  EXPECT_EQ(c.integers, (std::vector<std::int64_t>{3, 2, 10}));
  ASSERT_EQ(c.datatypes.size(), 1u);
  EXPECT_EQ(c.datatypes[0], int32_t_());
}

TEST(Contents, StructRoundTrip) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t displs[] = {0, 8};
  const Datatype kinds[] = {int64_t_(), int32_t_()};
  auto t = create_struct(lens, displs, kinds);
  const TypeContents c = t.contents();
  EXPECT_EQ(c.combiner, Combiner::kStruct);
  EXPECT_EQ(c.integers, (std::vector<std::int64_t>{2, 1, 2}));
  EXPECT_EQ(c.addresses, (std::vector<std::int64_t>{0, 8}));
  EXPECT_EQ(c.datatypes.size(), 2u);
}

TEST(Contents, SubarrayRoundTrip) {
  const std::int64_t sizes[] = {8, 10};
  const std::int64_t subsizes[] = {2, 3};
  const std::int64_t starts[] = {1, 4};
  auto t = subarray(sizes, subsizes, starts, Order::kC, double_t());
  const TypeContents c = t.contents();
  EXPECT_EQ(c.combiner, Combiner::kSubarray);
  EXPECT_EQ(c.integers,
            (std::vector<std::int64_t>{2, 8, 10, 2, 3, 1, 4, 0}));
}

TEST(Contents, HvectorAndIndexedBlockAndResized) {
  auto hv = hvector(3, 2, 48, int32_t_());
  const TypeContents hc = hv.contents();
  EXPECT_EQ(hc.combiner, Combiner::kHvector);
  EXPECT_EQ(hc.integers, (std::vector<std::int64_t>{3, 2}));
  EXPECT_EQ(hc.addresses, (std::vector<std::int64_t>{48}));

  const std::int64_t displs[] = {0, 4, 9};
  auto ib = indexed_block(2, displs, int32_t_());
  const TypeContents ic = ib.contents();
  EXPECT_EQ(ic.combiner, Combiner::kIndexedBlock);
  EXPECT_EQ(ic.integers, (std::vector<std::int64_t>{3, 2, 0, 4, 9}));

  auto rs = resized(int32_t_(), -4, 16);
  const TypeContents rc = rs.contents();
  EXPECT_EQ(rc.combiner, Combiner::kResized);
  EXPECT_EQ(rc.addresses, (std::vector<std::int64_t>{-4, 16}));
  EXPECT_EQ(rs.lb(), -4);
  EXPECT_EQ(rs.extent(), 16);
}

TEST(Contents, NodeCountsFollowTheTree) {
  auto leafy = int32_t_();
  EXPECT_EQ(leafy.type_node_count(), 1);
  auto two = contiguous(4, vector(2, 1, 3, leafy));
  EXPECT_EQ(two.type_node_count(), 3);
  const Datatype pair_types[] = {two, leafy};
  const std::int64_t lens[] = {1, 1};
  const std::int64_t offs[] = {0, 100};
  auto st = create_struct(lens, offs, pair_types);
  EXPECT_EQ(st.type_node_count(), 5);
}

TEST(ToString, RendersReadableNames) {
  EXPECT_EQ(int32_t_().to_string(), "int32");
  auto v = vector(3, 2, 10, int32_t_());
  EXPECT_EQ(v.to_string(), "vector(3,2,10)[int32]");
}

// ---- Dataloop conversion cross-checks --------------------------------------------

void expect_metrics_match(const Datatype& t) {
  const auto& loop = t.dataloop();
  EXPECT_EQ(t.size(), loop->size) << t.to_string();
  EXPECT_EQ(t.extent(), loop->extent) << t.to_string();
  EXPECT_EQ(t.lb(), loop->lb) << t.to_string();
}

TEST(DataloopConversion, MetricsAgreeAcrossConstructors) {
  const std::int64_t lens[] = {2, 0, 3};
  const std::int64_t displs[] = {1, 4, 9};
  const std::int64_t bdispls[] = {8, 32, 72};
  const Datatype struct_types[] = {int32_t_(), double_t()};
  const std::int64_t slens[] = {3, 1};
  const std::int64_t sdispls[] = {0, 24};
  const std::int64_t sizes[] = {6, 5, 4};
  const std::int64_t subsizes[] = {2, 3, 1};
  const std::int64_t starts[] = {1, 0, 2};

  expect_metrics_match(contiguous(7, int32_t_()));
  expect_metrics_match(vector(4, 3, 5, double_t()));
  expect_metrics_match(hvector(4, 3, 100, int32_t_()));
  expect_metrics_match(indexed(lens, displs, int32_t_()));
  expect_metrics_match(hindexed(lens, bdispls, int32_t_()));
  expect_metrics_match(indexed_block(2, displs, int64_t_()));
  expect_metrics_match(create_struct(slens, sdispls, struct_types));
  expect_metrics_match(resized(vector(2, 1, 3, int32_t_()), -4, 64));
  expect_metrics_match(subarray(sizes, subsizes, starts, Order::kC,
                                int32_t_()));
  expect_metrics_match(subarray(sizes, subsizes, starts, Order::kFortran,
                                int32_t_()));
  // Nested composition.
  expect_metrics_match(contiguous(3, vector(2, 2, 4, int32_t_())));
  expect_metrics_match(vector(2, 1, 10, indexed(lens, displs, char_t())));
}

TEST(DataloopConversion, DataloopIsCached) {
  auto t = vector(3, 2, 10, int32_t_());
  const auto* first = t.dataloop().get();
  EXPECT_EQ(t.dataloop().get(), first);
}

// ---- Flattening the paper's patterns ----------------------------------------------

TEST(Flatten, VectorRowFromMatrix) {
  // One column slice: rows of 1 int out of a 4x5 int matrix.
  auto col = vector(4, 1, 5, int32_t_());
  auto regions = col.flatten(0, 1);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 4}, {20, 4}, {40, 4}, {60, 4}}));
}

TEST(Flatten, Subarray2DTile) {
  // 2x3 tile at (1,4) inside an 8x10 array of doubles, C order.
  const std::int64_t sizes[] = {8, 10};
  const std::int64_t subsizes[] = {2, 3};
  const std::int64_t starts[] = {1, 4};
  auto tile = subarray(sizes, subsizes, starts, Order::kC, double_t());
  auto regions = tile.flatten(0, 1);
  // Rows 1..2, columns 4..6: offsets (1*10+4)*8 and (2*10+4)*8, 24 B each.
  EXPECT_EQ(regions, (std::vector<Region>{{112, 24}, {192, 24}}));
  EXPECT_EQ(tile.extent(), 8 * 10 * 8);
}

TEST(Flatten, SubarrayFortranOrderTransposesStrides) {
  const std::int64_t sizes[] = {8, 10};
  const std::int64_t subsizes[] = {2, 3};
  const std::int64_t starts[] = {1, 4};
  auto tile = subarray(sizes, subsizes, starts, Order::kFortran, double_t());
  // Fortran: first dim fastest. Columns 4..6, rows 1..2:
  // element (r, c) at (c*8 + r)*8 bytes.
  auto regions = tile.flatten(0, 1);
  EXPECT_EQ(regions, (std::vector<Region>{
                         {(4 * 8 + 1) * 8, 16},
                         {(5 * 8 + 1) * 8, 16},
                         {(6 * 8 + 1) * 8, 16},
                     }));
}

TEST(Flatten, Subarray3DBlock) {
  // The ROMIO coll_perf pattern in miniature: a 4^3 array of ints split
  // into 2^3 blocks; the block at (1, 0, 1).
  const std::int64_t sizes[] = {4, 4, 4};
  const std::int64_t subsizes[] = {2, 2, 2};
  const std::int64_t starts[] = {2, 0, 2};
  auto block = subarray(sizes, subsizes, starts, Order::kC, int32_t_());
  auto regions = block.flatten(0, 1);
  EXPECT_EQ(block.size(), 8 * 4);
  ASSERT_EQ(regions.size(), 4u);  // 2 planes x 2 rows
  for (const auto& r : regions) EXPECT_EQ(r.length, 8);
  EXPECT_EQ(regions[0].offset, (2 * 16 + 0 * 4 + 2) * 4);
}

TEST(Flatten, FlashLikeVariableExtraction) {
  // FLASH-like miniature: elements of 24 variables (doubles); extract
  // variable v from a 2^3-cell block with 1 guard cell on each side
  // (4^3 cells in memory). Data cells are the interior.
  constexpr std::int64_t kVars = 24;
  constexpr std::int64_t kCells = 4;  // with guards
  auto element = contiguous(kVars, double_t());       // one cell
  // Interior slab of cells, then one variable within each cell: model as
  // subarray over cells of a resized "one var" type positioned at var v.
  const std::int64_t v = 3;
  auto var_in_cell = resized(double_t(), 0, kVars * 8);
  const std::int64_t sizes[] = {kCells, kCells, kCells};
  const std::int64_t subsizes[] = {2, 2, 2};
  const std::int64_t starts[] = {1, 1, 1};
  auto slab = subarray(sizes, subsizes, starts, Order::kC, var_in_cell);
  (void)element;
  auto regions = slab.flatten(v * 8, 1);
  EXPECT_EQ(regions.size(), 8u);  // every interior cell isolated
  EXPECT_EQ(total_length(regions), 8 * 8);
  // First interior cell is (1,1,1) -> cell index 16+4+1 = 21.
  EXPECT_EQ(regions[0].offset, 21 * kVars * 8 + v * 8);
}

TEST(Flatten, CountTilesInstancesByExtent) {
  auto t = resized(contiguous(2, int32_t_()), 0, 32);
  auto regions = t.flatten(0, 3);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 8}, {32, 8}, {64, 8}}));
}

// ---- darray -------------------------------------------------------------------

TEST(Darray, MatchesEquivalentSubarray) {
  const std::int64_t gsizes[] = {8, 6};
  const Distribution dist[] = {Distribution::kBlock, Distribution::kBlock};
  const std::int64_t psizes[] = {2, 3};
  // Rank 4 of a 2x3 row-major grid -> coords (1, 1).
  auto da = darray(6, 4, gsizes, dist, psizes, Order::kC, int32_t_());
  const std::int64_t subsizes[] = {4, 2};
  const std::int64_t starts[] = {4, 2};
  auto sa = subarray(gsizes, subsizes, starts, Order::kC, int32_t_());
  EXPECT_EQ(da.flatten(0, 1), sa.flatten(0, 1));
  EXPECT_EQ(da.size(), sa.size());
  EXPECT_EQ(da.extent(), sa.extent());
}

TEST(Darray, AllRanksPartitionTheArray) {
  const std::int64_t gsizes[] = {6, 6};
  const Distribution dist[] = {Distribution::kBlock, Distribution::kBlock};
  const std::int64_t psizes[] = {3, 2};
  std::vector<bool> covered(static_cast<std::size_t>(6 * 6 * 4), false);
  for (int rank = 0; rank < 6; ++rank) {
    auto t = darray(6, rank, gsizes, dist, psizes, Order::kC, int32_t_());
    for (const Region& r : t.flatten(0, 1)) {
      for (std::int64_t b = r.offset; b < r.end(); ++b) {
        EXPECT_FALSE(covered[static_cast<std::size_t>(b)]);
        covered[static_cast<std::size_t>(b)] = true;
      }
    }
  }
  for (const bool c : covered) EXPECT_TRUE(c);
}

TEST(Darray, UnevenBlocksClipAtTheEdge) {
  // 7 elements over 2 procs: blocks of 4 and 3.
  const std::int64_t gsizes[] = {7};
  const Distribution dist[] = {Distribution::kBlock};
  const std::int64_t psizes[] = {2};
  auto r0 = darray(2, 0, gsizes, dist, psizes, Order::kC, byte_t());
  auto r1 = darray(2, 1, gsizes, dist, psizes, Order::kC, byte_t());
  EXPECT_EQ(r0.size(), 4);
  EXPECT_EQ(r1.size(), 3);
  EXPECT_EQ(r1.flatten(0, 1).front().offset, 4);
}

TEST(Darray, NoneDistributionKeepsWholeDimension) {
  const std::int64_t gsizes[] = {4, 10};
  const Distribution dist[] = {Distribution::kBlock, Distribution::kNone};
  const std::int64_t psizes[] = {2, 1};
  auto t = darray(2, 1, gsizes, dist, psizes, Order::kC, byte_t());
  EXPECT_EQ(t.size(), 2 * 10);
  // Rows 2..3, all columns: one contiguous run.
  auto regions = t.flatten(0, 1);
  EXPECT_EQ(regions, (std::vector<Region>{{20, 20}}));
}

TEST(Darray, InvalidGridsThrow) {
  const std::int64_t gsizes[] = {4};
  const Distribution dist[] = {Distribution::kBlock};
  const std::int64_t psizes[] = {3};
  EXPECT_THROW(darray(2, 0, gsizes, dist, psizes, Order::kC, byte_t()),
               std::invalid_argument);  // psizes product != size
  const std::int64_t psizes8[] = {8};
  EXPECT_THROW(darray(8, 7, gsizes, dist, psizes8, Order::kC, byte_t()),
               std::invalid_argument);  // rank 7's block empty (4 < 8)
}

// ---- Property: flatten is consistent with dataloop stream --------------------------

class TypeProperty : public ::testing::TestWithParam<int> {};

Datatype random_datatype(Rng& rng, int depth) {
  if (depth == 0) {
    switch (rng.next_below(4)) {
      case 0:
        return int32_t_();
      case 1:
        return double_t();
      case 2:
        return char_t();
      default:
        return int64_t_();
    }
  }
  auto inner = random_datatype(rng, depth - 1);
  switch (rng.next_below(5)) {
    case 0:
      return contiguous(rng.next_range(1, 4), inner);
    case 1: {
      const std::int64_t bl = rng.next_range(1, 3);
      return vector(rng.next_range(1, 4), bl, bl + rng.next_range(0, 4),
                    inner);
    }
    case 2: {
      const std::int64_t count = rng.next_range(1, 4);
      std::vector<std::int64_t> lens, displs;
      std::int64_t at = 0;
      for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t bl = rng.next_range(0, 2);
        lens.push_back(bl);
        displs.push_back(at);
        at += bl + rng.next_range(1, 4);
      }
      return indexed(lens, displs, inner);
    }
    case 3: {
      auto base = contiguous(rng.next_range(1, 3), inner);
      return resized(base, 0, base.extent() + rng.next_range(0, 16));
    }
    default: {
      const std::int64_t sizes[] = {rng.next_range(2, 5), rng.next_range(2, 5)};
      const std::int64_t subsizes[] = {rng.next_range(1, sizes[0]),
                                       rng.next_range(1, sizes[1])};
      const std::int64_t starts[] = {
          rng.next_range(0, sizes[0] - subsizes[0]),
          rng.next_range(0, sizes[1] - subsizes[1])};
      return subarray(sizes, subsizes, starts,
                      rng.next_below(2) ? Order::kC : Order::kFortran, inner);
    }
  }
}

TEST_P(TypeProperty, FlattenTotalsMatchTypeSize) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  auto t = random_datatype(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t count = rng.next_range(1, 3);
  auto regions = t.flatten(0, count);
  EXPECT_EQ(total_length(regions), t.size() * count) << t.to_string();
  EXPECT_TRUE(regions_sorted_disjoint(regions)) << t.to_string();
}

TEST_P(TypeProperty, TypeMetricsMatchDataloop) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11400714819323198485ull);
  auto t = random_datatype(rng, static_cast<int>(rng.next_range(1, 3)));
  expect_metrics_match(t);
}

INSTANTIATE_TEST_SUITE_P(RandomTypes, TypeProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace dtio::types
