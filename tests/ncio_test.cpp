// Tests for the ncio high-level library: schema definition, header
// round trips through the file system, vara access planning and data
// round trips (independent and collective), and error paths.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "collective/comm.h"
#include "ncio/dataset.h"
#include "pfs/cluster.h"

namespace dtio::ncio {
namespace {

using sim::Task;

struct World {
  explicit World(int clients = 1) {
    net::ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.num_clients = clients;
    cfg.strip_size = 2048;
    cluster = std::make_unique<pfs::Cluster>(cfg);
    for (int r = 0; r < clients; ++r) {
      clients_.push_back(cluster->make_client(r));
      contexts_.push_back(std::make_unique<io::Context>(io::Context{
          cluster->scheduler(), *clients_.back(), cluster->config()}));
      datasets.push_back(std::make_unique<Dataset>(*contexts_[
          static_cast<std::size_t>(r)]));
    }
  }
  std::unique_ptr<pfs::Cluster> cluster;
  std::vector<std::unique_ptr<pfs::Client>> clients_;
  std::vector<std::unique_ptr<io::Context>> contexts_;
  std::vector<std::unique_ptr<Dataset>> datasets;
};

TEST(Ncio, TypeSizes) {
  EXPECT_EQ(nc_type_size(NcType::kByte), 1);
  EXPECT_EQ(nc_type_size(NcType::kInt), 4);
  EXPECT_EQ(nc_type_size(NcType::kFloat), 4);
  EXPECT_EQ(nc_type_size(NcType::kDouble), 8);
}

TEST(Ncio, DefineModeRules) {
  World w;
  Dataset& ds = *w.datasets[0];
  w.cluster->scheduler().spawn([](Dataset& d) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/rules.nc")).is_ok());
    const int t = d.def_dim("time", 10);
    EXPECT_EQ(t, 0);
    EXPECT_EQ(d.def_dim("time", 5), -1);  // duplicate
    EXPECT_EQ(d.def_dim("bad", 0), -1);   // non-positive
    const int dims1[] = {t};
    EXPECT_EQ(d.def_var("v", NcType::kInt, dims1), 0);
    EXPECT_EQ(d.def_var("v", NcType::kInt, dims1), -1);  // duplicate
    const int bad_dims[] = {7};
    EXPECT_EQ(d.def_var("w", NcType::kInt, bad_dims), -1);
    EXPECT_TRUE((co_await d.enddef()).is_ok());
    EXPECT_EQ(d.def_dim("late", 3), -1);  // frozen
    EXPECT_FALSE((co_await d.enddef()).is_ok());
  }(ds));
  w.cluster->run();
}

TEST(Ncio, HeaderRoundTripThroughTheFileSystem) {
  World w(2);
  // Writer defines the schema; a second client re-opens and must see it.
  w.cluster->scheduler().spawn([](Dataset& d) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/schema.nc")).is_ok());
    const int time = d.def_dim("time", 4);
    const int lat = d.def_dim("lat", 8);
    const int lon = d.def_dim("lon", 16);
    const int dims3[] = {time, lat, lon};
    const int dims2[] = {lat, lon};
    EXPECT_EQ(d.def_var("temperature", NcType::kDouble, dims3), 0);
    EXPECT_EQ(d.def_var("elevation", NcType::kFloat, dims2), 1);
    EXPECT_TRUE((co_await d.enddef()).is_ok());
  }(*w.datasets[0]));
  w.cluster->run();

  bool checked = false;
  w.cluster->scheduler().spawn([](Dataset& d, bool& done) -> Task<void> {
    EXPECT_TRUE((co_await d.open("/schema.nc")).is_ok());
    EXPECT_EQ(d.dims().size(), 3u);
    if (d.dims().size() != 3u) co_return;
    EXPECT_EQ(d.dims()[1].name, "lat");
    EXPECT_EQ(d.dims()[2].length, 16);
    EXPECT_EQ(d.vars().size(), 2u);
    if (d.vars().size() != 2u) co_return;
    EXPECT_EQ(d.find_var("temperature"), 0);
    EXPECT_EQ(d.find_var("elevation"), 1);
    EXPECT_EQ(d.find_var("nope"), -1);
    EXPECT_EQ(d.find_dim("lon"), 2);
    const Var& temp = d.vars()[0];
    EXPECT_EQ(temp.type, NcType::kDouble);
    EXPECT_EQ(temp.dim_ids, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(temp.data_offset % 4096, 0);
    // Variables laid out back to back.
    EXPECT_EQ(d.vars()[1].data_offset,
              temp.data_offset + 4 * 8 * 16 * 8);
    done = true;
  }(*w.datasets[1], checked));
  w.cluster->run();
  EXPECT_TRUE(checked);
}

TEST(Ncio, VaraWriteReadRoundTrip) {
  World w;
  bool ok = false;
  w.cluster->scheduler().spawn([](Dataset& d, bool& done) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/data.nc")).is_ok());
    const int rows = d.def_dim("rows", 10);
    const int cols = d.def_dim("cols", 12);
    const int dims2[] = {rows, cols};
    const int v = d.def_var("grid", NcType::kInt, dims2);
    EXPECT_TRUE((co_await d.enddef()).is_ok());

    // Write the middle 4x6 slab.
    std::vector<std::int32_t> slab(4 * 6);
    std::iota(slab.begin(), slab.end(), 100);
    const std::int64_t starts[] = {3, 2};
    const std::int64_t counts[] = {4, 6};
    EXPECT_TRUE((co_await d.put_vara(v, starts, counts, slab.data())).is_ok());

    // Read back a sub-slab and spot-check positions.
    std::vector<std::int32_t> back(2 * 3, 0);
    const std::int64_t rstarts[] = {4, 3};
    const std::int64_t rcounts[] = {2, 3};
    EXPECT_TRUE(
        (co_await d.get_vara(v, rstarts, rcounts, back.data())).is_ok());
    // Element (4,3) is slab row 1, col 1 -> 100 + 1*6 + 1.
    EXPECT_EQ(back[0], 107);
    EXPECT_EQ(back[1], 108);
    EXPECT_EQ(back[3], 113);  // (5,3) -> row 2, col 1
    done = true;
  }(*w.datasets[0], ok));
  w.cluster->run();
  EXPECT_TRUE(ok);
}

TEST(Ncio, VaraValidation) {
  World w;
  w.cluster->scheduler().spawn([](Dataset& d) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/v.nc")).is_ok());
    const int n = d.def_dim("n", 8);
    const int dims1[] = {n};
    const int v = d.def_var("x", NcType::kDouble, dims1);
    std::vector<double> buf(8);
    const std::int64_t starts[] = {0};
    const std::int64_t counts[] = {8};
    // Access before enddef.
    EXPECT_FALSE((co_await d.put_vara(v, starts, counts, buf.data())).is_ok());
    EXPECT_TRUE((co_await d.enddef()).is_ok());
    // Bad var id, arity, range.
    EXPECT_FALSE((co_await d.put_vara(9, starts, counts, buf.data())).is_ok());
    const std::int64_t starts2[] = {0, 0};
    const std::int64_t counts2[] = {2, 2};
    EXPECT_FALSE(
        (co_await d.put_vara(v, starts2, counts2, buf.data())).is_ok());
    const std::int64_t over[] = {5};
    const std::int64_t over_count[] = {4};
    EXPECT_FALSE(
        (co_await d.put_vara(v, over, over_count, buf.data())).is_ok());
    EXPECT_TRUE((co_await d.put_vara(v, starts, counts, buf.data())).is_ok());
  }(*w.datasets[0]));
  w.cluster->run();
}

TEST(Ncio, OpenRejectsNonDatasets) {
  World w;
  w.cluster->scheduler().spawn([](io::Context& ctx, Dataset& d) -> Task<void> {
    // Create a file with junk content, then try to open it as a dataset.
    mpiio::File raw(ctx);
    EXPECT_TRUE((co_await raw.open("/junk", true)).is_ok());
    raw.set_view(0, types::byte_t(), types::byte_t());
    std::vector<std::uint8_t> junk(128, 0x5A);
    auto memtype = types::contiguous(128, types::byte_t());
    EXPECT_TRUE((co_await raw.write_at(0, junk.data(), 1, memtype,
                                       mpiio::Method::kDatatype))
                    .is_ok());
    EXPECT_FALSE((co_await d.open("/junk")).is_ok());
    EXPECT_FALSE((co_await d.open("/never-created")).is_ok());
  }(*w.contexts_[0], *w.datasets[0]));
  w.cluster->run();
}

TEST(Ncio, CollectivePartitionedVariableWrite) {
  // 3 ranks write latitude bands of a (lat, lon) variable collectively;
  // rank 0 reads the whole variable back and verifies every element.
  constexpr int kRanks = 3;
  World w(kRanks);
  coll::Communicator comm(w.cluster->scheduler(), w.cluster->network(),
                          w.cluster->config(), kRanks);
  constexpr std::int64_t kLat = 9, kLon = 16;

  // Rank 0 defines; others open after a settle round.
  w.cluster->scheduler().spawn([](Dataset& d) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/climate.nc")).is_ok());
    const int lat = d.def_dim("lat", kLat);
    const int lon = d.def_dim("lon", kLon);
    const int dims2[] = {lat, lon};
    EXPECT_EQ(d.def_var("t2m", NcType::kFloat, dims2), 0);
    EXPECT_TRUE((co_await d.enddef()).is_ok());
  }(*w.datasets[0]));
  w.cluster->run();

  int done = 0;
  for (int r = 0; r < kRanks; ++r) {
    w.cluster->scheduler().spawn(
        [](Dataset& d, coll::Communicator& c, int rank, int& finished)
            -> Task<void> {
          if (rank != 0) EXPECT_TRUE((co_await d.open("/climate.nc")).is_ok());
          const std::int64_t band = kLat / kRanks;
          std::vector<float> mine(static_cast<std::size_t>(band * kLon));
          for (std::int64_t i = 0; i < band * kLon; ++i) {
            const std::int64_t lat = rank * band + i / kLon;
            const std::int64_t lon = i % kLon;
            mine[static_cast<std::size_t>(i)] =
                static_cast<float>(lat * 1000 + lon);
          }
          const std::int64_t starts[] = {rank * band, 0};
          const std::int64_t counts[] = {band, kLon};
          Status s = co_await d.put_vara_all(c, rank, 0, starts, counts,
                                             mine.data());
          EXPECT_TRUE(s.is_ok()) << s.to_string();
          ++finished;
        }(*w.datasets[static_cast<std::size_t>(r)], comm, r, done));
  }
  w.cluster->run();
  EXPECT_EQ(done, kRanks);

  bool verified = false;
  w.cluster->scheduler().spawn([](Dataset& d, bool& ok) -> Task<void> {
    std::vector<float> whole(kLat * kLon, -1);
    const std::int64_t starts[] = {0, 0};
    const std::int64_t counts[] = {kLat, kLon};
    EXPECT_TRUE((co_await d.get_vara(0, starts, counts, whole.data())).is_ok());
    ok = true;
    for (std::int64_t lat = 0; lat < kLat; ++lat) {
      for (std::int64_t lon = 0; lon < kLon; ++lon) {
        if (whole[static_cast<std::size_t>(lat * kLon + lon)] !=
            static_cast<float>(lat * 1000 + lon)) {
          ok = false;
        }
      }
    }
  }(*w.datasets[0], verified));
  w.cluster->run();
  EXPECT_TRUE(verified);
}

TEST(Ncio, CollectiveReadRedistributes) {
  // Seed a variable, then all ranks collectively read disjoint bands.
  constexpr int kRanks = 2;
  World w(kRanks);
  coll::Communicator comm(w.cluster->scheduler(), w.cluster->network(),
                          w.cluster->config(), kRanks);
  constexpr std::int64_t kN = 32;
  w.cluster->scheduler().spawn([](Dataset& d) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/cr.nc")).is_ok());
    const int n = d.def_dim("n", kN);
    const int dims1[] = {n};
    (void)d.def_var("x", NcType::kInt, dims1);
    EXPECT_TRUE((co_await d.enddef()).is_ok());
    std::vector<std::int32_t> all(kN);
    std::iota(all.begin(), all.end(), 500);
    const std::int64_t starts[] = {0};
    const std::int64_t counts[] = {kN};
    EXPECT_TRUE((co_await d.put_vara(0, starts, counts, all.data())).is_ok());
  }(*w.datasets[0]));
  w.cluster->run();

  std::vector<std::vector<std::int32_t>> got(
      kRanks, std::vector<std::int32_t>(kN / kRanks, 0));
  int done = 0;
  for (int r = 0; r < kRanks; ++r) {
    w.cluster->scheduler().spawn(
        [](Dataset& d, coll::Communicator& c, int rank,
           std::vector<std::int32_t>& out, int& finished) -> Task<void> {
          if (rank != 0) EXPECT_TRUE((co_await d.open("/cr.nc")).is_ok());
          const std::int64_t starts[] = {rank * (kN / kRanks)};
          const std::int64_t counts[] = {kN / kRanks};
          Status s = co_await d.get_vara_all(c, rank, 0, starts, counts,
                                             out.data());
          EXPECT_TRUE(s.is_ok()) << s.to_string();
          ++finished;
        }(*w.datasets[static_cast<std::size_t>(r)], comm, r,
          got[static_cast<std::size_t>(r)], done));
  }
  w.cluster->run();
  EXPECT_EQ(done, kRanks);
  for (int r = 0; r < kRanks; ++r) {
    for (std::int64_t i = 0; i < kN / kRanks; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                500 + r * (kN / kRanks) + i);
    }
  }
}

TEST(Ncio, MultipleVariablesDoNotOverlap) {
  World w;
  bool ok = false;
  w.cluster->scheduler().spawn([](Dataset& d, bool& done) -> Task<void> {
    EXPECT_TRUE((co_await d.create("/multi.nc")).is_ok());
    const int n = d.def_dim("n", 64);
    const int dims1[] = {n};
    const int a = d.def_var("a", NcType::kInt, dims1);
    const int b = d.def_var("b", NcType::kInt, dims1);
    EXPECT_TRUE((co_await d.enddef()).is_ok());
    std::vector<std::int32_t> av(64, 7);
    std::vector<std::int32_t> bv(64, 9);
    const std::int64_t starts[] = {0};
    const std::int64_t counts[] = {64};
    EXPECT_TRUE((co_await d.put_vara(a, starts, counts, av.data())).is_ok());
    EXPECT_TRUE((co_await d.put_vara(b, starts, counts, bv.data())).is_ok());
    std::vector<std::int32_t> back(64, 0);
    EXPECT_TRUE((co_await d.get_vara(a, starts, counts, back.data())).is_ok());
    done = std::all_of(back.begin(), back.end(),
                       [](std::int32_t v) { return v == 7; });
  }(*w.datasets[0], ok));
  w.cluster->run();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace dtio::ncio
