// Unit tests for common utilities: Status/Result, regions, units, CRC, RNG.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/box.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/region.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/units.h"

namespace dtio {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found("no such file: /pvfs/a");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such file: /pvfs/a");
}

TEST(Status, AllCodesHaveNames) {
  // Every enumerator, by value: a code added without a name breaks here.
  for (int code = 0; code < kNumStatusCodes; ++code) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(code)), "UNKNOWN")
        << "status code " << code << " has no name";
  }
  EXPECT_EQ(status_code_name(static_cast<StatusCode>(kNumStatusCodes)),
            "UNKNOWN");
}

TEST(Status, ReliabilityCodesRoundTrip) {
  EXPECT_EQ(unavailable("s").code(), StatusCode::kUnavailable);
  EXPECT_EQ(timed_out_error("s").code(), StatusCode::kTimedOut);
  EXPECT_EQ(data_loss("s").code(), StatusCode::kDataLoss);
  EXPECT_EQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_EQ(status_code_name(StatusCode::kTimedOut), "TIMED_OUT");
  EXPECT_EQ(status_code_name(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = invalid_argument("negative count");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Region, EndIsOffsetPlusLength) {
  Region r{100, 50};
  EXPECT_EQ(r.end(), 150);
}

TEST(Region, TotalLength) {
  std::vector<Region> rs{{0, 10}, {20, 5}, {100, 1}};
  EXPECT_EQ(total_length(rs), 16);
  EXPECT_EQ(total_length(std::vector<Region>{}), 0);
}

TEST(Region, SortedDisjointDetection) {
  EXPECT_TRUE(regions_sorted_disjoint(std::vector<Region>{}));
  EXPECT_TRUE(regions_sorted_disjoint(std::vector<Region>{{0, 10}}));
  EXPECT_TRUE(regions_sorted_disjoint(std::vector<Region>{{0, 10}, {10, 5}}));
  EXPECT_FALSE(regions_sorted_disjoint(std::vector<Region>{{0, 10}, {9, 5}}));
  EXPECT_FALSE(regions_sorted_disjoint(std::vector<Region>{{10, 5}, {0, 5}}));
}

TEST(Region, CoalesceMergesOnlyAdjacent) {
  std::vector<Region> rs{{0, 10}, {10, 10}, {30, 5}, {35, 5}, {50, 1}};
  const std::size_t merges = coalesce_adjacent(rs);
  EXPECT_EQ(merges, 2u);
  EXPECT_EQ(rs, (std::vector<Region>{{0, 20}, {30, 10}, {50, 1}}));
}

TEST(Region, CoalesceSingleAndEmpty) {
  std::vector<Region> empty;
  EXPECT_EQ(coalesce_adjacent(empty), 0u);
  std::vector<Region> one{{5, 5}};
  EXPECT_EQ(coalesce_adjacent(one), 0u);
  EXPECT_EQ(one, (std::vector<Region>{{5, 5}}));
}

TEST(Region, CoalesceChainCollapsesToOne) {
  std::vector<Region> rs;
  for (int i = 0; i < 100; ++i) rs.push_back({i * 4, 4});
  coalesce_adjacent(rs);
  EXPECT_EQ(rs, (std::vector<Region>{{0, 400}}));
}

TEST(Region, IntersectRangeClips) {
  std::vector<Region> rs{{0, 10}, {20, 10}, {40, 10}};
  std::vector<Region> out;
  intersect_range(rs, 5, 45, out);
  EXPECT_EQ(out, (std::vector<Region>{{5, 5}, {20, 10}, {40, 5}}));
}

TEST(Region, IntersectRangeEmptyWhenNoOverlap) {
  std::vector<Region> rs{{0, 10}};
  std::vector<Region> out;
  intersect_range(rs, 100, 200, out);
  EXPECT_TRUE(out.empty());
}

TEST(Region, BoundingHull) {
  std::vector<Region> rs{{20, 10}, {5, 2}, {100, 1}};
  EXPECT_EQ(bounding_hull(rs), (Region{5, 96}));
  EXPECT_EQ(bounding_hull(std::vector<Region>{}), (Region{0, 0}));
}

TEST(Units, TransferTimeRoundsUp) {
  EXPECT_EQ(transfer_time(0, 1e6), 0);
  // 1 byte at 1 GB/s = 1 ns exactly.
  EXPECT_EQ(transfer_time(1, 1e9), 1);
  // 1000 bytes at 1 MB/s = 1 ms.
  EXPECT_EQ(transfer_time(1000, 1e6), kMillisecond);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kMiB + 256 * kKiB), "2.25 MiB");
}

TEST(Units, ToSeconds) {
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
}

TEST(Crc32, MatchesKnownVector) {
  // CRC32("123456789") == 0xCBF43926 (IEEE check value).
  const char* s = "123456789";
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s), 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(1000);
  Rng rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::uint32_t whole = crc32(data);
  std::uint32_t chained = 0;
  chained = crc32(std::span(data).subspan(0, 400), chained);
  chained = crc32(std::span(data).subspan(400), chained);
  EXPECT_EQ(whole, chained);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, RangeBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.next_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(IoStats, AccumulatesAcrossClients) {
  IoStats a{.desired_bytes = 10, .accessed_bytes = 20, .io_ops = 3};
  IoStats b{.desired_bytes = 1, .accessed_bytes = 2, .io_ops = 4,
            .resent_bytes = 8};
  a += b;
  EXPECT_EQ(a.desired_bytes, 11u);
  EXPECT_EQ(a.accessed_bytes, 22u);
  EXPECT_EQ(a.io_ops, 7u);
  EXPECT_EQ(a.resent_bytes, 8u);
  a.reset();
  EXPECT_EQ(a.io_ops, 0u);
}

TEST(IoStats, ToStringRendersEveryReportedCounter) {
  IoStats s{.desired_bytes = 100,
            .accessed_bytes = 64 * 1024,
            .io_ops = 768,
            .resent_bytes = 0,
            .request_bytes = 2048};
  const std::string line = s.to_string();
  EXPECT_EQ(line,
            "desired=100 B accessed=64.00 KiB io_ops=768 resent=0 B "
            "req_bytes=2.00 KiB");
}

TEST(IoStats, ToStringOfDefaultIsAllZero) {
  const std::string line = IoStats{}.to_string();
  EXPECT_EQ(line,
            "desired=0 B accessed=0 B io_ops=0 resent=0 B req_bytes=0 B");
}

TEST(Logging, ParseLevelAcceptsKnownNamesOnly) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::kOff);
  level = LogLevel::kError;
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_FALSE(parse_log_level("", level));
  EXPECT_FALSE(parse_log_level("DEBUG", level));  // case-sensitive
  EXPECT_EQ(level, LogLevel::kError);  // unchanged on failure
}

TEST(Logging, FormatLineCarriesLevelFileAndMessage) {
  const std::string line = detail::format_log_line(
      LogLevel::kInfo, "/long/path/to/file.cpp", 42, "hello");
  EXPECT_EQ(line, "[INFO file.cpp:42] hello");
}

TEST(Logging, FormatLinePrefixesSimTimeWhenClockAttached) {
  set_log_sim_clock([] { return std::int64_t{1'234'500}; });  // 1234.5 us
  const std::string line =
      detail::format_log_line(LogLevel::kWarn, "a.cpp", 7, "msg");
  set_log_sim_clock(nullptr);
  EXPECT_EQ(line, "[WARN t=1234.500us a.cpp:7] msg");
  // Detached again: back to the clockless format.
  EXPECT_EQ(detail::format_log_line(LogLevel::kWarn, "a.cpp", 7, "msg"),
            "[WARN a.cpp:7] msg");
}

TEST(Box, TransfersOwnershipExactlyOnce) {
  Box<std::vector<int>> box(std::vector<int>{1, 2, 3});
  EXPECT_TRUE(box.has_value());
  EXPECT_EQ(box.peek().size(), 3u);
  Box<std::vector<int>> copy = box;  // shares the slot
  std::vector<int> taken = copy.take();
  EXPECT_EQ(taken, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(copy.has_value());
}

TEST(Box, EmptyBoxTakesDefault) {
  Box<std::vector<int>> empty;
  EXPECT_FALSE(empty.has_value());
  EXPECT_TRUE(empty.take().empty());
}

}  // namespace
}  // namespace dtio
