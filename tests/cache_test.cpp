// The server buffer cache (src/cache/): SLRU hit/miss behaviour and scan
// resistance, miss-fill coalescing, write-back staging / read-your-writes /
// flush coalescing, write-through, sequential and strided readahead,
// dirty-watermark background flush, crash drop semantics — plus the cache
// wired into a live cluster (warm reads hit, obs counters flow).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/buffer_cache.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/observability.h"
#include "pfs/cluster.h"
#include "sim/scheduler.h"

namespace dtio {
namespace {

using cache::AccessPlan;
using cache::BlockCache;
using cache::CacheConfig;
using cache::IoSeg;
using pfs::Client;
using pfs::MetaResult;
using sim::Task;

/// Map-backed durable store: reads beyond the written extent return zeros
/// (sparse-file semantics, like Bstream), and every write_at is recorded
/// so tests can see exactly what reached "disk" and when.
struct MemStore final : cache::ByteStore {
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> files;
  std::vector<IoSeg> writes;

  void read_at(std::uint64_t handle, std::int64_t offset,
               std::span<std::uint8_t> out) override {
    const auto& f = files[handle];
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto at = static_cast<std::size_t>(offset) + i;
      out[i] = at < f.size() ? f[at] : 0;
    }
  }
  void write_at(std::uint64_t handle, std::int64_t offset,
                std::span<const std::uint8_t> data) override {
    auto& f = files[handle];
    const auto end = static_cast<std::size_t>(offset) + data.size();
    if (f.size() < end) f.resize(end, 0);
    std::memcpy(f.data() + offset, data.data(), data.size());
    writes.push_back(
        {handle, offset, static_cast<std::int64_t>(data.size())});
  }
  void note_size(std::uint64_t handle, std::int64_t offset,
                 std::int64_t length) override {
    auto& hw = high_water[handle];
    hw = std::max(hw, offset + length);
  }
  [[nodiscard]] std::int64_t size_of(std::uint64_t handle) override {
    const auto it = files.find(handle);
    const std::int64_t stored =
        it == files.end() ? 0 : static_cast<std::int64_t>(it->second.size());
    const auto hw = high_water.find(handle);
    return std::max(stored, hw == high_water.end() ? 0 : hw->second);
  }
  std::unordered_map<std::uint64_t, std::int64_t> high_water;
};

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

CacheConfig small_config() {
  CacheConfig cfg;
  cfg.block_bytes = 1024;
  cfg.capacity_bytes = 16 * 1024;  // 16 blocks
  cfg.readahead_window = 0;        // off unless a test wants it
  return cfg;
}

TEST(BlockCache, MissThenHit) {
  MemStore store;
  BlockCache cache(small_config(), store);
  AccessPlan p1;
  cache.read(1, 0, 1024, {}, p1);
  EXPECT_EQ(p1.misses, 1u);
  EXPECT_EQ(p1.hits, 0u);
  ASSERT_EQ(p1.sync_reads.size(), 1u);
  EXPECT_EQ(p1.sync_reads[0], (IoSeg{1, 0, 1024}));

  AccessPlan p2;
  cache.read(1, 0, 1024, {}, p2);
  EXPECT_EQ(p2.hits, 1u);
  EXPECT_EQ(p2.misses, 0u);
  EXPECT_TRUE(p2.sync_reads.empty());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BlockCache, AdjacentMissFillsCoalesceIntoOneDiskOp) {
  MemStore store;
  BlockCache cache(small_config(), store);
  AccessPlan plan;
  cache.read(1, 0, 4096, {}, plan);  // 4 blocks, all cold
  EXPECT_EQ(plan.misses, 4u);
  ASSERT_EQ(plan.sync_reads.size(), 1u);  // one coalesced fill
  EXPECT_EQ(plan.sync_reads[0], (IoSeg{1, 0, 4096}));
}

TEST(BlockCache, PartialBlockAccessFillsWholeBlock) {
  MemStore store;
  BlockCache cache(small_config(), store);
  AccessPlan plan;
  cache.read(1, 100, 50, {}, plan);  // interior of block 0
  ASSERT_EQ(plan.sync_reads.size(), 1u);
  EXPECT_EQ(plan.sync_reads[0], (IoSeg{1, 0, 1024}));

  AccessPlan p2;
  cache.read(1, 900, 50, {}, p2);  // elsewhere in the same block: hit
  EXPECT_EQ(p2.hits, 1u);
  EXPECT_TRUE(p2.sync_reads.empty());
}

TEST(BlockCache, SlruScanResistance) {
  // A re-referenced block survives a one-shot scan bigger than probation:
  // the scan's blocks churn through probation while the protected segment
  // keeps the hot block.
  CacheConfig cfg = small_config();
  cfg.capacity_bytes = 4 * 1024;  // 4 blocks
  cfg.protected_fraction = 0.5;
  MemStore store;
  BlockCache cache(cfg, store);
  AccessPlan plan;
  cache.read(1, 0, 1024, {}, plan);  // block 0: miss
  cache.read(1, 0, 1024, {}, plan);  // block 0 again: promoted to protected
  for (int b = 1; b <= 10; ++b) {    // one-shot scan of 10 cold blocks
    cache.read(1, b * 1024, 1024, {}, plan);
  }
  AccessPlan probe;
  cache.read(1, 0, 1024, {}, probe);
  EXPECT_EQ(probe.hits, 1u) << "hot block evicted by a one-shot scan";
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(BlockCache, SingleBlockCapacityEvictsProtectedNotNewInsert) {
  // Regression: with one-block capacity, promoting the lone resident to
  // the protected segment and then inserting a new block must evict the
  // protected resident — not the block just inserted (which used to leave
  // touch() dereferencing an erased key).
  CacheConfig cfg = small_config();
  cfg.capacity_bytes = 1024;  // 1 block
  MemStore store;
  BlockCache cache(cfg, store);
  AccessPlan plan;
  cache.read(1, 0, 1024, {}, plan);     // block 0: miss
  cache.read(1, 0, 1024, {}, plan);     // hit: promoted to protected
  cache.read(1, 1024, 1024, {}, plan);  // block 1 displaces block 0
  EXPECT_EQ(cache.resident_blocks(), 1u);
  AccessPlan probe;
  cache.read(1, 1024, 1024, {}, probe);  // the new block is the survivor
  EXPECT_EQ(probe.hits, 1u);
  EXPECT_EQ(probe.misses, 0u);
}

TEST(BlockCache, OversizedBlockBytesClampedToInt32SafeRange) {
  // Dirty-range bookkeeping stores in-block offsets as int32_t, so block
  // sizes above kMaxBlockBytes are clamped rather than silently wrapping.
  CacheConfig cfg;
  cfg.block_bytes = std::int64_t{4} << 30;  // 4 GiB: would overflow int32
  cfg.capacity_bytes = std::int64_t{8} << 30;
  cfg.readahead_window = 0;
  MemStore store;
  BlockCache cache(cfg, store);
  EXPECT_EQ(cache.block_bytes(), BlockCache::kMaxBlockBytes);
  AccessPlan plan;
  const std::int64_t at = BlockCache::kMaxBlockBytes - 4096;
  cache.write(1, at, 4096, {}, plan);  // timing-only write at block end
  EXPECT_EQ(cache.dirty_bytes(), 4096);
}

TEST(BlockCache, WriteBackStagesReadsYourWritesThenFlushes) {
  MemStore store;
  BlockCache cache(small_config(), store);
  const auto data = pattern_bytes(2048, 7);
  AccessPlan wp;
  cache.write(1, 512, 2048, data, wp);
  EXPECT_TRUE(wp.sync_writes.empty());  // nothing synchronous in write-back
  EXPECT_TRUE(store.writes.empty());    // nothing reached disk yet
  EXPECT_EQ(cache.dirty_bytes(), 2048);

  // Read-your-writes: the staged bytes come back before any flush.
  std::vector<std::uint8_t> back(2048);
  AccessPlan rp;
  cache.read(1, 512, 2048, back, rp);
  EXPECT_EQ(back, data);

  AccessPlan fp;
  cache.flush_all(&fp);
  EXPECT_EQ(cache.dirty_bytes(), 0);
  EXPECT_EQ(fp.flushed_bytes, 2048u);
  ASSERT_FALSE(store.writes.empty());
  std::vector<std::uint8_t> on_disk(2048);
  store.read_at(1, 512, on_disk);
  EXPECT_EQ(on_disk, data);
  // Blocks 0..2 are adjacent, so the flush coalesced into one disk op.
  ASSERT_EQ(fp.async_writes.size(), 1u);
  EXPECT_EQ(fp.async_writes[0].handle, 1u);
}

TEST(BlockCache, WriteThroughStoresImmediately) {
  CacheConfig cfg = small_config();
  cfg.write_through = true;
  MemStore store;
  BlockCache cache(cfg, store);
  const auto data = pattern_bytes(1024, 9);
  AccessPlan plan;
  cache.write(1, 0, 1024, data, plan);
  EXPECT_EQ(cache.dirty_bytes(), 0);
  ASSERT_EQ(plan.sync_writes.size(), 1u);
  EXPECT_EQ(plan.sync_writes[0], (IoSeg{1, 0, 1024}));
  ASSERT_EQ(store.files[1].size(), 1024u);
  EXPECT_EQ(store.files[1], data);
  EXPECT_EQ(cache.drop_all(), 0u);  // crash loses nothing
}

TEST(BlockCache, SequentialReadahead) {
  CacheConfig cfg = small_config();
  cfg.capacity_bytes = 64 * 1024;
  cfg.readahead_window = 4;
  cfg.readahead_min_run = 2;
  MemStore store;
  store.files[1].resize(64 * 1024);  // readahead stops at EOF
  BlockCache cache(cfg, store);
  AccessPlan p0, p1, p2;
  cache.read(1, 0, 1024, {}, p0);     // block 0
  cache.read(1, 1024, 1024, {}, p1);  // block 1: stride 1, run 1
  cache.read(1, 2048, 1024, {}, p2);  // block 2: run 2 -> readahead arms
  EXPECT_EQ(p2.readahead_blocks, 4u);
  ASSERT_EQ(p2.async_reads.size(), 1u);  // blocks 3..6 coalesce
  EXPECT_EQ(p2.async_reads[0], (IoSeg{1, 3 * 1024, 4 * 1024}));

  AccessPlan p3;
  cache.read(1, 3 * 1024, 1024, {}, p3);  // prefetched: a hit
  EXPECT_EQ(p3.hits, 1u);
  EXPECT_EQ(p3.misses, 0u);
  // The frontier guard: the follow-up trigger prefetches NEW blocks only.
  EXPECT_TRUE(p3.async_reads.empty() ||
              p3.async_reads.front().offset >= 7 * 1024);
}

TEST(BlockCache, StridedReadahead) {
  CacheConfig cfg = small_config();
  cfg.capacity_bytes = 64 * 1024;
  cfg.readahead_window = 3;
  cfg.readahead_min_run = 2;
  MemStore store;
  store.files[1].resize(64 * 1024);
  BlockCache cache(cfg, store);
  AccessPlan plan;
  cache.read(1, 0, 1024, {}, plan);         // block 0
  cache.read(1, 4 * 1024, 1024, {}, plan);  // block 4: stride 4, run 1
  AccessPlan arm;
  cache.read(1, 8 * 1024, 1024, {}, arm);   // block 8: run 2 -> arms
  EXPECT_EQ(arm.readahead_blocks, 3u);
  // Strided prefetch: blocks 12, 16, 20 — disjoint, three disk ops.
  ASSERT_EQ(arm.async_reads.size(), 3u);
  EXPECT_EQ(arm.async_reads[0], (IoSeg{1, 12 * 1024, 1024}));
  EXPECT_EQ(arm.async_reads[1], (IoSeg{1, 16 * 1024, 1024}));
  EXPECT_EQ(arm.async_reads[2], (IoSeg{1, 20 * 1024, 1024}));

  AccessPlan probe;
  cache.read(1, 12 * 1024, 1024, {}, probe);
  EXPECT_EQ(probe.hits, 1u);
}

TEST(BlockCache, RescanAfterForwardPassStillGetsReadahead) {
  // Regression: a backward seek must reset the prefetch frontier, or a
  // second pass over a file (whose blocks were since evicted) runs with
  // readahead permanently disabled and every block is a synchronous miss.
  CacheConfig cfg = small_config();
  cfg.capacity_bytes = 8 * 1024;  // 8 blocks, smaller than the file
  cfg.readahead_window = 2;
  cfg.readahead_min_run = 2;
  MemStore store;
  store.files[1].resize(32 * 1024);  // 32 blocks
  BlockCache cache(cfg, store);
  auto scan = [&] {
    AccessPlan plan;
    for (int b = 0; b < 32; ++b) cache.read(1, b * 1024, 1024, {}, plan);
    return plan.readahead_blocks;
  };
  const std::uint64_t first = scan();
  EXPECT_GT(first, 0u);
  const std::uint64_t second = scan();
  EXPECT_GT(second, 0u) << "re-scan got no readahead: frontier not reset";
}

TEST(BlockCache, EvictionFlushesDirtyVictim) {
  CacheConfig cfg = small_config();
  cfg.block_bytes = 256;
  cfg.capacity_bytes = 4 * 256;
  cfg.dirty_watermark = 1.0;  // keep the watermark out of the way
  MemStore store;
  BlockCache cache(cfg, store);
  const auto data = pattern_bytes(256, 3);
  AccessPlan wp;
  cache.write(1, 0, 256, data, wp);  // block 0, dirty
  AccessPlan scan;
  for (int b = 1; b <= 4; ++b) {  // blocks 1..4: block 0 must be evicted
    cache.read(1, b * 256, 256, {}, scan);
  }
  EXPECT_GT(scan.evictions, 0u);
  ASSERT_FALSE(scan.async_writes.empty());  // the victim's flush
  EXPECT_EQ(scan.async_writes[0], (IoSeg{1, 0, 256}));
  std::vector<std::uint8_t> on_disk(256);
  store.read_at(1, 0, on_disk);
  EXPECT_EQ(on_disk, data);
  EXPECT_EQ(cache.dirty_bytes(), 0);
}

TEST(BlockCache, WatermarkFlushCoalescesOldestDirtyRun) {
  CacheConfig cfg = small_config();
  cfg.block_bytes = 256;
  cfg.capacity_bytes = 8 * 256;
  cfg.dirty_watermark = 0.25;  // mark at 512 dirty bytes
  MemStore store;
  BlockCache cache(cfg, store);
  const auto data = pattern_bytes(256, 5);
  AccessPlan wp;
  cache.write(1, 0, 256, data, wp);
  cache.write(1, 256, 256, data, wp);
  cache.write(1, 512, 256, data, wp);  // 768 dirty > 512 mark
  AccessPlan flush;
  cache.maybe_background_flush(flush);
  // Flushes oldest-first down to half the mark (256): blocks 0 and 1 go,
  // and being adjacent they coalesce into ONE disk op.
  EXPECT_EQ(cache.dirty_bytes(), 256);
  ASSERT_EQ(flush.async_writes.size(), 1u);
  EXPECT_EQ(flush.async_writes[0], (IoSeg{1, 0, 512}));
  EXPECT_EQ(flush.flushed_bytes, 512u);
}

TEST(BlockCache, DropAllLosesOnlyUnflushedDirty) {
  MemStore store;
  BlockCache cache(small_config(), store);
  const auto data = pattern_bytes(1024, 11);
  AccessPlan wp;
  cache.write(1, 0, 1024, data, wp);      // stays dirty
  cache.write(1, 1024, 1024, data, wp);   // flushed below
  AccessPlan fp;
  cache.flush_all(&fp);
  cache.write(1, 2048, 1024, data, wp);   // dirty again
  EXPECT_EQ(cache.dirty_bytes(), 1024);

  const std::uint64_t lost = cache.drop_all();
  EXPECT_EQ(lost, 1024u);
  EXPECT_EQ(cache.stats().dirty_lost_bytes, 1024u);
  EXPECT_EQ(cache.resident_blocks(), 0u);
  // The flushed blocks reached disk; the dropped one did not.
  std::vector<std::uint8_t> survived(1024);
  store.read_at(1, 1024, survived);
  EXPECT_EQ(survived, data);
  std::vector<std::uint8_t> gone(1024);
  store.read_at(1, 2048, gone);
  EXPECT_EQ(gone, std::vector<std::uint8_t>(1024, 0));
}

TEST(BlockCache, TimingOnlyRunsCarryNoBytes) {
  // Benches run with carry_data off: empty spans must keep all counters
  // and plans working without allocating staged data.
  MemStore store;
  BlockCache cache(small_config(), store);
  AccessPlan plan;
  cache.write(1, 0, 4096, {}, plan);
  cache.read(1, 0, 4096, {}, plan);
  EXPECT_EQ(plan.hits, 4u);  // the read finds the written blocks resident
  EXPECT_EQ(cache.dirty_bytes(), 4096);
  AccessPlan fp;
  cache.flush_all(&fp);
  EXPECT_EQ(fp.flushed_bytes, 4096u);
  EXPECT_TRUE(store.writes.empty());  // no real bytes anywhere
}

// ---- Cluster integration ---------------------------------------------------

net::ClusterConfig cached_config() {
  net::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.strip_size = 4096;
  cfg.server.cache_block_bytes = 1024;
  cfg.server.cache_capacity_bytes = 256 * 1024;
  return cfg;
}

TEST(CacheCluster, WarmReadsHitAndObsCountersFlow) {
  auto cfg = cached_config();
  pfs::Cluster cluster(cfg);
  obs::Observability obs;
  cluster.set_observability(&obs);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(64 * 1024, 77);

  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/warm");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        for (int pass = 0; pass < 2; ++pass) {
          std::vector<std::uint8_t> back(src.size());
          Status r = co_await c.read_contig(
              f.handle, 0, back.data(),
              static_cast<std::int64_t>(back.size()));
          EXPECT_TRUE(r.is_ok()) << r.to_string();
          EXPECT_EQ(back, src) << "pass " << pass;
        }
        done = true;
      }(*client, data, finished));
  cluster.run();
  EXPECT_TRUE(finished);

  const pfs::ServerStats total = cluster.cache_stats_total();
  // The write populated the cache, so even the first read pass hits; the
  // second pass is all hits — across both passes hits dominate misses.
  EXPECT_GT(total.cache_hits, 0u);
  EXPECT_GT(total.cache_hits, total.cache_misses);
  // Write-back: the written data is staged dirty (under the watermark, so
  // no flush has been forced yet) — it either sits dirty or was flushed.
  std::int64_t staged = 0;
  for (int s = 0; s < cfg.num_servers; ++s) {
    ASSERT_NE(cluster.server(s).block_cache(), nullptr);
    staged += cluster.server(s).block_cache()->dirty_bytes();
  }
  EXPECT_GT(static_cast<std::uint64_t>(staged) +
                total.cache_dirty_flushed_bytes,
            0u);
  EXPECT_EQ(obs.metrics.counter_total("server_cache_hits_total"),
            total.cache_hits);
  EXPECT_EQ(obs.metrics.counter_total("server_cache_misses_total"),
            total.cache_misses);
}

TEST(CacheCluster, WarmPassSavesDiskAccesses) {
  // The acceptance shape in miniature: a cold read pass then a warm one,
  // cache on vs off; warm-pass disk accesses must collapse with the cache.
  auto run = [](bool cache_on) {
    auto cfg = cached_config();
    if (!cache_on) {
      cfg.server.cache_block_bytes = 0;
      cfg.server.cache_capacity_bytes = 0;
    }
    pfs::Cluster cluster(cfg);
    auto client = cluster.make_client(0);
    std::uint64_t cold = 0, warm = 0;
    cluster.scheduler().spawn(
        [](pfs::Cluster& cluster, Client& c, std::uint64_t& cold,
           std::uint64_t& warm) -> Task<void> {
          MetaResult f = co_await c.create("/passes");
          EXPECT_TRUE(f.status.is_ok());
          Status w = co_await c.write_contig(f.handle, 0, nullptr, 128 * 1024);
          EXPECT_TRUE(w.is_ok());
          const std::uint64_t before = cluster.cache_stats_total().disk_accesses;
          Status r1 = co_await c.read_contig(f.handle, 0, nullptr, 128 * 1024);
          EXPECT_TRUE(r1.is_ok());
          const std::uint64_t mid = cluster.cache_stats_total().disk_accesses;
          Status r2 = co_await c.read_contig(f.handle, 0, nullptr, 128 * 1024);
          EXPECT_TRUE(r2.is_ok());
          cold = mid - before;
          warm = cluster.cache_stats_total().disk_accesses - mid;
        }(cluster, *client, cold, warm));
    cluster.run();
    return std::make_pair(cold, warm);
  };
  const auto [on_cold, on_warm] = run(true);
  const auto [off_cold, off_warm] = run(false);
  EXPECT_GT(off_warm, 0u);
  // Cache on: the write left every block resident, so both passes are
  // warm; cache off re-reads from disk every time.
  EXPECT_EQ(on_warm, 0u);
  EXPECT_GE(off_warm, 4 * std::max<std::uint64_t>(on_warm, 1));
  EXPECT_LT(on_cold + on_warm, off_cold + off_warm);
}

TEST(CacheCluster, CacheOffLeavesStatsUntouched) {
  net::ClusterConfig cfg;  // defaults: cache off
  pfs::Cluster cluster(cfg);
  EXPECT_EQ(cluster.server(0).block_cache(), nullptr);
  auto client = cluster.make_client(0);
  bool finished = false;
  cluster.scheduler().spawn([](Client& c, bool& done) -> Task<void> {
    MetaResult f = co_await c.create("/off");
    EXPECT_TRUE(f.status.is_ok());
    Status w = co_await c.write_contig(f.handle, 0, nullptr, 4096);
    EXPECT_TRUE(w.is_ok());
    done = true;
  }(*client, finished));
  cluster.run();
  EXPECT_TRUE(finished);
  const pfs::ServerStats total = cluster.cache_stats_total();
  EXPECT_EQ(total.cache_hits, 0u);
  EXPECT_EQ(total.cache_misses, 0u);
  EXPECT_GT(total.disk_accesses, 0u);  // legacy path still tallies
}

}  // namespace
}  // namespace dtio
