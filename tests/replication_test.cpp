// k-way strip replication end to end: quorum writes mirror every strip to
// its replica set, reads fail over to a replica when the primary is down
// (100% read availability through a crash window), restart resync pulls
// write-back dirty bytes the crash destroyed back from peer replicas, and
// the whole machine stays deterministic and byte-identical to the
// JointWalker oracle across every I/O method with a mid-run crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "io/joint.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "net/fault.h"
#include "pfs/cluster.h"
#include "sim/scheduler.h"

namespace dtio {
namespace {

using mpiio::Method;
using net::FaultPlan;
using net::FaultSpec;
using pfs::Client;
using pfs::MetaResult;
using sim::Task;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> data(n);
  Rng rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

std::vector<std::uint8_t> bstream_bytes(const pfs::Bstream* bs,
                                        std::int64_t offset,
                                        std::int64_t length) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(length), 0);
  if (bs != nullptr) {
    bs->read(offset, std::span<std::uint8_t>(out.data(), out.size()));
  }
  return out;
}

net::ClusterConfig replicated_config(int servers, int r) {
  net::ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.num_clients = 1;
  cfg.strip_size = 1024;
  cfg.replication = r;
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 5;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  return cfg;
}

// ---- Write mirroring --------------------------------------------------------

TEST(Replication, WritesMirrorToReplicaStores) {
  pfs::Cluster cluster(replicated_config(/*servers=*/2, /*r=*/2));
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(2048, 81);

  std::uint64_t handle = 0;
  bool finished = false;
  cluster.scheduler().spawn(
      [](Client& c, const std::vector<std::uint8_t>& src, std::uint64_t& h,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/mirror");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        h = f.handle;
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(*client, data, handle, finished));
  cluster.run();
  ASSERT_TRUE(finished);
  EXPECT_EQ(client->effective_replication(), 2);
  EXPECT_GT(client->quorum_writes(), 0u);

  // Strip 0 (bytes [0, 1024)) lives on server 0 at physical offset 0 and is
  // mirrored — at the same physical offset — into server 1's replica store;
  // strip 1 the other way around.
  const std::vector<std::uint8_t> strip0(data.begin(), data.begin() + 1024);
  const std::vector<std::uint8_t> strip1(data.begin() + 1024, data.end());
  EXPECT_EQ(bstream_bytes(cluster.server(0).find_bstream(handle), 0, 1024),
            strip0);
  EXPECT_EQ(
      bstream_bytes(cluster.server(1).find_replica_bstream(handle, 0), 0,
                    1024),
      strip0);
  EXPECT_EQ(bstream_bytes(cluster.server(1).find_bstream(handle), 0, 1024),
            strip1);
  EXPECT_EQ(
      bstream_bytes(cluster.server(0).find_replica_bstream(handle, 1), 0,
                    1024),
      strip1);
}

// ---- Degraded reads ---------------------------------------------------------

TEST(Replication, ReadsFailOverDuringCrashWindow) {
  // Server 1 is down for 400 ms. Reads of its strips must keep succeeding
  // the whole time — first via a timeout-then-failover (one rpc_timeout of
  // latency), then near-instantly once the breaker opens and the primary
  // attempt fails fast.
  auto cfg = replicated_config(/*servers=*/3, /*r=*/2);
  cfg.client.breaker_failures = 2;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(3 * 1024, 82);

  SimTime restart_at = 0;
  SimTime reads_done_at = 0;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, pfs::Cluster& cluster, Client& c,
         const std::vector<std::uint8_t>& src, SimTime& restart_at,
         SimTime& reads_done_at, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/failover");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();

        const SimTime crash_at = sched.now() + kMillisecond;
        restart_at = crash_at + 400 * kMillisecond;
        cluster.schedule_server_crash(/*index=*/1, crash_at,
                                      /*restart_delay=*/400 * kMillisecond);
        co_await sched.delay(crash_at + kMillisecond - sched.now());

        // Strip 1 (bytes [1024, 2048)) has primary server 1 — crashed —
        // and its replica on server 2. Every read must succeed.
        std::vector<std::uint8_t> back(1024, 0);
        const std::vector<std::uint8_t> want(src.begin() + 1024,
                                             src.begin() + 2048);
        for (int round = 0; round < 5; ++round) {
          std::fill(back.begin(), back.end(), 0);
          Status r = co_await c.read_contig(f.handle, 1024, back.data(), 1024);
          EXPECT_TRUE(r.is_ok()) << "round " << round << ": " << r.to_string();
          EXPECT_EQ(back, want) << "round " << round;
        }
        reads_done_at = sched.now();
        done = true;
      }(cluster.scheduler(), cluster, *client, data, restart_at, reads_done_at,
        finished));
  cluster.run();
  ASSERT_TRUE(finished);
  // All five reads completed while the primary was still down.
  EXPECT_LT(reads_done_at, restart_at);
  EXPECT_GE(client->read_failovers(), 5u);
  // Rounds after the breaker opened skipped the primary's timeout.
  EXPECT_GT(client->breaker_fast_fails(), 0u);
  EXPECT_EQ(cluster.server(1).stats().crashes, 1u);
  EXPECT_FALSE(cluster.server(1).crashed());
}

// ---- Restart resync ---------------------------------------------------------

TEST(Replication, ResyncRecoversDirtyWriteBackBytesLostInCrash) {
  // Write-back caching on a replicated cluster: the primary stages writes
  // as dirty cache blocks while the replica copy is written through. A
  // crash destroys the primary's staged bytes — resync must pull the
  // affected strips back from the replica before the server serves data.
  auto cfg = replicated_config(/*servers=*/2, /*r=*/2);
  cfg.server.cache_block_bytes = 256;
  cfg.server.cache_capacity_bytes = 16 * 256;  // no eviction pressure
  cfg.server.cache_dirty_watermark = 1.0;      // nothing flushes on its own
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(2048, 83);
  cluster.schedule_server_crash(/*index=*/0, /*at=*/50 * kMillisecond,
                                /*restart_delay=*/10 * kMillisecond);

  std::vector<std::uint8_t> back(2048, 0xFF);
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::vector<std::uint8_t>& out,
         bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/resync");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        co_await sched.delay(200 * kMillisecond - sched.now());
        Status r = co_await c.read_contig(
            f.handle, 0, out.data(), static_cast<std::int64_t>(out.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        done = true;
      }(cluster.scheduler(), *client, data, back, finished));
  cluster.run();
  ASSERT_TRUE(finished);
  // Without replication this is the WriteBackCrashLosesOnlyUnflushedBlocks
  // scenario: the acked bytes would read back as holes. With r=2 every
  // byte survives.
  EXPECT_EQ(back, data);
  const pfs::ServerStats& s0 = cluster.server(0).stats();
  EXPECT_EQ(s0.crashes, 1u);
  EXPECT_GT(s0.cache_dirty_lost_bytes, 0u);
  EXPECT_EQ(s0.resyncs, 1u);
  EXPECT_GT(s0.resync_strips_pulled, 0u);
  EXPECT_GE(s0.resync_bytes_pulled, s0.cache_dirty_lost_bytes);
  EXPECT_GT(cluster.server(1).stats().resync_served, 0u);
  EXPECT_FALSE(cluster.server(0).resyncing());

  // The recovered copy reached the primary's own bstream, not just the
  // read path: strip 0 is byte-identical to what was written.
  bool verified = false;
  std::vector<std::uint8_t> raw(2048, 0);
  cluster.scheduler().spawn([](pfs::Cluster& cl, Client& c,
                               std::vector<std::uint8_t>& raw,
                               bool& done) -> Task<void> {
    MetaResult f = co_await c.open("/resync");
    EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
    cl.flush_caches();
    Status r = co_await c.read_contig(f.handle, 0, raw.data(),
                                      static_cast<std::int64_t>(raw.size()));
    EXPECT_TRUE(r.is_ok()) << r.to_string();
    done = true;
  }(cluster, *client, raw, verified));
  cluster.run();
  ASSERT_TRUE(verified);
  EXPECT_EQ(raw, data);
}

TEST(Replication, WriteQuorumOneCompletesWhileReplicaIsDown) {
  // w=1: the primary's ack alone completes the write; the mirror to the
  // crashed replica keeps retrying in the background and the replica
  // catches up via resync after restart.
  auto cfg = replicated_config(/*servers=*/2, /*r=*/2);
  cfg.client.write_quorum = 1;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  const auto data = pattern_bytes(1024, 84);
  cluster.schedule_server_crash(/*index=*/1, /*at=*/kMillisecond,
                                /*restart_delay=*/500 * kMillisecond);

  std::uint64_t handle = 0;
  SimTime write_latency = 0;
  bool finished = false;
  cluster.scheduler().spawn(
      [](sim::Scheduler& sched, Client& c,
         const std::vector<std::uint8_t>& src, std::uint64_t& h,
         SimTime& latency, bool& done) -> Task<void> {
        MetaResult f = co_await c.create("/quorum1");
        EXPECT_TRUE(f.status.is_ok()) << f.status.to_string();
        h = f.handle;
        co_await sched.delay(10 * kMillisecond - sched.now());
        const SimTime t0 = sched.now();
        Status w = co_await c.write_contig(
            f.handle, 0, src.data(), static_cast<std::int64_t>(src.size()));
        latency = sched.now() - t0;
        EXPECT_TRUE(w.is_ok()) << w.to_string();
        co_await sched.delay(800 * kMillisecond - sched.now());
        std::vector<std::uint8_t> back(src.size());
        Status r = co_await c.read_contig(
            f.handle, 0, back.data(), static_cast<std::int64_t>(back.size()));
        EXPECT_TRUE(r.is_ok()) << r.to_string();
        EXPECT_EQ(back, src);
        done = true;
      }(cluster.scheduler(), *client, data, handle, write_latency, finished));
  cluster.run();
  ASSERT_TRUE(finished);
  EXPECT_GT(client->quorum_writes(), 0u);
  // The write did not wait out the dead replica's timeout.
  EXPECT_LT(write_latency, cluster.config().client.rpc_timeout);
  // After restart, resync pulled the strip the replica missed; its mirror
  // copy converged to the written bytes.
  EXPECT_EQ(cluster.server(1).stats().resyncs, 1u);
  EXPECT_GE(cluster.server(1).stats().resync_bytes_pulled, 1024u);
  EXPECT_EQ(
      bstream_bytes(cluster.server(1).find_replica_bstream(handle, 0), 0,
                    1024),
      data);
}

// ---- Determinism ------------------------------------------------------------

TEST(Replication, SameSeedSameReplicatedChaosRun) {
  // Two runs of the same replicated chaos workload — drops, duplicates,
  // corruption, plus a mid-run crash — must produce identical fault event
  // sequences, statuses, retry/failover totals, and end times.
  auto run = [](std::vector<net::FaultEvent>& events,
                net::FaultCounters& counters,
                std::vector<StatusCode>& codes, std::uint64_t& retries,
                std::uint64_t& failovers, std::uint64_t& quorum_writes,
                SimTime& end_time) {
    auto cfg = replicated_config(/*servers=*/3, /*r=*/2);
    cfg.seed = 4242;
    pfs::Cluster cluster(cfg);
    FaultPlan plan(mix_seed(cfg.seed, /*salt=*/0x9E91));
    plan.set_default_spec(
        FaultSpec{.drop = 0.05, .duplicate = 0.02, .corrupt = 0.01});
    plan.set_scope_max_node(cfg.num_servers);
    plan.set_log_events(true);
    cluster.set_fault_plan(&plan);
    cluster.schedule_server_crash(/*index=*/2, /*at=*/30 * kMillisecond,
                                  /*restart_delay=*/60 * kMillisecond);
    auto client = cluster.make_client(0);
    const auto data = pattern_bytes(6 * 1024, 85);

    cluster.scheduler().spawn(
        [](Client& c, const std::vector<std::uint8_t>& src,
           std::vector<StatusCode>& codes) -> Task<void> {
          MetaResult f = co_await c.create("/det-repl");
          codes.push_back(f.status.code());
          for (int round = 0; round < 4; ++round) {
            Status w = co_await c.write_contig(
                f.handle, round * 512, src.data(),
                static_cast<std::int64_t>(src.size()));
            codes.push_back(w.code());
            std::vector<std::uint8_t> back(src.size());
            Status r = co_await c.read_contig(
                f.handle, round * 512, back.data(),
                static_cast<std::int64_t>(back.size()));
            codes.push_back(r.code());
          }
        }(*client, data, codes));
    cluster.run();
    events = plan.events();
    counters = plan.counters();
    retries = client->rpc_retries();
    failovers = client->read_failovers();
    quorum_writes = client->quorum_writes();
    end_time = cluster.scheduler().now();
  };
  std::vector<net::FaultEvent> events_a, events_b;
  net::FaultCounters counters_a, counters_b;
  std::vector<StatusCode> codes_a, codes_b;
  std::uint64_t retries_a = 0, retries_b = 0;
  std::uint64_t failovers_a = 0, failovers_b = 0;
  std::uint64_t quorum_a = 0, quorum_b = 0;
  SimTime end_a = 0, end_b = 0;
  run(events_a, counters_a, codes_a, retries_a, failovers_a, quorum_a, end_a);
  run(events_b, counters_b, codes_b, retries_b, failovers_b, quorum_b, end_b);
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(counters_a, counters_b);
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(retries_a, retries_b);
  EXPECT_EQ(failovers_a, failovers_b);
  EXPECT_EQ(quorum_a, quorum_b);
  EXPECT_EQ(end_a, end_b);
  EXPECT_GT(counters_a.total(), 0u);
  EXPECT_GT(quorum_a, 0u);
}

// ---- Oracle equivalence under crash -----------------------------------------
//
// The tentpole acceptance: a randomized typed workload on an r=2/w=2
// cluster with write-back caching and a mid-run crash must read back —
// through EVERY I/O method, during and after the outage — byte-identical
// to the JointWalker oracle, with zero data-loss errors, and a final
// flush_caches + raw read must match the oracle exactly.

types::Datatype random_filetype(Rng& rng, int depth) {
  if (depth == 0) {
    return types::byte_t();
  }
  auto inner = random_filetype(rng, depth - 1);
  switch (rng.next_below(4)) {
    case 0:
      return types::contiguous(rng.next_range(1, 4), inner);
    case 1: {
      const std::int64_t bl = rng.next_range(1, 3);
      return types::hvector(rng.next_range(1, 4), bl,
                            bl * inner.extent() + rng.next_range(0, 32),
                            inner);
    }
    case 2: {
      const std::int64_t count = rng.next_range(1, 4);
      std::vector<std::int64_t> lens, offs;
      std::int64_t at = rng.next_range(0, 8) * inner.extent();
      for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t bl = rng.next_range(1, 2);
        lens.push_back(bl);
        offs.push_back(at);
        at += bl * inner.extent() + rng.next_range(1, 40);
      }
      return types::hindexed(lens, offs, inner);
    }
    default: {
      auto base = types::contiguous(rng.next_range(1, 3), inner);
      return types::resized(base, 0, base.extent() + rng.next_range(0, 24));
    }
  }
}

class ReplicationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationEquivalence, CrashedRunMatchesOracleAcrossAllMethods) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 69621 + 17);
  const auto filetype =
      random_filetype(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t mem_count = rng.next_range(1, 3);
  types::Datatype memtype;
  if (rng.next_below(2)) {
    memtype = types::contiguous(rng.next_range(64, 400), types::byte_t());
  } else {
    const std::int64_t bl = rng.next_range(2, 16);
    memtype = types::hvector(rng.next_range(4, 16), bl,
                             bl + rng.next_range(0, 16), types::byte_t());
  }
  const std::int64_t displacement = rng.next_range(0, 512);
  const std::int64_t offset_etypes = rng.next_range(0, 64);
  const std::int64_t total = mem_count * memtype.size();

  const std::int64_t mem_span = memtype.extent() * mem_count + 64;
  std::vector<std::uint8_t> mem_image(static_cast<std::size_t>(mem_span));
  for (auto& b : mem_image) b = static_cast<std::uint8_t>(rng.next());

  // Oracle: expected file bytes via the joint walker alone.
  std::map<std::int64_t, std::uint8_t> expected_file;
  {
    io::FileView view{displacement, types::byte_t(), filetype};
    const io::StreamWindow window = io::make_window(view, offset_etypes, total);
    io::JointWalker walker(io::make_mem_cursor(memtype, mem_count),
                           io::make_file_cursor(view, window));
    io::JointWalker::Piece piece;
    while (walker.next(piece)) {
      for (std::int64_t i = 0; i < piece.length; ++i) {
        expected_file[piece.file_offset + i] =
            mem_image[static_cast<std::size_t>(piece.mem_offset + i)];
      }
    }
    ASSERT_EQ(static_cast<std::int64_t>(expected_file.size()), total)
        << "oracle: file regions must be disjoint";
  }

  net::ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 1;
  cfg.strip_size = 256;
  cfg.seed = 4200 + static_cast<std::uint64_t>(GetParam());
  cfg.replication = 2;
  cfg.client.write_quorum = 2;
  cfg.client.rpc_timeout = 20 * kMillisecond;
  cfg.client.rpc_max_attempts = 6;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  cfg.server.cache_block_bytes = 256;
  cfg.server.cache_capacity_bytes = 8 * 256;
  cfg.server.cache_dirty_watermark = 1.0;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);
  io::Context ctx{cluster.scheduler(), *client, cluster.config()};
  mpiio::File file(ctx);

  const Method write_methods[] = {Method::kPosix, Method::kList,
                                  Method::kDatatype};
  const Method write_method = write_methods[rng.next_below(3)];

  bool wrote = false;
  cluster.scheduler().spawn(
      [](mpiio::File& f, const types::Datatype& ft, std::int64_t disp,
         std::int64_t off, const std::vector<std::uint8_t>& image,
         std::int64_t mem_count, const types::Datatype& mt, Method wm,
         bool& done) -> Task<void> {
        EXPECT_TRUE((co_await f.open("/repl-rand", true)).is_ok());
        f.set_view(disp, types::byte_t(), ft);
        Status st = co_await f.write_at(off, image.data(), mem_count, mt, wm);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        done = st.is_ok();
      }(file, filetype, displacement, offset_etypes, mem_image, mem_count,
        memtype, write_method, wrote));
  cluster.run();
  ASSERT_TRUE(wrote);

  // Mid-run crash: server 1 dies during the first read round — taking its
  // staged write-back dirty blocks with it — and restarts into resync
  // while reads are still in flight.
  cluster.schedule_server_crash(
      /*index=*/1, cluster.scheduler().now() + 2 * kMillisecond,
      /*restart_delay=*/40 * kMillisecond);

  std::int64_t file_end = 0;
  for (const auto& [off, byte] : expected_file) {
    file_end = std::max(file_end, off + 1);
  }

  // Raw image read during the outage: every byte the oracle knows must
  // come back, served from replicas where the primary is down.
  auto read_raw = [&](std::vector<std::uint8_t>& raw) {
    bool ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, std::vector<std::uint8_t>& out,
           bool& done) -> Task<void> {
          f.set_view(0, types::byte_t(), types::byte_t());
          auto whole = types::contiguous(
              static_cast<std::int64_t>(out.size()), types::byte_t());
          Status st = co_await f.read_at(0, out.data(), 1, whole,
                                         mpiio::Method::kPosix);
          EXPECT_TRUE(st.is_ok()) << st.to_string();
          done = st.is_ok();
        }(file, raw, ok));
    cluster.run();
    return ok;
  };
  {
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(file_end), 0);
    ASSERT_TRUE(read_raw(raw));
    for (const auto& [off, byte] : expected_file) {
      ASSERT_EQ(raw[static_cast<std::size_t>(off)], byte)
          << "file byte " << off << " during outage";
    }
  }

  // Read back through the view with every method.
  for (const Method read_method :
       {Method::kPosix, Method::kDataSieving, Method::kList,
        Method::kDatatype}) {
    std::vector<std::uint8_t> back(mem_image.size(), 0);
    bool read_ok = false;
    cluster.scheduler().spawn(
        [](mpiio::File& f, const types::Datatype& ft, std::int64_t disp,
           std::int64_t off, std::int64_t mem_count,
           const types::Datatype& mt, std::vector<std::uint8_t>& out,
           Method rm, bool& done) -> Task<void> {
          f.set_view(disp, types::byte_t(), ft);
          Status st = co_await f.read_at(off, out.data(), mem_count, mt, rm);
          EXPECT_TRUE(st.is_ok()) << st.to_string();
          done = st.is_ok();
        }(file, filetype, displacement, offset_etypes, mem_count, memtype,
          back, read_method, read_ok));
    cluster.run();
    ASSERT_TRUE(read_ok) << mpiio::method_name(read_method);
    for (const Region& r : memtype.flatten(0, mem_count)) {
      for (std::int64_t i = r.offset; i < r.end(); ++i) {
        ASSERT_EQ(back[static_cast<std::size_t>(i)],
                  mem_image[static_cast<std::size_t>(i)])
            << "mem byte " << i << " via " << mpiio::method_name(read_method)
            << " after " << mpiio::method_name(write_method);
      }
    }
  }

  // The crash happened, and any dirty bytes it destroyed were re-pulled.
  const pfs::ServerStats total_stats = cluster.cache_stats_total();
  EXPECT_EQ(cluster.server(1).stats().crashes, 1u);
  EXPECT_FALSE(cluster.server(1).crashed());
  EXPECT_FALSE(cluster.server(1).resyncing());
  if (total_stats.cache_dirty_lost_bytes > 0) {
    EXPECT_GE(total_stats.resync_bytes_pulled,
              total_stats.cache_dirty_lost_bytes);
  }

  // flush_caches + raw read-back: byte-exact against the oracle.
  cluster.flush_caches();
  {
    std::vector<std::uint8_t> raw(static_cast<std::size_t>(file_end), 0);
    ASSERT_TRUE(read_raw(raw));
    for (const auto& [off, byte] : expected_file) {
      ASSERT_EQ(raw[static_cast<std::size_t>(off)], byte)
          << "file byte " << off << " after flush_caches";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ReplicationEquivalence,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dtio
