// Unit and property tests for the dataloop engine: builders and their
// regularity-capturing normalisations, cursor traversal, partial
// processing, seek, pack/unpack, and wire serialisation.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/region.h"
#include "common/rng.h"
#include "dataloop/cursor.h"
#include "dataloop/dataloop.h"
#include "dataloop/pack.h"
#include "dataloop/serialize.h"

namespace dtio::dl {
namespace {

constexpr std::int64_t kUnlimited = std::numeric_limits<std::int64_t>::max();

std::vector<Region> collect(Cursor& cursor, std::int64_t max_regions = kUnlimited,
                            std::int64_t max_bytes = kUnlimited,
                            bool coalesce = true) {
  std::vector<Region> out;
  cursor.process(
      max_regions, max_bytes,
      [&](std::int64_t off, std::int64_t len) { out.push_back({off, len}); },
      coalesce);
  return out;
}

// ---- Builders -------------------------------------------------------------

TEST(Builder, LeafBasics) {
  auto leaf = make_leaf(4);
  EXPECT_EQ(leaf->kind, Kind::kLeaf);
  EXPECT_EQ(leaf->size, 4);
  EXPECT_EQ(leaf->extent, 4);
  EXPECT_EQ(leaf->lb, 0);
  EXPECT_TRUE(leaf->solid);
  EXPECT_EQ(leaf->node_count(), 1);
  EXPECT_EQ(leaf->depth(), 1);
  EXPECT_THROW(make_leaf(0), std::invalid_argument);
  EXPECT_THROW(make_leaf(-1), std::invalid_argument);
}

TEST(Builder, ContigComputesSizeAndExtent) {
  auto c = make_contig(10, make_leaf(4));
  EXPECT_EQ(c->kind, Kind::kContig);
  EXPECT_EQ(c->size, 40);
  EXPECT_EQ(c->extent, 40);
  EXPECT_TRUE(c->solid);
}

TEST(Builder, ContigOfOneCollapsesToChild) {
  auto leaf = make_leaf(8);
  auto c = make_contig(1, leaf);
  EXPECT_EQ(c.get(), leaf.get());
}

TEST(Builder, NestedContigCollapses) {
  auto c = make_contig(3, make_contig(5, make_leaf(2)));
  EXPECT_EQ(c->kind, Kind::kContig);
  EXPECT_EQ(c->count, 15);
  EXPECT_EQ(c->child->kind, Kind::kLeaf);
}

TEST(Builder, VectorComputesGeometry) {
  // 4 blocks of 3 int32s every 100 bytes.
  auto v = make_vector(4, 3, 100, make_leaf(4));
  EXPECT_EQ(v->kind, Kind::kVector);
  EXPECT_EQ(v->size, 48);
  EXPECT_EQ(v->extent, 3 * 100 + 12);
  EXPECT_EQ(v->lb, 0);
  EXPECT_FALSE(v->solid);
  EXPECT_EQ(v->region_count(), 4);
}

TEST(Builder, VectorWithSeamlessStrideBecomesContig) {
  auto v = make_vector(4, 3, 12, make_leaf(4));
  EXPECT_EQ(v->kind, Kind::kContig);
  EXPECT_EQ(v->count, 12);
}

TEST(Builder, VectorCountOneBecomesContig) {
  auto v = make_vector(1, 5, 999, make_leaf(4));
  EXPECT_EQ(v->kind, Kind::kContig);
  EXPECT_EQ(v->size, 20);
}

TEST(Builder, VectorNegativeStride) {
  auto v = make_vector(3, 1, -10, make_leaf(4));
  EXPECT_EQ(v->size, 12);
  EXPECT_EQ(v->lb, -20);
  EXPECT_EQ(v->extent, 20 + 4);
}

TEST(Builder, BlockIndexedKeepsIrregularOffsets) {
  const std::int64_t offs[] = {0, 10, 50};
  auto b = make_blockindexed(3, 2, offs, make_leaf(1));
  EXPECT_EQ(b->kind, Kind::kBlockIndexed);
  EXPECT_EQ(b->size, 6);
  EXPECT_EQ(b->extent, 52);
  EXPECT_EQ(b->region_count(), 3);
}

TEST(Builder, BlockIndexedUniformStrideBecomesVector) {
  const std::int64_t offs[] = {0, 100, 200, 300};
  auto b = make_blockindexed(4, 2, offs, make_leaf(4));
  EXPECT_EQ(b->kind, Kind::kVector);
  EXPECT_EQ(b->stride, 100);
}

TEST(Builder, IndexedUniformBlocklensBecomesBlockIndexed) {
  const std::int64_t lens[] = {3, 3, 3};
  const std::int64_t offs[] = {0, 7, 100};
  auto ix = make_indexed(lens, offs, make_leaf(1));
  EXPECT_EQ(ix->kind, Kind::kBlockIndexed);
  EXPECT_EQ(ix->blocklen, 3);
}

TEST(Builder, IndexedIrregularGeometry) {
  const std::int64_t lens[] = {2, 0, 5};
  const std::int64_t offs[] = {10, 90, 40};
  auto ix = make_indexed(lens, offs, make_leaf(4));
  EXPECT_EQ(ix->kind, Kind::kIndexed);
  EXPECT_EQ(ix->size, 28);
  EXPECT_EQ(ix->lb, 10);                 // empty block at 90 ignored
  EXPECT_EQ(ix->extent, 40 + 20 - 10);   // hull [10, 60)
  EXPECT_EQ(ix->region_count(), 2);
  ASSERT_EQ(ix->block_bytes_prefix.size(), 4u);
  EXPECT_EQ(ix->block_bytes_prefix[1], 8);
  EXPECT_EQ(ix->block_bytes_prefix[2], 8);
  EXPECT_EQ(ix->block_bytes_prefix[3], 28);
}

TEST(Builder, StructMixedChildren) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t offs[] = {0, 16};
  const DataloopPtr kids[] = {make_leaf(8), make_leaf(4)};
  auto st = make_struct(lens, offs, kids);
  EXPECT_EQ(st->kind, Kind::kStruct);
  EXPECT_EQ(st->size, 16);
  EXPECT_EQ(st->extent, 24);
}

TEST(Builder, StructHomogeneousBecomesIndexed) {
  auto leaf = make_leaf(4);
  const std::int64_t lens[] = {1, 2};
  const std::int64_t offs[] = {0, 16};
  const DataloopPtr kids[] = {leaf, leaf};
  auto st = make_struct(lens, offs, kids);
  EXPECT_NE(st->kind, Kind::kStruct);
}

TEST(Builder, ResizedOverridesExtent) {
  auto r = make_resized(make_contig(2, make_leaf(4)), 0, 32);
  EXPECT_EQ(r->size, 8);
  EXPECT_EQ(r->extent, 32);
  EXPECT_TRUE(r->solid);  // instance itself is still one solid run
}

TEST(Builder, MismatchedSpansThrow) {
  const std::int64_t lens[] = {1, 2};
  const std::int64_t offs[] = {0};
  EXPECT_THROW(make_indexed(lens, offs, make_leaf(1)), std::invalid_argument);
  EXPECT_THROW(make_contig(-1, make_leaf(1)), std::invalid_argument);
  EXPECT_THROW(make_contig(2, nullptr), std::invalid_argument);
}

// ---- Cursor traversal -----------------------------------------------------

TEST(Cursor, SolidTypeEmitsOneRegion) {
  Cursor c(make_contig(8, make_leaf(4)), 1000, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{1000, 32}}));
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.position(), 32);
}

TEST(Cursor, MultipleInstancesOfSolidTypeCoalesce) {
  Cursor c(make_contig(8, make_leaf(4)), 0, 5);
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 160}}));
}

TEST(Cursor, VectorEmitsPerBlock) {
  // Row extraction: 3 rows of 4 ints out of a 10-int-wide 2D array.
  Cursor c(make_vector(3, 4, 40, make_leaf(4)), 0, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions,
            (std::vector<Region>{{0, 16}, {40, 16}, {80, 16}}));
}

TEST(Cursor, VectorInstancesTileByExtent) {
  auto v = make_vector(2, 1, 8, make_leaf(4));  // extent = 8 + 4 = 12
  Cursor c(v, 0, 2);
  // Instance 0 blocks at 0 and 8; instance 1 at 12 and 20. The block at 8
  // touches instance 1's first block at 12, so they coalesce.
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 4}, {8, 8}, {20, 4}}));
  Cursor raw(v, 0, 2);
  auto uncoalesced = collect(raw, kUnlimited, kUnlimited, /*coalesce=*/false);
  EXPECT_EQ(uncoalesced,
            (std::vector<Region>{{0, 4}, {8, 4}, {12, 4}, {20, 4}}));
}

TEST(Cursor, IndexedSkipsEmptyBlocks) {
  const std::int64_t lens[] = {2, 0, 1, 0};
  const std::int64_t offs[] = {0, 50, 30, 99};
  Cursor c(make_indexed(lens, offs, make_leaf(4)), 0, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 8}, {30, 4}}));
}

TEST(Cursor, StructWalksHeterogeneousChildren) {
  const std::int64_t lens[] = {1, 3};
  const std::int64_t offs[] = {0, 10};
  const DataloopPtr kids[] = {make_leaf(2), make_leaf(4)};
  Cursor c(make_struct(lens, offs, kids), 100, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{100, 2}, {110, 12}}));
}

TEST(Cursor, NestedVectorOfVector) {
  // Outer: 2 blocks stride 100 of inner; inner: 2 blocks of 1x4B stride 10.
  auto inner = make_vector(2, 1, 10, make_leaf(4));  // extent 14, size 8
  auto outer = make_vector(2, 1, 100, inner);
  Cursor c(outer, 0, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions,
            (std::vector<Region>{{0, 4}, {10, 4}, {100, 4}, {110, 4}}));
}

TEST(Cursor, ResizedChildLeavesGapsBetweenElements) {
  // 3 elements of a 4-byte leaf resized to extent 10 inside a contig.
  auto el = make_resized(make_leaf(4), 0, 10);
  Cursor c(make_contig(3, el), 0, 1);
  auto regions = collect(c);
  EXPECT_EQ(regions, (std::vector<Region>{{0, 4}, {10, 4}, {20, 4}}));
}

TEST(Cursor, CoalesceMergesTouchingBlocks) {
  // Indexed with adjacent blocks 0..8 and 8..12.
  const std::int64_t lens[] = {2, 1, 2};
  const std::int64_t offs[] = {0, 8, 100};
  Cursor c(make_indexed(lens, offs, make_leaf(4)), 0, 1);
  auto merged = collect(c);
  EXPECT_EQ(merged, (std::vector<Region>{{0, 12}, {100, 8}}));
  Cursor c2(make_indexed(lens, offs, make_leaf(4)), 0, 1);
  auto raw = collect(c2, kUnlimited, kUnlimited, /*coalesce=*/false);
  EXPECT_EQ(raw, (std::vector<Region>{{0, 8}, {8, 4}, {100, 8}}));
}

TEST(Cursor, EmptyTypeIsImmediatelyDone) {
  Cursor c(make_contig(0, make_leaf(4)), 0, 5);
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.total_bytes(), 0);
  auto regions = collect(c);
  EXPECT_TRUE(regions.empty());
}

TEST(Cursor, ZeroCountIsDone) {
  Cursor c(make_leaf(4), 0, 0);
  EXPECT_TRUE(c.done());
}

// ---- Partial processing ---------------------------------------------------

TEST(PartialProcessing, RegionBudgetIsResumable) {
  auto v = make_vector(10, 1, 8, make_leaf(4));
  Cursor whole(v, 0, 1);
  const auto expect = collect(whole);

  Cursor c(v, 0, 1);
  std::vector<Region> got;
  while (!c.done()) {
    auto part = collect(c, /*max_regions=*/3);
    got.insert(got.end(), part.begin(), part.end());
    EXPECT_LE(part.size(), 3u);
  }
  EXPECT_EQ(got, expect);
}

TEST(PartialProcessing, ByteBudgetSplitsRegions) {
  Cursor c(make_contig(10, make_leaf(4)), 0, 1);  // solid 40 bytes
  auto part1 = collect(c, kUnlimited, /*max_bytes=*/12);
  EXPECT_EQ(part1, (std::vector<Region>{{0, 12}}));
  EXPECT_EQ(c.position(), 12);
  auto part2 = collect(c, kUnlimited, 100);
  EXPECT_EQ(part2, (std::vector<Region>{{12, 28}}));
  EXPECT_TRUE(c.done());
}

TEST(PartialProcessing, ByteBudgetAcrossBlocks) {
  auto v = make_vector(4, 2, 20, make_leaf(4));  // blocks of 8B at 0,20,40,60
  Cursor c(v, 0, 1);
  auto part = collect(c, kUnlimited, /*max_bytes=*/12);
  EXPECT_EQ(part, (std::vector<Region>{{0, 8}, {20, 4}}));
  auto rest = collect(c);
  EXPECT_EQ(rest, (std::vector<Region>{{24, 4}, {40, 8}, {60, 8}}));
}

TEST(PartialProcessing, ProcessReportsCounts) {
  auto v = make_vector(5, 1, 10, make_leaf(4));
  Cursor c(v, 0, 1);
  auto r = c.process(2, kUnlimited, [](std::int64_t, std::int64_t) {});
  EXPECT_EQ(r.regions, 2);
  EXPECT_EQ(r.bytes, 8);
}

// ---- Seek -----------------------------------------------------------------

TEST(Seek, MatchesSequentialConsumption) {
  const std::int64_t lens[] = {3, 1, 4};
  const std::int64_t offs[] = {0, 20, 33};
  auto type = make_indexed(lens, offs, make_leaf(4));
  const std::int64_t total = 2 * type->size;
  for (std::int64_t pos = 0; pos <= total; ++pos) {
    Cursor seeker(type, 0, 2);
    seeker.seek(pos);
    EXPECT_EQ(seeker.position(), pos);
    auto via_seek = collect(seeker);

    Cursor walker(type, 0, 2);
    auto skipped = collect(walker, kUnlimited, pos);
    (void)skipped;
    auto via_walk = collect(walker);
    EXPECT_EQ(via_seek, via_walk) << "at pos " << pos;
  }
}

TEST(Seek, ReseekAfterDoneRestartsCleanly) {
  auto type = make_vector(5, 2, 16, make_leaf(4));
  Cursor c(type, 0, 2);
  (void)collect(c);
  EXPECT_TRUE(c.done());
  c.seek(0);  // rewind
  EXPECT_FALSE(c.done());
  auto again = collect(c);
  Cursor fresh(type, 0, 2);
  EXPECT_EQ(again, collect(fresh));
}

TEST(Seek, PackAfterSeekProducesTheStreamSuffix) {
  auto type = make_vector(8, 4, 16, make_leaf(1));  // 32 data bytes
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(type->extent));
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
  }
  Cursor whole(type, 0, 1);
  std::vector<std::uint8_t> full(32);
  pack(buf.data(), whole, full);

  Cursor suffix(type, 0, 1);
  suffix.seek(13);
  std::vector<std::uint8_t> tail(19);
  EXPECT_EQ(pack(buf.data(), suffix, tail), 19u);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), full.begin() + 13));
}

TEST(Seek, ToEndIsDone) {
  auto type = make_vector(3, 2, 16, make_leaf(4));
  Cursor c(type, 0, 4);
  c.seek(c.total_bytes());
  EXPECT_TRUE(c.done());
}

TEST(Seek, OutOfRangeThrows) {
  Cursor c(make_leaf(4), 0, 1);
  EXPECT_THROW(c.seek(-1), std::out_of_range);
  EXPECT_THROW(c.seek(5), std::out_of_range);
}

TEST(Seek, DeepNestedSeek) {
  auto inner = make_vector(4, 1, 10, make_leaf(2));   // 8B per instance
  auto mid = make_vector(3, 2, 100, inner);           // 48B per instance
  auto outer = make_contig(5, mid);                   // 240B per instance
  const std::int64_t total = 2 * outer->size;
  for (std::int64_t pos = 0; pos <= total; pos += 7) {
    Cursor seeker(outer, 0, 2);
    seeker.seek(pos);
    auto via_seek = collect(seeker);
    Cursor walker(outer, 0, 2);
    (void)collect(walker, kUnlimited, pos);
    auto via_walk = collect(walker);
    EXPECT_EQ(via_seek, via_walk) << "at pos " << pos;
  }
}

// ---- Pruned traversal: span filter + stream limit --------------------------

struct Window {
  std::int64_t lo;
  std::int64_t hi;
};

bool window_filter(const void* ctx, std::int64_t lo, std::int64_t hi) {
  const auto* w = static_cast<const Window*>(ctx);
  return lo < w->hi && hi > w->lo;
}

TEST(Filter, KeepAllMatchesUnfiltered) {
  auto inner = make_vector(3, 1, 10, make_leaf(2));
  auto type = make_contig(4, inner);
  Cursor plain(type, 5, 2);
  auto all = collect(plain, kUnlimited, kUnlimited, /*coalesce=*/false);

  Cursor filtered(type, 5, 2);
  Window w{std::numeric_limits<std::int64_t>::min() / 2,
           std::numeric_limits<std::int64_t>::max() / 2};
  filtered.set_filter(window_filter, &w);
  auto same = collect(filtered, kUnlimited, kUnlimited, /*coalesce=*/false);
  EXPECT_EQ(same, all);
  EXPECT_EQ(filtered.subtrees_skipped(), 0);
  EXPECT_EQ(filtered.bytes_pruned(), 0);
}

TEST(Filter, RejectAllSkipsEverythingButAdvancesStream) {
  auto type = make_vector(6, 2, 24, make_leaf(4));
  Cursor c(type, 0, 3);
  Window w{-100, -50};  // nothing intersects
  c.set_filter(window_filter, &w);
  auto regions = collect(c);
  EXPECT_TRUE(regions.empty());
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.position(), c.total_bytes());
  // Whole instances are rejected at the root: one probe per instance.
  EXPECT_EQ(c.subtrees_skipped(), 3);
  EXPECT_EQ(c.regions_pruned(), 3 * type->region_count());
  EXPECT_EQ(c.bytes_pruned(), c.total_bytes());
}

TEST(Filter, WindowFilterKeepsEveryIntersectingRegion) {
  // Mixed-kind tree exercising every prune point: a struct whose blocks
  // are a block-atomic vector, a gappy (non-packed) child under indexed,
  // and a contig — walked for two instances so root pruning fires too.
  auto gappy = make_vector(2, 1, 12, make_leaf(4));  // solid=false
  auto atomic_v = make_vector(3, 2, 20, make_leaf(4));
  const std::int64_t ilens[] = {2, 1};
  const std::int64_t ioffs[] = {0, 60};
  auto idx = make_indexed(ilens, ioffs, gappy);
  auto ctg = make_contig(2, atomic_v);
  const std::int64_t slens[] = {1, 1, 1};
  const std::int64_t soffs[] = {0, 200, 500};
  const DataloopPtr kids[] = {atomic_v, idx, ctg};
  auto type = make_struct(slens, soffs, kids);

  Cursor whole(type, 0, 2);
  const auto all = collect(whole, kUnlimited, kUnlimited, /*coalesce=*/false);
  ASSERT_FALSE(all.empty());

  const Window windows[] = {{0, 40},   {40, 230},  {230, 520},
                            {500, 700}, {700, 5000}, {0, 5000}};
  for (const Window& w : windows) {
    Cursor c(type, 0, 2);
    Window win = w;
    c.set_filter(window_filter, &win);
    const auto got = collect(c, kUnlimited, kUnlimited, /*coalesce=*/false);

    // `got` must be an in-order subsequence of the full expansion, and
    // every omitted region must miss the window (the filter may keep
    // extra regions — it is conservative — but must never drop a wanted
    // one).
    std::size_t j = 0;
    std::int64_t got_bytes = 0;
    for (const Region& r : all) {
      if (j < got.size() && got[j].offset == r.offset &&
          got[j].length == r.length) {
        ++j;
        got_bytes += r.length;
        continue;
      }
      EXPECT_FALSE(r.offset < win.hi && r.end() > win.lo)
          << "dropped region {" << r.offset << "," << r.length
          << "} intersects window [" << win.lo << "," << win.hi << ")";
    }
    EXPECT_EQ(j, got.size()) << "emitted a region the full walk never did";
    EXPECT_TRUE(c.done());
    EXPECT_EQ(c.position(), c.total_bytes());
    EXPECT_EQ(got_bytes + c.bytes_pruned(), c.total_bytes());
  }
}

TEST(Filter, MidBlockSeekThenFilteredProcess) {
  // Block-atomic vector: each block is one 8-byte contiguous region at
  // offset 32*b. Seek lands 3 bytes into block 0, then a filter that only
  // keeps blocks 2 and 3 must prune the partially-consumed remainder.
  auto type = make_vector(4, 2, 32, make_leaf(4));
  Cursor c(type, 0, 1);
  c.seek(3);
  Window w{64, 200};
  c.set_filter(window_filter, &w);
  auto got = collect(c);
  EXPECT_EQ(got, (std::vector<Region>{{64, 8}, {96, 8}}));
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.position(), c.total_bytes());
}

TEST(StreamLimit, ClipsFinalRegionAndStops) {
  auto type = make_vector(5, 1, 10, make_leaf(4));
  Cursor c(type, 0, 1);
  c.set_stream_limit(6);  // mid second region
  auto got = collect(c);
  EXPECT_EQ(got, (std::vector<Region>{{0, 4}, {10, 2}}));
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.position(), 6);
}

TEST(StreamLimit, AtSeekPositionIsImmediatelyDone) {
  auto type = make_vector(5, 1, 10, make_leaf(4));
  Cursor c(type, 0, 1);
  c.seek(8);
  c.set_stream_limit(8);
  EXPECT_TRUE(c.done());
  auto got = collect(c);
  EXPECT_TRUE(got.empty());
}

TEST(StreamLimit, BoundsWindowIndependentlyOfFilter) {
  // Under a filter, pruned bytes never reach process()'s byte budget, so
  // the window must be enforced by the stream limit. Stream window [4, 14)
  // with a filter that rejects the first two file regions: region 1
  // (stream [4,8)) is pruned — consuming window bytes without emitting —
  // region 2 (stream [8,12)) is emitted whole, and region 3 is clipped to
  // the 2 window bytes left.
  auto type = make_vector(5, 1, 10, make_leaf(4));  // regions at 0,10,20,30,40
  Cursor c(type, 0, 1);
  c.seek(4);
  c.set_stream_limit(14);
  Window w{20, 1000};  // rejects file regions {0,4} and {10,4}
  c.set_filter(window_filter, &w);
  auto got = collect(c);
  EXPECT_EQ(got, (std::vector<Region>{{20, 4}, {30, 2}}));
  EXPECT_TRUE(c.done());
  EXPECT_EQ(c.position(), 14);
}

// ---- Pack / unpack --------------------------------------------------------

TEST(Pack, GatherScatterRoundTrip) {
  auto type = make_vector(4, 2, 24, make_leaf(4));  // 32 data bytes
  const std::int64_t footprint = type->extent;
  std::vector<std::uint8_t> src(static_cast<std::size_t>(footprint), 0xEE);
  // Paint data bytes with a recognisable ramp via unpack of a ramp stream.
  std::vector<std::uint8_t> stream(32);
  std::iota(stream.begin(), stream.end(), std::uint8_t{1});

  Cursor w(type, 0, 1);
  EXPECT_EQ(unpack(src.data(), w, stream), 32u);

  Cursor r(type, 0, 1);
  std::vector<std::uint8_t> out(32, 0);
  EXPECT_EQ(pack(src.data(), r, out), 32u);
  EXPECT_EQ(out, stream);

  // Gap bytes untouched.
  EXPECT_EQ(src[8], 0xEE);
  EXPECT_EQ(src[20], 0xEE);
}

TEST(Pack, BoundedBufferPacksIncrementally) {
  auto type = make_vector(8, 1, 6, make_leaf(4));  // 32 data bytes
  std::vector<std::uint8_t> src(static_cast<std::size_t>(type->extent));
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i);
  }
  Cursor c(type, 0, 1);
  std::vector<std::uint8_t> all;
  std::vector<std::uint8_t> chunk(10);
  while (!c.done()) {
    const std::size_t n = pack(src.data(), c, chunk);
    all.insert(all.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
  }
  ASSERT_EQ(all.size(), 32u);
  Cursor c2(type, 0, 1);
  std::vector<std::uint8_t> whole(32);
  pack(src.data(), c2, whole);
  EXPECT_EQ(all, whole);
}

// ---- Serialisation --------------------------------------------------------

TEST(Serialize, RoundTripPreservesStructure) {
  const std::int64_t lens[] = {1, 3, 2};
  const std::int64_t offs[] = {0, 11, 60};
  const DataloopPtr kids[] = {make_leaf(8), make_leaf(4),
                              make_vector(2, 1, 12, make_leaf(4))};
  auto type = make_struct(lens, offs, kids);
  std::vector<std::uint8_t> wire;
  encode(*type, wire);
  EXPECT_EQ(wire.size(), encoded_size(*type));
  auto back = decode(wire);
  EXPECT_TRUE(deep_equal(*type, *back));
}

TEST(Serialize, RoundTripPreservesResizedExtent) {
  auto type = make_resized(make_vector(3, 1, 10, make_leaf(4)), -4, 64);
  std::vector<std::uint8_t> wire;
  encode(*type, wire);
  auto back = decode(wire);
  EXPECT_EQ(back->extent, 64);
  EXPECT_EQ(back->lb, -4);
  EXPECT_TRUE(deep_equal(*type, *back));
}

TEST(Serialize, DecodedLoopProcessesIdentically) {
  const std::int64_t lens[] = {5, 2, 7};
  const std::int64_t offs[] = {3, 50, 90};
  auto type = make_indexed(lens, offs, make_leaf(2));
  std::vector<std::uint8_t> wire;
  encode(*type, wire);
  auto back = decode(wire);
  Cursor a(type, 1000, 3);
  Cursor b(back, 1000, 3);
  EXPECT_EQ(collect(a), collect(b));
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW((void)decode({}), std::invalid_argument);
  std::vector<std::uint8_t> wire;
  encode(*make_leaf(4), wire);
  wire.pop_back();
  EXPECT_THROW((void)decode(wire), std::invalid_argument);
  wire.push_back(0);
  wire.push_back(0xFF);  // trailing garbage
  EXPECT_THROW((void)decode(wire), std::invalid_argument);
  std::vector<std::uint8_t> bogus(32, 0xAB);
  EXPECT_THROW((void)decode(bogus), std::invalid_argument);
}

TEST(Serialize, DecoderSurvivesRandomBytes) {
  // Fuzz the wire decoder: random byte strings must either decode to a
  // valid loop or throw std::invalid_argument — never crash or hang.
  Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes(rng.next_below(120));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    try {
      auto loop = decode(bytes);
      // If it decoded, it must be internally consistent.
      EXPECT_GE(loop->size, 0);
      EXPECT_GE(loop->node_count(), 1);
    } catch (const std::invalid_argument&) {
      // expected for malformed input
    }
  }
}

TEST(Serialize, DecoderSurvivesBitFlips) {
  const std::int64_t lens[] = {2, 5, 1};
  const std::int64_t offs[] = {0, 30, 90};
  auto type = make_indexed(lens, offs, make_leaf(4));
  std::vector<std::uint8_t> wire;
  encode(*type, wire);
  Rng rng(99);
  for (int round = 0; round < 500; ++round) {
    auto mutated = wire;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    try {
      auto loop = decode(mutated);
      EXPECT_GE(loop->node_count(), 1);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(Cursor, DeepNestingStress) {
  // 20 levels of alternating vectors: traversal and seek stay correct.
  DataloopPtr loop = make_leaf(2);
  for (int d = 0; d < 20; ++d) {
    loop = make_vector(2, 1, loop->extent + 1 + d % 3, loop);
  }
  EXPECT_EQ(loop->size, 2 << 20);
  auto regions = flatten(loop, 0, 1);
  EXPECT_EQ(total_length(regions), loop->size);
  Cursor seeker(loop, 0, 1);
  seeker.seek(loop->size / 2);
  Region r;
  EXPECT_TRUE(seeker.peek(r));
  EXPECT_EQ(seeker.position(), loop->size / 2);
}

// ---- Property tests over random (monotonic) types -------------------------

DataloopPtr random_type(Rng& rng, int depth) {
  if (depth == 0) {
    return make_leaf(rng.next_range(1, 16));
  }
  auto child = random_type(rng, depth - 1);
  switch (rng.next_below(5)) {
    case 0:
      return make_contig(rng.next_range(1, 5), child);
    case 1: {
      const std::int64_t blocklen = rng.next_range(1, 4);
      const std::int64_t min_stride = blocklen * child->extent;
      return make_vector(rng.next_range(2, 5), blocklen,
                         min_stride + rng.next_range(0, 32), child);
    }
    case 2: {
      const std::int64_t count = rng.next_range(1, 5);
      const std::int64_t blocklen = rng.next_range(1, 3);
      std::vector<std::int64_t> offs;
      std::int64_t at = 0;
      for (std::int64_t i = 0; i < count; ++i) {
        offs.push_back(at);
        at += blocklen * child->extent + rng.next_range(0, 40);
      }
      return make_blockindexed(count, blocklen, offs, child);
    }
    case 3: {
      const std::int64_t count = rng.next_range(1, 5);
      std::vector<std::int64_t> lens, offs;
      std::int64_t at = rng.next_range(0, 8);
      for (std::int64_t i = 0; i < count; ++i) {
        const std::int64_t bl = rng.next_range(0, 3);
        lens.push_back(bl);
        offs.push_back(at);
        at += bl * child->extent + rng.next_range(1, 24);
      }
      return make_indexed(lens, offs, child);
    }
    default: {
      // Heterogeneous struct with monotonic non-overlapping blocks.
      const std::int64_t count = rng.next_range(2, 4);
      std::vector<std::int64_t> lens, offs;
      std::vector<DataloopPtr> kids;
      std::int64_t at = rng.next_range(0, 8);
      for (std::int64_t i = 0; i < count; ++i) {
        auto kid = i == 0 ? child : random_type(rng, 0);
        const std::int64_t bl = rng.next_range(1, 2);
        lens.push_back(bl);
        offs.push_back(at);
        // The block's data ends at offset + bl*extent + lb (instances tile
        // by extent from the block origin, data spans [lb, lb+extent) of
        // each instance); keep the next block past that.
        at += bl * kid->extent + kid->lb + rng.next_range(1, 24);
        kids.push_back(std::move(kid));
      }
      return make_struct(lens, offs, kids);
    }
  }
}

class DataloopProperty : public ::testing::TestWithParam<int> {};

TEST_P(DataloopProperty, FlattenCoversExactlySizeBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto type = random_type(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t count = rng.next_range(1, 4);
  auto regions = flatten(type, 0, count);
  EXPECT_EQ(total_length(regions), type->size * count);
  EXPECT_TRUE(regions_sorted_disjoint(regions));
  // Coalesced output never has touching neighbours.
  for (std::size_t i = 1; i < regions.size(); ++i) {
    EXPECT_GT(regions[i].offset, regions[i - 1].end());
  }
}

TEST_P(DataloopProperty, PartialProcessingMatchesFull) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto type = random_type(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t count = rng.next_range(1, 3);
  auto expect = flatten(type, 0, count);

  Cursor c(type, 0, count);
  std::vector<Region> got;
  while (!c.done()) {
    auto part = collect(c, rng.next_range(1, 4), rng.next_range(1, 64));
    got.insert(got.end(), part.begin(), part.end());
  }
  coalesce_adjacent(got);  // budget cuts may split regions
  EXPECT_EQ(got, expect);
}

TEST_P(DataloopProperty, SerializeRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  auto type = random_type(rng, static_cast<int>(rng.next_range(1, 3)));
  std::vector<std::uint8_t> wire;
  encode(*type, wire);
  auto back = decode(wire);
  EXPECT_TRUE(deep_equal(*type, *back));
}

TEST_P(DataloopProperty, PackUnpackIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  auto type = random_type(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t count = rng.next_range(1, 3);
  const std::int64_t total = type->size * count;
  const std::int64_t span = type->extent * count + 64;

  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(span), 0);
  std::vector<std::uint8_t> stream(static_cast<std::size_t>(total));
  for (auto& b : stream) b = static_cast<std::uint8_t>(rng.next());

  Cursor w(type, 0, count);
  ASSERT_EQ(unpack(buffer.data(), w, stream),
            static_cast<std::size_t>(total));
  Cursor r(type, 0, count);
  std::vector<std::uint8_t> out(static_cast<std::size_t>(total), 0);
  ASSERT_EQ(pack(buffer.data(), r, out), static_cast<std::size_t>(total));
  EXPECT_EQ(out, stream);
}

TEST_P(DataloopProperty, SeekEquivalentToSkip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
  auto type = random_type(rng, static_cast<int>(rng.next_range(1, 3)));
  const std::int64_t count = rng.next_range(1, 3);
  const std::int64_t total = type->size * count;
  const std::int64_t pos = rng.next_range(0, total);

  Cursor seeker(type, 0, count);
  seeker.seek(pos);
  auto via_seek = collect(seeker);

  Cursor walker(type, 0, count);
  (void)collect(walker, kUnlimited, pos);
  auto via_walk = collect(walker);
  EXPECT_EQ(via_seek, via_walk);
}

INSTANTIATE_TEST_SUITE_P(RandomTypes, DataloopProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace dtio::dl
