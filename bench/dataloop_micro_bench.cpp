// Micro-benchmarks of the real (wall-clock) dataloop engine: processing
// throughput of the cursor, flattening, pack/unpack, serialisation, and
// seek — the §3.2 claims that dataloop processing is fast and that the
// concise representation beats offset-length lists on the wire.
//
// These measure actual computation (google-benchmark), unlike the
// figure/table benches which measure simulated time.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/region.h"
#include "common/rng.h"
#include "dataloop/cursor.h"
#include "dataloop/dataloop.h"
#include "dataloop/pack.h"
#include "dataloop/serialize.h"
#include "pfs/layout.h"
#include "types/datatype.h"
#include "workloads/flash.h"

namespace dtio {
namespace {

constexpr std::int64_t kUnlimited = std::numeric_limits<std::int64_t>::max();

// Vector pattern with a parameterised region count.
dl::DataloopPtr make_vector_pattern(std::int64_t regions) {
  return dl::make_vector(regions, 8, 64, dl::make_leaf(1));
}

void BM_CursorProcessVector(benchmark::State& state) {
  const std::int64_t regions = state.range(0);
  auto loop = make_vector_pattern(regions);
  std::int64_t sink = 0;
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 1);
    cursor.process(kUnlimited, kUnlimited,
                   [&](std::int64_t off, std::int64_t len) {
                     sink += off + len;
                   });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * regions);
}
BENCHMARK(BM_CursorProcessVector)->Range(16, 1 << 20);

void BM_CursorProcessIrregularIndexed(benchmark::State& state) {
  const std::int64_t count = state.range(0);
  Rng rng(42);
  std::vector<std::int64_t> lens, offs;
  std::int64_t at = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const std::int64_t bl = rng.next_range(1, 3);
    lens.push_back(bl);
    offs.push_back(at);
    at += bl * 4 + rng.next_range(4, 64);
  }
  auto loop = dl::make_indexed(lens, offs, dl::make_leaf(4));
  std::int64_t sink = 0;
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 1);
    cursor.process(kUnlimited, kUnlimited,
                   [&](std::int64_t off, std::int64_t len) {
                     sink += off + len;
                   });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_CursorProcessIrregularIndexed)->Range(16, 1 << 18);

void BM_FlattenFlashMemtype(benchmark::State& state) {
  // The paper's stress case: 983 040 8-byte regions.
  workloads::FlashConfig cfg;
  auto memtype = cfg.memtype();
  const auto& loop = memtype.dataloop();
  std::int64_t produced = 0;
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 1);
    auto r = cursor.process(kUnlimited, kUnlimited,
                            [](std::int64_t, std::int64_t) {});
    produced += r.regions;
  }
  benchmark::DoNotOptimize(produced);
  state.SetItemsProcessed(state.iterations() * cfg.joint_pieces());
}
BENCHMARK(BM_FlattenFlashMemtype);

void BM_PackVector(benchmark::State& state) {
  const std::int64_t regions = state.range(0);
  auto loop = make_vector_pattern(regions);
  std::vector<std::uint8_t> src(static_cast<std::size_t>(loop->extent));
  std::vector<std::uint8_t> out(static_cast<std::size_t>(loop->size));
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 1);
    benchmark::DoNotOptimize(dl::pack(src.data(), cursor, out));
  }
  state.SetBytesProcessed(state.iterations() * loop->size);
}
BENCHMARK(BM_PackVector)->Range(16, 1 << 18);

void BM_SeekVsSkip(benchmark::State& state) {
  // seek() is O(depth log blocks); skipping by processing is O(regions).
  auto inner = dl::make_vector(64, 1, 24, dl::make_leaf(8));
  auto outer = dl::make_vector(1024, 2, 4096, inner);
  const std::int64_t target = outer->size / 2;
  for (auto _ : state) {
    dl::Cursor cursor(outer, 0, 4);
    cursor.seek(target);
    benchmark::DoNotOptimize(cursor.position());
  }
}
BENCHMARK(BM_SeekVsSkip);

void BM_SkipByProcessing(benchmark::State& state) {
  auto inner = dl::make_vector(64, 1, 24, dl::make_leaf(8));
  auto outer = dl::make_vector(1024, 2, 4096, inner);
  const std::int64_t target = outer->size / 2;
  for (auto _ : state) {
    dl::Cursor cursor(outer, 0, 4);
    cursor.process(kUnlimited, target, [](std::int64_t, std::int64_t) {});
    benchmark::DoNotOptimize(cursor.position());
  }
}
BENCHMARK(BM_SkipByProcessing);

void BM_CursorSeek(benchmark::State& state) {
  // Raw seek() cost over a deep nested pattern, cycling through positions
  // so each iteration rebuilds the frame stack (no warm-path shortcut).
  auto level1 = dl::make_vector(32, 2, 256, dl::make_leaf(8));
  auto level2 = dl::make_vector(64, 1, level1->extent + 128, level1);
  auto level3 = dl::make_vector(128, 1, level2->extent + 512, level2);
  const std::int64_t total = 4 * level3->size;
  std::int64_t target = 0;
  dl::Cursor cursor(level3, 0, 4);
  for (auto _ : state) {
    cursor.seek(target);
    benchmark::DoNotOptimize(cursor.position());
    target = (target + total / 7 + 13) % total;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CursorSeek);

// Pruned vs full expansion of the tile-reader row pattern (768 rows of
// 3072 bytes, stride 7596) striped over 16 servers / 64 KiB strips, from
// server 0's point of view. Full expansion walks every row; pruned
// expansion probes each row's span against the stripe map and only emits
// the rows that land on this server. Counters report pieces walked and
// subtrees skipped per iteration.
void BM_ExpandFull(benchmark::State& state) {
  auto loop = dl::make_vector(768, 3072, 7596, dl::make_leaf(1));
  std::int64_t pieces = 0;
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 16);
    auto r = cursor.process(kUnlimited, kUnlimited,
                            [](std::int64_t, std::int64_t) {});
    pieces = r.regions;
    benchmark::DoNotOptimize(pieces);
  }
  state.counters["pieces_walked"] = static_cast<double>(pieces);
  state.SetItemsProcessed(state.iterations() * pieces);
}
BENCHMARK(BM_ExpandFull);

void BM_ExpandPruned(benchmark::State& state) {
  auto loop = dl::make_vector(768, 3072, 7596, dl::make_leaf(1));
  const pfs::FileLayout layout(16, 64 * 1024);
  struct Ctx {
    const pfs::FileLayout* layout;
    int server;
  } ctx{&layout, 0};
  std::int64_t pieces = 0;
  std::int64_t skipped = 0;
  for (auto _ : state) {
    dl::Cursor cursor(loop, 0, 16);
    cursor.set_filter(
        [](const void* c, std::int64_t lo, std::int64_t hi) {
          const auto* x = static_cast<const Ctx*>(c);
          return x->layout->intersects_server(Region{lo, hi - lo}, x->server);
        },
        &ctx);
    auto r = cursor.process(kUnlimited, kUnlimited,
                            [](std::int64_t, std::int64_t) {});
    pieces = r.regions;
    skipped = cursor.subtrees_skipped();
    benchmark::DoNotOptimize(pieces);
  }
  state.counters["pieces_walked"] = static_cast<double>(pieces);
  state.counters["subtrees_skipped"] = static_cast<double>(skipped);
  state.SetItemsProcessed(state.iterations() * (pieces + skipped));
}
BENCHMARK(BM_ExpandPruned);

void BM_EncodeDecodeDataloop(benchmark::State& state) {
  workloads::FlashConfig cfg;
  const auto& loop = cfg.filetype(64).dataloop();
  for (auto _ : state) {
    std::vector<std::uint8_t> wire;
    dl::encode(*loop, wire);
    auto back = dl::decode(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_EncodeDecodeDataloop);

void BM_WireSizeDataloopVsList(benchmark::State& state) {
  // The paper's §4.2 comparison: the tile access as a dataloop vs as an
  // offset-length list (768 x 16 bytes). Reported as custom counters.
  const std::int64_t rows = state.range(0);
  auto loop = dl::make_vector(rows, 3072, 7596, dl::make_leaf(1));
  std::vector<std::uint8_t> wire;
  for (auto _ : state) {
    wire.clear();
    dl::encode(*loop, wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.counters["dataloop_bytes"] =
      static_cast<double>(dl::encoded_size(*loop));
  state.counters["list_bytes"] = static_cast<double>(rows * 16);
}
BENCHMARK(BM_WireSizeDataloopVsList)->Arg(768);

void BM_TypeToDataloopConversion(benchmark::State& state) {
  // MPI type -> dataloop via envelope/contents, per I/O op (§3.2).
  workloads::FlashConfig cfg;
  for (auto _ : state) {
    auto memtype = cfg.memtype();  // fresh nodes: no cached loop
    benchmark::DoNotOptimize(memtype.dataloop());
  }
}
BENCHMARK(BM_TypeToDataloopConversion);

}  // namespace
}  // namespace dtio

// Custom main instead of BENCHMARK_MAIN(): default to writing the JSON
// results to BENCH_dataloop_micro.json (pass --benchmark_out=... to
// override), matching the machine-readable reports of the figure benches.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_dataloop_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
