// Reproduces the paper's FLASH I/O checkpoint experiment:
//   Figure 12 — aggregate write bandwidth versus client count (2..128)
//               for POSIX, two-phase, list and datatype I/O;
//   Table 3  — per-client I/O characteristics (983 040 POSIX ops, 15 360
//               list ops, 2 two-phase ops, 1 datatype op; 7.5 MB desired).
//
// Both memory and file are noncontiguous at 8-byte granularity — the
// paper's stress case for client-side processing. Datatype and list I/O
// underperform two-phase at small client counts (clients cannot feed the
// servers); datatype overtakes as clients multiply (paper: ~37% over
// two-phase at 96 procs).
//
// Flags: --max-clients=N   (default 64; 128 matches the paper's sweep)
//        --with-posix      include POSIX beyond 2 clients (very slow:
//                          983 040 requests per client)
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "collective/comm.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "workloads/flash.h"

namespace dtio {
namespace {

using bench::MethodResult;
using mpiio::Method;
using sim::Task;

/// Aggregate write-behind counters across all clients of one run.
struct WbTotals {
  double flushes = 0;
  double batches = 0;
  double coalesced = 0;
  double staged_ops = 0;
};

MethodResult run_flash(Method method, const workloads::FlashConfig& flash,
                       int nclients, bool use_obs, bool utilization = false,
                       std::int64_t write_behind = 0, WbTotals* wb = nullptr) {
  net::ClusterConfig cfg;
  cfg.num_clients = nclients;
  cfg.client.write_behind_bytes = write_behind;

  pfs::Cluster cluster(cfg);
  obs::Observability obs(1 << 16);
  if (use_obs) cluster.set_observability(&obs);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), nclients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < nclients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }

  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/checkpoint", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  for (int r = 0; r < nclients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::FlashConfig& fl, int rank, int n,
           Method m) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/checkpoint", false);
          f.set_view(fl.displacement(rank), types::byte_t(), fl.filetype(n));
          auto memtype = fl.memtype();
          (void)co_await f.write_at_all(c, rank, 0, nullptr, 1, memtype, m);
        }(*files[r], comm, flash, r, nclients, method));
  }
  cluster.run();

  MethodResult result;
  result.method = method;
  result.seconds = to_seconds(cluster.scheduler().now() - t0);
  result.bandwidth =
      static_cast<double>(flash.bytes_per_proc()) * nclients / result.seconds;
  result.per_client = clients[0]->stats();
  result.events = cluster.scheduler().events_processed();
  if (wb != nullptr) {
    for (const auto& client : clients) {
      wb->flushes += static_cast<double>(client->wb_flushes());
      wb->batches += static_cast<double>(client->wb_batches());
      wb->coalesced += static_cast<double>(client->wb_coalesced_ops());
      wb->staged_ops += static_cast<double>(client->wb_staged_ops());
    }
  }
  if (use_obs) bench::capture_latency(result, obs);
  if (utilization) {
    std::printf("%s", cluster.utilization_report(t0).c_str());
  }
  return result;
}

int flash_main(int argc, char** argv) {
  const workloads::FlashConfig flash;
  const int max_clients =
      static_cast<int>(bench::flag_int(argc, argv, "--max-clients", 64));
  const bool with_posix = bench::flag_set(argc, argv, "--with-posix");
  const bool utilization = bench::flag_set(argc, argv, "--utilization");
  const bool use_obs = bench::obs_enabled(argc, argv);
  const bool csv = bench::flag_set(argc, argv, "--csv");
  if (csv) std::printf("csv,clients,method,agg_mbps,sim_sec\n");

  obs::RunReport report;
  report.bench = "flash_io";
  report.params["max_clients"] = max_clients;
  report.params["bytes_per_proc"] =
      static_cast<double>(flash.bytes_per_proc());

  std::printf("FLASH I/O: %d blocks/proc, %d^3 interior cells (+%d guards), "
              "%d vars, %.2f MB/proc, 16 I/O servers\n",
              flash.blocks_per_proc, flash.interior, flash.guard,
              flash.num_vars,
              bench::to_mb(static_cast<double>(flash.bytes_per_proc())));

  std::printf("\n== Figure 12: FLASH checkpoint write bandwidth ==\n");
  std::printf("  %-8s %-18s %12s %12s\n", "clients", "method", "agg MB/s",
              "sim sec");
  std::vector<MethodResult> table_rows;
  for (int n = 2; n <= max_clients; n *= 2) {
    const Method methods[] = {Method::kPosix, Method::kTwoPhase,
                              Method::kList, Method::kDatatype};
    for (const Method m : methods) {
      // POSIX issues 983 040 requests per client; the paper calls the
      // result "nearly unusable" — run it only where tractable.
      if (m == Method::kPosix && n > 2 && !with_posix) continue;
      MethodResult r = run_flash(m, flash, n, use_obs, utilization);
      char tag[32];
      std::snprintf(tag, sizeof tag, "%d/", n);
      report.methods.push_back(bench::to_report(r, tag));
      std::printf("  %-8d %-18s %12.2f %12.2f\n", n,
                  std::string(mpiio::method_name(m)).c_str(),
                  bench::to_mb(r.bandwidth), r.seconds);
      if (csv) {
        std::printf("csv,%d,%s,%.3f,%.3f\n", n,
                    std::string(mpiio::method_name(m)).c_str(),
                    bench::to_mb(r.bandwidth), r.seconds);
      }
      if (n == 2) table_rows.push_back(r);
    }
  }

  bench::print_table_header(
      "Table 3: I/O characteristics per client (at 2 clients)");
  for (const auto& r : table_rows) bench::print_table_row(r);
  std::printf("  paper: POSIX 983 040 ops; two-phase 2 ops, resent "
              "7.5*(n-1)/n MB; list 15 360 ops; datatype 1 op\n");
  std::printf("  paper shape: two-phase leads at small n; datatype "
              "overtakes (~37%% faster by 96 procs); list never catches "
              "two-phase\n");

  // Write-behind ablation (--write-behind): list I/O at 16 clients with the
  // client staging layer off vs on. Off ships one list RPC per envelope of
  // pieces; on absorbs every piece into per-server staging buffers and
  // drains each as a single kBatchWrite envelope at the collective's
  // closing flush, paying request overhead once per server instead of once
  // per list RPC.
  if (bench::flag_set(argc, argv, "--write-behind")) {
    const int wb_clients = 16;
    const std::int64_t wb_bytes = std::int64_t{4} << 20;
    std::printf("\n== Write-behind ablation: list I/O at %d clients ==\n",
                wb_clients);
    MethodResult off = run_flash(Method::kList, flash, wb_clients, false);
    WbTotals totals;
    MethodResult on = run_flash(Method::kList, flash, wb_clients, false,
                                false, wb_bytes, &totals);
    const double ratio = on.bandwidth / off.bandwidth;
    std::printf("  off: %10.2f MB/s  (%.3f sim s)\n",
                bench::to_mb(off.bandwidth), off.seconds);
    std::printf("  on:  %10.2f MB/s  (%.3f sim s)  %.1fx\n",
                bench::to_mb(on.bandwidth), on.seconds, ratio);
    std::printf("       %.0f staged ops -> %.0f batch RPCs over %.0f "
                "flushes (%.0f runs coalesced)\n",
                totals.staged_ops, totals.batches, totals.flushes,
                totals.coalesced);
    report.scalars["wb_off_mbps"] = bench::to_mb(off.bandwidth);
    report.scalars["wb_on_mbps"] = bench::to_mb(on.bandwidth);
    report.scalars["wb_ratio"] = ratio;
    report.scalars["wb_off_sim_seconds"] = off.seconds;
    report.scalars["wb_on_sim_seconds"] = on.seconds;
    report.scalars["wb_flushes"] = totals.flushes;
    report.scalars["wb_batches"] = totals.batches;
    report.scalars["wb_coalesced_ops"] = totals.coalesced;
    report.scalars["wb_staged_ops"] = totals.staged_ops;
  }

  bench::write_report(report, argc, argv, "BENCH_flash_io.json");
  return 0;
}

}  // namespace
}  // namespace dtio

int main(int argc, char** argv) { return dtio::flash_main(argc, argv); }
