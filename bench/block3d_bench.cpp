// Reproduces the paper's ROMIO three-dimensional block experiment:
//   Figure 10 — read and write bandwidth of a 600^3-int block-decomposed
//               array at 8, 27 and 64 processes, five access methods;
//   Table 2  — per-client I/O characteristics at each process count.
//
// Memory is contiguous; the file side is each rank's 3-D subarray. Data
// sieving writes are unsupported on PVFS (no locking), as in the paper.
//
// Flags: --dim=N (default 600; the paper's size), --skip-posix
//        (POSIX at 600^3 issues 90 000+ ops per client and dominates the
//        bench's wall time; it is on by default because the paper ran it)
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "collective/comm.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "workloads/block3d.h"

namespace dtio {
namespace {

using bench::MethodResult;
using mpiio::Method;
using sim::Task;

MethodResult run_block3d(Method method, const workloads::Block3dConfig& block,
                         bool is_write, bool use_obs) {
  net::ClusterConfig cfg;
  cfg.num_clients = block.num_clients();

  pfs::Cluster cluster(cfg);
  obs::Observability obs(1 << 16);
  if (use_obs) cluster.set_observability(&obs);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), cfg.num_clients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }

  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/block3d", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  int unsupported = 0;
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::Block3dConfig& b, int rank, Method m, bool write,
           int& unsup) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/block3d", false);
          f.set_view(0, types::byte_t(), b.block_filetype(rank));
          auto memtype = b.memtype();
          Status s;
          if (write) {
            s = co_await f.write_at_all(c, rank, 0, nullptr, 1, memtype, m);
          } else {
            s = co_await f.read_at_all(c, rank, 0, nullptr, 1, memtype, m);
          }
          if (s.code() == StatusCode::kUnsupported) ++unsup;
        }(*files[r], comm, block, r, method, is_write, unsupported));
  }
  cluster.run();

  MethodResult result;
  result.method = method;
  if (unsupported > 0) {
    result.supported = false;
    return result;
  }
  result.seconds = to_seconds(cluster.scheduler().now() - t0);
  result.bandwidth = static_cast<double>(block.block_bytes()) *
                     block.num_clients() / result.seconds;
  result.per_client = clients[0]->stats();
  result.events = cluster.scheduler().events_processed();
  if (use_obs) bench::capture_latency(result, obs);
  return result;
}

int block3d_main(int argc, char** argv) {
  const std::int64_t dim = bench::flag_int(argc, argv, "--dim", 600);
  const bool skip_posix = bench::flag_set(argc, argv, "--skip-posix");
  const bool use_obs = bench::obs_enabled(argc, argv);
  const bool csv = bench::flag_set(argc, argv, "--csv");
  if (csv) std::printf("csv,rw,clients,method,agg_mbps,sim_sec\n");

  obs::RunReport report;
  report.bench = "block3d";
  report.params["dim"] = static_cast<double>(dim);

  const Method methods[] = {Method::kPosix, Method::kDataSieving,
                            Method::kTwoPhase, Method::kList,
                            Method::kDatatype};

  for (const bool is_write : {false, true}) {
    std::printf("\n#### 3-D block %s, %lld^3 ints, 16 I/O servers ####\n",
                is_write ? "WRITE" : "READ", static_cast<long long>(dim));
    for (const int m : {2, 3, 4}) {
      workloads::Block3dConfig block{.dim = dim, .blocks_per_edge = m};
      char title[128];
      std::snprintf(title, sizeof title,
                    "Figure 10 (%s, %d clients): bandwidth",
                    is_write ? "write" : "read", block.num_clients());
      bench::print_figure_header(title);
      char tag[32];
      std::snprintf(tag, sizeof tag, "%s/%d/", is_write ? "write" : "read",
                    block.num_clients());
      std::vector<MethodResult> results;
      for (const Method method : methods) {
        if (method == Method::kPosix && skip_posix) continue;
        if (method == Method::kDataSieving && is_write) {
          MethodResult r;
          r.method = method;
          r.supported = false;  // PVFS: no locks, no sieving writes
          results.push_back(r);
          report.methods.push_back(bench::to_report(r, tag));
          bench::print_figure_row(r);
          continue;
        }
        results.push_back(run_block3d(method, block, is_write, use_obs));
        report.methods.push_back(bench::to_report(results.back(), tag));
        bench::print_figure_row(results.back());
        if (csv) {
          std::printf("csv,%s,%d,%s,%.3f,%.3f\n",
                      is_write ? "write" : "read", block.num_clients(),
                      std::string(mpiio::method_name(method)).c_str(),
                      bench::to_mb(results.back().bandwidth),
                      results.back().seconds);
        }
      }
      char ttitle[128];
      std::snprintf(ttitle, sizeof ttitle,
                    "Table 2 (%d clients): I/O characteristics per client",
                    block.num_clients());
      bench::print_table_header(ttitle);
      for (const auto& r : results) bench::print_table_row(r);
    }
  }
  std::printf("\npaper shape: datatype I/O peak more than double the next "
              "best; read datatype dips as clients grow (server-side list "
              "processing); sieving reads ~4x the desired data\n");
  bench::write_report(report, argc, argv, "BENCH_block3d.json");
  return 0;
}

}  // namespace
}  // namespace dtio

int main(int argc, char** argv) { return dtio::block3d_main(argc, argv); }
