// Reproduces the paper's tile-reader experiment:
//   Figure 8 — aggregate read bandwidth of the five access methods for a
//              3x2 display wall playing back 100 frames of 10.2 MB;
//   Table 1  — per-client I/O characteristics (desired, accessed, op
//              count, resent data).
//
// Configuration mirrors §4.1/§4.2: 16 I/O servers, 64 KiB strips, 6
// clients (one process per node), 4 MiB sieve/collective buffers.
//
// Flags: --frames=N (default 100), --clients-per... (fixed 6 by geometry),
// --chaos (fault-injection ablation; off by default so the report JSON is
// byte-identical to a chaos-free build).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "collective/comm.h"
#include "common/rng.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "net/fault.h"
#include "pfs/cluster.h"
#include "workloads/tile.h"

namespace dtio {
namespace {

using bench::MethodResult;
using mpiio::Method;
using sim::Task;

/// Server-side counters summed over the fleet (pruned-expansion ablation).
struct ServerAgg {
  std::uint64_t regions_walked = 0;
  std::uint64_t my_pieces = 0;
  std::uint64_t subtrees_skipped = 0;
  std::uint64_t pieces_pruned = 0;
};

MethodResult run_tile(Method method, const workloads::TileConfig& tile,
                      int frames, bool use_obs,
                      const std::string& trace_path,
                      bool pruned_expansion = true,
                      ServerAgg* agg = nullptr) {
  net::ClusterConfig cfg;  // paper defaults: 16 servers, 64 KiB strips
  cfg.num_clients = tile.num_clients();
  cfg.server.pruned_expansion = pruned_expansion;

  pfs::Cluster cluster(cfg);
  obs::Observability obs(1 << 18);
  if (use_obs) cluster.set_observability(&obs);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), cfg.num_clients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);  // timing-only at this scale
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }

  // Create the frame file (contents are irrelevant for read timing).
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/frames", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  int failures = 0;
  int unsupported = 0;
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::TileConfig& t, int rank, int nframes, Method m,
           int& fail, int& unsup) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/frames", false);
          f.set_view(0, types::byte_t(), t.tile_filetype(rank));
          auto memtype = t.memtype();
          for (int frame = 0; frame < nframes; ++frame) {
            Status s = co_await f.read_at_all(
                c, rank, static_cast<std::int64_t>(frame) * t.tile_bytes(),
                nullptr, 1, memtype, m);
            if (s.code() == StatusCode::kUnsupported) {
              ++unsup;
              co_return;
            }
            if (!s.is_ok()) {
              ++fail;
              co_return;
            }
          }
        }(*files[r], comm, tile, r, frames, method, failures, unsupported));
  }
  cluster.run();

  MethodResult result;
  result.method = method;
  if (unsupported > 0) {
    result.supported = false;
    return result;
  }
  result.seconds = to_seconds(cluster.scheduler().now() - t0);
  const double desired_total = static_cast<double>(tile.tile_bytes()) *
                               tile.num_clients() * frames;
  result.bandwidth = desired_total / result.seconds;
  result.per_client = clients[0]->stats();
  // Per-frame characteristics for Table 1.
  result.per_client.desired_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.accessed_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.io_ops /= static_cast<std::uint64_t>(frames);
  result.per_client.resent_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.request_bytes /= static_cast<std::uint64_t>(frames);
  result.events = cluster.scheduler().events_processed();
  if (agg != nullptr) {
    for (int s = 0; s < cfg.num_servers; ++s) {
      const pfs::ServerStats& st = cluster.server(s).stats();
      agg->regions_walked += st.regions_walked;
      agg->my_pieces += st.my_pieces;
      agg->subtrees_skipped += st.subtrees_skipped;
      agg->pieces_pruned += st.pieces_pruned;
    }
  }
  if (use_obs) {
    bench::capture_latency(result, obs);
    cluster.record_utilization_gauges();
    if (!trace_path.empty() && cluster.write_trace(trace_path)) {
      std::printf("chrome trace (%s run): %s\n",
                  std::string(mpiio::method_name(method)).c_str(),
                  trace_path.c_str());
    }
  }
  return result;
}

/// One chaos-ablation run (--chaos): independent datatype-I/O tile reads
/// under the reliability layer. Independent (not collective) reads keep a
/// client that exhausts its retries from wedging everyone else's barrier,
/// so the retries-off arm can count failures instead of deadlocking.
struct ChaosRun {
  double seconds = 0;
  int failures = 0;
  std::uint64_t client_retries = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t replays = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t crashes = 0;
  net::FaultCounters faults;
};

ChaosRun run_tile_chaos(const workloads::TileConfig& tile, int frames,
                        bool with_faults, int max_attempts) {
  net::ClusterConfig cfg;  // paper defaults: 16 servers, 64 KiB strips
  cfg.num_clients = tile.num_clients();
  // Reliability layer armed in every arm (including fault-free, so the
  // slowdown ratio isolates the faults, not the retry machinery).
  cfg.client.rpc_timeout = 200 * kMillisecond;
  cfg.client.rpc_max_attempts = max_attempts;
  cfg.client.rpc_backoff_base = 10 * kMillisecond;

  pfs::Cluster cluster(cfg);
  // Fixed plan: 5% drop + 2% duplicate + 1% corrupt on client<->server
  // links, plus one mid-run crash of server 3 (caches come back cold).
  net::FaultPlan plan(mix_seed(cluster.config().seed, 0xC4A05));
  if (with_faults) {
    net::FaultSpec spec;
    spec.drop = 0.05;
    spec.duplicate = 0.02;
    spec.corrupt = 0.01;
    plan.set_default_spec(spec);
    plan.set_scope_max_node(cluster.config().num_servers);
    cluster.set_fault_plan(&plan);
  }

  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);  // timing-only at this scale
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/frames", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  if (with_faults) {
    cluster.schedule_server_crash(3, t0 + 2 * kMillisecond,
                                  40 * kMillisecond);
  }
  ChaosRun out;
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, const workloads::TileConfig& t, int rank,
           int nframes, int& fail) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/frames", false);
          f.set_view(0, types::byte_t(), t.tile_filetype(rank));
          auto memtype = t.memtype();
          for (int frame = 0; frame < nframes; ++frame) {
            Status s = co_await f.read_at(
                static_cast<std::int64_t>(frame) * t.tile_bytes(), nullptr, 1,
                memtype, Method::kDatatype);
            if (!s.is_ok()) ++fail;
          }
        }(*files[r], tile, r, frames, out.failures));
  }
  cluster.run();

  out.seconds = to_seconds(cluster.scheduler().now() - t0);
  for (const auto& c : clients) {
    out.client_retries += c->rpc_retries();
    out.client_timeouts += c->rpc_timeouts();
  }
  for (int s = 0; s < cfg.num_servers; ++s) {
    const pfs::ServerStats& st = cluster.server(s).stats();
    out.replays += st.replays_suppressed;
    out.crc_rejects += st.crc_rejects;
    out.crashes += st.crashes;
  }
  out.faults = plan.counters();
  return out;
}

int tile_main(int argc, char** argv) {
  const workloads::TileConfig tile;
  const int frames =
      static_cast<int>(bench::flag_int(argc, argv, "--frames", 100));
  const bool use_obs = bench::obs_enabled(argc, argv);
  // --trace=PATH exports the datatype-I/O run as a Chrome trace-event
  // file (the paper's contribution is the most interesting timeline).
  const std::string trace_path = bench::flag_str(argc, argv, "--trace", "");

  std::printf("tile reader: %dx%d tiles of %dx%d px, frame %.1f MB, "
              "%d frames, %d clients, 16 I/O servers\n",
              tile.tiles_x, tile.tiles_y, tile.tile_width, tile.tile_height,
              bench::to_mb(static_cast<double>(tile.frame_bytes())), frames,
              tile.num_clients());

  const Method methods[] = {Method::kPosix, Method::kDataSieving,
                            Method::kTwoPhase, Method::kList,
                            Method::kDatatype};
  std::vector<MethodResult> results;
  for (const Method m : methods) {
    results.push_back(run_tile(m, tile, frames, use_obs,
                               m == Method::kDatatype ? trace_path : ""));
  }

  bench::print_figure_header(
      "Figure 8: tile reader aggregate read bandwidth");
  for (const auto& r : results) bench::print_figure_row(r);
  std::printf("  paper shape: datatype > two-phase > list >> sieving > "
              "POSIX; datatype ~37%% over list\n");

  if (bench::flag_set(argc, argv, "--csv")) {
    std::printf("\ncsv,method,agg_mbps,sim_sec\n");
    for (const auto& r : results) {
      if (!r.supported) continue;
      std::printf("csv,%s,%.3f,%.3f\n",
                  std::string(mpiio::method_name(r.method)).c_str(),
                  bench::to_mb(r.bandwidth), r.seconds);
    }
  }

  bench::print_table_header(
      "Table 1: I/O characteristics per client per frame");
  for (const auto& r : results) bench::print_table_row(r);
  std::printf("  paper: POSIX 768 ops; sieving 5.56 MB accessed; two-phase "
              "1 op, 1.50 MB resent; list 12 ops; datatype 1 op\n");

  // Pruned-expansion ablation at the paper configuration (16 servers,
  // 64 KiB strips): the same datatype run with server-side subtree pruning
  // on (default) and off (legacy full expansion). Fleet-aggregate
  // regions_walked is the cost the pruning removes: with the flag off
  // every server walks every piece of the access.
  ServerAgg pruned_on;
  ServerAgg pruned_off;
  const MethodResult on_result =
      run_tile(Method::kDatatype, tile, frames, false, "", true, &pruned_on);
  const MethodResult off_result =
      run_tile(Method::kDatatype, tile, frames, false, "", false, &pruned_off);
  const double walk_ratio =
      pruned_on.regions_walked == 0
          ? 0.0
          : static_cast<double>(pruned_off.regions_walked) /
                static_cast<double>(pruned_on.regions_walked);
  std::printf("\nablation: server.pruned_expansion (datatype method)\n");
  std::printf("  on : regions_walked=%llu subtrees_skipped=%llu "
              "pieces_pruned=%llu sim=%.3fs\n",
              static_cast<unsigned long long>(pruned_on.regions_walked),
              static_cast<unsigned long long>(pruned_on.subtrees_skipped),
              static_cast<unsigned long long>(pruned_on.pieces_pruned),
              on_result.seconds);
  std::printf("  off: regions_walked=%llu sim=%.3fs  (walk ratio %.1fx)\n",
              static_cast<unsigned long long>(pruned_off.regions_walked),
              off_result.seconds, walk_ratio);

  obs::RunReport report;
  report.bench = "tile_reader";
  report.params["frames"] = frames;
  report.params["clients"] = tile.num_clients();
  report.params["frame_bytes"] = static_cast<double>(tile.frame_bytes());
  for (const auto& r : results) report.methods.push_back(bench::to_report(r));
  report.scalars["pruned_on_regions_walked"] =
      static_cast<double>(pruned_on.regions_walked);
  report.scalars["pruned_off_regions_walked"] =
      static_cast<double>(pruned_off.regions_walked);
  report.scalars["pruned_regions_walked_ratio"] = walk_ratio;
  report.scalars["pruned_on_my_pieces"] =
      static_cast<double>(pruned_on.my_pieces);
  report.scalars["pruned_on_subtrees_skipped"] =
      static_cast<double>(pruned_on.subtrees_skipped);
  report.scalars["pruned_on_pieces_pruned"] =
      static_cast<double>(pruned_on.pieces_pruned);
  report.scalars["pruned_on_sim_seconds"] = on_result.seconds;
  report.scalars["pruned_off_sim_seconds"] = off_result.seconds;

  // Fault-injection ablation (--chaos): datatype reads under 5% drop + 2%
  // duplicate + 1% corrupt + one server crash, with retries on vs off.
  // Gated so the default report stays byte-identical.
  if (bench::flag_set(argc, argv, "--chaos")) {
    const int reads_total = frames * tile.num_clients();
    const ChaosRun clean = run_tile_chaos(tile, frames, false, 6);
    const ChaosRun faulty = run_tile_chaos(tile, frames, true, 6);
    const ChaosRun noretry = run_tile_chaos(tile, frames, true, 1);
    const double slowdown =
        clean.seconds == 0 ? 0.0 : faulty.seconds / clean.seconds;
    std::printf("\nchaos ablation: datatype reads, %d frames x %d clients, "
                "5%% drop + 2%% dup + 1%% corrupt + server 3 crash\n",
                frames, tile.num_clients());
    std::printf("  fault-free : sim=%.3fs\n", clean.seconds);
    std::printf("  retries on : sim=%.3fs (%.2fx) failures=%d/%d "
                "retries=%llu timeouts=%llu replays=%llu crc_rejects=%llu "
                "crashes=%llu faults=%llu\n",
                faulty.seconds, slowdown, faulty.failures, reads_total,
                static_cast<unsigned long long>(faulty.client_retries),
                static_cast<unsigned long long>(faulty.client_timeouts),
                static_cast<unsigned long long>(faulty.replays),
                static_cast<unsigned long long>(faulty.crc_rejects),
                static_cast<unsigned long long>(faulty.crashes),
                static_cast<unsigned long long>(faulty.faults.total()));
    std::printf("  retries off: sim=%.3fs failures=%d/%d (every fault that "
                "hits a request is terminal)\n",
                noretry.seconds, noretry.failures, reads_total);
    report.scalars["chaos_clean_sim_seconds"] = clean.seconds;
    report.scalars["chaos_sim_seconds"] = faulty.seconds;
    report.scalars["chaos_slowdown"] = slowdown;
    report.scalars["chaos_failures"] = faulty.failures;
    report.scalars["chaos_retries"] =
        static_cast<double>(faulty.client_retries);
    report.scalars["chaos_timeouts"] =
        static_cast<double>(faulty.client_timeouts);
    report.scalars["chaos_replays"] = static_cast<double>(faulty.replays);
    report.scalars["chaos_crc_rejects"] =
        static_cast<double>(faulty.crc_rejects);
    report.scalars["chaos_crashes"] = static_cast<double>(faulty.crashes);
    report.scalars["chaos_faults_injected"] =
        static_cast<double>(faulty.faults.total());
    report.scalars["chaos_noretry_failures"] = noretry.failures;
  }

  bench::write_report(report, argc, argv, "BENCH_tile_reader.json");
  return 0;
}

}  // namespace
}  // namespace dtio

int main(int argc, char** argv) { return dtio::tile_main(argc, argv); }
