// Reproduces the paper's tile-reader experiment:
//   Figure 8 — aggregate read bandwidth of the five access methods for a
//              3x2 display wall playing back 100 frames of 10.2 MB;
//   Table 1  — per-client I/O characteristics (desired, accessed, op
//              count, resent data).
//
// Configuration mirrors §4.1/§4.2: 16 I/O servers, 64 KiB strips, 6
// clients (one process per node), 4 MiB sieve/collective buffers.
//
// Flags: --frames=N (default 100), --clients-per... (fixed 6 by geometry),
// --chaos (fault-injection ablation), --overload (degraded-server
// tail-latency ablation), --cache (server buffer-cache cold/warm
// ablation); all off by default so the report JSON is byte-identical to
// an ablation-free build.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "collective/comm.h"
#include "common/rng.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "net/fault.h"
#include "obs/phase.h"
#include "pfs/cluster.h"
#include "workloads/tile.h"

namespace dtio {
namespace {

using bench::MethodResult;
using mpiio::Method;
using sim::Task;

/// Server-side counters summed over the fleet (pruned-expansion ablation).
struct ServerAgg {
  std::uint64_t regions_walked = 0;
  std::uint64_t my_pieces = 0;
  std::uint64_t subtrees_skipped = 0;
  std::uint64_t pieces_pruned = 0;
};

MethodResult run_tile(Method method, const workloads::TileConfig& tile,
                      int frames, bool use_obs,
                      const std::string& trace_path,
                      bool pruned_expansion = true,
                      ServerAgg* agg = nullptr) {
  net::ClusterConfig cfg;  // paper defaults: 16 servers, 64 KiB strips
  cfg.num_clients = tile.num_clients();
  cfg.server.pruned_expansion = pruned_expansion;

  pfs::Cluster cluster(cfg);
  obs::Observability obs(1 << 18);
  if (use_obs) cluster.set_observability(&obs);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), cfg.num_clients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);  // timing-only at this scale
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }

  // Create the frame file (contents are irrelevant for read timing).
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/frames", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  int failures = 0;
  int unsupported = 0;
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::TileConfig& t, int rank, int nframes, Method m,
           int& fail, int& unsup) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/frames", false);
          f.set_view(0, types::byte_t(), t.tile_filetype(rank));
          auto memtype = t.memtype();
          for (int frame = 0; frame < nframes; ++frame) {
            Status s = co_await f.read_at_all(
                c, rank, static_cast<std::int64_t>(frame) * t.tile_bytes(),
                nullptr, 1, memtype, m);
            if (s.code() == StatusCode::kUnsupported) {
              ++unsup;
              co_return;
            }
            if (!s.is_ok()) {
              ++fail;
              co_return;
            }
          }
        }(*files[r], comm, tile, r, frames, method, failures, unsupported));
  }
  cluster.run();

  MethodResult result;
  result.method = method;
  if (unsupported > 0) {
    result.supported = false;
    return result;
  }
  result.seconds = to_seconds(cluster.scheduler().now() - t0);
  const double desired_total = static_cast<double>(tile.tile_bytes()) *
                               tile.num_clients() * frames;
  result.bandwidth = desired_total / result.seconds;
  result.per_client = clients[0]->stats();
  // Per-frame characteristics for Table 1.
  result.per_client.desired_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.accessed_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.io_ops /= static_cast<std::uint64_t>(frames);
  result.per_client.resent_bytes /= static_cast<std::uint64_t>(frames);
  result.per_client.request_bytes /= static_cast<std::uint64_t>(frames);
  result.events = cluster.scheduler().events_processed();
  if (agg != nullptr) {
    for (int s = 0; s < cfg.num_servers; ++s) {
      const pfs::ServerStats& st = cluster.server(s).stats();
      agg->regions_walked += st.regions_walked;
      agg->my_pieces += st.my_pieces;
      agg->subtrees_skipped += st.subtrees_skipped;
      agg->pieces_pruned += st.pieces_pruned;
    }
  }
  if (use_obs) {
    bench::capture_latency(result, obs);
    cluster.record_utilization_gauges();
    if (!trace_path.empty() && cluster.write_trace(trace_path)) {
      std::printf("chrome trace (%s run): %s\n",
                  std::string(mpiio::method_name(method)).c_str(),
                  trace_path.c_str());
    }
  }
  return result;
}

/// One chaos-ablation run (--chaos): independent datatype-I/O tile reads
/// under the reliability layer. Independent (not collective) reads keep a
/// client that exhausts its retries from wedging everyone else's barrier,
/// so the retries-off arm can count failures instead of deadlocking.
struct ChaosRun {
  double seconds = 0;
  int failures = 0;
  std::uint64_t client_retries = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t replays = 0;
  std::uint64_t crc_rejects = 0;
  std::uint64_t crashes = 0;
  std::uint64_t sheds = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  net::FaultCounters faults;
};

ChaosRun run_tile_chaos(const workloads::TileConfig& tile, int frames,
                        bool with_faults, int max_attempts) {
  net::ClusterConfig cfg;  // paper defaults: 16 servers, 64 KiB strips
  cfg.num_clients = tile.num_clients();
  // Reliability layer armed in every arm (including fault-free, so the
  // slowdown ratio isolates the faults, not the retry machinery).
  cfg.client.rpc_timeout = 200 * kMillisecond;
  cfg.client.rpc_max_attempts = max_attempts;
  cfg.client.rpc_backoff_base = 10 * kMillisecond;
  // Overload layer armed too: hedged reads rescue dropped replies without
  // burning the 200 ms timeout, and the admission bound sheds the
  // synchronized retry burst that follows the crash restart. The bound is
  // above the steady-state burst depth (6 clients), so only retry pileups
  // trip it.
  cfg.client.hedge_quantile = 95;
  cfg.client.hedge_min_samples = 16;
  cfg.server.max_queue_depth = 8;

  pfs::Cluster cluster(cfg);
  // Fixed plan: 5% drop + 2% duplicate + 1% corrupt on client<->server
  // links, plus one mid-run crash of server 3 (caches come back cold).
  net::FaultPlan plan(mix_seed(cluster.config().seed, 0xC4A05));
  if (with_faults) {
    net::FaultSpec spec;
    spec.drop = 0.05;
    spec.duplicate = 0.02;
    spec.corrupt = 0.01;
    plan.set_default_spec(spec);
    plan.set_scope_max_node(cluster.config().num_servers);
    cluster.set_fault_plan(&plan);
  }

  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);  // timing-only at this scale
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/frames", true);
  }(*files[0]));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  if (with_faults) {
    cluster.schedule_server_crash(3, t0 + 2 * kMillisecond,
                                  40 * kMillisecond);
  }
  ChaosRun out;
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, const workloads::TileConfig& t, int rank,
           int nframes, int& fail) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/frames", false);
          f.set_view(0, types::byte_t(), t.tile_filetype(rank));
          auto memtype = t.memtype();
          for (int frame = 0; frame < nframes; ++frame) {
            Status s = co_await f.read_at(
                static_cast<std::int64_t>(frame) * t.tile_bytes(), nullptr, 1,
                memtype, Method::kDatatype);
            if (!s.is_ok()) ++fail;
          }
        }(*files[r], tile, r, frames, out.failures));
  }
  cluster.run();

  out.seconds = to_seconds(cluster.scheduler().now() - t0);
  for (const auto& c : clients) {
    out.client_retries += c->rpc_retries();
    out.client_timeouts += c->rpc_timeouts();
    out.hedges_issued += c->hedges_issued();
    out.hedges_won += c->hedges_won();
  }
  for (int s = 0; s < cfg.num_servers; ++s) {
    const pfs::ServerStats& st = cluster.server(s).stats();
    out.replays += st.replays_suppressed;
    out.crc_rejects += st.crc_rejects;
    out.crashes += st.crashes;
    out.sheds += st.sheds_depth + st.sheds_bytes;
  }
  out.faults = plan.counters();
  return out;
}

/// One arm of the --overload ablation: a single client doing open-loop
/// paced 16 KiB reads of a 2-server striped file while server 1 runs 4x
/// degraded for 150 ms. Reads are spawned at absolute times so a slow op
/// cannot shield the ops behind it from the window. Mirrors the
/// deterministic acceptance scenario in tests/overload_test.cpp.
struct OverloadArm {
  std::vector<SimTime> latencies;
  int failures = 0;
  std::uint64_t hedges_issued = 0;
  std::uint64_t hedges_won = 0;
  std::uint64_t timeouts = 0;
};

OverloadArm run_overload_arm(bool hedging_on) {
  constexpr int kWarmupReads = 20;
  constexpr int kMeasuredReads = 100;
  constexpr SimTime kPace = 25 * kMillisecond;
  constexpr SimTime kWindow = 150 * kMillisecond;
  constexpr std::size_t kReadBytes = 16384;  // 8 KiB per server

  net::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 1;
  cfg.strip_size = 8192;
  cfg.client.rpc_timeout = 5 * kMillisecond;
  cfg.client.rpc_max_attempts = 10;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  // Bounded queues in both arms; sized above the single-client backlog so
  // admission control is armed but the ablation isolates hedging.
  cfg.server.max_queue_depth = 16;
  if (hedging_on) {
    cfg.client.hedge_quantile = 95;
    cfg.client.hedge_min_samples = 8;
    cfg.client.breaker_failures = 6;
    cfg.client.flow_window = 8;
  }
  pfs::Cluster cluster(cfg);
  // Degraded windows are deterministic (no RNG draws), so both arms see
  // the identical straggler regardless of seed.
  net::FaultPlan plan(mix_seed(cluster.config().seed, 0x0F7A11));
  cluster.set_fault_plan(&plan);
  auto client = cluster.make_client(0);

  OverloadArm out;
  out.latencies.assign(kMeasuredReads, 0);

  // Phase 1: create, write, healthy warmup (arms the hedge quantile).
  std::uint64_t handle = 0;
  cluster.scheduler().spawn(
      [](pfs::Client& c, std::uint64_t& h, int& fail) -> Task<void> {
        pfs::MetaResult f = co_await c.create("/overload");
        if (!f.status.is_ok()) {
          ++fail;
          co_return;
        }
        h = f.handle;
        std::vector<std::uint8_t> buf(kReadBytes, 0x5A);
        Status w = co_await c.write_contig(
            h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
        if (!w.is_ok()) ++fail;
        for (int i = 0; i < kWarmupReads; ++i) {
          Status r = co_await c.read_contig(
              h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
          if (!r.is_ok()) ++fail;
        }
      }(*client, handle, out.failures));
  cluster.run();

  // Phase 2: server 1 degrades 4x for kWindow under paced reads.
  const SimTime t0 = cluster.scheduler().now() + 2 * kMillisecond;
  plan.add_degraded(/*node=*/1, t0, t0 + kWindow, 4.0);
  for (int i = 0; i < kMeasuredReads; ++i) {
    cluster.scheduler().spawn(
        [](sim::Scheduler& sched, pfs::Client& c, std::uint64_t h,
           SimTime due, int slot, OverloadArm& out) -> Task<void> {
          co_await sched.delay(due - sched.now());
          std::vector<std::uint8_t> buf(kReadBytes);
          const SimTime start = sched.now();
          Status r = co_await c.read_contig(
              h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
          out.latencies[static_cast<std::size_t>(slot)] = sched.now() - start;
          if (!r.is_ok()) ++out.failures;
        }(cluster.scheduler(), *client, handle, t0 + i * kPace, i, out));
  }
  cluster.run();

  out.hedges_issued = client->hedges_issued();
  out.hedges_won = client->hedges_won();
  out.timeouts = client->rpc_timeouts();
  return out;
}

/// One arm of the --cache ablation: datatype tile reads over the same
/// file twice. The populate pass writes the frames through the tile view
/// (giving the bstreams real extents so readahead has an EOF to clamp
/// against), every cache is flushed and dropped via a fleet-wide crash,
/// then a cold pass and a warm pass read identical data. With the cache
/// on the warm pass should be served almost entirely from memory.
struct CacheArm {
  double cold_seconds = 0;
  double warm_seconds = 0;
  std::uint64_t cold_disk = 0;
  std::uint64_t warm_disk = 0;
  int failures = 0;
  pfs::ServerStats totals;  // fleet-summed cache counters
};

CacheArm run_tile_cache(const workloads::TileConfig& tile, int frames,
                        bool cache_on) {
  net::ClusterConfig cfg;  // paper defaults: 16 servers, 64 KiB strips
  cfg.num_clients = tile.num_clients();
  if (cache_on) {
    cfg.server.cache_block_bytes = 64 * 1024;  // one strip per block
    cfg.server.cache_capacity_bytes = 256ull << 20;  // holds the dataset
  }
  pfs::Cluster cluster(cfg);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);  // timing-only at this scale
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  CacheArm out;
  // Populate: open everywhere, then write every frame through the view.
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, const workloads::TileConfig& t, int rank,
           int nframes, int& fail) -> Task<void> {
          (void)co_await f.open("/frames", rank == 0);
          f.set_view(0, types::byte_t(), t.tile_filetype(rank));
          auto memtype = t.memtype();
          for (int frame = 0; frame < nframes; ++frame) {
            Status s = co_await f.write_at(
                static_cast<std::int64_t>(frame) * t.tile_bytes(), nullptr, 1,
                memtype, Method::kDatatype);
            if (!s.is_ok()) ++fail;
          }
        }(*files[r], tile, r, frames, out.failures));
  }
  cluster.run();
  // Make the write pass durable, then drop every cache (a fleet-wide
  // crash+restart) so the first read pass is genuinely cold. Both arms
  // crash so their timelines stay comparable.
  cluster.flush_caches();
  const SimTime t_crash = cluster.scheduler().now() + kMillisecond;
  for (int s = 0; s < cfg.num_servers; ++s) {
    cluster.schedule_server_crash(s, t_crash, kMillisecond);
  }
  cluster.run();
  const std::uint64_t disk_after_populate =
      cluster.cache_stats_total().disk_accesses;

  auto read_pass = [&](double* seconds) {
    const SimTime t0 = cluster.scheduler().now();
    for (int r = 0; r < cfg.num_clients; ++r) {
      cluster.scheduler().spawn(
          [](mpiio::File& f, const workloads::TileConfig& t, int rank,
             int nframes, int& fail) -> Task<void> {
            f.set_view(0, types::byte_t(), t.tile_filetype(rank));
            auto memtype = t.memtype();
            for (int frame = 0; frame < nframes; ++frame) {
              Status s = co_await f.read_at(
                  static_cast<std::int64_t>(frame) * t.tile_bytes(), nullptr,
                  1, memtype, Method::kDatatype);
              if (!s.is_ok()) ++fail;
            }
          }(*files[r], tile, r, frames, out.failures));
    }
    cluster.run();
    *seconds = to_seconds(cluster.scheduler().now() - t0);
  };
  read_pass(&out.cold_seconds);
  const std::uint64_t disk_after_cold =
      cluster.cache_stats_total().disk_accesses;
  read_pass(&out.warm_seconds);
  out.totals = cluster.cache_stats_total();
  out.cold_disk = disk_after_cold - disk_after_populate;
  out.warm_disk = out.totals.disk_accesses - disk_after_cold;
  return out;
}

/// One arm of the --replication ablation: a single client doing open-loop
/// paced 64 KiB reads of a 4-server striped file, first over a healthy
/// fleet (the latency baseline), then with server 1 crashed for the whole
/// degraded window. With replication on (r=2) every degraded read fails
/// over to server 1's replica on server 2; with it off, reads that need
/// server 1 burn their retries and fail. The breaker trips on the first
/// timeout and stays open past the outage, so exactly one degraded read
/// pays the full rpc_timeout before failing over — the rest fast-fail
/// straight to the replica and stay near the healthy baseline.
struct ReplicationArm {
  std::vector<SimTime> healthy;
  std::vector<SimTime> degraded;
  int degraded_ok = 0;
  int healthy_failures = 0;
  std::uint64_t failovers = 0;
  std::uint64_t quorum_writes = 0;
  std::uint64_t fast_fails = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t resync_bytes = 0;
};

ReplicationArm run_replication_arm(int replication) {
  constexpr int kHealthyReads = 100;
  constexpr int kDegradedReads = 100;
  constexpr SimTime kPace = 10 * kMillisecond;
  constexpr std::size_t kReadBytes = 16384;  // 4 KiB per server

  net::ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_clients = 1;
  cfg.strip_size = 4096;
  cfg.replication = replication;
  // Timeout below the read pace, so the breaker (tripped by the first
  // degraded read's timeout) is already open when the next read issues —
  // exactly one read pays the full timeout before failing over.
  cfg.client.rpc_timeout = 7 * kMillisecond;
  cfg.client.rpc_max_attempts = 4;
  cfg.client.rpc_backoff_base = 2 * kMillisecond;
  cfg.client.breaker_failures = 1;
  cfg.client.breaker_open_duration = 2 * kSecond;  // outlives the outage
  // Write-back cache so the crash actually loses dirty bytes and the
  // restart resync has something to pull back from the replicas.
  cfg.server.cache_block_bytes = 4096;
  cfg.server.cache_capacity_bytes = 64 * 4096;
  cfg.server.cache_dirty_watermark = 1.0;
  pfs::Cluster cluster(cfg);
  auto client = cluster.make_client(0);

  ReplicationArm out;
  out.healthy.assign(kHealthyReads, 0);
  out.degraded.assign(kDegradedReads, 0);

  // Create + write one stripe-spanning block (quorum-replicated at r>1).
  std::uint64_t handle = 0;
  cluster.scheduler().spawn(
      [](pfs::Client& c, std::uint64_t& h, int& fail) -> Task<void> {
        pfs::MetaResult f = co_await c.create("/repl");
        if (!f.status.is_ok()) {
          ++fail;
          co_return;
        }
        h = f.handle;
        std::vector<std::uint8_t> buf(kReadBytes, 0x5A);
        Status w = co_await c.write_contig(
            h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
        if (!w.is_ok()) ++fail;
      }(*client, handle, out.healthy_failures));
  cluster.run();

  // Open-loop paced reads spawned at absolute times, so a slow op cannot
  // shield the ops behind it from the outage window.
  auto paced_reads = [&](SimTime t0, std::vector<SimTime>& lat, int* ok,
                         int* fail) {
    for (int i = 0; i < static_cast<int>(lat.size()); ++i) {
      cluster.scheduler().spawn(
          [](sim::Scheduler& sched, pfs::Client& c, std::uint64_t h,
             SimTime due, SimTime& slot, int* ok, int* fail) -> Task<void> {
            co_await sched.delay(due - sched.now());
            std::vector<std::uint8_t> buf(kReadBytes);
            const SimTime start = sched.now();
            Status r = co_await c.read_contig(
                h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
            slot = sched.now() - start;
            if (r.is_ok()) {
              if (ok != nullptr) ++*ok;
            } else if (fail != nullptr) {
              ++*fail;
            }
          }(cluster.scheduler(), *client, handle, t0 + i * kPace, lat[i], ok,
            fail));
    }
    cluster.run();
  };

  // Phase 1: healthy baseline.
  paced_reads(cluster.scheduler().now() + kMillisecond, out.healthy, nullptr,
              &out.healthy_failures);

  // Phase 2: server 1 down for the entire degraded window, then restart
  // (which triggers resync at r>1); the run drains through recovery.
  const SimTime t_deg = cluster.scheduler().now() + 2 * kMillisecond;
  const SimTime outage = kDegradedReads * kPace + 100 * kMillisecond;
  cluster.schedule_server_crash(1, t_deg - kMillisecond, outage);
  paced_reads(t_deg, out.degraded, &out.degraded_ok, nullptr);

  out.failovers = client->read_failovers();
  out.quorum_writes = client->quorum_writes();
  out.fast_fails = client->breaker_fast_fails();
  out.timeouts = client->rpc_timeouts();
  const pfs::ServerStats totals = cluster.cache_stats_total();
  out.resyncs = totals.resyncs;
  out.resync_bytes = totals.resync_bytes_pulled;
  for (int s = 0; s < cfg.num_servers; ++s) {
    out.crashes += cluster.server(s).stats().crashes;
  }
  return out;
}

/// The instrumented convoy scenario (--overload): 8 clients in a closed
/// loop hammering one decode-bound server (request_overhead raised to
/// 2 ms) with small contiguous reads. The server's mailbox backs up, so
/// nearly all of each op's latency is queue-wait — the canonical case for
/// phase attribution. Runs with the timeline sampler on (1 ms period) and
/// exports trace_overload.json; CI feeds that trace to dtio_inspect and
/// gates on >= 95% typed-phase coverage at p99 with server_queue dominant.
struct ConvoyRun {
  double seconds = 0;
  int failures = 0;
  obs::PhaseReport phases;       ///< contig_read ops only
  double queue_peak = 0;         ///< server 0 mailbox depth high-water mark
  std::uint64_t timeline_series = 0;
};

ConvoyRun run_overload_convoy(obs::Observability& obs,
                              const std::string& trace_path) {
  constexpr int kClients = 8;
  constexpr int kReadsPerClient = 30;
  constexpr std::size_t kReadBytes = 4096;

  net::ClusterConfig cfg;
  cfg.num_servers = 1;
  cfg.num_clients = kClients;
  cfg.server.request_overhead = 2 * kMillisecond;  // decode-bound server
  // Reliable RPC path armed (typed client-side queue/backoff spans) but
  // the timeout is ~50x any convoy queue wait, so no attempt ever
  // retries. Kept small because each pending recv_for timer extends the
  // post-run event drain (and thus the sampled window) by one timeout.
  cfg.client.rpc_timeout = kSecond;
  cfg.client.rpc_max_attempts = 1;

  pfs::Cluster cluster(cfg);
  cluster.set_observability(&obs);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  for (int r = 0; r < kClients; ++r) clients.push_back(cluster.make_client(r));

  ConvoyRun out;
  std::uint64_t handle = 0;
  cluster.scheduler().spawn(
      [](pfs::Client& c, std::uint64_t& h, int& fail) -> Task<void> {
        pfs::MetaResult f = co_await c.create("/convoy");
        if (!f.status.is_ok()) {
          ++fail;
          co_return;
        }
        h = f.handle;
        std::vector<std::uint8_t> buf(kReadBytes, 0x5A);
        Status w = co_await c.write_contig(
            h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
        if (!w.is_ok()) ++fail;
      }(*clients[0], handle, out.failures));
  cluster.run();

  const SimTime t0 = cluster.scheduler().now();
  for (int r = 0; r < kClients; ++r) {
    cluster.scheduler().spawn(
        [](pfs::Client& c, std::uint64_t h, int& fail) -> Task<void> {
          std::vector<std::uint8_t> buf(kReadBytes);
          for (int i = 0; i < kReadsPerClient; ++i) {
            Status s = co_await c.read_contig(
                h, 0, buf.data(), static_cast<std::int64_t>(buf.size()));
            if (!s.is_ok()) ++fail;
          }
        }(*clients[r], handle, out.failures));
  }
  cluster.run();
  out.seconds = to_seconds(cluster.scheduler().now() - t0);

  if (!trace_path.empty() && cluster.write_trace(trace_path)) {
    std::printf("chrome trace (overload convoy): %s\n", trace_path.c_str());
  }
  std::vector<obs::OpBreakdown> ops = obs::decompose_ops(obs.spans);
  std::erase_if(ops, [](const obs::OpBreakdown& op) {
    return op.name != "contig_read";
  });
  out.phases = obs::summarize_phases(std::move(ops));
  for (const auto& series : obs.timeline.all()) {
    ++out.timeline_series;
    if (series->name() == "queue_depth" && series->node() == 0) {
      out.queue_peak = series->peak_value();
    }
  }
  return out;
}

/// Nearest-rank percentile over the raw latency samples (exact, not the
/// log-linear histogram estimate).
SimTime percentile_exact(std::vector<SimTime> v, double p) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(std::max<std::int64_t>(
      0, static_cast<std::int64_t>(
             p / 100.0 * static_cast<double>(v.size()) + 0.5) -
             1));
  return v[std::min(rank, v.size() - 1)];
}

int tile_main(int argc, char** argv) {
  const workloads::TileConfig tile;
  const int frames =
      static_cast<int>(bench::flag_int(argc, argv, "--frames", 100));
  const bool use_obs = bench::obs_enabled(argc, argv);
  // --trace=PATH exports the datatype-I/O run as a Chrome trace-event
  // file (the paper's contribution is the most interesting timeline).
  const std::string trace_path = bench::flag_str(argc, argv, "--trace", "");

  std::printf("tile reader: %dx%d tiles of %dx%d px, frame %.1f MB, "
              "%d frames, %d clients, 16 I/O servers\n",
              tile.tiles_x, tile.tiles_y, tile.tile_width, tile.tile_height,
              bench::to_mb(static_cast<double>(tile.frame_bytes())), frames,
              tile.num_clients());

  const Method methods[] = {Method::kPosix, Method::kDataSieving,
                            Method::kTwoPhase, Method::kList,
                            Method::kDatatype};
  std::vector<MethodResult> results;
  for (const Method m : methods) {
    results.push_back(run_tile(m, tile, frames, use_obs,
                               m == Method::kDatatype ? trace_path : ""));
  }

  bench::print_figure_header(
      "Figure 8: tile reader aggregate read bandwidth");
  for (const auto& r : results) bench::print_figure_row(r);
  std::printf("  paper shape: datatype > two-phase > list >> sieving > "
              "POSIX; datatype ~37%% over list\n");

  if (bench::flag_set(argc, argv, "--csv")) {
    std::printf("\ncsv,method,agg_mbps,sim_sec\n");
    for (const auto& r : results) {
      if (!r.supported) continue;
      std::printf("csv,%s,%.3f,%.3f\n",
                  std::string(mpiio::method_name(r.method)).c_str(),
                  bench::to_mb(r.bandwidth), r.seconds);
    }
  }

  bench::print_table_header(
      "Table 1: I/O characteristics per client per frame");
  for (const auto& r : results) bench::print_table_row(r);
  std::printf("  paper: POSIX 768 ops; sieving 5.56 MB accessed; two-phase "
              "1 op, 1.50 MB resent; list 12 ops; datatype 1 op\n");

  // Pruned-expansion ablation at the paper configuration (16 servers,
  // 64 KiB strips): the same datatype run with server-side subtree pruning
  // on (default) and off (legacy full expansion). Fleet-aggregate
  // regions_walked is the cost the pruning removes: with the flag off
  // every server walks every piece of the access.
  ServerAgg pruned_on;
  ServerAgg pruned_off;
  const MethodResult on_result =
      run_tile(Method::kDatatype, tile, frames, false, "", true, &pruned_on);
  const MethodResult off_result =
      run_tile(Method::kDatatype, tile, frames, false, "", false, &pruned_off);
  const double walk_ratio =
      pruned_on.regions_walked == 0
          ? 0.0
          : static_cast<double>(pruned_off.regions_walked) /
                static_cast<double>(pruned_on.regions_walked);
  std::printf("\nablation: server.pruned_expansion (datatype method)\n");
  std::printf("  on : regions_walked=%llu subtrees_skipped=%llu "
              "pieces_pruned=%llu sim=%.3fs\n",
              static_cast<unsigned long long>(pruned_on.regions_walked),
              static_cast<unsigned long long>(pruned_on.subtrees_skipped),
              static_cast<unsigned long long>(pruned_on.pieces_pruned),
              on_result.seconds);
  std::printf("  off: regions_walked=%llu sim=%.3fs  (walk ratio %.1fx)\n",
              static_cast<unsigned long long>(pruned_off.regions_walked),
              off_result.seconds, walk_ratio);

  obs::RunReport report;
  report.bench = "tile_reader";
  report.params["frames"] = frames;
  report.params["clients"] = tile.num_clients();
  report.params["frame_bytes"] = static_cast<double>(tile.frame_bytes());
  for (const auto& r : results) report.methods.push_back(bench::to_report(r));
  report.scalars["pruned_on_regions_walked"] =
      static_cast<double>(pruned_on.regions_walked);
  report.scalars["pruned_off_regions_walked"] =
      static_cast<double>(pruned_off.regions_walked);
  report.scalars["pruned_regions_walked_ratio"] = walk_ratio;
  report.scalars["pruned_on_my_pieces"] =
      static_cast<double>(pruned_on.my_pieces);
  report.scalars["pruned_on_subtrees_skipped"] =
      static_cast<double>(pruned_on.subtrees_skipped);
  report.scalars["pruned_on_pieces_pruned"] =
      static_cast<double>(pruned_on.pieces_pruned);
  report.scalars["pruned_on_sim_seconds"] = on_result.seconds;
  report.scalars["pruned_off_sim_seconds"] = off_result.seconds;

  // Fault-injection ablation (--chaos): datatype reads under 5% drop + 2%
  // duplicate + 1% corrupt + one server crash, with retries on vs off.
  // Gated so the default report stays byte-identical.
  if (bench::flag_set(argc, argv, "--chaos")) {
    const int reads_total = frames * tile.num_clients();
    const ChaosRun clean = run_tile_chaos(tile, frames, false, 6);
    const ChaosRun faulty = run_tile_chaos(tile, frames, true, 6);
    const ChaosRun noretry = run_tile_chaos(tile, frames, true, 1);
    const double slowdown =
        clean.seconds == 0 ? 0.0 : faulty.seconds / clean.seconds;
    std::printf("\nchaos ablation: datatype reads, %d frames x %d clients, "
                "5%% drop + 2%% dup + 1%% corrupt + server 3 crash\n",
                frames, tile.num_clients());
    std::printf("  fault-free : sim=%.3fs\n", clean.seconds);
    std::printf("  retries on : sim=%.3fs (%.2fx) failures=%d/%d "
                "retries=%llu timeouts=%llu replays=%llu crc_rejects=%llu "
                "crashes=%llu faults=%llu\n",
                faulty.seconds, slowdown, faulty.failures, reads_total,
                static_cast<unsigned long long>(faulty.client_retries),
                static_cast<unsigned long long>(faulty.client_timeouts),
                static_cast<unsigned long long>(faulty.replays),
                static_cast<unsigned long long>(faulty.crc_rejects),
                static_cast<unsigned long long>(faulty.crashes),
                static_cast<unsigned long long>(faulty.faults.total()));
    std::printf("               sheds=%llu hedges_issued=%llu "
                "hedges_won=%llu\n",
                static_cast<unsigned long long>(faulty.sheds),
                static_cast<unsigned long long>(faulty.hedges_issued),
                static_cast<unsigned long long>(faulty.hedges_won));
    std::printf("  retries off: sim=%.3fs failures=%d/%d (every fault that "
                "hits a request is terminal)\n",
                noretry.seconds, noretry.failures, reads_total);
    report.scalars["chaos_clean_sim_seconds"] = clean.seconds;
    report.scalars["chaos_sim_seconds"] = faulty.seconds;
    report.scalars["chaos_slowdown"] = slowdown;
    report.scalars["chaos_failures"] = faulty.failures;
    report.scalars["chaos_retries"] =
        static_cast<double>(faulty.client_retries);
    report.scalars["chaos_timeouts"] =
        static_cast<double>(faulty.client_timeouts);
    report.scalars["chaos_replays"] = static_cast<double>(faulty.replays);
    report.scalars["chaos_crc_rejects"] =
        static_cast<double>(faulty.crc_rejects);
    report.scalars["chaos_crashes"] = static_cast<double>(faulty.crashes);
    report.scalars["chaos_faults_injected"] =
        static_cast<double>(faulty.faults.total());
    report.scalars["chaos_noretry_failures"] = noretry.failures;
    report.scalars["chaos_sheds"] = static_cast<double>(faulty.sheds);
    report.scalars["chaos_hedges_issued"] =
        static_cast<double>(faulty.hedges_issued);
    report.scalars["chaos_hedges_won"] =
        static_cast<double>(faulty.hedges_won);
  }

  // Tail-latency ablation (--overload): the same degraded-server scenario
  // with the overload layer (hedged reads + circuit breaker + AIMD
  // window) on vs off. Gated so the default report stays byte-identical.
  if (bench::flag_set(argc, argv, "--overload")) {
    const OverloadArm off = run_overload_arm(false);
    const OverloadArm on = run_overload_arm(true);
    const SimTime p99_off = percentile_exact(off.latencies, 99);
    const SimTime p99_on = percentile_exact(on.latencies, 99);
    const double p99_ratio =
        p99_on == 0 ? 0.0
                    : static_cast<double>(p99_off) / static_cast<double>(p99_on);
    std::printf("\noverload ablation: 100 paced 16 KiB reads, server 1 "
                "degraded 4x for 150 ms\n");
    std::printf("  hedging off: p50=%.0fus p99=%.0fus p999=%.0fus "
                "timeouts=%llu failures=%d\n",
                percentile_exact(off.latencies, 50) / 1e3, p99_off / 1e3,
                percentile_exact(off.latencies, 99.9) / 1e3,
                static_cast<unsigned long long>(off.timeouts), off.failures);
    std::printf("  hedging on : p50=%.0fus p99=%.0fus p999=%.0fus "
                "hedges=%llu won=%llu timeouts=%llu failures=%d\n",
                percentile_exact(on.latencies, 50) / 1e3, p99_on / 1e3,
                percentile_exact(on.latencies, 99.9) / 1e3,
                static_cast<unsigned long long>(on.hedges_issued),
                static_cast<unsigned long long>(on.hedges_won),
                static_cast<unsigned long long>(on.timeouts), on.failures);
    std::printf("  read p99 improvement: %.1fx\n", p99_ratio);
    report.scalars["overload_off_read_p50_us"] =
        percentile_exact(off.latencies, 50) / 1e3;
    report.scalars["overload_off_read_p99_us"] = p99_off / 1e3;
    report.scalars["overload_off_read_p999_us"] =
        percentile_exact(off.latencies, 99.9) / 1e3;
    report.scalars["overload_on_read_p50_us"] =
        percentile_exact(on.latencies, 50) / 1e3;
    report.scalars["overload_on_read_p99_us"] = p99_on / 1e3;
    report.scalars["overload_on_read_p999_us"] =
        percentile_exact(on.latencies, 99.9) / 1e3;
    report.scalars["overload_p99_ratio"] = p99_ratio;
    report.scalars["overload_off_hedges_issued"] =
        static_cast<double>(off.hedges_issued);
    report.scalars["overload_on_hedges_issued"] =
        static_cast<double>(on.hedges_issued);
    report.scalars["overload_on_hedges_won"] =
        static_cast<double>(on.hedges_won);
    report.scalars["overload_off_timeouts"] =
        static_cast<double>(off.timeouts);
    report.scalars["overload_on_timeouts"] = static_cast<double>(on.timeouts);
    report.scalars["overload_failures"] = off.failures + on.failures;

    // Instrumented convoy: where does the time go when one server backs
    // up? Timeline sampler on (1 ms), full phase attribution, Chrome
    // trace exported for dtio_inspect.
    obs::ObsConfig obs_cfg;
    obs_cfg.sample_period = kMillisecond;
    obs_cfg.timeline_capacity = 8192;  // whole run retained, zero dropped
    obs::Observability convoy_obs(obs_cfg);
    const std::string convoy_trace =
        bench::flag_str(argc, argv, "--trace-overload", "trace_overload.json");
    const ConvoyRun convoy =
        run_overload_convoy(convoy_obs, use_obs ? convoy_trace : "");
    const obs::PhaseQuantile* cp99 = convoy.phases.quantile(99);
    std::printf("  convoy (1 server, 8 clients, 2 ms decode): %llu ops, "
                "p99=%.1fms coverage=%.1f%% dominant=%s queue peak=%.0f\n",
                static_cast<unsigned long long>(convoy.phases.ops),
                cp99 != nullptr ? cp99->latency_ns / 1e6 : 0.0,
                cp99 != nullptr ? 100.0 * cp99->coverage : 0.0,
                cp99 != nullptr ? obs::phase_name(cp99->dominant) : "none",
                convoy.queue_peak);
    report.scalars["overload_convoy_ops"] =
        static_cast<double>(convoy.phases.ops);
    report.scalars["overload_convoy_sim_seconds"] = convoy.seconds;
    report.scalars["overload_convoy_failures"] = convoy.failures;
    report.scalars["overload_convoy_queue_peak"] = convoy.queue_peak;
    if (cp99 != nullptr) {
      report.scalars["overload_convoy_p99_ms"] = cp99->latency_ns / 1e6;
      report.scalars["overload_convoy_coverage_p99"] = cp99->coverage;
      report.scalars["overload_convoy_queue_share_p99"] =
          cp99->latency_ns <= 0
              ? 0.0
              : cp99->phase_ns[static_cast<std::size_t>(
                    obs::Phase::kServerQueue)] /
                    cp99->latency_ns;
    }
    report.phases.emplace_back("contig_read", convoy.phases);
    report.add_timeline(convoy_obs.timeline);
  }

  // Buffer-cache ablation (--cache): the same datatype tile reads with
  // the server block cache on (64 KiB blocks, 256 MiB/server) vs off,
  // each as a cold pass then a warm pass over identical data. Gated so
  // the default report stays byte-identical.
  if (bench::flag_set(argc, argv, "--cache")) {
    const CacheArm off = run_tile_cache(tile, frames, false);
    const CacheArm on = run_tile_cache(tile, frames, true);
    const double warm_ratio = static_cast<double>(off.warm_disk) /
                              static_cast<double>(std::max<std::uint64_t>(
                                  on.warm_disk, 1));
    const std::uint64_t lookups = on.totals.cache_hits + on.totals.cache_misses;
    const double hit_ratio =
        lookups == 0 ? 0.0
                     : static_cast<double>(on.totals.cache_hits) /
                           static_cast<double>(lookups);
    std::printf("\ncache ablation: datatype reads, %d frames x %d clients, "
                "cold pass then warm pass\n",
                frames, tile.num_clients());
    std::printf("  cache off: cold disk=%llu (%.3fs)  warm disk=%llu "
                "(%.3fs)\n",
                static_cast<unsigned long long>(off.cold_disk),
                off.cold_seconds,
                static_cast<unsigned long long>(off.warm_disk),
                off.warm_seconds);
    std::printf("  cache on : cold disk=%llu (%.3fs)  warm disk=%llu "
                "(%.3fs)\n",
                static_cast<unsigned long long>(on.cold_disk),
                on.cold_seconds,
                static_cast<unsigned long long>(on.warm_disk),
                on.warm_seconds);
    std::printf("  hits=%llu misses=%llu hit_ratio=%.3f readahead=%llu "
                "evictions=%llu flushed=%llu B\n",
                static_cast<unsigned long long>(on.totals.cache_hits),
                static_cast<unsigned long long>(on.totals.cache_misses),
                hit_ratio,
                static_cast<unsigned long long>(
                    on.totals.cache_readahead_issued),
                static_cast<unsigned long long>(on.totals.cache_evictions),
                static_cast<unsigned long long>(
                    on.totals.cache_dirty_flushed_bytes));
    std::printf("  warm-pass disk-access reduction: %.1fx\n", warm_ratio);
    report.scalars["cache_off_cold_disk_accesses"] =
        static_cast<double>(off.cold_disk);
    report.scalars["cache_off_warm_disk_accesses"] =
        static_cast<double>(off.warm_disk);
    report.scalars["cache_on_cold_disk_accesses"] =
        static_cast<double>(on.cold_disk);
    report.scalars["cache_on_warm_disk_accesses"] =
        static_cast<double>(on.warm_disk);
    report.scalars["cache_warm_disk_access_ratio"] = warm_ratio;
    report.scalars["cache_on_hits"] = static_cast<double>(on.totals.cache_hits);
    report.scalars["cache_on_misses"] =
        static_cast<double>(on.totals.cache_misses);
    report.scalars["cache_on_hit_ratio"] = hit_ratio;
    report.scalars["cache_on_readahead_issued"] =
        static_cast<double>(on.totals.cache_readahead_issued);
    report.scalars["cache_on_evictions"] =
        static_cast<double>(on.totals.cache_evictions);
    report.scalars["cache_on_dirty_flushed_bytes"] =
        static_cast<double>(on.totals.cache_dirty_flushed_bytes);
    report.scalars["cache_failures"] = off.failures + on.failures;
  }

  // Degraded-read ablation (--replication): open-loop paced reads with one
  // server crashed for the whole window, replication off (r=1) vs on
  // (r=2). Gated so the default report stays byte-identical. CI asserts
  // 100% read availability under r=2 with degraded p99 within 3x of the
  // healthy baseline.
  if (bench::flag_set(argc, argv, "--replication")) {
    // --replication-r=N sets the replicated arm's factor (CI runs a
    // matrix over 1, 2, 3; N=1 degenerates to a second unreplicated arm
    // that must reproduce the baseline arm exactly).
    const int repl_r = static_cast<int>(
        bench::flag_int(argc, argv, "--replication-r", 2));
    const ReplicationArm off = run_replication_arm(1);
    const ReplicationArm on = run_replication_arm(repl_r);
    const double off_avail = static_cast<double>(off.degraded_ok) /
                             static_cast<double>(off.degraded.size());
    const double on_avail = static_cast<double>(on.degraded_ok) /
                            static_cast<double>(on.degraded.size());
    const SimTime on_healthy_p99 = percentile_exact(on.healthy, 99);
    const SimTime on_degraded_p99 = percentile_exact(on.degraded, 99);
    const double p99_ratio =
        on_healthy_p99 == 0 ? 0.0
                            : static_cast<double>(on_degraded_p99) /
                                  static_cast<double>(on_healthy_p99);
    std::printf("\nreplication ablation: 100 paced 16 KiB reads, server 1 "
                "crashed for the window, r=1 vs r=%d\n",
                repl_r);
    std::printf("  r=1: availability=%.0f%% (%d/%zu ok) degraded "
                "p99=%.0fus timeouts=%llu\n",
                100.0 * off_avail, off.degraded_ok, off.degraded.size(),
                percentile_exact(off.degraded, 99) / 1e3,
                static_cast<unsigned long long>(off.timeouts));
    std::printf("  r=%d: availability=%.0f%% (%d/%zu ok) healthy p99=%.0fus "
                "degraded p99=%.0fus (%.2fx) failovers=%llu "
                "fast_fails=%llu\n",
                repl_r, 100.0 * on_avail, on.degraded_ok, on.degraded.size(),
                on_healthy_p99 / 1e3, on_degraded_p99 / 1e3, p99_ratio,
                static_cast<unsigned long long>(on.failovers),
                static_cast<unsigned long long>(on.fast_fails));
    std::printf("       quorum_writes=%llu crashes=%llu resyncs=%llu "
                "resync_bytes=%llu\n",
                static_cast<unsigned long long>(on.quorum_writes),
                static_cast<unsigned long long>(on.crashes),
                static_cast<unsigned long long>(on.resyncs),
                static_cast<unsigned long long>(on.resync_bytes));
    report.scalars["repl_factor"] = repl_r;
    report.scalars["repl_off_read_availability"] = off_avail;
    report.scalars["repl_on_read_availability"] = on_avail;
    report.scalars["repl_off_degraded_p99_us"] =
        percentile_exact(off.degraded, 99) / 1e3;
    report.scalars["repl_on_healthy_p99_us"] = on_healthy_p99 / 1e3;
    report.scalars["repl_on_degraded_p99_us"] = on_degraded_p99 / 1e3;
    report.scalars["repl_on_degraded_p99_ratio"] = p99_ratio;
    report.scalars["repl_on_read_failovers"] =
        static_cast<double>(on.failovers);
    report.scalars["repl_on_breaker_fast_fails"] =
        static_cast<double>(on.fast_fails);
    report.scalars["repl_on_quorum_writes"] =
        static_cast<double>(on.quorum_writes);
    report.scalars["repl_on_resyncs"] = static_cast<double>(on.resyncs);
    report.scalars["repl_on_resync_bytes_pulled"] =
        static_cast<double>(on.resync_bytes);
    report.scalars["repl_crashes"] =
        static_cast<double>(off.crashes + on.crashes);
    report.scalars["repl_healthy_failures"] =
        off.healthy_failures + on.healthy_failures;
  }

  bench::write_report(report, argc, argv, "BENCH_tile_reader.json");
  return 0;
}

}  // namespace
}  // namespace dtio

int main(int argc, char** argv) { return dtio::tile_main(argc, argv); }
