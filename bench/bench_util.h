// Shared plumbing for the paper-reproduction benches: flag parsing,
// aligned table printing, and the per-method result record every figure
// bench reports.
//
// These benches measure SIMULATED time (the discrete-event clock), not
// wall time, which is why they use a custom main() rather than
// google-benchmark; the micro-benches (real computation: dataloop
// processing, packing) use google-benchmark.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "mpiio/file.h"
#include "obs/observability.h"
#include "obs/run_report.h"

namespace dtio::bench {

// ---- Flags -------------------------------------------------------------------

inline std::int64_t flag_int(int argc, char** argv, const char* name,
                             std::int64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoll(argv[i] + len + 1);
    }
  }
  return fallback;
}

inline std::string flag_str(int argc, char** argv, const char* name,
                            const char* fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return std::string(fallback);
}

inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Benches attach observability by default; --no-obs runs bare (useful for
/// checking that instrumentation does not perturb simulated results).
inline bool obs_enabled(int argc, char** argv) {
  return !flag_set(argc, argv, "--no-obs");
}

// ---- Results -----------------------------------------------------------------

struct MethodResult {
  mpiio::Method method = mpiio::Method::kPosix;
  bool supported = true;
  double seconds = 0;          ///< simulated seconds
  double bandwidth = 0;        ///< aggregate desired bytes / second
  IoStats per_client;          ///< rank 0's counters
  std::uint64_t events = 0;    ///< simulator events (sanity/efficiency)
  obs::LatencySummary latency; ///< client-op latency (zero when obs is off)
  std::uint64_t spans_recorded = 0;  ///< spans kept by the collector
  std::uint64_t spans_dropped = 0;   ///< spans lost to capacity (should be 0)
};

inline double to_mib(double bytes) { return bytes / (1024.0 * 1024.0); }
inline double to_mb(double bytes) { return bytes / 1e6; }

/// Pull the merged client-op latency distribution out of a finished run's
/// observability context into the result record, along with the span
/// accounting. Warns on stderr when the collector truncated: a truncated
/// trace silently skews phase attribution, so it should never pass
/// unnoticed in CI logs.
inline void capture_latency(MethodResult& r, const obs::Observability& obs) {
  r.latency = obs::LatencySummary::from(
      obs.metrics.merged_histogram("client_op_latency_ns"));
  r.spans_recorded = obs.spans.spans().size();
  r.spans_dropped = obs.spans.dropped();
  if (r.spans_dropped > 0) {
    std::fprintf(stderr,
                 "warning: span collector truncated: %llu spans dropped "
                 "(%llu recorded); raise SpanCollector capacity or expect "
                 "incomplete phase attribution\n",
                 static_cast<unsigned long long>(r.spans_dropped),
                 static_cast<unsigned long long>(r.spans_recorded));
  }
}

/// MethodResult -> the machine-readable report entry. `tag` prefixes the
/// method name ("read/27/" etc.) when one report covers several sweeps.
inline obs::MethodReport to_report(const MethodResult& r,
                                   const std::string& tag = "") {
  obs::MethodReport m;
  m.method = tag + std::string(mpiio::method_name(r.method));
  m.supported = r.supported;
  m.sim_seconds = r.seconds;
  m.bandwidth_mb_s = to_mb(r.bandwidth);
  m.events = r.events;
  m.per_client = r.per_client;
  m.latency = r.latency;
  m.spans_recorded = r.spans_recorded;
  m.spans_dropped = r.spans_dropped;
  return m;
}

/// Write the report to BENCH_<name>.json (or --json=PATH); prints where it
/// went. Skipped entirely under --no-obs.
inline void write_report(const obs::RunReport& report, int argc, char** argv,
                         const std::string& default_path) {
  if (!obs_enabled(argc, argv)) return;
  const std::string path =
      flag_str(argc, argv, "--json", default_path.c_str());
  if (report.write_file(path)) {
    std::fprintf(stderr, "bench report: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: could not write bench report %s\n",
                 path.c_str());
  }
}

/// "Figure 8"-style row: method, aggregate MB/s, simulated seconds.
inline void print_figure_row(const MethodResult& r) {
  if (!r.supported) {
    std::printf("  %-18s %12s %12s\n",
                std::string(mpiio::method_name(r.method)).c_str(), "n/a",
                "n/a");
    return;
  }
  std::printf("  %-18s %12.2f %12.2f\n",
              std::string(mpiio::method_name(r.method)).c_str(),
              to_mb(r.bandwidth), r.seconds);
}

inline void print_figure_header(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("  %-18s %12s %12s\n", "method", "agg MB/s", "sim sec");
}

/// "Table 1/2/3"-style row: per-client desired/accessed/ops/resent.
inline void print_table_row(const MethodResult& r) {
  if (!r.supported) {
    std::printf("  %-18s %11s %11s %11s %11s\n",
                std::string(mpiio::method_name(r.method)).c_str(), "-", "-",
                "-", "-");
    return;
  }
  char resent[32];
  if (r.per_client.resent_bytes == 0) {
    std::snprintf(resent, sizeof resent, "-");
  } else {
    std::snprintf(resent, sizeof resent, "%.2f MB",
                  to_mb(static_cast<double>(r.per_client.resent_bytes)));
  }
  std::printf("  %-18s %8.2f MB %8.2f MB %11llu %11s\n",
              std::string(mpiio::method_name(r.method)).c_str(),
              to_mb(static_cast<double>(r.per_client.desired_bytes)),
              to_mb(static_cast<double>(r.per_client.accessed_bytes)),
              static_cast<unsigned long long>(r.per_client.io_ops), resent);
}

inline void print_table_header(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("  %-18s %11s %11s %11s %11s\n", "method", "desired/cli",
              "accessed", "io ops/cli", "resent/cli");
}

inline const char* paper_note(const char* text) { return text; }

}  // namespace dtio::bench
