// Shared plumbing for the paper-reproduction benches: flag parsing,
// aligned table printing, and the per-method result record every figure
// bench reports.
//
// These benches measure SIMULATED time (the discrete-event clock), not
// wall time, which is why they use a custom main() rather than
// google-benchmark; the micro-benches (real computation: dataloop
// processing, packing) use google-benchmark.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "mpiio/file.h"

namespace dtio::bench {

// ---- Flags -------------------------------------------------------------------

inline std::int64_t flag_int(int argc, char** argv, const char* name,
                             std::int64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoll(argv[i] + len + 1);
    }
  }
  return fallback;
}

inline bool flag_set(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// ---- Results -----------------------------------------------------------------

struct MethodResult {
  mpiio::Method method = mpiio::Method::kPosix;
  bool supported = true;
  double seconds = 0;          ///< simulated seconds
  double bandwidth = 0;        ///< aggregate desired bytes / second
  IoStats per_client;          ///< rank 0's counters
  std::uint64_t events = 0;    ///< simulator events (sanity/efficiency)
};

inline double to_mib(double bytes) { return bytes / (1024.0 * 1024.0); }
inline double to_mb(double bytes) { return bytes / 1e6; }

/// "Figure 8"-style row: method, aggregate MB/s, simulated seconds.
inline void print_figure_row(const MethodResult& r) {
  if (!r.supported) {
    std::printf("  %-18s %12s %12s\n",
                std::string(mpiio::method_name(r.method)).c_str(), "n/a",
                "n/a");
    return;
  }
  std::printf("  %-18s %12.2f %12.2f\n",
              std::string(mpiio::method_name(r.method)).c_str(),
              to_mb(r.bandwidth), r.seconds);
}

inline void print_figure_header(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("  %-18s %12s %12s\n", "method", "agg MB/s", "sim sec");
}

/// "Table 1/2/3"-style row: per-client desired/accessed/ops/resent.
inline void print_table_row(const MethodResult& r) {
  if (!r.supported) {
    std::printf("  %-18s %11s %11s %11s %11s\n",
                std::string(mpiio::method_name(r.method)).c_str(), "-", "-",
                "-", "-");
    return;
  }
  char resent[32];
  if (r.per_client.resent_bytes == 0) {
    std::snprintf(resent, sizeof resent, "-");
  } else {
    std::snprintf(resent, sizeof resent, "%.2f MB",
                  to_mb(static_cast<double>(r.per_client.resent_bytes)));
  }
  std::printf("  %-18s %8.2f MB %8.2f MB %11llu %11s\n",
              std::string(mpiio::method_name(r.method)).c_str(),
              to_mb(static_cast<double>(r.per_client.desired_bytes)),
              to_mb(static_cast<double>(r.per_client.accessed_bytes)),
              static_cast<unsigned long long>(r.per_client.io_ops), resent);
}

inline void print_table_header(const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("  %-18s %11s %11s %11s %11s\n", "method", "desired/cli",
              "accessed", "io ops/cli", "resent/cli");
}

inline const char* paper_note(const char* text) { return text; }

}  // namespace dtio::bench
