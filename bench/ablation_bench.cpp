// Ablations over the design choices DESIGN.md calls out:
//
//   A. Region coalescing (paper §3.2): flattening the FLASH file side with
//      and without adjacent-region merging — region counts and processing
//      items differ sharply.
//   B. List-I/O region cap (paper §2.4): sweeping the max regions per
//      request shows the linear ops-vs-regions relationship and why the
//      cap trades request size against request count.
//   C. Server-side region-processing cost (paper §4.3): sweeping the
//      per-region dataloop cost on the 3-D block READ reproduces the
//      paper's dip at high client counts — and shows a "full-featured"
//      implementation (cost -> 0, operating directly on the dataloop)
//      removing it.
//   D. Fabric bisection (paper §4.4 substrate): two-phase's double data
//      movement only costs when aggregate bandwidth is finite.
//
// All timings are simulated seconds.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "dataloop/serialize.h"
#include "workloads/tile.h"
#include "collective/comm.h"
#include "dataloop/cursor.h"
#include "io/methods.h"
#include "mpiio/file.h"
#include "pfs/cluster.h"
#include "workloads/block3d.h"
#include "workloads/flash.h"

namespace dtio {
namespace {

using mpiio::Method;
using sim::Task;

// ---- A: coalescing ------------------------------------------------------------

void ablate_coalescing(obs::RunReport& report) {
  std::printf("\n== Ablation A: region coalescing (paper §3.2) ==\n");
  // An AMR-style block list where many neighbouring blocks abut in the
  // file (exactly the pattern FLASH produces after refinement): the
  // emitter merges runs that the type constructor cannot know about.
  Rng rng(7);
  std::vector<std::int64_t> lens, offs;
  std::int64_t at = 0;
  for (int b = 0; b < 50'000; ++b) {
    const std::int64_t blk = rng.next_range(1, 4) * 512;  // bytes
    lens.push_back(blk);
    offs.push_back(at);
    at += blk + (rng.next_below(2) ? 0 : 4096);  // ~50% abut
  }
  auto loop = dl::make_indexed(lens, offs, dl::make_leaf(1));
  for (const bool coalesce : {true, false}) {
    auto regions = dl::flatten(loop, 0, 1, coalesce);
    std::printf("  coalescing %-3s -> %8zu regions (server walks %zu "
                "access-list entries per request)\n",
                coalesce ? "on" : "off", regions.size(), regions.size());
    report.scalars[coalesce ? "coalesce_on_regions"
                            : "coalesce_off_regions"] =
        static_cast<double>(regions.size());
  }
  // The tile filetype shows constructor-level regularity capture instead:
  // 768 rows stay 768 regions either way (rows never abut), but the
  // dataloop DESCRIBES them in O(1) space.
  workloads::TileConfig tile;
  const auto& trows = tile.tile_filetype(0).dataloop();
  std::printf("  tile filetype: %lld regions described by %lld dataloop "
              "nodes (%zu wire bytes vs %lld list bytes)\n",
              static_cast<long long>(trows->region_count()),
              static_cast<long long>(trows->node_count()),
              dl::encoded_size(*trows),
              static_cast<long long>(trows->region_count() * 16));
  report.scalars["tile_dataloop_wire_bytes"] =
      static_cast<double>(dl::encoded_size(*trows));
  report.scalars["tile_list_wire_bytes"] =
      static_cast<double>(trows->region_count() * 16);
}

// ---- B: list-I/O region cap ------------------------------------------------------

double run_flash_once(net::ClusterConfig cfg, Method method, int nclients) {
  workloads::FlashConfig flash;
  cfg.num_clients = nclients;
  pfs::Cluster cluster(cfg);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), nclients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < nclients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/a", true);
  }(*files[0]));
  cluster.run();
  const SimTime t0 = cluster.scheduler().now();
  for (int r = 0; r < nclients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::FlashConfig& fl, int rank, int n,
           Method m) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/a", false);
          f.set_view(fl.displacement(rank), types::byte_t(), fl.filetype(n));
          auto memtype = fl.memtype();
          (void)co_await f.write_at_all(c, rank, 0, nullptr, 1, memtype, m);
        }(*files[r], comm, flash, r, nclients, method));
  }
  cluster.run();
  return to_seconds(cluster.scheduler().now() - t0);
}

void ablate_list_cap(obs::RunReport& report) {
  std::printf("\n== Ablation B: list-I/O regions-per-request cap "
              "(FLASH write, 8 clients) ==\n");
  std::printf("  %-10s %12s %14s\n", "cap", "sim sec", "requests/cli");
  workloads::FlashConfig flash;
  for (const std::uint64_t cap : {16ULL, 64ULL, 256ULL, 1024ULL, 4096ULL}) {
    net::ClusterConfig cfg;
    cfg.list_io_max_regions = cap;
    const double secs = run_flash_once(cfg, Method::kList, 8);
    char key[48];
    std::snprintf(key, sizeof key, "list_cap_%llu_sec",
                  static_cast<unsigned long long>(cap));
    report.scalars[key] = secs;
    std::printf("  %-10llu %12.2f %14lld\n",
                static_cast<unsigned long long>(cap), secs,
                static_cast<long long>((flash.joint_pieces() +
                                        static_cast<std::int64_t>(cap) - 1) /
                                       static_cast<std::int64_t>(cap)));
  }
  std::printf("  paper §2.4: a bounded cap keeps requests small but leaves "
              "ops linear in regions; datatype I/O removes the list "
              "entirely (1 op)\n");
}

// ---- C: server-side region processing (the §4.3 read dip) -------------------------

double run_block3d_read(net::ClusterConfig cfg, int blocks_per_edge) {
  workloads::Block3dConfig block{.dim = 600,
                                 .blocks_per_edge = blocks_per_edge};
  cfg.num_clients = block.num_clients();
  pfs::Cluster cluster(cfg);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), cfg.num_clients);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < cfg.num_clients; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/b", true);
  }(*files[0]));
  cluster.run();
  const SimTime t0 = cluster.scheduler().now();
  for (int r = 0; r < cfg.num_clients; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c,
           const workloads::Block3dConfig& b, int rank) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/b", false);
          f.set_view(0, types::byte_t(), b.block_filetype(rank));
          auto memtype = b.memtype();
          (void)co_await f.read_at_all(c, rank, 0, nullptr, 1, memtype,
                                       Method::kDatatype);
        }(*files[r], comm, block, r));
  }
  cluster.run();
  return to_seconds(cluster.scheduler().now() - t0);
}

void ablate_server_region_cost(obs::RunReport& report) {
  std::printf("\n== Ablation C: server per-region cost on datatype READs "
              "(600^3 block) ==\n");
  std::printf("  %-22s %10s %10s %10s   (aggregate MB/s)\n", "cost/region",
              "8 cli", "27 cli", "64 cli");
  const double total = 864e6;
  for (const SimTime cost :
       {SimTime{0}, SimTime{2000}, SimTime{8000}, SimTime{16000}}) {
    net::ClusterConfig cfg;
    cfg.server.per_dataloop_region_cost = cost;
    double mbs[3];
    int i = 0;
    for (const int m : {2, 3, 4}) {
      mbs[i] = total / run_block3d_read(cfg, m) / 1e6;
      char key[64];
      std::snprintf(key, sizeof key, "region_cost_%lldns_%dcli_mbps",
                    static_cast<long long>(cost), m * m * m);
      report.scalars[key] = mbs[i];
      ++i;
    }
    std::printf("  %-20.1f us %10.1f %10.1f %10.1f\n",
                static_cast<double>(cost) / 1000.0, mbs[0], mbs[1], mbs[2]);
  }
  std::printf("  paper §4.3: the prototype builds offset-length lists on "
              "the server, so reads dip as client count grows; a "
              "full-featured datatype implementation (0 us) does not\n");
}

// ---- D: fabric bisection -------------------------------------------------------------

void ablate_fabric(obs::RunReport& report) {
  std::printf("\n== Ablation D: fabric bisection vs two-phase's double "
              "movement (FLASH write, 32 clients) ==\n");
  std::printf("  %-14s %14s %14s\n", "fabric MB/s", "two-phase s",
              "datatype s");
  for (const double fabric : {0.0, 120.0, 60.0, 30.0}) {
    net::ClusterConfig cfg;
    cfg.net.fabric_bandwidth_bytes_per_s = fabric * 1024 * 1024;
    const double tp = run_flash_once(cfg, Method::kTwoPhase, 32);
    const double dt = run_flash_once(cfg, Method::kDatatype, 32);
    char key[64];
    std::snprintf(key, sizeof key, "fabric_%.0fmbps_two_phase_sec", fabric);
    report.scalars[key] = tp;
    std::snprintf(key, sizeof key, "fabric_%.0fmbps_datatype_sec", fabric);
    report.scalars[key] = dt;
    if (fabric == 0.0) {
      std::printf("  %-14s %14.2f %14.2f\n", "unlimited", tp, dt);
    } else {
      std::printf("  %-14.0f %14.2f %14.2f\n", fabric, tp, dt);
    }
  }
  std::printf("  the tighter the shared fabric, the more two-phase pays "
              "for moving the data twice (paper §4.4)\n");
}

// ---- E: server-side datatype cache (paper §5 future work) --------------------------

void ablate_dataloop_cache(obs::RunReport& report) {
  std::printf("\n== Ablation E: server-side datatype cache (paper §5 "
              "future work) ==\n");
  // A deep nested type reused across 200 operations (checkpoint-every-
  // iteration pattern): with the cache, servers decode it once.
  for (const bool cache : {false, true}) {
    net::ClusterConfig cfg;
    cfg.num_servers = 4;
    cfg.num_clients = 1;
    cfg.server.dataloop_cache = cache;
    pfs::Cluster cluster(cfg);
    auto client = cluster.make_client(0);
    client->set_transfer_data(false);
    cluster.scheduler().spawn([](pfs::Client& c) -> Task<void> {
      dl::DataloopPtr loop = dl::make_leaf(8);
      for (int d = 0; d < 12; ++d) {
        loop = dl::make_vector(2, 1, (64 << d), loop);
      }
      for (int op = 0; op < 200; ++op) {
        (void)co_await c.write_datatype(1, loop, 0, 1, 0, loop->size,
                                        nullptr);
      }
    }(*client));
    cluster.run();
    std::uint64_t decoded = 0, hits = 0;
    for (int srv = 0; srv < 4; ++srv) {
      decoded += cluster.server(srv).stats().dataloops_decoded;
      hits += cluster.server(srv).stats().dataloop_cache_hits;
    }
    std::printf("  cache %-4s -> %8.3f sim s  (decodes %llu, hits %llu)\n",
                cache ? "on" : "off",
                to_seconds(cluster.scheduler().now()),
                static_cast<unsigned long long>(decoded),
                static_cast<unsigned long long>(hits));
    report.scalars[cache ? "dataloop_cache_on_sec"
                         : "dataloop_cache_off_sec"] =
        to_seconds(cluster.scheduler().now());
    report.scalars[cache ? "dataloop_cache_on_decodes"
                         : "dataloop_cache_off_decodes"] =
        static_cast<double>(decoded);
  }
  std::printf("  repeated identical types skip the per-request decode "
              "entirely when cached\n");
}

// ---- F: prototype vs "full-featured" datatype I/O (paper §5) ------------------------

void ablate_pvfs2_mode(obs::RunReport& report) {
  std::printf("\n== Ablation F: prototype vs full-featured datatype I/O "
              "(paper §5, the PVFS2 direction) ==\n");
  std::printf("  %-12s %14s %14s\n", "mode", "FLASH 32cli s",
              "3D read 64cli s");
  for (const bool full : {false, true}) {
    net::ClusterConfig cfg;
    if (full) cfg = cfg.pvfs2_mode();
    const double flash = run_flash_once(cfg, Method::kDatatype, 32);
    const double block = run_block3d_read(cfg, 4);
    const char* mode = full ? "pvfs2" : "prototype";
    report.scalars[std::string(mode) + "_flash32_sec"] = flash;
    report.scalars[std::string(mode) + "_block64_sec"] = block;
    std::printf("  %-12s %14.2f %14.2f\n",
                full ? "full (pvfs2)" : "prototype", flash, block);
  }
  std::printf("  removing job/access-list creation on client and server "
              "\"further widen[s] the performance gap\" (paper §5)\n");
}

// ---- G: two-phase write-back strategy for holey rounds (paper §2.3/§5) --------------

double run_sparse_collective_write(net::CbWriteMode mode) {
  // 8 ranks each write every 16th 1 KiB block of a 128 MiB file: every
  // two-phase round has holes, forcing the write-back strategy to matter.
  constexpr int kRanks = 8;
  net::ClusterConfig cfg;
  cfg.cb_write_noncontig = mode;
  cfg.num_clients = kRanks;
  pfs::Cluster cluster(cfg);
  coll::Communicator comm(cluster.scheduler(), cluster.network(),
                          cluster.config(), kRanks);
  std::vector<std::unique_ptr<pfs::Client>> clients;
  std::vector<std::unique_ptr<io::Context>> contexts;
  std::vector<std::unique_ptr<mpiio::File>> files;
  for (int r = 0; r < kRanks; ++r) {
    clients.push_back(cluster.make_client(r));
    clients.back()->set_transfer_data(false);
    contexts.push_back(std::make_unique<io::Context>(
        io::Context{cluster.scheduler(), *clients.back(), cluster.config()}));
    files.push_back(std::make_unique<mpiio::File>(*contexts.back()));
  }
  cluster.scheduler().spawn([](mpiio::File& f) -> Task<void> {
    (void)co_await f.open("/sparse", true);
  }(*files[0]));
  cluster.run();
  const SimTime t0 = cluster.scheduler().now();
  for (int r = 0; r < kRanks; ++r) {
    cluster.scheduler().spawn(
        [](mpiio::File& f, coll::Communicator& c, int rank) -> Task<void> {
          if (rank != 0) (void)co_await f.open("/sparse", false);
          auto block = types::contiguous(1024, types::byte_t());
          auto strided = types::resized(block, 0, 16 * 1024);
          f.set_view(rank * 1024, types::byte_t(), strided);
          auto memtype = types::contiguous(8192 * 1024, types::byte_t());
          (void)co_await f.write_at_all(c, rank, 0, nullptr, 1, memtype,
                                        Method::kTwoPhase);
        }(*files[r], comm, r));
  }
  cluster.run();
  return to_seconds(cluster.scheduler().now() - t0);
}

void ablate_cb_write_back(obs::RunReport& report) {
  std::printf("\n== Ablation G: two-phase write-back for holey rounds "
              "(sparse 8-rank collective, half the bytes untouched) ==\n");
  std::printf("  %-14s %12s\n", "strategy", "sim sec");
  const double rmw = run_sparse_collective_write(net::CbWriteMode::kRmw);
  const double list = run_sparse_collective_write(net::CbWriteMode::kList);
  const double dtype =
      run_sparse_collective_write(net::CbWriteMode::kDatatype);
  report.scalars["cb_write_rmw_sec"] = rmw;
  report.scalars["cb_write_list_sec"] = list;
  report.scalars["cb_write_datatype_sec"] = dtype;
  std::printf("  %-14s %12.2f\n", "RMW hull", rmw);
  std::printf("  %-14s %12.2f\n", "list I/O", list);
  std::printf("  %-14s %12.2f\n", "datatype I/O", dtype);
  std::printf("  noncontiguous write-back skips the hull read entirely — "
              "\"leveraging datatype I/O underneath two-phase\" (§5)\n");
}

int ablation_main(int argc, char** argv) {
  obs::RunReport report;
  report.bench = "ablation";
  ablate_coalescing(report);
  ablate_list_cap(report);
  ablate_server_region_cost(report);
  ablate_fabric(report);
  ablate_dataloop_cache(report);
  ablate_pvfs2_mode(report);
  ablate_cb_write_back(report);
  bench::write_report(report, argc, argv, "BENCH_ablation.json");
  return 0;
}

}  // namespace
}  // namespace dtio

int main(int argc, char** argv) { return dtio::ablation_main(argc, argv); }
