#include "pfs/server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/crc32.h"
#include "common/logging.h"
#include "dataloop/cursor.h"
#include "dataloop/serialize.h"
#include "net/fault.h"

namespace dtio::pfs {

namespace {

/// Shared region-application state for the three data interfaces: walks
/// logical regions in stream order, clips them to this server's strips,
/// and moves bytes between the bstream and the request/reply buffers.
struct Applier {
  FileLayout& layout;
  int my_server;
  Bstream& bstream;
  bool is_write;
  bool carry_data;
  const DataBuffer& request_data;  ///< write payload (may be null)
  DataBuffer reply_data;           ///< read gather target (may be null)
  /// When the buffer cache is on, all bstream traffic routes through it
  /// (physical offsets are server-local and dense, so cache blocks map
  /// directly onto disk adjacency); `plan` collects the disk work the
  /// handler charges afterwards. Null = legacy direct path.
  cache::BlockCache* cache = nullptr;
  cache::AccessPlan* plan = nullptr;
  std::uint64_t handle = 0;
  /// When set (replicated writes), every applied physical region is
  /// recorded so the handler can advance the covered strips' write epochs.
  std::vector<Region>* applied_out = nullptr;

  std::int64_t my_pos = 0;     ///< bytes of MY data consumed/produced
  std::int64_t pieces = 0;     ///< every piece walked (all servers)
  std::int64_t my_pieces = 0;  ///< pieces on this server
  std::int64_t my_bytes = 0;

  void apply(Region logical) {
    layout.map_region(logical, [&](int server, Region phys, std::int64_t) {
      ++pieces;
      if (server != my_server) return;
      ++my_pieces;
      my_bytes += phys.length;
      if (is_write) {
        if (cache != nullptr) {
          cache->write(handle, phys.offset, phys.length,
                       (carry_data && request_data)
                           ? std::span<const std::uint8_t>(
                                 request_data->data() + my_pos,
                                 static_cast<std::size_t>(phys.length))
                           : std::span<const std::uint8_t>{},
                       *plan);
        } else if (carry_data && request_data) {
          bstream.write(phys.offset,
                        std::span<const std::uint8_t>(
                            request_data->data() + my_pos,
                            static_cast<std::size_t>(phys.length)));
        } else {
          bstream.note_write(phys.offset, phys.length);
        }
        if (applied_out != nullptr) applied_out->push_back(phys);
      } else if (cache != nullptr) {
        std::span<std::uint8_t> out;
        if (carry_data && reply_data) {
          const std::size_t old = reply_data->size();
          reply_data->resize(old + static_cast<std::size_t>(phys.length));
          out = std::span<std::uint8_t>(
              reply_data->data() + old, static_cast<std::size_t>(phys.length));
        }
        // Timing-only reads (empty out) still walk the cache: residency
        // and readahead are what the timing model is here to capture.
        cache->read(handle, phys.offset, phys.length, out, *plan);
      } else if (carry_data && reply_data) {
        const std::size_t old = reply_data->size();
        reply_data->resize(old + static_cast<std::size_t>(phys.length));
        bstream.read(phys.offset,
                     std::span<std::uint8_t>(reply_data->data() + old,
                                             static_cast<std::size_t>(
                                                 phys.length)));
      }
      my_pos += phys.length;
    });
  }
};

}  // namespace

IOServer::IOServer(sim::Scheduler& sched, net::Network& network,
                   const net::ClusterConfig& config, int server_index)
    : sched_(&sched),
      network_(&network),
      config_(&config),
      server_index_(server_index),
      layout_(config.num_servers, static_cast<std::int64_t>(config.strip_size)),
      disk_(sched, 1),
      cpu_(sched, 1) {
  store_adapter_.server = this;
  const net::ServerConfig& sc = config.server;
  if (sc.cache_block_bytes > 0 && sc.cache_capacity_bytes > 0) {
    cache::CacheConfig cc;
    cc.block_bytes = sc.cache_block_bytes;
    cc.capacity_bytes = sc.cache_capacity_bytes;
    cc.write_through = sc.cache_write_through;
    cc.readahead_window = sc.cache_readahead_blocks;
    cc.readahead_min_run = sc.cache_readahead_min_run;
    cc.dirty_watermark = sc.cache_dirty_watermark;
    cache_ = std::make_unique<cache::BlockCache>(cc, store_adapter_);
  }
}

void IOServer::start() { sched_->spawn(run()); }

void IOServer::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    obs_requests_ = nullptr;
    obs_disk_bytes_ = nullptr;
    obs_subtrees_skipped_ = nullptr;
    obs_pieces_pruned_ = nullptr;
    obs_replays_ = nullptr;
    obs_crashes_ = nullptr;
    obs_crc_rejects_ = nullptr;
    obs_shed_depth_ = nullptr;
    obs_shed_bytes_ = nullptr;
    obs_cache_hits_ = nullptr;
    obs_cache_misses_ = nullptr;
    obs_cache_readahead_ = nullptr;
    obs_cache_evictions_ = nullptr;
    obs_cache_flushed_ = nullptr;
    obs_dl_cache_hits_ = nullptr;
    obs_dl_cache_misses_ = nullptr;
    obs_crash_discarded_ = nullptr;
    obs_resync_strips_ = nullptr;
    obs_resync_bytes_ = nullptr;
    return;
  }
  obs_requests_ = &obs->metrics.counter(
      "server_requests_total", obs::label("node", server_index_));
  obs_disk_bytes_ = &obs->metrics.counter(
      "server_disk_bytes_total", obs::label("node", server_index_));
  obs_subtrees_skipped_ = &obs->metrics.counter(
      "server_subtrees_skipped_total", obs::label("node", server_index_));
  obs_pieces_pruned_ = &obs->metrics.counter(
      "server_pieces_pruned_total", obs::label("node", server_index_));
  obs_replays_ = &obs->metrics.counter(
      "server_replays_suppressed_total", obs::label("node", server_index_));
  obs_crashes_ = &obs->metrics.counter(
      "server_crashes_total", obs::label("node", server_index_));
  obs_crc_rejects_ = &obs->metrics.counter(
      "server_crc_rejects_total", obs::label("node", server_index_));
  obs_shed_depth_ = &obs->metrics.counter(
      "server_shed_total", obs::label("reason", "depth", "node", server_index_));
  obs_shed_bytes_ = &obs->metrics.counter(
      "server_shed_total", obs::label("reason", "bytes", "node", server_index_));
  obs_cache_hits_ = &obs->metrics.counter(
      "server_cache_hits_total", obs::label("node", server_index_));
  obs_cache_misses_ = &obs->metrics.counter(
      "server_cache_misses_total", obs::label("node", server_index_));
  obs_cache_readahead_ = &obs->metrics.counter(
      "server_cache_readahead_issued_total", obs::label("node", server_index_));
  obs_cache_evictions_ = &obs->metrics.counter(
      "server_cache_evictions_total", obs::label("node", server_index_));
  obs_cache_flushed_ = &obs->metrics.counter(
      "server_cache_dirty_flushed_bytes_total",
      obs::label("node", server_index_));
  obs_dl_cache_hits_ = &obs->metrics.counter(
      "server_dataloop_cache_hits_total", obs::label("node", server_index_));
  obs_dl_cache_misses_ = &obs->metrics.counter(
      "server_dataloop_cache_misses_total", obs::label("node", server_index_));
  obs_crash_discarded_ = &obs->metrics.counter(
      "server_crash_discarded_total", obs::label("node", server_index_));
  if (config_->replication > 1) {
    obs_resync_strips_ = &obs->metrics.counter(
        "server_resync_strips_pulled_total", obs::label("node", server_index_));
    obs_resync_bytes_ = &obs->metrics.counter(
        "server_resync_bytes_pulled_total", obs::label("node", server_index_));
  }
}

void IOServer::schedule_crash(SimTime at, SimTime restart_delay) {
  sched_->schedule_call(at, [this] { crash(); });
  sched_->schedule_call(at + restart_delay, [this] { restart(); });
}

void IOServer::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  ++stats_.crashes;
  if (obs_ != nullptr) obs_crashes_->add(1);
  const std::size_t dropped = network_->mailbox(server_index_).clear_queue();
  stats_.crash_discarded += dropped;
  if (obs_ != nullptr && dropped > 0) {
    obs_crash_discarded_->add(static_cast<std::uint64_t>(dropped));
  }
  // Process state dies with the process: decoded-datatype cache and the
  // replay window restart cold. Namespace, bstreams, and the lock table
  // model durable storage and survive.
  loop_cache_.clear();
  loop_cache_order_.clear();
  replay_acks_.clear();
  replay_order_.clear();
  if (cache_ != nullptr) {
    // The buffer cache is process memory. Write-through has nothing
    // pending; write-back loses whatever was staged but never flushed.
    std::vector<cache::IoSeg> lost_extents;
    const std::uint64_t lost = cache_->drop_all(
        config_->replication > 1 ? &lost_extents : nullptr);
    stats_.cache_dirty_lost_bytes += lost;
    // Replication: the lost dirty bytes never reached this server's
    // bstream, so its copy of every covered strip trails the epoch it
    // already advertised. Zero those epochs — restart resync then
    // re-pulls the whole strip from a replica peer, whose copy is
    // write-through and therefore complete.
    const auto strip_size = static_cast<std::int64_t>(config_->strip_size);
    for (const cache::IoSeg& seg : lost_extents) {
      const std::int64_t first = seg.offset / strip_size;
      const std::int64_t last = (seg.offset + seg.bytes - 1) / strip_size;
      for (std::int64_t s = first; s <= last; ++s) {
        strip_epochs_[{seg.handle, server_index_, s}] = 0;
      }
    }
    if (tracer_ != nullptr && lost > 0) {
      tracer_->record({sched_->now(), "cache_lost", server_index_, -1, 0,
                       lost, ""});
    }
  }
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "crash", server_index_, -1, 0,
                     static_cast<std::uint64_t>(dropped), ""});
  }
  DTIO_DEBUG("srv" << server_index_ << " CRASH, dropped " << dropped
                   << " queued messages");
}

void IOServer::restart() {
  if (!crashed_) return;
  crashed_ = false;
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "restart", server_index_, -1, 0, 0, ""});
  }
  DTIO_DEBUG("srv" << server_index_ << " restart");
  if (std::min(config_->replication, config_->num_servers) > 1) {
    // Replicated restart: the outage may have left this server's copies
    // behind its peers (writes it missed, dirty write-back data the crash
    // destroyed). Refuse data ops until the resync pull settles.
    resyncing_ = true;
    sched_->spawn(resync());
  }
}

void IOServer::note_strip_writes(std::uint64_t handle, int primary,
                                 std::int64_t offset, std::int64_t length) {
  if (config_->replication <= 1 || length <= 0) return;
  const auto strip_size = static_cast<std::int64_t>(config_->strip_size);
  const std::int64_t first = offset / strip_size;
  const std::int64_t last = (offset + length - 1) / strip_size;
  for (std::int64_t s = first; s <= last; ++s) {
    ++strip_epochs_[{handle, primary, s}];
  }
}

sim::Task<void> IOServer::resync() {
  ++stats_.resyncs;
  const std::uint64_t my_epoch = epoch_;
  obs::SpanId span = 0;
  if (obs_ != nullptr) {
    span = obs_->spans.begin("server_resync", server_index_, sched_->now(), 0,
                             0, obs::Phase::kServerResync);
  }
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "resync_begin", server_index_, -1, 0, 0,
                     ""});
  }
  const int n = config_->num_servers;
  const int r = std::min(config_->replication, n);
  std::uint64_t pulled_strips = 0;
  std::uint64_t pulled_bytes = 0;
  // Peers sharing strips with this server: the r-1 servers before it (we
  // replicate their primaries) and the r-1 after (they replicate ours).
  std::vector<int> peers;
  for (int d = -(r - 1); d <= r - 1; ++d) {
    if (d == 0) continue;
    const int peer = ((server_index_ + d) % n + n) % n;
    if (peer != server_index_ &&
        std::find(peers.begin(), peers.end(), peer) == peers.end()) {
      peers.push_back(peer);
    }
  }
  for (const int peer : peers) {
    bool ok = false;
    const int attempts = std::max(1, config_->server.resync_pull_attempts);
    for (int attempt = 0; attempt < attempts && !ok; ++attempt) {
      // Rebuilt per attempt: extents already applied from an earlier peer
      // raised our epochs, so later peers only ship what is still stale.
      Request req;
      req.op = OpKind::kResyncPull;
      req.client_node = server_index_;
      req.reply_tag = kTagReplyBase + (++resync_reply_seq_);
      ResyncPayload payload;
      payload.requester = server_index_;
      payload.epochs.reserve(strip_epochs_.size());
      for (const auto& [key, epoch] : strip_epochs_) {
        payload.epochs.push_back(StripEpoch{std::get<0>(key), std::get<1>(key),
                                            std::get<2>(key), epoch});
      }
      req.payload = std::move(payload);
      const std::uint64_t tag = req.reply_tag;
      const std::uint64_t wire =
          config_->net.per_message_overhead_bytes +
          request_descriptor_bytes(req, config_->list_io_bytes_per_region);
      co_await network_->send(
          server_index_, peer,
          sim::Message(server_index_, kTagRequest, wire, std::move(req)));
      auto maybe = co_await network_->mailbox(server_index_).recv_for(
          peer, tag, config_->server.resync_pull_timeout);
      if (crashed_ || epoch_ != my_epoch) {
        // Crashed again mid-resync: the next restart owns recovery.
        if (obs_ != nullptr) obs_->spans.end(span, sched_->now());
        co_return;
      }
      if (!maybe.has_value()) continue;  // pull timed out; retry
      Reply reply = maybe->take<Reply>();
      if (!reply.ok) {
        // Peer refused — typically because it is resyncing itself. Give it
        // one deadline's worth of time and try again.
        co_await sched_->delay(config_->server.resync_pull_timeout);
        if (crashed_ || epoch_ != my_epoch) {
          if (obs_ != nullptr) obs_->spans.end(span, sched_->now());
          co_return;
        }
        continue;
      }
      for (ResyncExtent& ext : reply.resync) {
        auto& current = strip_epochs_[{ext.handle, ext.primary, ext.strip}];
        if (ext.epoch <= current) continue;  // an earlier peer caught us up
        Bstream& target =
            ext.primary == server_index_
                ? store_[ext.handle]
                : replica_store_[{ext.handle, ext.primary}];
        if (ext.data && !ext.data->empty()) {
          target.write(ext.offset,
                       std::span<const std::uint8_t>(ext.data->data(),
                                                     ext.data->size()));
        } else {
          target.note_write(ext.offset, ext.length);
        }
        current = ext.epoch;
        ++pulled_strips;
        pulled_bytes += static_cast<std::uint64_t>(ext.length);
        ++stats_.disk_accesses;
        co_await disk_.use(
            config_->server.disk_access_overhead +
            transfer_time(static_cast<std::uint64_t>(ext.length),
                          config_->server.disk_bandwidth_bytes_per_s));
        if (crashed_ || epoch_ != my_epoch) {
          if (obs_ != nullptr) obs_->spans.end(span, sched_->now());
          co_return;
        }
      }
      ok = true;
    }
    if (!ok) ++stats_.resync_peers_skipped;
  }
  stats_.resync_strips_pulled += pulled_strips;
  stats_.resync_bytes_pulled += pulled_bytes;
  if (obs_ != nullptr) {
    if (obs_resync_strips_ != nullptr && pulled_strips > 0) {
      obs_resync_strips_->add(pulled_strips);
      obs_resync_bytes_->add(pulled_bytes);
    }
    obs_->spans.set_value(span, static_cast<std::int64_t>(pulled_bytes));
    obs_->spans.end(span, sched_->now());
  }
  resyncing_ = false;
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "resync_done", server_index_, -1, 0,
                     pulled_bytes, ""});
  }
  DTIO_DEBUG("srv" << server_index_ << " resync done: " << pulled_strips
                   << " strips, " << pulled_bytes << " bytes");
}

sim::Task<void> IOServer::handle_resync_pull(Request& request) {
  const auto& p = std::get<ResyncPayload>(request.payload);
  ++stats_.resync_served;
  const int r = std::min(config_->replication, config_->num_servers);
  // Requester epochs by strip; an absent key means the requester has never
  // seen a write for the strip (epoch 0).
  std::map<std::tuple<std::uint64_t, int, std::int64_t>, std::uint64_t>
      theirs;
  for (const StripEpoch& e : p.epochs) {
    theirs[{e.handle, e.primary, e.strip}] = e.epoch;
  }
  Reply reply;
  std::int64_t wire_bytes = 0;
  std::int64_t direct_bytes = 0;  // bstream reads outside the cache
  const auto strip_size = static_cast<std::int64_t>(config_->strip_size);
  cache::AccessPlan plan;
  for (const auto& [key, my_strip_epoch] : strip_epochs_) {
    if (my_strip_epoch == 0) continue;
    const auto& [handle, primary, strip] = key;
    // Only strips the requester also replicates can help it.
    if (!layout_.holds_replica_of(p.requester, primary, r)) continue;
    const auto it = theirs.find(key);
    if (my_strip_epoch <= (it == theirs.end() ? 0 : it->second)) continue;
    const bool mine = primary == server_index_;
    Bstream* bs = nullptr;
    if (mine) {
      bs = &store_[handle];
    } else {
      const auto rit = replica_store_.find({handle, primary});
      if (rit == replica_store_.end()) continue;
      bs = &rit->second;
    }
    const std::int64_t begin = strip * strip_size;
    const std::int64_t end = std::min(begin + strip_size, bs->size());
    if (end <= begin) continue;
    ResyncExtent ext;
    ext.handle = handle;
    ext.primary = primary;
    ext.strip = strip;
    ext.epoch = my_strip_epoch;
    ext.offset = begin;
    ext.length = end - begin;
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(ext.length));
    if (mine && cache_ != nullptr) {
      // Primary strips read through the cache: staged write-back dirty
      // data overlays the bstream, so the donor ships read-your-writes
      // bytes (and pays the miss fills it causes).
      cache_->read(handle, begin, ext.length,
                   std::span<std::uint8_t>(buf->data(), buf->size()), plan);
    } else {
      bs->read(begin, std::span<std::uint8_t>(buf->data(), buf->size()));
      direct_bytes += ext.length;
    }
    ext.data = std::move(buf);
    wire_bytes += ext.length;
    reply.resync.push_back(std::move(ext));
  }
  if (cache_ != nullptr) {
    cache_->maybe_background_flush(plan);
    co_await charge_cache_plan(std::move(plan));
  }
  co_await charge_disk(direct_bytes);
  reply.bytes = wire_bytes;
  send_reply(request.client_node, request.reply_tag, std::move(reply),
             static_cast<std::uint64_t>(wire_bytes));
}

bool IOServer::verify_integrity(const Request& request, Reply& reply) {
  auto fail = [&reply](std::string why) {
    reply.ok = false;
    reply.code = StatusCode::kDataLoss;
    reply.error = std::move(why);
    return false;
  };
  if (request.has_payload_crc) {
    const DataBuffer* data = std::visit(
        [](const auto& payload) -> const DataBuffer* {
          if constexpr (requires { payload.data; }) {
            return &payload.data;
          } else {
            return nullptr;
          }
        },
        request.payload);
    if (data != nullptr && *data && crc32(**data) != request.payload_crc) {
      return fail("write payload CRC mismatch");
    }
  }
  if (const auto* p = std::get_if<DatatypePayload>(&request.payload)) {
    // Verified BEFORE the dataloop cache lookup and decode: a corrupted
    // descriptor must neither poison the cache nor expand into a
    // wrong-but-valid access pattern.
    if (p->loop_crc != 0 && p->encoded_loop &&
        crc32(*p->encoded_loop) != p->loop_crc) {
      return fail("dataloop descriptor CRC mismatch");
    }
  }
  return true;
}

void IOServer::store_ack(const Request& request, const Reply& reply) {
  if (reply.code == StatusCode::kDataLoss) return;
  store_sub_ack(request.client_node, request.op_seq, reply);
}

void IOServer::store_sub_ack(int client_node, std::uint64_t op_seq,
                             const Reply& reply) {
  if (op_seq == 0) return;
  if (crashed_ || req_epoch_ != epoch_) return;  // this request's epoch died
  expire_replay_acks();
  const std::uint64_t key = replay_key(client_node, op_seq);
  if (!replay_acks_.emplace(key, reply).second) return;
  replay_order_.emplace_back(key, sched_->now());
  if (replay_order_.size() > config_->server.replay_window_entries) {
    replay_acks_.erase(replay_order_.front().first);
    replay_order_.pop_front();
  }
}

void IOServer::expire_replay_acks() {
  const SimTime max_age = config_->server.replay_window_max_age;
  if (max_age <= 0) return;
  const SimTime now = sched_->now();
  // Acks strictly older than max_age go; the deque is in store order, so
  // time order, and expiry only ever pops from the front.
  while (!replay_order_.empty() &&
         now - replay_order_.front().second > max_age) {
    replay_acks_.erase(replay_order_.front().first);
    replay_order_.pop_front();
    ++stats_.replays_expired;
  }
}

bool IOServer::over_admission_bounds(const char*& reason) const {
  const net::ServerConfig& cfg = config_->server;
  const sim::Mailbox& mb = network_->mailbox(server_index_);
  if (cfg.max_queue_depth > 0 && mb.queued() >= cfg.max_queue_depth) {
    reason = "depth";
    return true;
  }
  if (cfg.max_queued_bytes > 0 && mb.queued_bytes() >= cfg.max_queued_bytes) {
    reason = "bytes";
    return true;
  }
  return false;
}

SimTime IOServer::backlog_drain_estimate() const {
  const net::ServerConfig& cfg = config_->server;
  const sim::Mailbox& mb = network_->mailbox(server_index_);
  const auto depth = static_cast<std::int64_t>(mb.queued());
  const SimTime per_request = cfg.request_overhead + cfg.disk_access_overhead;
  return scaled(depth * per_request +
                transfer_time(mb.queued_bytes(),
                              cfg.disk_bandwidth_bytes_per_s));
}

double IOServer::degraded_factor_now() const {
  const net::FaultPlan* plan = network_->fault_plan();
  if (plan == nullptr || !plan->has_degraded_windows()) return 1.0;
  return plan->degraded_factor(server_index_, sched_->now());
}

sim::Task<void> IOServer::shed_request(Box<Request> boxed, const char* reason) {
  Request request = boxed.take();
  ++stats_.requests;
  req_trace_ = request.trace_id;
  req_span_ = 0;
  req_epoch_ = epoch_;
  req_degrade_ = degraded_factor_now();
  if (obs_ != nullptr) record_queue_wait(request);
  const bool by_bytes = reason[0] == 'b';
  if (by_bytes) {
    ++stats_.sheds_bytes;
    if (obs_ != nullptr) obs_shed_bytes_->add(1);
  } else {
    ++stats_.sheds_depth;
    if (obs_ != nullptr) obs_shed_depth_->add(1);
  }
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "shed", server_index_, request.client_node,
                     request.reply_tag,
                     static_cast<std::uint64_t>(
                         network_->mailbox(server_index_).queued()),
                     reason});
  }
  DTIO_DEBUG("srv" << server_index_ << " SHED " << op_name(request.op)
                   << " from node " << request.client_node << " (" << reason
                   << ")");
  // Shedding is cheap by design — that is the whole point of admission
  // control: a bounded, small cost per refused request instead of an
  // unbounded queue of full-price ones.
  co_await cpu_.use(scaled(config_->server.shed_cost));
  Reply reply;
  reply.ok = false;
  reply.code = StatusCode::kOverloaded;
  reply.error = std::string("shed: queue ") + reason + " bound exceeded";
  reply.retry_after = backlog_drain_estimate();
  send_reply(request.client_node, request.reply_tag, std::move(reply), 0);
}

void IOServer::record_queue_wait(const Request& request) {
  // Retroactive: by the time the handler dequeues the request its wait is
  // already over, so the span is opened at delivery time and closed at
  // now. Parented beside server_handle (both under the client rpc span),
  // since the wait precedes the handling.
  if (request.delivered_at < 0 || sched_->now() <= request.delivered_at) return;
  const obs::SpanId q = obs_->spans.begin(
      "server_queue", server_index_, request.delivered_at,
      request.parent_span, request.trace_id, obs::Phase::kServerQueue);
  obs_->spans.end(q, sched_->now());
}

void IOServer::sample_counters() {
  // At most one sample per millisecond of simulated time: enough
  // resolution for Perfetto counter tracks, bounded volume on big runs.
  constexpr SimTime kMinInterval = 1'000'000;
  const SimTime now = sched_->now();
  if (last_sample_ >= 0 && now - last_sample_ < kMinInterval) return;

  obs_->spans.sample("queue_depth", server_index_, now,
                     static_cast<double>(
                         network_->mailbox(server_index_).queued()));
  const double disk_busy = disk_.busy_integral();
  const double cpu_busy = cpu_.busy_integral();
  if (last_sample_ >= 0 && now > last_sample_) {
    const auto window = static_cast<double>(now - last_sample_);
    obs_->spans.sample("disk_util", server_index_, now,
                       (disk_busy - last_disk_busy_) / window);
    obs_->spans.sample("cpu_util", server_index_, now,
                       (cpu_busy - last_cpu_busy_) / window);
  }
  last_sample_ = now;
  last_disk_busy_ = disk_busy;
  last_cpu_busy_ = cpu_busy;
}

void IOServer::flush_cache() {
  if (cache_ != nullptr) cache_->flush_all(nullptr);
}

const Bstream* IOServer::find_bstream(std::uint64_t handle) const {
  const auto it = store_.find(handle);
  return it == store_.end() ? nullptr : &it->second;
}

const Bstream* IOServer::find_replica_bstream(std::uint64_t handle,
                                              int primary) const {
  const auto it = replica_store_.find({handle, primary});
  return it == replica_store_.end() ? nullptr : &it->second;
}

sim::Task<void> IOServer::run() {
  sim::Mailbox& mailbox = network_->mailbox(server_index_);
  while (true) {
    sim::Message msg = co_await mailbox.recv(sim::kAnySource, kTagRequest);
    if (crashed_) {
      // The process is down: the message was consumed off the wire but
      // nobody is listening. The client's timeout will notice.
      ++stats_.crash_discarded;
      if (obs_ != nullptr) obs_crash_discarded_->add(1);
      continue;
    }
    const auto backlog = static_cast<std::uint64_t>(mailbox.queued());
    if (backlog > stats_.max_backlog) stats_.max_backlog = backlog;
    // Admission control happens at dequeue (the mailbox IS the queue):
    // when the backlog still waiting behind this request exceeds the
    // configured bound, shed rather than serve. Head-drop is deliberate —
    // the head waited longest, so its client is the most likely to have
    // timed out and retried already. Lock traffic is never shed: the
    // client lock path has no retry layer and a shed would strand it.
    // Resync pulls are recovery-critical control traffic, exempt for the
    // same reason — shedding one stalls a peer's restart for a full
    // timeout.
    const char* shed_reason = nullptr;
    if (over_admission_bounds(shed_reason)) {
      const OpKind op = msg.as<Request>().op;
      if (op != OpKind::kMetaLock && op != OpKind::kMetaUnlock &&
          op != OpKind::kResyncPull) {
        Request shed = msg.take<Request>();
        shed.delivered_at = msg.delivered_at;
        co_await shed_request(Box<Request>(std::move(shed)), shed_reason);
        continue;
      }
    }
    // Requests are handled sequentially: one CPU, one disk per server.
    Request request = msg.take<Request>();
    request.delivered_at = msg.delivered_at;
    co_await handle_request(Box<Request>(std::move(request)));
  }
}

sim::Task<void> IOServer::handle_request(Box<Request> boxed) {
  Request request = boxed.take();
  ++stats_.requests;
  DTIO_DEBUG("srv" << server_index_ << " <- " << op_name(request.op)
                   << " from node " << request.client_node);
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "request", server_index_,
                     request.client_node, request.reply_tag, 0,
                     op_name(request.op)});
  }
  req_trace_ = request.trace_id;
  req_span_ = 0;
  req_epoch_ = epoch_;
  // Straggler modelling: one factor per request, sampled at entry, scales
  // every service-time charge below (decode, per-region CPU, disk).
  req_degrade_ = degraded_factor_now();
  if (req_degrade_ > 1.0) ++stats_.degraded_requests;
  if (obs_ != nullptr) {
    obs_requests_->add(1);
    record_queue_wait(request);
    req_span_ = obs_->spans.begin("server_handle", server_index_,
                                  sched_->now(), request.parent_span,
                                  req_trace_);
    sample_counters();
  }
  obs::SpanId decode_span = 0;
  if (obs_ != nullptr) {
    decode_span = obs_->spans.begin("request_decode", server_index_,
                                    sched_->now(), req_span_, req_trace_,
                                    obs::Phase::kServerDecode);
  }
  co_await sched_->delay(scaled(config_->server.request_overhead));
  if (obs_ != nullptr) obs_->spans.end(decode_span, sched_->now());
  if (crashed_ || req_epoch_ != epoch_) {
    // Crashed while decoding this request: the work evaporates.
    if (obs_ != nullptr) obs_->spans.end(req_span_, sched_->now());
    co_return;
  }

  if (resyncing_) {
    // Restart resync in progress: this server's copies may still trail its
    // replica peers, so data ops are refused. Reads get a fast, typed
    // kUnavailable — the client fails over to a replica, keeping read
    // availability at 100% through the phase. Writes get kOverloaded with
    // a retry_after hint and retry HERE later: accepting a write that a
    // concurrent resync pull could then overwrite with pre-crash bytes
    // would silently diverge the copies. Peer resync pulls are refused
    // too — a copy that is itself catching up is not a donor.
    const bool is_write = request.op == OpKind::kContigWrite ||
                          request.op == OpKind::kListWrite ||
                          request.op == OpKind::kDatatypeWrite ||
                          request.op == OpKind::kBatchWrite;
    const bool is_read = request.op == OpKind::kContigRead ||
                         request.op == OpKind::kListRead ||
                         request.op == OpKind::kDatatypeRead ||
                         request.op == OpKind::kResyncPull;
    if (is_write || is_read) {
      ++stats_.resync_refused;
      Reply reply;
      reply.ok = false;
      reply.error = "resync in progress";
      if (is_write) {
        reply.code = StatusCode::kOverloaded;
        reply.retry_after = config_->server.resync_pull_timeout;
      } else {
        reply.code = StatusCode::kUnavailable;
      }
      if (tracer_ != nullptr) {
        tracer_->record({sched_->now(), "resync_refuse", server_index_,
                         request.client_node, request.reply_tag, 0,
                         op_name(request.op)});
      }
      send_reply(request.client_node, request.reply_tag, std::move(reply), 0);
      if (obs_ != nullptr) obs_->spans.end(req_span_, sched_->now());
      co_return;
    }
  }

  // Idempotent replay: a retried logical op whose ack is still in the
  // window is re-acknowledged (to the retry's fresh reply tag) without
  // re-applying — the first execution's effects stand.
  if (request.op_seq != 0) {
    expire_replay_acks();
    const auto it =
        replay_acks_.find(replay_key(request.client_node, request.op_seq));
    if (it != replay_acks_.end()) {
      ++stats_.replays_suppressed;
      if (obs_ != nullptr) obs_replays_->add(1);
      if (tracer_ != nullptr) {
        tracer_->record({sched_->now(), "replay", server_index_,
                         request.client_node, request.reply_tag, 0,
                         op_name(request.op)});
      }
      send_reply(request.client_node, request.reply_tag, Reply(it->second), 0);
      if (obs_ != nullptr) obs_->spans.end(req_span_, sched_->now());
      co_return;
    }
  }

  // Payload integrity: refuse corrupted-in-flight requests with a typed,
  // retryable error instead of storing garbage.
  Reply integrity;
  if (!verify_integrity(request, integrity)) {
    ++stats_.bad_requests;
    ++stats_.crc_rejects;
    if (obs_ != nullptr) obs_crc_rejects_->add(1);
    if (tracer_ != nullptr) {
      tracer_->record({sched_->now(), "crc_reject", server_index_,
                       request.client_node, request.reply_tag, 0,
                       op_name(request.op)});
    }
    send_reply(request.client_node, request.reply_tag, std::move(integrity),
               0);
    if (obs_ != nullptr) obs_->spans.end(req_span_, sched_->now());
    co_return;
  }

  switch (request.op) {
    case OpKind::kContigRead:
    case OpKind::kContigWrite:
      co_await handle_contig(request);
      break;
    case OpKind::kListRead:
    case OpKind::kListWrite:
      co_await handle_list(request);
      break;
    case OpKind::kDatatypeRead:
    case OpKind::kDatatypeWrite:
      co_await handle_datatype(request);
      break;
    case OpKind::kBatchWrite:
      co_await handle_batch(request);
      break;
    case OpKind::kResyncPull:
      co_await handle_resync_pull(request);
      break;
    case OpKind::kMetaLock: {
      const auto handle = std::get<MetaPayload>(request.payload).handle;
      if (locked_.insert(handle).second) {
        send_reply(request.client_node, request.reply_tag, Reply{}, 0);
      } else {
        // Grant deferred until the current holder unlocks (FIFO).
        lock_waiters_[handle].emplace_back(request.client_node,
                                           request.reply_tag);
      }
      break;
    }
    case OpKind::kMetaUnlock: {
      const auto handle = std::get<MetaPayload>(request.payload).handle;
      auto waiters = lock_waiters_.find(handle);
      if (waiters != lock_waiters_.end() && !waiters->second.empty()) {
        const auto [node, tag] = waiters->second.front();
        waiters->second.pop_front();
        send_reply(node, tag, Reply{}, 0);  // ownership transfers
      } else {
        locked_.erase(handle);
      }
      send_reply(request.client_node, request.reply_tag, Reply{}, 0);
      break;
    }
    default: {
      Reply reply;
      handle_meta(request, reply);
      store_ack(request, reply);  // create/remove are sequenced by clients
      send_reply(request.client_node, request.reply_tag, std::move(reply), 0);
      break;
    }
  }
  if (obs_ != nullptr) obs_->spans.end(req_span_, sched_->now());
}

sim::Task<void> IOServer::handle_contig(Request& request) {
  const auto& p = std::get<ContigPayload>(request.payload);
  const bool is_write = request.op == OpKind::kContigWrite;
  // Replica traffic (replica_of >= 0) acts AS the primary for clipping and
  // routes bytes to the (handle, primary) replica bstream, bypassing the
  // buffer cache: replica copies are the crash-durability backstop, so
  // they go write-through.
  const bool replica = request.replica_of >= 0;
  const int acting = replica ? request.replica_of : server_index_;
  cache::BlockCache* cache = replica ? nullptr : cache_.get();
  Bstream& target = replica
                        ? replica_store_[{request.handle, request.replica_of}]
                        : store_[request.handle];
  std::vector<Region> applied;
  cache::AccessPlan plan;
  Applier applier{layout_,
                  acting,
                  target,
                  is_write,
                  request.carry_data,
                  p.data,
                  (!is_write && request.carry_data)
                      ? std::make_shared<std::vector<std::uint8_t>>()
                      : nullptr,
                  cache,
                  &plan,
                  request.handle,
                  (is_write && config_->replication > 1) ? &applied : nullptr};
  if (applier.reply_data) {
    applier.reply_data->reserve(
        static_cast<std::size_t>(layout_.max_server_bytes(p.length)));
  }
  applier.apply(Region{p.offset, p.length});
  for (const Region& reg : applied) {
    note_strip_writes(request.handle, acting, reg.offset, reg.length);
  }

  stats_.regions_walked += static_cast<std::uint64_t>(applier.pieces);
  stats_.my_pieces += static_cast<std::uint64_t>(applier.my_pieces);
  co_await charge_regions(applier.pieces,
                          is_write ? config_->server.per_region_cost_write
                                   : config_->server.per_region_cost);
  if (cache != nullptr) {
    cache->maybe_background_flush(plan);
    co_await charge_cache_plan(std::move(plan));
  } else {
    co_await charge_disk(applier.my_bytes);
  }
  finish_data_reply(request, is_write, applier.my_bytes,
                    std::move(applier.reply_data));
}

sim::Task<void> IOServer::handle_list(Request& request) {
  const auto& p = std::get<ListPayload>(request.payload);
  const bool is_write = request.op == OpKind::kListWrite;
  const bool replica = request.replica_of >= 0;
  const int acting = replica ? request.replica_of : server_index_;
  cache::BlockCache* cache = replica ? nullptr : cache_.get();
  Bstream& target = replica
                        ? replica_store_[{request.handle, request.replica_of}]
                        : store_[request.handle];
  std::vector<Region> applied;
  cache::AccessPlan plan;
  Applier applier{layout_,
                  acting,
                  target,
                  is_write,
                  request.carry_data,
                  p.data,
                  (!is_write && request.carry_data)
                      ? std::make_shared<std::vector<std::uint8_t>>()
                      : nullptr,
                  cache,
                  &plan,
                  request.handle,
                  (is_write && config_->replication > 1) ? &applied : nullptr};
  if (applier.reply_data) {
    std::int64_t window = 0;
    for (const Region& r : p.regions) window += r.length;
    applier.reply_data->reserve(
        static_cast<std::size_t>(layout_.max_server_bytes(window)));
  }
  for (const Region& r : p.regions) applier.apply(r);
  for (const Region& reg : applied) {
    note_strip_writes(request.handle, acting, reg.offset, reg.length);
  }

  stats_.regions_walked += static_cast<std::uint64_t>(applier.pieces);
  stats_.my_pieces += static_cast<std::uint64_t>(applier.my_pieces);
  co_await charge_regions(applier.pieces,
                          is_write ? config_->server.per_region_cost_write
                                   : config_->server.per_region_cost);
  if (cache != nullptr) {
    cache->maybe_background_flush(plan);
    co_await charge_cache_plan(std::move(plan));
  } else {
    co_await charge_disk(applier.my_bytes);
  }
  finish_data_reply(request, is_write, applier.my_bytes,
                    std::move(applier.reply_data));
}

sim::Task<void> IOServer::handle_batch(Request& request) {
  auto& p = std::get<BatchPayload>(request.payload);
  const std::size_t n = p.sub_ops.size();
  ++stats_.batch_requests;
  stats_.batch_sub_ops += static_cast<std::uint64_t>(n);
  // Replica envelopes carry the primary's pre-clipped physical sub-ops
  // verbatim; they land in the (handle, primary) replica bstream, cache
  // bypassed (write-through — see handle_contig).
  const bool replica = request.replica_of >= 0;
  const int acting = replica ? request.replica_of : server_index_;

  // The envelope itself is unsequenced (op_seq 0, so it skipped the
  // top-level replay check); each sub-op carries its own replay identity.
  // Sub-op offsets are PHYSICAL — the client pre-clipped them to this
  // server's strips — so application skips the layout walk entirely: one
  // decode charge and one region charge per coalesced run is the win over
  // per-write RPCs.
  Reply reply;
  reply.sub_acked.assign(n, 0);
  std::int64_t applied_subs = 0;
  std::int64_t applied_bytes = 0;
  std::int64_t acked_bytes = 0;
  bool crc_fail = false;
  cache::AccessPlan plan;
  expire_replay_acks();
  for (std::size_t i = 0; i < n; ++i) {
    const BatchSubOp& sub = p.sub_ops[i];
    if (sub.op_seq != 0 &&
        replay_acks_.find(replay_key(request.client_node, sub.op_seq)) !=
            replay_acks_.end()) {
      // Already applied by an earlier attempt of this envelope (or a
      // previous envelope): re-ack without re-applying.
      reply.sub_acked[i] = 1;
      acked_bytes += sub.length;
      ++stats_.replays_suppressed;
      ++stats_.batch_subs_replayed;
      if (obs_ != nullptr) obs_replays_->add(1);
      continue;
    }
    if (sub.has_payload_crc && sub.data && crc32(*sub.data) != sub.payload_crc) {
      // Leave this sub-op unacked: the retry resends it with clean data
      // while the acked sub-ops are stripped client-side.
      ++stats_.crc_rejects;
      if (obs_ != nullptr) obs_crc_rejects_->add(1);
      crc_fail = true;
      continue;
    }
    if (!replica && cache_ != nullptr) {
      cache_->write(sub.handle, sub.offset, sub.length,
                    (request.carry_data && sub.data)
                        ? std::span<const std::uint8_t>(sub.data->data(),
                                                        sub.data->size())
                        : std::span<const std::uint8_t>{},
                    plan);
    } else {
      Bstream& bstream =
          replica ? replica_store_[{sub.handle, request.replica_of}]
                  : store_[sub.handle];
      if (request.carry_data && sub.data) {
        bstream.write(sub.offset,
                      std::span<const std::uint8_t>(sub.data->data(),
                                                    sub.data->size()));
      } else {
        bstream.note_write(sub.offset, sub.length);
      }
    }
    note_strip_writes(sub.handle, acting, sub.offset, sub.length);
    reply.sub_acked[i] = 1;
    ++applied_subs;
    applied_bytes += sub.length;
    acked_bytes += sub.length;
  }

  stats_.regions_walked += static_cast<std::uint64_t>(applied_subs);
  stats_.my_pieces += static_cast<std::uint64_t>(applied_subs);
  stats_.bytes_written += static_cast<std::uint64_t>(applied_bytes);
  co_await charge_regions(applied_subs, config_->server.per_region_cost_write);
  if (!replica && cache_ != nullptr) {
    cache_->maybe_background_flush(plan);
    co_await charge_cache_plan(std::move(plan));
  } else {
    co_await charge_disk(applied_bytes);
  }

  // Per-sub-op acks land AFTER the charges, mirroring finish_data_reply:
  // a crash during the disk charge must not leave acks for lost work.
  for (std::size_t i = 0; i < n; ++i) {
    const BatchSubOp& sub = p.sub_ops[i];
    if (reply.sub_acked[i] == 0 || sub.op_seq == 0) continue;
    Reply sub_ack;
    sub_ack.bytes = sub.length;
    store_sub_ack(request.client_node, sub.op_seq, sub_ack);
  }

  reply.bytes = acked_bytes;
  if (crc_fail) {
    reply.ok = false;
    reply.code = StatusCode::kDataLoss;
    reply.error = "batch sub-op payload CRC mismatch";
  }
  send_reply(request.client_node, request.reply_tag, std::move(reply), 0);
}

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

sim::Task<void> IOServer::handle_datatype(Request& request) {
  const auto& p = std::get<DatatypePayload>(request.payload);
  const bool is_write = request.op == OpKind::kDatatypeWrite;

  auto reject = [&](std::string why) {
    ++stats_.bad_requests;
    Reply reply;
    reply.ok = false;
    reply.code = StatusCode::kInvalidArgument;
    reply.error = std::move(why);
    send_reply(request.client_node, request.reply_tag, std::move(reply), 0);
  };
  if (!p.encoded_loop) {
    reject("datatype request without a dataloop");
    co_return;
  }

  // Obtain the dataloop: from the datatype cache when enabled (the paper's
  // S5 future-work optimisation) or by decoding the shipped bytes — the
  // only descriptor cost datatype I/O pays per request.
  dl::DataloopPtr loop;
  std::uint64_t cache_key = 0;
  if (config_->server.dataloop_cache) {
    cache_key = fnv1a(*p.encoded_loop);
    const auto it = loop_cache_.find(cache_key);
    if (it != loop_cache_.end()) {
      loop = it->second.loop;
      // LRU touch: move to the back of the recency list.
      loop_cache_order_.splice(loop_cache_order_.end(), loop_cache_order_,
                               it->second.pos);
      ++stats_.dataloop_cache_hits;
      if (obs_ != nullptr) obs_dl_cache_hits_->add(1);
    }
  }
  if (!loop) {
    try {
      loop = dl::decode(*p.encoded_loop);
    } catch (const std::invalid_argument& e) {
      reject(std::string("malformed dataloop: ") + e.what());
      co_return;
    }
    ++stats_.dataloops_decoded;
    if (config_->server.dataloop_cache && obs_ != nullptr) {
      obs_dl_cache_misses_->add(1);
    }
    obs::SpanId decode_span = 0;
    if (obs_ != nullptr) {
      decode_span = obs_->spans.begin("dataloop_decode", server_index_,
                                      sched_->now(), req_span_, req_trace_,
                                      obs::Phase::kServerDecode);
      obs_->spans.set_value(decode_span, p.loop_node_count);
    }
    co_await sched_->delay(scaled(config_->server.dataloop_decode_cost_per_node *
                                  p.loop_node_count));
    if (obs_ != nullptr) obs_->spans.end(decode_span, sched_->now());
    if (config_->server.dataloop_cache) {
      loop_cache_order_.push_back(cache_key);
      loop_cache_.emplace(cache_key,
                          CachedLoop{loop, std::prev(loop_cache_order_.end())});
      if (loop_cache_order_.size() > config_->server.dataloop_cache_entries) {
        loop_cache_.erase(loop_cache_order_.front());
        loop_cache_order_.pop_front();
      }
    }
  }
  if (p.count < 0 || p.stream_offset < 0 || p.stream_length < 0 ||
      p.stream_offset + p.stream_length > p.count * loop->size) {
    reject("datatype request stream window out of range");
    co_return;
  }

  const bool replica = request.replica_of >= 0;
  const int acting = replica ? request.replica_of : server_index_;
  cache::BlockCache* cache = replica ? nullptr : cache_.get();
  Bstream& target = replica
                        ? replica_store_[{request.handle, request.replica_of}]
                        : store_[request.handle];
  std::vector<Region> applied;
  cache::AccessPlan plan;
  Applier applier{layout_,
                  acting,
                  target,
                  is_write,
                  request.carry_data,
                  p.data,
                  (!is_write && request.carry_data)
                      ? std::make_shared<std::vector<std::uint8_t>>()
                      : nullptr,
                  cache,
                  &plan,
                  request.handle,
                  (is_write && config_->replication > 1) ? &applied : nullptr};
  if (applier.reply_data) {
    // One allocation up front instead of per-piece regrowth: the stream
    // window bounds this server's share of the reply.
    applier.reply_data->reserve(static_cast<std::size_t>(
        layout_.max_server_bytes(p.stream_length)));
  }

  // Expand the dataloop over the requested stream window. The sink feeds
  // regions straight into job/access application — partial processing
  // keeps intermediate storage bounded (here: zero). With pruned
  // expansion (default), a span filter makes the cursor skip whole
  // subtrees whose file span misses this server's strips, so the walk is
  // proportional to this server's data, not the full access; the
  // Applier's own clipping remains as the correctness backstop. The
  // stream limit bounds the window either way (pruned bytes never reach
  // process()'s byte budget).
  dl::Cursor cursor(loop, p.displacement, p.count);
  cursor.seek(p.stream_offset);
  cursor.set_stream_limit(p.stream_offset + p.stream_length);
  struct PruneCtx {
    const FileLayout* layout;
    int server;
  };
  PruneCtx prune_ctx{&layout_, acting};
  if (config_->server.pruned_expansion) {
    cursor.set_filter(
        [](const void* ctx, std::int64_t lo, std::int64_t hi) {
          const auto* c = static_cast<const PruneCtx*>(ctx);
          return c->layout->intersects_server(Region{lo, hi - lo}, c->server);
        },
        &prune_ctx);
  }
  cursor.process(std::numeric_limits<std::int64_t>::max(),
                 std::numeric_limits<std::int64_t>::max(),
                 [&](std::int64_t off, std::int64_t len) {
                   applier.apply(Region{off, len});
                 });
  for (const Region& reg : applied) {
    note_strip_writes(request.handle, acting, reg.offset, reg.length);
  }

  const std::int64_t skipped = cursor.subtrees_skipped();
  stats_.regions_walked += static_cast<std::uint64_t>(applier.pieces);
  stats_.my_pieces += static_cast<std::uint64_t>(applier.my_pieces);
  stats_.subtrees_skipped += static_cast<std::uint64_t>(skipped);
  stats_.pieces_pruned += static_cast<std::uint64_t>(cursor.regions_pruned());
  if (obs_ != nullptr && skipped > 0) {
    obs_subtrees_skipped_->add(static_cast<std::uint64_t>(skipped));
    obs_pieces_pruned_->add(
        static_cast<std::uint64_t>(cursor.regions_pruned()));
  }
  co_await charge_regions(
      applier.pieces, is_write ? config_->server.per_dataloop_region_cost_write
                               : config_->server.per_dataloop_region_cost);
  if (skipped > 0) {
    // Each pruned subtree still costs one span/stripe intersection probe.
    co_await cpu_.use(scaled(config_->server.subtree_probe_cost * skipped));
  }
  if (cache != nullptr) {
    cache->maybe_background_flush(plan);
    co_await charge_cache_plan(std::move(plan));
  } else {
    co_await charge_disk(applier.my_bytes);
  }
  finish_data_reply(request, is_write, applier.my_bytes,
                    std::move(applier.reply_data));
}

void IOServer::finish_data_reply(Request& request, bool is_write,
                                 std::int64_t my_bytes, DataBuffer reply_data) {
  if (is_write) {
    stats_.bytes_written += static_cast<std::uint64_t>(my_bytes);
  } else {
    stats_.bytes_read += static_cast<std::uint64_t>(my_bytes);
  }
  Reply reply;
  reply.bytes = my_bytes;
  reply.data = std::move(reply_data);
  if (!is_write && reply.data) {
    // Host-side only (zero simulated cost): lets the client detect
    // read-reply data corrupted in flight.
    reply.payload_crc = crc32(*reply.data);
    reply.has_payload_crc = true;
  }
  if (is_write) store_ack(request, reply);
  // Read replies carry the data bytes on the wire even in timing-only
  // mode; write acks are small.
  const std::uint64_t wire_data =
      is_write ? 0 : static_cast<std::uint64_t>(my_bytes);
  send_reply(request.client_node, request.reply_tag, std::move(reply),
             wire_data);
}

void IOServer::handle_meta(Request& request, Reply& reply) {
  const auto& p = std::get<MetaPayload>(request.payload);
  switch (request.op) {
    case OpKind::kMetaCreate: {
      if (namespace_.contains(p.path)) {
        reply.ok = false;
        reply.code = StatusCode::kAlreadyExists;
        reply.error = "already exists: " + p.path;
        break;
      }
      const std::uint64_t handle = next_handle_++;
      namespace_[p.path] = handle;
      reply.handle = handle;
      break;
    }
    case OpKind::kMetaOpen: {
      const auto it = namespace_.find(p.path);
      if (it == namespace_.end()) {
        reply.ok = false;
        reply.code = StatusCode::kNotFound;
        reply.error = "no such file: " + p.path;
        break;
      }
      reply.handle = it->second;
      break;
    }
    case OpKind::kMetaRemove: {
      if (namespace_.erase(p.path) == 0) {
        reply.ok = false;
        reply.code = StatusCode::kNotFound;
        reply.error = "no such file: " + p.path;
      }
      break;
    }
    case OpKind::kMetaStat: {
      std::uint64_t handle = p.handle;
      if (handle == 0) {  // resolve by path (metadata server only)
        const auto it = namespace_.find(p.path);
        if (it == namespace_.end()) {
          reply.ok = false;
          reply.code = StatusCode::kNotFound;
          reply.error = "no such file: " + p.path;
          break;
        }
        handle = it->second;
      }
      reply.handle = handle;
      const Bstream* bs = find_bstream(handle);
      reply.local_size = bs ? bs->size() : 0;
      break;
    }
    default:
      reply.ok = false;
      reply.code = StatusCode::kInvalidArgument;
      reply.error = "bad metadata op";
      break;
  }
}

sim::Task<void> IOServer::charge_disk(std::int64_t bytes) {
  if (bytes <= 0) co_return;
  ++stats_.disk_accesses;  // host-side tally; no simulated cost
  obs::SpanId disk_span = 0;
  if (obs_ != nullptr) {
    obs_disk_bytes_->add(static_cast<std::uint64_t>(bytes));
    disk_span = obs_->spans.begin("disk", server_index_, sched_->now(),
                                  req_span_, req_trace_,
                                  obs::Phase::kServerDisk);
    obs_->spans.set_value(disk_span, bytes);
  }
  // The iod streams between disk and network: the request handler blocks
  // only until the pipeline is primed (setup + first chunk); the rest of
  // the disk time drains concurrently with the reply's transmission,
  // still serialised against other requests on this disk.
  constexpr std::int64_t kPipelineChunk = 64 * 1024;
  const std::int64_t first = std::min(bytes, kPipelineChunk);
  co_await disk_.use(
      scaled(config_->server.disk_access_overhead +
             transfer_time(static_cast<std::uint64_t>(first),
                           config_->server.disk_bandwidth_bytes_per_s)));
  const std::int64_t rest = bytes - first;
  if (rest > 0) {
    sched_->start(disk_drain(scaled(transfer_time(
        static_cast<std::uint64_t>(rest),
        config_->server.disk_bandwidth_bytes_per_s))));
  }
  if (obs_ != nullptr) obs_->spans.end(disk_span, sched_->now());
}

sim::Fire IOServer::disk_drain(SimTime hold) { co_await disk_.use(hold); }

sim::Task<void> IOServer::charge_cache_plan(cache::AccessPlan plan) {
  // Mirror the per-request cache counters into stats/obs/trace first, so
  // they land even for a plan with no disk work (pure hits).
  stats_.cache_hits += plan.hits;
  stats_.cache_misses += plan.misses;
  stats_.cache_readahead_issued += plan.readahead_blocks;
  stats_.cache_evictions += plan.evictions;
  stats_.cache_dirty_flushed_bytes += plan.flushed_bytes;
  if (obs_ != nullptr) {
    if (plan.hits > 0) obs_cache_hits_->add(plan.hits);
    if (plan.misses > 0) obs_cache_misses_->add(plan.misses);
    if (plan.readahead_blocks > 0) {
      obs_cache_readahead_->add(plan.readahead_blocks);
    }
    if (plan.evictions > 0) obs_cache_evictions_->add(plan.evictions);
    if (plan.flushed_bytes > 0) obs_cache_flushed_->add(plan.flushed_bytes);
  }
  if (tracer_ != nullptr) {
    if (plan.hits > 0) {
      tracer_->record({sched_->now(), "cache_hit", server_index_, -1, 0,
                       plan.hits, ""});
    }
    if (plan.misses > 0) {
      tracer_->record({sched_->now(), "cache_miss", server_index_, -1, 0,
                       plan.misses, ""});
    }
    if (plan.readahead_blocks > 0) {
      tracer_->record({sched_->now(), "cache_readahead", server_index_, -1, 0,
                       plan.readahead_blocks, ""});
    }
    if (plan.flushed_bytes > 0) {
      tracer_->record({sched_->now(), "cache_flush", server_index_, -1, 0,
                       plan.flushed_bytes, ""});
    }
  }

  // Synchronous segments — miss fills the reply is waiting on and
  // write-through stores — block the handler with the same pipelined
  // shape as the legacy charge_disk: pay setup + the first chunk, drain
  // the rest in the background on the disk resource.
  std::int64_t sync_bytes = 0;
  for (const std::vector<cache::IoSeg>* segs :
       {&plan.sync_reads, &plan.sync_writes}) {
    for (const cache::IoSeg& seg : *segs) sync_bytes += seg.bytes;
  }
  obs::SpanId disk_span = 0;
  if (obs_ != nullptr && sync_bytes > 0) {
    obs_disk_bytes_->add(static_cast<std::uint64_t>(sync_bytes));
    // Typed kServerCache (not kServerDisk): this is the cache-mediated
    // portion — miss fills and write-through stores the reply waited on.
    disk_span = obs_->spans.begin("disk", server_index_, sched_->now(),
                                  req_span_, req_trace_,
                                  obs::Phase::kServerCache);
    obs_->spans.set_value(disk_span, sync_bytes);
  }
  constexpr std::int64_t kPipelineChunk = 64 * 1024;
  for (const std::vector<cache::IoSeg>* segs :
       {&plan.sync_reads, &plan.sync_writes}) {
    for (const cache::IoSeg& seg : *segs) {
      ++stats_.disk_accesses;
      const std::int64_t first = std::min(seg.bytes, kPipelineChunk);
      co_await disk_.use(
          scaled(config_->server.disk_access_overhead +
                 transfer_time(static_cast<std::uint64_t>(first),
                               config_->server.disk_bandwidth_bytes_per_s)));
      if (seg.bytes > first) {
        sched_->start(disk_drain(scaled(transfer_time(
            static_cast<std::uint64_t>(seg.bytes - first),
            config_->server.disk_bandwidth_bytes_per_s))));
      }
    }
  }
  if (obs_ != nullptr && sync_bytes > 0) {
    obs_->spans.end(disk_span, sched_->now());
  }

  // Asynchronous segments — readahead prefetches and write-back flushes —
  // occupy the disk in the background; the handler (and the client) never
  // waits on them, but later requests on this disk do.
  for (const std::vector<cache::IoSeg>* segs :
       {&plan.async_reads, &plan.async_writes}) {
    for (const cache::IoSeg& seg : *segs) {
      ++stats_.disk_accesses;
      if (obs_ != nullptr) {
        obs_disk_bytes_->add(static_cast<std::uint64_t>(seg.bytes));
      }
      sched_->start(disk_drain(
          scaled(config_->server.disk_access_overhead +
                 transfer_time(static_cast<std::uint64_t>(seg.bytes),
                               config_->server.disk_bandwidth_bytes_per_s))));
    }
  }
}

sim::Task<void> IOServer::charge_regions(std::int64_t pieces,
                                         SimTime per_region) {
  if (pieces <= 0) co_return;
  per_region = scaled(per_region);
  obs::SpanId regions_span = 0;
  if (obs_ != nullptr) {
    regions_span = obs_->spans.begin("regions", server_index_, sched_->now(),
                                     req_span_, req_trace_,
                                     obs::Phase::kServerExpand);
    obs_->spans.set_value(regions_span, pieces);
  }
  constexpr std::int64_t kPrimeBatch = 64;  // regions walked before data flows
  const std::int64_t prime = std::min(pieces, kPrimeBatch);
  co_await cpu_.use(per_region * prime);
  if (pieces > prime) {
    sched_->start(cpu_drain(per_region * (pieces - prime)));
  }
  if (obs_ != nullptr) obs_->spans.end(regions_span, sched_->now());
}

sim::Fire IOServer::cpu_drain(SimTime hold) { co_await cpu_.use(hold); }

void IOServer::send_reply(int dst, std::uint64_t tag, Reply reply,
                          std::uint64_t wire_data_bytes) {
  if (crashed_ || req_epoch_ != epoch_) return;  // died mid-request: no reply
  sim::Message msg(server_index_, tag, 64 + wire_data_bytes, std::move(reply));
  // Stamp the current request's trace so the reply's transmission span
  // parents under this server's handling span.
  msg.trace = req_trace_;
  msg.span = req_span_;
  msg.phase = static_cast<std::uint8_t>(obs::Phase::kNetReply);
  // Replies stream in the background so the server can start the next
  // request while its tx link drains (PVFS iod overlapped I/O behaviour).
  sched_->start(send_reply_fire(dst, Box<sim::Message>(std::move(msg))));
}

sim::Fire IOServer::send_reply_fire(int dst, Box<sim::Message> message) {
  co_await network_->send(server_index_, dst, message.take());
}

}  // namespace dtio::pfs
