#include "pfs/layout.h"

#include <algorithm>

namespace dtio::pfs {

int FileLayout::servers_touched(Region region) const noexcept {
  if (region.length <= 0) return 0;
  // Count whole strips covered, capped at the server count.
  const std::int64_t first_strip = region.offset / strip_size_;
  const std::int64_t last_strip = (region.end() - 1) / strip_size_;
  return static_cast<int>(
      std::min<std::int64_t>(last_strip - first_strip + 1, num_servers_));
}

}  // namespace dtio::pfs
