// Cluster: one-stop assembly of the simulated testbed — scheduler,
// interconnect, and the PVFS server fleet — configured like the paper's
// Chiba City setup by default (16 I/O servers, 64 KiB strips, fast
// ethernet). Benches and tests construct a Cluster, create Clients for
// their simulated application processes, spawn those processes, and run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/cost_model.h"
#include "net/network.h"
#include "pfs/client.h"
#include "pfs/server.h"
#include "sim/scheduler.h"
#include "sim/tracer.h"

namespace dtio::pfs {

class Cluster {
 public:
  explicit Cluster(net::ClusterConfig config)
      : config_(config),
        network_(scheduler_, config_.total_nodes(), config_.net) {
    servers_.reserve(static_cast<std::size_t>(config_.num_servers));
    for (int s = 0; s < config_.num_servers; ++s) {
      servers_.push_back(std::make_unique<IOServer>(scheduler_, network_,
                                                    config_, s));
      servers_.back()->start();
    }
  }

  [[nodiscard]] const net::ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] IOServer& server(int index) {
    return *servers_.at(static_cast<std::size_t>(index));
  }

  /// A client for application rank `rank` (node num_servers + rank).
  [[nodiscard]] std::unique_ptr<Client> make_client(int rank) {
    return std::make_unique<Client>(scheduler_, network_, config_, rank);
  }

  /// Run the simulation to completion (servers stay parked on their
  /// mailboxes; the event queue drains when all clients finish).
  void run() { scheduler_.run(); }

  /// Attach an event tracer to the network and every server (nullptr
  /// detaches). The tracer must outlive the traced activity.
  void set_tracer(sim::Tracer* tracer) {
    network_.set_tracer(tracer);
    for (auto& server : servers_) server->set_tracer(tracer);
  }

  /// Resource-utilization summary over [t0, now] — where the simulated
  /// time went: server disks, CPUs, links, and the shared fabric.
  /// Fractions of busy time; the bottleneck resource reads near 1.0.
  [[nodiscard]] std::string utilization_report(SimTime t0 = 0);

 private:
  net::ClusterConfig config_;
  sim::Scheduler scheduler_;
  net::Network network_;
  std::vector<std::unique_ptr<IOServer>> servers_;
};

}  // namespace dtio::pfs
