// Cluster: one-stop assembly of the simulated testbed — scheduler,
// interconnect, and the PVFS server fleet — configured like the paper's
// Chiba City setup by default (16 I/O servers, 64 KiB strips, fast
// ethernet). Benches and tests construct a Cluster, create Clients for
// their simulated application processes, spawn those processes, and run.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "net/cost_model.h"
#include "net/fault.h"
#include "net/network.h"
#include "obs/observability.h"
#include "pfs/client.h"
#include "pfs/server.h"
#include "sim/scheduler.h"
#include "sim/tracer.h"

namespace dtio::pfs {

class Cluster {
 public:
  explicit Cluster(net::ClusterConfig config)
      : config_(config),
        network_(scheduler_, config_.total_nodes(), config_.net) {
    // One seed reproduces a whole run: DTIO_SEED overrides the config so a
    // failing chaos run can be replayed without recompiling.
    config_.seed = run_seed(config_.seed);
    DTIO_INFO("cluster seed " << config_.seed << " (" << config_.num_servers
                              << " servers, " << config_.num_clients
                              << " clients)");
    servers_.reserve(static_cast<std::size_t>(config_.num_servers));
    for (int s = 0; s < config_.num_servers; ++s) {
      servers_.push_back(std::make_unique<IOServer>(scheduler_, network_,
                                                    config_, s));
      servers_.back()->start();
    }
    // Log lines produced during the run carry the simulated clock; the
    // last-constructed cluster wins if several coexist.
    set_log_sim_clock([this] { return scheduler_.now(); });
  }

  ~Cluster() { set_log_sim_clock(nullptr); }
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] const net::ClusterConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] net::Network& network() noexcept { return network_; }
  [[nodiscard]] IOServer& server(int index) {
    return *servers_.at(static_cast<std::size_t>(index));
  }

  /// A client for application rank `rank` (node num_servers + rank).
  /// Inherits the cluster's observability context, if attached. The
  /// cluster keeps a non-owning pointer for the timeline sampler, so
  /// clients must outlive the run (they already must: they own the
  /// running coroutines).
  [[nodiscard]] std::unique_ptr<Client> make_client(int rank) {
    auto client = std::make_unique<Client>(scheduler_, network_, config_,
                                           rank);
    if (obs_ != nullptr) client->set_observability(obs_);
    if (tracer_ != nullptr) client->set_tracer(tracer_);
    clients_.push_back(client.get());
    return client;
  }

  /// Run the simulation to completion (servers stay parked on their
  /// mailboxes; the event queue drains when all clients finish).
  void run() { scheduler_.run(); }

  /// Attach an event tracer to the network, every server, and every client
  /// created afterwards (nullptr detaches). Call before make_client for
  /// client-side events (breaker transitions, hedges). The tracer must
  /// outlive the traced activity.
  void set_tracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    network_.set_tracer(tracer);
    for (auto& server : servers_) server->set_tracer(tracer);
  }

  /// Attach the observability context (metrics + spans) to the network,
  /// every server, and every client created afterwards. Call before
  /// make_client; nullptr detaches. Not owned — must outlive the run.
  /// When obs->config.sample_period > 0 this also arms the timeline
  /// sampler on the scheduler's telemetry side-channel — a pure observer
  /// that perturbs neither the event sequence nor events_processed().
  void set_observability(obs::Observability* obs) {
    obs_ = obs;
    network_.set_observability(obs);
    for (auto& server : servers_) server->set_observability(obs);
    if (network_.fault_plan() != nullptr) {
      network_.fault_plan()->set_observability(obs);
    }
    if (obs != nullptr && obs->config.sample_period > 0) arm_sampler();
  }
  [[nodiscard]] obs::Observability* observability() noexcept { return obs_; }

  /// Attach a fault plan to the interconnect (nullptr detaches; not
  /// owned). Installs the protocol-aware corruptor so kCorrupt faults flip
  /// bits in actual request/reply payloads, and forwards the attached
  /// observability context. Detached — the default — the send path pays
  /// one pointer test.
  void set_fault_plan(net::FaultPlan* plan) {
    network_.set_fault_plan(plan);
    if (plan != nullptr) {
      plan->set_corruptor(&corrupt_message_payload);
      if (obs_ != nullptr) plan->set_observability(obs_);
    }
  }

  /// Crash server `index` at simulated time `at`; it restarts
  /// `restart_delay` later with caches cold (see IOServer::schedule_crash).
  void schedule_server_crash(int index, SimTime at, SimTime restart_delay) {
    server(index).schedule_crash(at, restart_delay);
  }

  /// Host-side settle of every server's buffer cache: staged write-back
  /// data reaches the bstreams at zero simulated cost (the sim analogue of
  /// unmount). For tests comparing final file contents; no-op when the
  /// cache is off.
  void flush_caches() {
    for (auto& server : servers_) server->flush_cache();
  }

  /// Fleet-wide buffer-cache stats summed over all servers.
  [[nodiscard]] ServerStats cache_stats_total() const;

  /// Display names for the trace exporter: "srv<k>" for I/O servers,
  /// "cli<k>" for client nodes.
  [[nodiscard]] std::vector<std::string> node_names() const;

  /// Final utilization gauges (disk/cpu/link busy fractions over [0, now])
  /// into the attached metrics registry; no-op when detached.
  void record_utilization_gauges();

  /// Export the attached observability context as a Chrome trace-event
  /// file (Perfetto-loadable). False when detached or the file won't open.
  bool write_trace(const std::string& path);

  /// Resource-utilization summary over [t0, now] — where the simulated
  /// time went: server disks, CPUs, links, and the shared fabric.
  /// Fractions of busy time; the bottleneck resource reads near 1.0.
  [[nodiscard]] std::string utilization_report(SimTime t0 = 0);

 private:
  /// Arms the periodic timeline sampler (idempotent). Samples are pushed
  /// into obs_->timeline every obs_->config.sample_period of simulated
  /// time, on the telemetry side-channel.
  void arm_sampler();
  void schedule_next_sample();
  void take_sample();

  net::ClusterConfig config_;
  sim::Scheduler scheduler_;
  net::Network network_;
  std::vector<std::unique_ptr<IOServer>> servers_;
  std::vector<Client*> clients_;  ///< registered by make_client; not owned
  obs::Observability* obs_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  /// Utilization is sampled as busy_integral deltas over the last window.
  struct ResourceWindow {
    double disk = 0;
    double cpu = 0;
  };
  std::vector<ResourceWindow> sampler_last_;
  SimTime sampler_last_time_ = 0;
  bool sampler_armed_ = false;
};

}  // namespace dtio::pfs
