// Bstream: the byte store behind one file handle on one I/O server
// (PVFS vocabulary). Sparse page map so 600^3-sized files only occupy
// memory where data was actually written; unwritten bytes read as zero.
//
// Data transfer is optional: when the simulated run opts out of carrying
// real bytes (large timing-only sweeps), writes still advance the size
// high-water mark so stat() stays correct.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dtio::pfs {

class Bstream {
 public:
  static constexpr std::int64_t kPageSize = 64 * 1024;

  void write(std::int64_t offset, std::span<const std::uint8_t> data);
  void read(std::int64_t offset, std::span<std::uint8_t> out) const;

  /// Record a write of `length` bytes at `offset` without storing data
  /// (timing-only mode).
  void note_write(std::int64_t offset, std::int64_t length) noexcept;

  /// One past the highest byte ever written.
  [[nodiscard]] std::int64_t size() const noexcept { return size_; }

  /// Pages currently resident (memory accounting / tests).
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

 private:
  std::unordered_map<std::int64_t, std::vector<std::uint8_t>> pages_;
  std::int64_t size_ = 0;
};

}  // namespace dtio::pfs
