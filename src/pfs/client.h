// The PVFS-like client library: what the ADIO-style I/O methods call.
//
// Exposes the three data interfaces (contiguous, list, datatype) plus
// metadata operations, all as simulated-time coroutines. The client does
// the client half of PVFS's job/access building: it maps the file-side
// access through the striping layout, segments outgoing data per server
// (or scatters incoming data), and charges the cost model for its own
// processing — which is exactly where list I/O pays flattening costs and
// datatype I/O pays (cheaper) dataloop-processing costs.
//
// API convention: public entry points are plain functions that box any
// non-trivially-destructible argument before entering a coroutine (see
// common/box.h for the compiler bug this sidesteps). Data buffers are raw
// pointers; the caller keeps them alive across the co_await.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/box.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "dataloop/dataloop.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "obs/observability.h"
#include "pfs/layout.h"
#include "pfs/protocol.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "sim/tracer.h"
#include "sim/waitgroup.h"

namespace dtio::pfs {

/// Result of a metadata operation.
struct MetaResult {
  Status status;
  std::uint64_t handle = 0;
  std::int64_t size = 0;  ///< stat only: logical file size
};

class Client {
 public:
  Client(sim::Scheduler& sched, net::Network& network,
         const net::ClusterConfig& config, int rank);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int node_id() const noexcept { return node_; }
  [[nodiscard]] IoStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FileLayout& layout() const noexcept { return layout_; }

  /// Timing-only mode: wire sizes and costs are exact, but no data bytes
  /// are carried or stored (large sweeps). Default: real data moves.
  void set_transfer_data(bool transfer) noexcept { transfer_data_ = transfer; }
  [[nodiscard]] bool transfer_data() const noexcept { return transfer_data_; }

  /// Reliability-layer counters (also exported as client_retries_total /
  /// client_rpc_timeouts_total when observability is attached). Both stay
  /// zero with rpc_timeout == 0 or a fault-free run.
  [[nodiscard]] std::uint64_t rpc_retries() const noexcept {
    return rpc_retries_;
  }
  [[nodiscard]] std::uint64_t rpc_timeouts() const noexcept {
    return rpc_timeouts_;
  }

  /// Overload-protection counters (all zero unless the corresponding
  /// mechanism is enabled in ClientConfig).
  [[nodiscard]] std::uint64_t hedges_issued() const noexcept {
    return hedges_issued_;
  }
  [[nodiscard]] std::uint64_t hedges_won() const noexcept {
    return hedges_won_;
  }
  [[nodiscard]] std::uint64_t overloads_seen() const noexcept {
    return overloads_seen_;
  }
  [[nodiscard]] std::uint64_t breaker_fast_fails() const noexcept {
    return breaker_fast_fails_;
  }
  /// Hedges NOT issued because the lane breaker opened during the hedge
  /// wait: aiming a second copy at a server already judged unhealthy would
  /// add load exactly where it hurts, so the client waits out the primary
  /// reply instead.
  [[nodiscard]] std::uint64_t hedges_suppressed() const noexcept {
    return hedges_suppressed_;
  }

  // ---- Replication (ClusterConfig::replication > 1) --------------------------

  /// Replication factor this client acts on: the configured factor clamped
  /// to the server count, and 1 (off) unless the reliability layer is armed
  /// — quorum writes and read failover are meaningless without timeouts.
  [[nodiscard]] int effective_replication() const noexcept {
    const int cap = config_->num_servers;
    int r = config_->replication;
    if (r > cap) r = cap;
    return (r > 1 && config_->client.rpc_timeout > 0) ? r : 1;
  }
  /// Read RPCs re-issued to a non-primary replica after the primary failed
  /// with kUnavailable / kTimedOut (breaker-open fast-fails included).
  [[nodiscard]] std::uint64_t read_failovers() const noexcept {
    return read_failovers_;
  }
  /// Write fan-outs that completed at write quorum (one per primary-server
  /// request, not per replica copy).
  [[nodiscard]] std::uint64_t quorum_writes() const noexcept {
    return quorum_writes_;
  }

  // ---- Write-behind staging --------------------------------------------------
  // Armed by ClientConfig::write_behind_bytes > 0: write-class data ops
  // are absorbed into per-server staging buffers (coalesced in arrival
  // order) and flushed as kBatchWrite envelopes. Default off: every knob
  // below reads zero and the legacy event sequence is untouched.

  [[nodiscard]] bool write_behind_enabled() const noexcept {
    return config_->client.write_behind_bytes > 0;
  }
  /// Bytes currently staged across all per-server buffers.
  [[nodiscard]] std::int64_t write_behind_staged_bytes() const noexcept {
    return wb_total_bytes_;
  }
  /// Drain every per-server staging buffer (one kBatchWrite per involved
  /// server, issued concurrently). First error wins; ok when nothing is
  /// staged. This is what File::flush()/close() and collective barriers
  /// call — deferred write errors surface here.
  sim::Task<Status> flush_write_behind();

  /// Write-behind counters, for tests and benches.
  [[nodiscard]] std::uint64_t wb_flushes() const noexcept {
    return wb_flushes_;
  }
  [[nodiscard]] std::uint64_t wb_batches() const noexcept {
    return wb_batches_;
  }
  [[nodiscard]] std::uint64_t wb_coalesced_ops() const noexcept {
    return wb_coalesced_;
  }
  [[nodiscard]] std::uint64_t wb_staged_ops() const noexcept {
    return wb_staged_ops_;
  }

  /// Snapshot of one per-server lane's health, for tests and benches.
  struct LaneHealth {
    int window = 0;       ///< current AIMD cap (0 = flow control off)
    int outstanding = 0;
    double ewma_latency_ns = 0;
    double failure_rate = 0;  ///< EWMA of attempt failures in [0, 1]
    int consecutive_failures = 0;
    int breaker = 0;  ///< 0 = closed, 1 = open, 2 = half-open
  };
  [[nodiscard]] LaneHealth lane_health(int server) const;

  /// Attach the event tracer (nullptr detaches): breaker transitions and
  /// hedge issues become trace events. Not owned.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach the observability context (nullptr detaches). Not owned.
  /// Per-op latency histograms are resolved here, once, so the op path
  /// pays no registry lookups; when detached, one pointer test.
  void set_observability(obs::Observability* obs);
  [[nodiscard]] obs::Observability* observability() const noexcept {
    return obs_;
  }

  // ---- Metadata ------------------------------------------------------------
  sim::Task<MetaResult> create(std::string path);
  sim::Task<MetaResult> open(std::string path);
  sim::Task<MetaResult> remove(std::string path);
  /// Logical file size = the extent implied by the largest per-server
  /// bstream (queried from every I/O server, PVFS-style).
  sim::Task<MetaResult> stat(std::string path);
  /// Same, for an already-open handle (skips the namespace lookup).
  sim::Task<MetaResult> stat_handle(std::uint64_t handle);

  /// Whole-file FIFO lock/unlock (metadata server). Only meaningful when
  /// the configuration models a locking file system; PVFS itself has none.
  sim::Task<Status> lock(std::uint64_t handle);
  sim::Task<Status> unlock(std::uint64_t handle);

  // ---- Contiguous (POSIX-style) interface -----------------------------------
  sim::Task<Status> write_contig(std::uint64_t handle, std::int64_t offset,
                                 const std::uint8_t* data, std::int64_t length);
  sim::Task<Status> read_contig(std::uint64_t handle, std::int64_t offset,
                                std::uint8_t* out, std::int64_t length);

  // ---- List interface --------------------------------------------------------
  // `regions` are logical file regions in access order; `stream` holds the
  // concatenated data (write) or receives it (read).
  sim::Task<Status> write_list(std::uint64_t handle,
                               std::vector<Region> regions,
                               const std::uint8_t* stream);
  sim::Task<Status> read_list(std::uint64_t handle,
                              std::vector<Region> regions,
                              std::uint8_t* stream);

  // ---- Datatype interface -----------------------------------------------------
  // `count` instances of `filetype` anchored at `displacement`; operate on
  // stream window [stream_offset, stream_offset + stream_length).
  sim::Task<Status> write_datatype(std::uint64_t handle,
                                   dl::DataloopPtr filetype,
                                   std::int64_t displacement,
                                   std::int64_t count,
                                   std::int64_t stream_offset,
                                   std::int64_t stream_length,
                                   const std::uint8_t* stream);
  sim::Task<Status> read_datatype(std::uint64_t handle,
                                  dl::DataloopPtr filetype,
                                  std::int64_t displacement,
                                  std::int64_t count,
                                  std::int64_t stream_offset,
                                  std::int64_t stream_length,
                                  std::uint8_t* stream);

 private:
  /// Per-server client-side access list: physical pieces in stream order
  /// plus where each piece's data sits in the client's stream buffer.
  struct ServerAccess {
    std::vector<Region> pieces;          ///< physical regions on the server
    std::vector<std::int64_t> stream_at; ///< stream offset of each piece
    std::int64_t total_bytes = 0;
  };

  /// The client half of job building: map logical regions (or a dataloop
  /// stream window) into per-server access lists. Returns pieces walked.
  std::int64_t build_access(std::span<const Region> logical,
                            std::vector<ServerAccess>& out) const;
  std::int64_t build_access_datatype(const dl::DataloopPtr& filetype,
                                     std::int64_t displacement,
                                     std::int64_t count,
                                     std::int64_t stream_offset,
                                     std::int64_t stream_length,
                                     std::vector<ServerAccess>& out) const;

  sim::Task<MetaResult> meta_op(OpKind op, Box<std::string> path);
  sim::Task<MetaResult> stat_impl(Box<std::string> path);
  sim::Fire send_fire(int dst, Box<sim::Message> message);

  /// One in-flight RPC: the request prototype for every attempt (only the
  /// reply_tag is re-allocated per attempt) plus its outcome. Slots live
  /// in the issuing coroutine's frame and are passed by pointer.
  struct RpcSlot {
    int server = 0;
    /// The primary server this slot's data belongs to (the access-list
    /// index). Equal to `server` unless read failover re-targeted the slot
    /// at a replica; scatter/validation always index the access list by
    /// `home`.
    int home = 0;
    Request request;
    std::uint64_t wire_bytes = 0;
    obs::SpanId rpc_span = 0;
    int attempts = 0;
    /// When > 0, caps rpc_attempts' retry loop below rpc_max_attempts —
    /// read failover retries at the replica-ring level instead.
    int max_attempts_override = 0;
    Status status;
    Reply reply;
  };

  /// Drive one RPC to completion. With the reliability layer armed
  /// (rpc_timeout > 0): per-attempt timeout, bounded retries with
  /// exponential backoff + deterministic jitter, fresh reply tag per
  /// attempt, CRC verification of read-reply data, kUnavailable /
  /// kTimedOut / kDataLoss surfaced through slot->status. With it off
  /// (the default) this is exactly the legacy send + untimed recv.
  ///
  /// Layered on top (each gated by its own ClientConfig knob, default
  /// off): circuit-breaker fail-fast, AIMD per-server window acquisition,
  /// hedged reads, and kOverloaded handling with the server's retry_after
  /// hint.
  sim::Task<void> rpc_attempts(RpcSlot* slot);
  sim::Fire rpc_fire(RpcSlot* slot, sim::WaitGroup* wg);

  /// Replica-aware read driver (effective_replication() > 1, data reads
  /// only; otherwise forwards to rpc_attempts unchanged). Walks the
  /// replica ring starting at the slot's home server, one attempt per
  /// replica per round: a primary that times out, fast-fails on an open
  /// breaker, or answers kUnavailable (crashed-then-restarting servers
  /// refuse reads while they resync) hands the read to the next replica,
  /// which serves the mirrored bytes. Lane health lands on the lane of the
  /// server each attempt actually targeted.
  sim::Task<void> rpc_attempts_failover(RpcSlot* slot);
  sim::Fire failover_fire(RpcSlot* slot, sim::WaitGroup* wg);

  /// One write fanned out to every replica of its home server. The group
  /// is heap-owned (shared by every per-replica driver) because the
  /// spawning coroutine returns at write quorum while laggard drivers keep
  /// delivering to the remaining replicas in the background.
  struct QuorumGroup {
    std::vector<std::unique_ptr<RpcSlot>> slots;  ///< one per replica
    int quorum = 0;  ///< acks that settle the group
    int acks = 0;
    int fails = 0;
    Status error;     ///< first definitive per-replica failure
    Reply reply;      ///< first OK reply (all replicas report equal bytes)
    bool have_reply = false;
    sim::WaitGroup* wg = nullptr;  ///< nulled at settle; laggards skip it
  };
  /// Clone `base` onto every replica of base.home (same op_seq and payload
  /// CRCs, so each server's replay window dedups retries independently)
  /// and start one rpc driver per copy. wg must have been add(1)'d for
  /// this group; the driver that reaches quorum — or makes it impossible —
  /// calls done().
  std::shared_ptr<QuorumGroup> quorum_spawn(const RpcSlot& base,
                                            sim::WaitGroup& wg);
  sim::Fire quorum_fire(std::shared_ptr<QuorumGroup> group, RpcSlot* slot);
  /// Copy a settled group's outcome into the logical slot.
  static void quorum_outcome(const QuorumGroup& group, RpcSlot& slot);

  /// Per-server robustness state ("lane"): AIMD congestion window, EWMA
  /// health, circuit breaker, and the attempt-latency histogram that
  /// supplies the hedging deadline quantile.
  struct Lane {
    enum class Breaker { kClosed, kOpen, kHalfOpen };

    int window = -1;  ///< AIMD cap; -1 = not yet seeded from config
    int outstanding = 0;
    double window_credit = 0;  ///< additive-increase accumulator
    std::deque<std::coroutine_handle<>> waiters;

    double ewma_latency_ns = 0;
    double failure_rate = 0;
    int consecutive_failures = 0;

    Breaker breaker = Breaker::kClosed;
    SimTime open_until = 0;
    bool probe_in_flight = false;  ///< half-open admits one probe at a time

    obs::Histogram attempt_latency;  ///< successful attempts only
    std::uint64_t samples = 0;
  };

  /// Awaiter for one AIMD window slot on a lane; parks FIFO when the
  /// window is full. Released via lane_release (grant-on-release, like
  /// sim::Resource).
  struct LaneGate {
    Client* client;
    int server;
    bool await_ready();
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() noexcept {}
  };
  /// RAII window-slot release; lives in the rpc_attempts frame so every
  /// exit path (success, fail-fast, exhausted retries) releases exactly
  /// once.
  struct LaneReleaser {
    Client* client = nullptr;
    int server = 0;
    LaneReleaser() = default;
    LaneReleaser(const LaneReleaser&) = delete;
    LaneReleaser& operator=(const LaneReleaser&) = delete;
    ~LaneReleaser() {
      if (client != nullptr) client->lane_release(server);
    }
  };

  [[nodiscard]] Lane& lane(int server);
  void lane_release(int server);
  /// Resume parked waiters while the window has room.
  void lane_grant(Lane& l);
  /// AIMD: +1/window per success (up to the configured cap)…
  void note_window_increase(Lane& l);
  /// …halve (floor 1) on timeout or kOverloaded.
  void note_window_decrease(Lane& l);
  /// EWMA latency / failure-rate update. Successful attempts also feed the
  /// hedging histogram — unless the attempt issued a hedge: a straggling
  /// server would otherwise inflate the deadline quantile past rpc_timeout
  /// and disable the very mechanism masking it, so the histogram tracks
  /// the healthy baseline only.
  void health_note(Lane& l, SimTime latency, bool failed, bool hedged = false);
  /// Circuit breaker: false = fail fast (open, or half-open probe taken).
  [[nodiscard]] bool breaker_try_pass(Lane& l, int server);
  void breaker_on_success(Lane& l, int server);
  void breaker_on_failure(Lane& l, int server);

  // ---- Write-behind internals ------------------------------------------------

  /// One coalesced staged run; its (handle, physical offset) key lives in
  /// the owning map.
  struct WbRun {
    std::int64_t length = 0;
    DataBuffer data;  ///< nullptr in timing-only mode
  };
  /// Per-server staging buffer. Runs are keyed by (handle, physical
  /// offset): physical because staging happens after the layout walk, so
  /// the flush ships runs the server applies directly, and map order makes
  /// flush-time sub-op order deterministic.
  struct WbServerBuf {
    std::map<std::pair<std::uint64_t, std::int64_t>, WbRun> runs;
    std::int64_t bytes = 0;
  };

  /// Stage one physical run, merging with overlapping/adjacent staged runs
  /// of the same handle (new data overwrites — arrival order). `src` null
  /// in timing-only mode (extents are still tracked).
  void wb_stage_run(int server, std::uint64_t handle, Region phys,
                    const std::uint8_t* src);
  /// Any staged run of `handle` on `server` overlapping one of `pieces`?
  [[nodiscard]] bool wb_read_overlaps(
      int server, std::uint64_t handle,
      const std::vector<Region>& pieces) const;
  /// Flush one server's buffer as a kBatchWrite envelope. `charge_prep`
  /// pays issue overhead + staged-bytes memcpy inline (flush_all charges
  /// one combined prep for its whole fan-out instead).
  sim::Task<Status> wb_flush_server(int server, const char* reason,
                                    bool charge_prep);
  sim::Fire wb_flush_fire(int server, const char* reason, Status* out,
                          sim::WaitGroup* wg);
  sim::Task<Status> wb_flush_all(const char* reason);
  /// Strip sub-ops the reply already acknowledged from a batch slot so a
  /// retry resends only the unacked remainder.
  void wb_strip_acked(RpcSlot* slot, const Reply& reply);
  /// Lazy metric resolution: write-behind counters only enter the registry
  /// once staging actually happens, keeping default-config exports
  /// untouched.
  void wb_resolve_obs();
  void wb_note_flush(const char* reason, std::size_t sub_ops);

  /// One client operation's trace context. begin_op is a no-op returning
  /// zeroes when observability is detached; finish_op closes the root span
  /// and records the op's latency histogram.
  struct OpTrace {
    std::uint64_t trace = 0;
    obs::SpanId span = 0;
    SimTime start = 0;
  };
  OpTrace begin_op(OpKind op);
  void finish_op(OpKind op, const OpTrace& t);

  /// Issue one data request per involved server (per the access lists) and
  /// await all replies. For writes, segments `write_stream` per server;
  /// for reads, scatters reply data back into `read_stream`.
  /// `client_cpu_cost` is the op-specific processing charge.
  sim::Task<Status> run_requests(SimTime client_cpu_cost,
                                 Box<std::vector<ServerAccess>> access_box,
                                 const std::uint8_t* write_stream,
                                 std::uint8_t* read_stream,
                                 Box<Request> prototype_box);

  [[nodiscard]] std::uint64_t next_reply_tag() noexcept {
    return kTagReplyBase + (static_cast<std::uint64_t>(rank_) << 24) +
           reply_seq_++;
  }

  sim::Scheduler* sched_;
  net::Network* network_;
  const net::ClusterConfig* config_;
  int rank_;
  int node_;
  FileLayout layout_;
  IoStats stats_;
  bool transfer_data_ = true;
  std::uint64_t reply_seq_ = 0;
  /// Logical-op sequence for idempotent replay; distinct per server
  /// request, shared across that request's retry attempts.
  std::uint64_t op_seq_ = 0;
  /// Deterministic backoff jitter, derived from the cluster seed and rank.
  Rng rng_;
  std::uint64_t rpc_retries_ = 0;
  std::uint64_t rpc_timeouts_ = 0;
  std::uint64_t hedges_issued_ = 0;
  std::uint64_t hedges_won_ = 0;
  std::uint64_t hedges_suppressed_ = 0;
  std::uint64_t overloads_seen_ = 0;
  std::uint64_t breaker_fast_fails_ = 0;
  std::uint64_t read_failovers_ = 0;
  std::uint64_t quorum_writes_ = 0;
  std::vector<Lane> lanes_;  ///< one per server
  sim::Tracer* tracer_ = nullptr;

  // Write-behind state (all dormant while write_behind_bytes == 0).
  std::vector<WbServerBuf> wb_;  ///< sized lazily to num_servers
  std::int64_t wb_total_bytes_ = 0;
  std::uint64_t wb_flushes_ = 0;     ///< flush events (any reason)
  std::uint64_t wb_batches_ = 0;     ///< kBatchWrite envelopes completed
  std::uint64_t wb_coalesced_ = 0;   ///< staged runs merged away
  std::uint64_t wb_staged_ops_ = 0;  ///< write ops absorbed without an RPC

  /// Client-facing ops with latency histograms (kBatchWrite is internal:
  /// flush latency is tracked by the client_flush span and wb counters).
  static constexpr int kNumOps = 12;
  obs::Observability* obs_ = nullptr;
  /// client_op_latency_ns{op=...,node=...}, resolved in set_observability.
  obs::Histogram* op_latency_[kNumOps] = {};
  obs::Counter* obs_retries_ = nullptr;        ///< client_retries_total
  obs::Counter* obs_timeouts_ = nullptr;       ///< client_rpc_timeouts_total
  obs::Histogram* attempt_latency_ = nullptr;  ///< client_rpc_attempt_latency_ns
  obs::Histogram* retry_backoff_ = nullptr;    ///< client_retry_backoff_ns
  obs::Counter* obs_hedges_issued_ = nullptr;  ///< client_hedges_issued_total
  obs::Counter* obs_hedges_won_ = nullptr;     ///< client_hedges_won_total
  obs::Counter* obs_overloaded_ = nullptr;     ///< client_overloaded_total
  obs::Counter* obs_fast_fails_ = nullptr;     ///< client_breaker_fast_fails_total
  obs::Counter* obs_hedges_suppressed_ = nullptr;  ///< client_hedges_suppressed_total
  // Replication metrics, registered only at effective_replication() > 1 so
  // unreplicated runs keep their metric exports untouched.
  obs::Counter* obs_read_failovers_ = nullptr;  ///< client_read_failovers_total
  obs::Counter* obs_quorum_writes_ = nullptr;   ///< client_quorum_writes_total
  // Write-behind metrics, resolved lazily on first staging (wb_resolve_obs).
  obs::Counter* obs_wb_staged_ = nullptr;      ///< client_wb_staged_bytes_total
  obs::Counter* obs_wb_coalesced_ = nullptr;   ///< client_wb_coalesced_ops_total
  obs::Histogram* wb_batch_subops_ = nullptr;  ///< client_wb_batch_subops
};

}  // namespace dtio::pfs
