// The PVFS-like I/O server (PVFS's "iod"), plus metadata service on
// server 0 (which doubles as metadata server, as in the paper's testbed).
//
// A server is a simulated process that handles requests from its mailbox
// sequentially (single CPU, single disk). For each data request it builds
// the job/access view of its part of the access — clipping logical
// regions to its own strips — and charges the cost model for request
// decode, per-region processing, and disk time. Datatype requests are the
// paper's contribution: the server decodes a dataloop and expands it
// locally instead of receiving an offset-length list.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cache/buffer_cache.h"
#include "common/box.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "obs/observability.h"
#include "pfs/bstream.h"
#include "pfs/layout.h"
#include "dataloop/dataloop.h"
#include "pfs/protocol.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/tracer.h"

namespace dtio::pfs {

/// Per-server instrumentation, inspected by benches and tests.
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t regions_walked = 0;   ///< offset-length regions processed
  std::uint64_t my_pieces = 0;        ///< pieces that landed on this server
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t dataloops_decoded = 0;
  std::uint64_t dataloop_cache_hits = 0;
  std::uint64_t bad_requests = 0;     ///< malformed requests answered with errors
  std::uint64_t subtrees_skipped = 0; ///< dataloop subtrees pruned (span missed
                                      ///< this server's strips; one probe each)
  std::uint64_t pieces_pruned = 0;    ///< atomic regions never generated
                                      ///< because their subtree was pruned
  std::uint64_t crashes = 0;            ///< crash events injected
  std::uint64_t crash_discarded = 0;    ///< messages lost to a crash (queued
                                        ///< at crash time or arrived while down)
  std::uint64_t replays_suppressed = 0; ///< retried ops re-acked, not re-applied
  std::uint64_t crc_rejects = 0;        ///< requests refused with kDataLoss
  std::uint64_t sheds_depth = 0;        ///< requests shed: queue depth bound
  std::uint64_t sheds_bytes = 0;        ///< requests shed: queued-bytes bound
  std::uint64_t max_backlog = 0;        ///< deepest mailbox backlog observed
  std::uint64_t degraded_requests = 0;  ///< requests served at factor > 1
  std::uint64_t replays_expired = 0;    ///< replay acks evicted by age
  std::uint64_t disk_accesses = 0;      ///< disk ops charged (each pays one
                                        ///< disk_access_overhead)
  std::uint64_t cache_hits = 0;         ///< buffer-cache block hits
  std::uint64_t cache_misses = 0;       ///< buffer-cache block miss fills
  std::uint64_t cache_readahead_issued = 0;  ///< blocks prefetched
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_dirty_flushed_bytes = 0;
  std::uint64_t cache_dirty_lost_bytes = 0;  ///< write-back dirty lost to crash
  std::uint64_t batch_requests = 0;      ///< kBatchWrite envelopes handled
  std::uint64_t batch_sub_ops = 0;       ///< sub-ops carried by those envelopes
  std::uint64_t batch_subs_replayed = 0; ///< sub-ops re-acked, not re-applied
  std::uint64_t resyncs = 0;                ///< restart resync phases run
  std::uint64_t resync_strips_pulled = 0;   ///< strips re-pulled from peers
  std::uint64_t resync_bytes_pulled = 0;    ///< bytes those strips carried
  std::uint64_t resync_peers_skipped = 0;   ///< peers unreachable after retries
  std::uint64_t resync_served = 0;          ///< kResyncPull requests answered
  std::uint64_t resync_refused = 0;         ///< data ops refused while resyncing
};

class IOServer {
 public:
  IOServer(sim::Scheduler& sched, net::Network& network,
           const net::ClusterConfig& config, int server_index);

  /// Spawn the server process (parks on its mailbox; never terminates —
  /// the scheduler reclaims it at teardown).
  void start();

  [[nodiscard]] int node_id() const noexcept { return server_index_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Bstream* find_bstream(std::uint64_t handle) const;
  [[nodiscard]] sim::Resource& disk() noexcept { return disk_; }
  [[nodiscard]] sim::Resource& cpu() noexcept { return cpu_; }
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Fault injection: crash this server at simulated time `at` and bring
  /// it back `restart_delay` later. A crashed server loses its mailbox
  /// queue and every in-flight request (their replies are suppressed), and
  /// restarts with caches cold — dataloop cache and replay window empty.
  /// Durable state (namespace, bstreams, lock table) survives, modelling
  /// an iod whose storage outlives the process.
  void schedule_crash(SimTime at, SimTime restart_delay);
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  /// True while the restart resync phase runs (replication > 1 only):
  /// data ops are refused — reads with kUnavailable so clients fail over
  /// to a replica, writes with kOverloaded + retry_after — until every
  /// strip whose epoch trails a replica peer's has been re-pulled.
  [[nodiscard]] bool resyncing() const noexcept { return resyncing_; }

  /// The replica copy this server holds of `primary`'s strips of `handle`
  /// (offsets in the primary's physical space), or nullptr when no replica
  /// write ever landed. Replication > 1 only.
  [[nodiscard]] const Bstream* find_replica_bstream(std::uint64_t handle,
                                                    int primary) const;

  /// Attach the observability context (nullptr detaches). Not owned.
  /// Request counters are resolved once here; the request loop then pays
  /// one pointer test when detached.
  void set_observability(obs::Observability* obs);

  /// The buffer cache, or nullptr when disabled (tests/benches).
  [[nodiscard]] const cache::BlockCache* block_cache() const noexcept {
    return cache_.get();
  }

  /// Host-side settle: write every staged dirty block to its bstream with
  /// zero simulated cost (tests comparing final file contents; the sim
  /// analogue of unmount). No-op when the cache is off or clean.
  void flush_cache();

 private:
  sim::Task<void> run();
  sim::Task<void> handle_request(Box<Request> boxed);

  void crash();
  void restart();
  /// Admission control: true when the post-dequeue backlog exceeds the
  /// configured queue bounds, with the violated bound's name in `reason`.
  bool over_admission_bounds(const char*& reason) const;
  /// Shed path for an over-bounds data request: charge the (cheap) shed
  /// cost and answer kOverloaded with a backlog-drain retry_after hint.
  sim::Task<void> shed_request(Box<Request> boxed, const char* reason);
  /// Cost-model estimate of the current backlog's drain time, the
  /// retry_after hint carried by kOverloaded replies.
  [[nodiscard]] SimTime backlog_drain_estimate() const;
  /// Straggler factor for this server at the current sim time (1.0 when no
  /// fault plan or no matching degraded window).
  [[nodiscard]] double degraded_factor_now() const;
  /// Service time scaled by the degraded factor sampled at request entry.
  [[nodiscard]] SimTime scaled(SimTime t) const noexcept {
    return req_degrade_ == 1.0
               ? t
               : static_cast<SimTime>(static_cast<double>(t) * req_degrade_);
  }
  /// Drop replay acks older than ServerConfig::replay_window_max_age.
  void expire_replay_acks();
  /// Verify request payload / descriptor CRCs. On mismatch fills `reply`
  /// with a kDataLoss rejection and returns false.
  bool verify_integrity(const Request& request, Reply& reply);
  /// Remember `reply` as the ack for (client, op_seq) so a retry of the
  /// same logical op is re-acknowledged without re-applying. Bounded FIFO
  /// window; no-ops for unsequenced ops, kDataLoss replies (transient —
  /// the retry carries clean data and must be re-executed), or when this
  /// request's epoch died in a crash.
  void store_ack(const Request& request, const Reply& reply);
  /// Same, keyed directly: kBatchWrite envelopes store one ack per sub-op
  /// (each sub-op carries its own op_seq) instead of one for the envelope.
  void store_sub_ack(int client_node, std::uint64_t op_seq,
                     const Reply& reply);
  [[nodiscard]] static std::uint64_t replay_key(int client_node,
                                                std::uint64_t op_seq) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                client_node)) << 48) ^ op_seq;
  }

  /// Restart resync phase (replication > 1): pull every strip whose epoch
  /// trails a replica peer's, then clear resyncing_ and serve data again.
  sim::Task<void> resync();
  /// Donor side of resync: answer a peer's kResyncPull with the extents
  /// (and epochs) of every shared strip this server is ahead on.
  sim::Task<void> handle_resync_pull(Request& request);
  /// Advance the per-strip write epochs covered by an applied physical
  /// write region (acting as `primary`). No-op at replication 1.
  void note_strip_writes(std::uint64_t handle, int primary,
                         std::int64_t offset, std::int64_t length);

  sim::Task<void> handle_contig(Request& request);
  sim::Task<void> handle_list(Request& request);
  /// Write-behind flush envelope: many pre-clipped physical sub-writes,
  /// one decode charge, per-sub-op replay/CRC, applied atomically each.
  sim::Task<void> handle_batch(Request& request);
  sim::Task<void> handle_datatype(Request& request);
  void handle_meta(Request& request, Reply& reply);

  void finish_data_reply(Request& request, bool is_write,
                         std::int64_t my_bytes, DataBuffer reply_data);
  sim::Task<void> charge_disk(std::int64_t bytes);
  /// Charge the disk work a cached access generated: sync segments (miss
  /// fills, write-through stores) block the handler with the same
  /// pipelined shape as charge_disk; async segments (readahead, write-back
  /// flushes) drain on the disk resource in the background. Also mirrors
  /// the plan's cache counters into stats/obs/trace.
  sim::Task<void> charge_cache_plan(cache::AccessPlan plan);
  sim::Fire disk_drain(SimTime hold);
  /// Region-processing CPU: the handler blocks only for a prime batch of
  /// regions (partial processing streams data while the walk continues);
  /// the rest drains on the CPU resource, still serialising against other
  /// requests at saturation.
  sim::Task<void> charge_regions(std::int64_t pieces, SimTime per_region);
  sim::Fire cpu_drain(SimTime hold);
  void send_reply(int dst, std::uint64_t tag, Reply reply,
                  std::uint64_t wire_data_bytes);
  sim::Fire send_reply_fire(int dst, Box<sim::Message> message);

  /// Rate-limited counter-series sampling (queue depth, disk/CPU
  /// utilization from busy_integral deltas), taken at request entry.
  void sample_counters();

  /// Emits the retroactive, typed "server_queue" span covering
  /// [request.delivered_at, now) — the time the request sat in the mailbox
  /// before the handler (or the shedder) picked it up. Caller checks obs_.
  void record_queue_wait(const Request& request);

  sim::Scheduler* sched_;
  net::Network* network_;
  const net::ClusterConfig* config_;
  int server_index_;
  FileLayout layout_;
  sim::Resource disk_;
  sim::Resource cpu_;
  sim::Tracer* tracer_ = nullptr;
  ServerStats stats_;

  obs::Observability* obs_ = nullptr;
  obs::Counter* obs_requests_ = nullptr;    ///< server_requests_total
  obs::Counter* obs_disk_bytes_ = nullptr;  ///< server_disk_bytes_total
  obs::Counter* obs_subtrees_skipped_ = nullptr;  ///< server_subtrees_skipped_total
  obs::Counter* obs_pieces_pruned_ = nullptr;     ///< server_pieces_pruned_total
  obs::Counter* obs_replays_ = nullptr;     ///< server_replays_suppressed_total
  obs::Counter* obs_crashes_ = nullptr;     ///< server_crashes_total
  obs::Counter* obs_crc_rejects_ = nullptr; ///< server_crc_rejects_total
  obs::Counter* obs_shed_depth_ = nullptr;  ///< server_shed_total{reason=depth}
  obs::Counter* obs_shed_bytes_ = nullptr;  ///< server_shed_total{reason=bytes}
  obs::Counter* obs_cache_hits_ = nullptr;     ///< server_cache_hits_total
  obs::Counter* obs_cache_misses_ = nullptr;   ///< server_cache_misses_total
  obs::Counter* obs_cache_readahead_ = nullptr;  ///< server_cache_readahead_issued_total
  obs::Counter* obs_cache_evictions_ = nullptr;  ///< server_cache_evictions_total
  obs::Counter* obs_cache_flushed_ = nullptr;  ///< server_cache_dirty_flushed_bytes_total
  obs::Counter* obs_dl_cache_hits_ = nullptr;  ///< server_dataloop_cache_hits_total
  obs::Counter* obs_dl_cache_misses_ = nullptr;  ///< server_dataloop_cache_misses_total
  obs::Counter* obs_crash_discarded_ = nullptr;  ///< server_crash_discarded_total
  // Registered only at replication > 1 (the subsystem is otherwise inert).
  obs::Counter* obs_resync_strips_ = nullptr;  ///< server_resync_strips_pulled_total
  obs::Counter* obs_resync_bytes_ = nullptr;   ///< server_resync_bytes_pulled_total
  // Trace context of the request currently being handled (requests are
  // handled sequentially, so plain members suffice).
  std::uint64_t req_trace_ = 0;
  obs::SpanId req_span_ = 0;  ///< the "server_handle" span
  // Counter-series sampling state.
  SimTime last_sample_ = -1;
  double last_disk_busy_ = 0;
  double last_cpu_busy_ = 0;

  std::unordered_map<std::uint64_t, Bstream> store_;

  // ---- k-way strip replication (ClusterConfig::replication > 1; every
  // structure below stays empty at replication 1).
  //
  // Replica copies this server holds of OTHER primaries' strips, keyed
  // (handle, primary) and addressed at the primary's physical offsets.
  // Durable like store_; replica writes bypass the buffer cache (write-
  // through), so a replica copy is the crash-durability backstop for the
  // primary's write-back dirty data. std::map: deterministic iteration.
  std::map<std::pair<std::uint64_t, int>, Bstream> replica_store_;
  // Per-strip write epochs for every copy this server holds (its own
  // primaries and its replicas), keyed (handle, primary, strip index in
  // the primary's physical space). Each copy of a strip applies the same
  // multiset of logical writes, so equal epochs imply identical bytes; a
  // crash zeroes the epochs of strips covered by lost write-back dirty
  // data, and restart resync pulls every strip whose epoch trails a
  // peer's. Durable across crashes except for that zeroing.
  std::map<std::tuple<std::uint64_t, int, std::int64_t>, std::uint64_t>
      strip_epochs_;
  bool resyncing_ = false;
  std::uint64_t resync_reply_seq_ = 0;  ///< server-to-server reply tags

  // Buffer cache (src/cache/), enabled when both ServerConfig block-size
  // and capacity knobs are nonzero. The adapter exposes the bstream map as
  // the cache's durable ByteStore; bstreams model storage that survives a
  // crash, the cache's contents do not.
  struct StoreAdapter final : cache::ByteStore {
    IOServer* server = nullptr;
    void read_at(std::uint64_t handle, std::int64_t offset,
                 std::span<std::uint8_t> out) override {
      server->store_[handle].read(offset, out);
    }
    void write_at(std::uint64_t handle, std::int64_t offset,
                  std::span<const std::uint8_t> data) override {
      server->store_[handle].write(offset, data);
    }
    void note_size(std::uint64_t handle, std::int64_t offset,
                   std::int64_t length) override {
      server->store_[handle].note_write(offset, length);
    }
    [[nodiscard]] std::int64_t size_of(std::uint64_t handle) override {
      return server->store_[handle].size();
    }
  };
  StoreAdapter store_adapter_;
  std::unique_ptr<cache::BlockCache> cache_;

  // Crash/restart state. `epoch_` bumps on every crash; a request stamps
  // `req_epoch_` at entry (requests are handled sequentially) and its
  // reply / replay-ack is suppressed if the epoch moved on — in-flight
  // work dies with the process even though its coroutine frame drains.
  bool crashed_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t req_epoch_ = 0;
  // Straggler inflation for the request in flight, sampled once at entry
  // so one request sees one consistent factor even if it straddles a
  // degraded-window edge.
  double req_degrade_ = 1.0;

  // Idempotent-replay window: ack by replay_key(client, op_seq), FIFO
  // eviction bounded by ServerConfig::replay_window_entries and (when
  // replay_window_max_age > 0) by simulated age — the deque is in store
  // order, which is time order, so expiry pops from the front. Cleared on
  // crash (the window is process state, not durable).
  std::unordered_map<std::uint64_t, Reply> replay_acks_;
  std::deque<std::pair<std::uint64_t, SimTime>> replay_order_;

  // Decoded-dataloop cache (enabled by ServerConfig::dataloop_cache),
  // keyed by a hash of the encoded bytes; bounded true-LRU eviction (a
  // cache hit moves the entry to the back of the recency list, so a hot
  // datatype survives a stream of one-shot ones).
  struct CachedLoop {
    dl::DataloopPtr loop;
    std::list<std::uint64_t>::iterator pos;  ///< entry in loop_cache_order_
  };
  std::unordered_map<std::uint64_t, CachedLoop> loop_cache_;
  std::list<std::uint64_t> loop_cache_order_;  ///< LRU at front, MRU at back

  // Metadata state (server 0 only).
  std::unordered_map<std::string, std::uint64_t> namespace_;
  std::uint64_t next_handle_ = 1;

  // Whole-file FIFO locks (server 0 only): holders and parked waiters
  // (client node, reply tag) whose grant reply is deferred until unlock.
  std::unordered_set<std::uint64_t> locked_;
  std::unordered_map<std::uint64_t,
                     std::deque<std::pair<int, std::uint64_t>>> lock_waiters_;
};

}  // namespace dtio::pfs
