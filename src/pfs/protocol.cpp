#include "pfs/protocol.h"

#include <any>
#include <utility>

#include "common/rng.h"
#include "sim/mailbox.h"

namespace dtio::pfs {

const char* op_name(OpKind op) noexcept {
  switch (op) {
    case OpKind::kContigRead: return "contig_read";
    case OpKind::kContigWrite: return "contig_write";
    case OpKind::kListRead: return "list_read";
    case OpKind::kListWrite: return "list_write";
    case OpKind::kDatatypeRead: return "datatype_read";
    case OpKind::kDatatypeWrite: return "datatype_write";
    case OpKind::kMetaCreate: return "meta_create";
    case OpKind::kMetaOpen: return "meta_open";
    case OpKind::kMetaRemove: return "meta_remove";
    case OpKind::kMetaStat: return "meta_stat";
    case OpKind::kMetaLock: return "meta_lock";
    case OpKind::kMetaUnlock: return "meta_unlock";
    case OpKind::kBatchWrite: return "batch_write";
    case OpKind::kResyncPull: return "resync_pull";
  }
  return "?";
}

std::uint64_t request_descriptor_bytes(const Request& request,
                                       std::uint64_t list_bytes_per_region) {
  constexpr std::uint64_t kHeader = 32;  // op, handle, tags, client id
  struct Visitor {
    std::uint64_t bytes_per_region;
    std::uint64_t operator()(const ContigPayload&) const { return 16; }
    std::uint64_t operator()(const ListPayload& p) const {
      return p.regions.size() * bytes_per_region;
    }
    std::uint64_t operator()(const DatatypePayload& p) const {
      return 40 + (p.encoded_loop ? p.encoded_loop->size() : 0);
    }
    std::uint64_t operator()(const MetaPayload& p) const {
      return p.path.size();
    }
    std::uint64_t operator()(const BatchPayload& p) const {
      // Per sub-op: handle + offset + length + op_seq + crc/flags.
      return p.sub_ops.size() * 36;
    }
    std::uint64_t operator()(const ResyncPayload& p) const {
      // Per strip epoch: handle + primary + strip index + epoch.
      return 8 + p.epochs.size() * 28;
    }
  };
  return kHeader + std::visit(Visitor{list_bytes_per_region}, request.payload);
}

namespace {

/// Clone `buf` and flip one rng-chosen bit. False when there is no data.
bool flip_bit(DataBuffer& buf, Rng& rng) {
  if (!buf || buf->empty()) return false;
  auto copy = std::make_shared<std::vector<std::uint8_t>>(*buf);
  const std::uint64_t bit = rng.next_below(copy->size() * 8);
  (*copy)[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(1U << (bit % 8));
  buf = std::move(copy);
  return true;
}

}  // namespace

bool corrupt_message_payload(sim::Message& msg, Rng& rng) {
  if (auto* request = std::any_cast<Request>(&msg.body)) {
    return std::visit(
        [&rng](auto& payload) -> bool {
          using P = std::decay_t<decltype(payload)>;
          if constexpr (std::is_same_v<P, MetaPayload> ||
                        std::is_same_v<P, ResyncPayload>) {
            // Control-plane descriptors: nothing corruptible. Resync pulls
            // in particular must stay clean — a poisoned epoch map would
            // silently skip recovery.
            return false;
          } else if constexpr (std::is_same_v<P, BatchPayload>) {
            // Flip a bit in one rng-chosen sub-op carrying data; the
            // per-sub-op CRC rejects exactly that sub-op, not the batch.
            std::vector<std::size_t> with_data;
            for (std::size_t i = 0; i < payload.sub_ops.size(); ++i) {
              const auto& d = payload.sub_ops[i].data;
              if (d && !d->empty()) with_data.push_back(i);
            }
            if (with_data.empty()) return false;
            const std::size_t pick = with_data[static_cast<std::size_t>(
                rng.next_below(with_data.size()))];
            return flip_bit(payload.sub_ops[pick].data, rng);
          } else if constexpr (std::is_same_v<P, DatatypePayload>) {
            // Prefer the bulk data; a timing-only or read request has
            // none, so the encoded descriptor takes the hit instead.
            return flip_bit(payload.data, rng) ||
                   flip_bit(payload.encoded_loop, rng);
          } else {
            return flip_bit(payload.data, rng);
          }
        },
        request->payload);
  }
  if (auto* reply = std::any_cast<Reply>(&msg.body)) {
    return flip_bit(reply->data, rng);
  }
  return false;
}

}  // namespace dtio::pfs
