#include "pfs/protocol.h"

namespace dtio::pfs {

std::uint64_t request_descriptor_bytes(const Request& request,
                                       std::uint64_t list_bytes_per_region) {
  constexpr std::uint64_t kHeader = 32;  // op, handle, tags, client id
  struct Visitor {
    std::uint64_t bytes_per_region;
    std::uint64_t operator()(const ContigPayload&) const { return 16; }
    std::uint64_t operator()(const ListPayload& p) const {
      return p.regions.size() * bytes_per_region;
    }
    std::uint64_t operator()(const DatatypePayload& p) const {
      return 40 + (p.encoded_loop ? p.encoded_loop->size() : 0);
    }
    std::uint64_t operator()(const MetaPayload& p) const {
      return p.path.size();
    }
  };
  return kHeader + std::visit(Visitor{list_bytes_per_region}, request.payload);
}

}  // namespace dtio::pfs
