#include "pfs/protocol.h"

namespace dtio::pfs {

const char* op_name(OpKind op) noexcept {
  switch (op) {
    case OpKind::kContigRead: return "contig_read";
    case OpKind::kContigWrite: return "contig_write";
    case OpKind::kListRead: return "list_read";
    case OpKind::kListWrite: return "list_write";
    case OpKind::kDatatypeRead: return "datatype_read";
    case OpKind::kDatatypeWrite: return "datatype_write";
    case OpKind::kMetaCreate: return "meta_create";
    case OpKind::kMetaOpen: return "meta_open";
    case OpKind::kMetaRemove: return "meta_remove";
    case OpKind::kMetaStat: return "meta_stat";
    case OpKind::kMetaLock: return "meta_lock";
    case OpKind::kMetaUnlock: return "meta_unlock";
  }
  return "?";
}

std::uint64_t request_descriptor_bytes(const Request& request,
                                       std::uint64_t list_bytes_per_region) {
  constexpr std::uint64_t kHeader = 32;  // op, handle, tags, client id
  struct Visitor {
    std::uint64_t bytes_per_region;
    std::uint64_t operator()(const ContigPayload&) const { return 16; }
    std::uint64_t operator()(const ListPayload& p) const {
      return p.regions.size() * bytes_per_region;
    }
    std::uint64_t operator()(const DatatypePayload& p) const {
      return 40 + (p.encoded_loop ? p.encoded_loop->size() : 0);
    }
    std::uint64_t operator()(const MetaPayload& p) const {
      return p.path.size();
    }
  };
  return kHeader + std::visit(Visitor{list_bytes_per_region}, request.payload);
}

}  // namespace dtio::pfs
