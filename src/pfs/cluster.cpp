#include "pfs/cluster.h"

#include <algorithm>
#include <cstdio>

#include "obs/chrome_trace.h"

namespace dtio::pfs {

namespace {

double fraction(double busy, SimTime elapsed) {
  return elapsed <= 0 ? 0.0 : busy / static_cast<double>(elapsed);
}

}  // namespace

std::vector<std::string> Cluster::node_names() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(config_.total_nodes()));
  for (int s = 0; s < config_.num_servers; ++s) {
    names.push_back("srv" + std::to_string(s));
  }
  for (int c = 0; c < config_.num_clients; ++c) {
    names.push_back("cli" + std::to_string(c));
  }
  return names;
}

ServerStats Cluster::cache_stats_total() const {
  ServerStats total;
  for (const auto& server : servers_) {
    const ServerStats& s = server->stats();
    total.disk_accesses += s.disk_accesses;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_readahead_issued += s.cache_readahead_issued;
    total.cache_evictions += s.cache_evictions;
    total.cache_dirty_flushed_bytes += s.cache_dirty_flushed_bytes;
    total.cache_dirty_lost_bytes += s.cache_dirty_lost_bytes;
    total.crash_discarded += s.crash_discarded;
    total.resyncs += s.resyncs;
    total.resync_strips_pulled += s.resync_strips_pulled;
    total.resync_bytes_pulled += s.resync_bytes_pulled;
    total.resync_peers_skipped += s.resync_peers_skipped;
    total.resync_served += s.resync_served;
    total.resync_refused += s.resync_refused;
  }
  return total;
}

void Cluster::record_utilization_gauges() {
  if (obs_ == nullptr) return;
  const SimTime elapsed = scheduler_.now();
  for (int s = 0; s < config_.num_servers; ++s) {
    obs_->metrics
        .gauge("server_disk_utilization", obs::label("node", s))
        .set(fraction(server(s).disk().busy_integral(), elapsed));
    obs_->metrics
        .gauge("server_cpu_utilization", obs::label("node", s))
        .set(fraction(server(s).cpu().busy_integral(), elapsed));
    obs_->metrics
        .gauge("server_tx_utilization", obs::label("node", s))
        .set(fraction(network_.tx_link(s).busy_integral(), elapsed));
    obs_->metrics
        .gauge("server_rx_utilization", obs::label("node", s))
        .set(fraction(network_.rx_link(s).busy_integral(), elapsed));
  }
  if (network_.fabric() != nullptr) {
    obs_->metrics.gauge("fabric_utilization")
        .set(fraction(network_.fabric()->busy_integral(), elapsed));
  }
}

// ---- Timeline sampler -------------------------------------------------------
//
// Runs on the scheduler's telemetry side-channel: callbacks consume no
// event-queue sequence numbers and are not counted in events_processed(),
// so a run with sampling attached is bit-identical to a detached run.
// Sampling stops by itself when the regular event queue drains (pending
// telemetry past the last real event never fires).

void Cluster::arm_sampler() {
  if (sampler_armed_) return;
  sampler_armed_ = true;
  sampler_last_.assign(servers_.size(), ResourceWindow{});
  sampler_last_time_ = scheduler_.now();
  schedule_next_sample();
}

void Cluster::schedule_next_sample() {
  scheduler_.schedule_telemetry(
      scheduler_.now() + obs_->config.sample_period, [this] {
        take_sample();
        if (obs_ != nullptr && obs_->config.sample_period > 0) {
          schedule_next_sample();
        }
      });
}

void Cluster::take_sample() {
  if (obs_ == nullptr) return;
  obs::Timeline& tl = obs_->timeline;
  const SimTime now = scheduler_.now();
  const auto window = static_cast<double>(now - sampler_last_time_);

  for (int s = 0; s < config_.num_servers; ++s) {
    const sim::Mailbox& mb = network_.mailbox(s);
    tl.series("queue_depth", s).push(now, static_cast<double>(mb.queued()));
    tl.series("queued_bytes", s)
        .push(now, static_cast<double>(mb.queued_bytes()));

    auto& last = sampler_last_[static_cast<std::size_t>(s)];
    const double disk = server(s).disk().busy_integral();
    const double cpu = server(s).cpu().busy_integral();
    if (window > 0) {
      tl.series("disk_util", s).push(now, (disk - last.disk) / window);
      tl.series("cpu_util", s).push(now, (cpu - last.cpu) / window);
    }
    last.disk = disk;
    last.cpu = cpu;

    // Gated on the replication knob so unreplicated exports stay
    // byte-identical: 1 while the server is in its restart resync phase.
    if (config_.replication > 1) {
      tl.series("srv_resyncing", s)
          .push(now, server(s).resyncing() ? 1.0 : 0.0);
    }

    if (const cache::BlockCache* cache = server(s).block_cache()) {
      tl.series("cache_bytes", s)
          .push(now, static_cast<double>(cache->resident_blocks()) *
                         static_cast<double>(cache->block_bytes()));
      tl.series("cache_dirty_bytes", s)
          .push(now, static_cast<double>(cache->dirty_bytes()));
    }
  }

  for (const Client* client : clients_) {
    int window_sum = 0;
    int outstanding = 0;
    int breakers_open = 0;
    for (int s = 0; s < config_.num_servers; ++s) {
      const Client::LaneHealth h = client->lane_health(s);
      window_sum += h.window;
      outstanding += h.outstanding;
      if (h.breaker != 0) ++breakers_open;
    }
    const int node = client->node_id();
    tl.series("cli_flow_window", node)
        .push(now, static_cast<double>(window_sum));
    tl.series("cli_outstanding", node)
        .push(now, static_cast<double>(outstanding));
    tl.series("cli_breakers_open", node)
        .push(now, static_cast<double>(breakers_open));
    // Gated on the knob so default-config exports stay byte-identical.
    if (client->write_behind_enabled()) {
      tl.series("cli_wb_staged_bytes", node)
          .push(now, static_cast<double>(client->write_behind_staged_bytes()));
    }
  }

  tl.series("net_inflight_bytes", -1)
      .push(now, static_cast<double>(network_.inflight_wire_bytes()));

  sampler_last_time_ = now;
}

bool Cluster::write_trace(const std::string& path) {
  if (obs_ == nullptr) return false;
  obs::ChromeTraceOptions options;
  options.node_names = node_names();
  return obs::write_chrome_trace_file(*obs_, path, options);
}

std::string Cluster::utilization_report(SimTime t0) {
  const SimTime elapsed = scheduler_.now() - t0;
  // busy_integral() covers [0, now]; utilization over a window starting at
  // t0 is approximated by attributing all busy time to the window, which
  // is exact when the cluster idled before t0 (the usual bench pattern:
  // setup is cheap, then measure).
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "utilization over %.3f sim s:\n",
                to_seconds(elapsed));
  out += line;

  double disk_max = 0, cpu_max = 0, stx_max = 0, srx_max = 0;
  double disk_sum = 0, cpu_sum = 0, stx_sum = 0, srx_sum = 0;
  for (int s = 0; s < config_.num_servers; ++s) {
    const double disk = fraction(server(s).disk().busy_integral(), elapsed);
    const double cpu = fraction(server(s).cpu().busy_integral(), elapsed);
    const double tx = fraction(network_.tx_link(s).busy_integral(), elapsed);
    const double rx = fraction(network_.rx_link(s).busy_integral(), elapsed);
    disk_max = std::max(disk_max, disk);
    cpu_max = std::max(cpu_max, cpu);
    stx_max = std::max(stx_max, tx);
    srx_max = std::max(srx_max, rx);
    disk_sum += disk;
    cpu_sum += cpu;
    stx_sum += tx;
    srx_sum += rx;
  }
  const double n = config_.num_servers;
  std::snprintf(line, sizeof line,
                "  servers: disk %.0f%% (max %.0f%%)  cpu %.0f%% (max "
                "%.0f%%)  tx %.0f%% (max %.0f%%)  rx %.0f%% (max %.0f%%)\n",
                100 * disk_sum / n, 100 * disk_max, 100 * cpu_sum / n,
                100 * cpu_max, 100 * stx_sum / n, 100 * stx_max,
                100 * srx_sum / n, 100 * srx_max);
  out += line;

  double ctx_sum = 0, crx_sum = 0, ctx_max = 0, crx_max = 0;
  for (int c = 0; c < config_.num_clients; ++c) {
    const int node = config_.client_node(c);
    const double tx = fraction(network_.tx_link(node).busy_integral(),
                               elapsed);
    const double rx = fraction(network_.rx_link(node).busy_integral(),
                               elapsed);
    ctx_sum += tx;
    crx_sum += rx;
    ctx_max = std::max(ctx_max, tx);
    crx_max = std::max(crx_max, rx);
  }
  const double m = config_.num_clients;
  std::snprintf(line, sizeof line,
                "  clients: tx %.0f%% (max %.0f%%)  rx %.0f%% (max %.0f%%)\n",
                100 * ctx_sum / m, 100 * ctx_max, 100 * crx_sum / m,
                100 * crx_max);
  out += line;

  if (network_.fabric() != nullptr) {
    std::snprintf(line, sizeof line, "  fabric:  %.0f%%\n",
                  100 * fraction(network_.fabric()->busy_integral(), elapsed));
    out += line;
  }
  return out;
}

}  // namespace dtio::pfs
