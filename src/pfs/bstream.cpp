#include "pfs/bstream.h"

#include <algorithm>
#include <cstring>

namespace dtio::pfs {

void Bstream::write(std::int64_t offset, std::span<const std::uint8_t> data) {
  note_write(offset, static_cast<std::int64_t>(data.size()));
  std::size_t done = 0;
  while (done < data.size()) {
    const std::int64_t at = offset + static_cast<std::int64_t>(done);
    const std::int64_t page = at / kPageSize;
    const auto in_page = static_cast<std::size_t>(at % kPageSize);
    const std::size_t run = std::min(data.size() - done,
                                     static_cast<std::size_t>(kPageSize) -
                                         in_page);
    auto& storage = pages_[page];
    if (storage.empty()) storage.resize(kPageSize, 0);
    std::memcpy(storage.data() + in_page, data.data() + done, run);
    done += run;
  }
}

void Bstream::read(std::int64_t offset, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::int64_t at = offset + static_cast<std::int64_t>(done);
    const std::int64_t page = at / kPageSize;
    const auto in_page = static_cast<std::size_t>(at % kPageSize);
    const std::size_t run = std::min(out.size() - done,
                                     static_cast<std::size_t>(kPageSize) -
                                         in_page);
    const auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::memset(out.data() + done, 0, run);
    } else {
      std::memcpy(out.data() + done, it->second.data() + in_page, run);
    }
    done += run;
  }
}

void Bstream::note_write(std::int64_t offset, std::int64_t length) noexcept {
  size_ = std::max(size_, offset + length);
}

}  // namespace dtio::pfs
