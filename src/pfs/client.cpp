#include "pfs/client.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <limits>
#include <memory>

#include "common/crc32.h"
#include "common/logging.h"
#include "dataloop/cursor.h"
#include "dataloop/serialize.h"

namespace dtio::pfs {

Client::Client(sim::Scheduler& sched, net::Network& network,
               const net::ClusterConfig& config, int rank)
    : sched_(&sched),
      network_(&network),
      config_(&config),
      rank_(rank),
      node_(config.client_node(rank)),
      layout_(config.num_servers,
              static_cast<std::int64_t>(config.strip_size)),
      rng_(mix_seed(config.seed, static_cast<std::uint64_t>(rank))),
      lanes_(static_cast<std::size_t>(config.num_servers)) {}

// ---- Observability ----------------------------------------------------------

void Client::set_observability(obs::Observability* obs) {
  obs_ = obs;
  // Write-behind metrics re-resolve lazily against the new context.
  obs_wb_staged_ = nullptr;
  obs_wb_coalesced_ = nullptr;
  wb_batch_subops_ = nullptr;
  for (int i = 0; i < kNumOps; ++i) {
    op_latency_[i] =
        obs == nullptr
            ? nullptr
            : &obs->metrics.histogram(
                  "client_op_latency_ns",
                  obs::label("op", op_name(static_cast<OpKind>(i)), "node",
                             node_));
  }
  if (obs == nullptr) {
    obs_retries_ = nullptr;
    obs_timeouts_ = nullptr;
    attempt_latency_ = nullptr;
    retry_backoff_ = nullptr;
    obs_hedges_issued_ = nullptr;
    obs_hedges_won_ = nullptr;
    obs_hedges_suppressed_ = nullptr;
    obs_overloaded_ = nullptr;
    obs_fast_fails_ = nullptr;
    obs_read_failovers_ = nullptr;
    obs_quorum_writes_ = nullptr;
    return;
  }
  obs_hedges_issued_ = &obs->metrics.counter("client_hedges_issued_total",
                                             obs::label("node", node_));
  obs_hedges_won_ = &obs->metrics.counter("client_hedges_won_total",
                                          obs::label("node", node_));
  obs_hedges_suppressed_ = &obs->metrics.counter(
      "client_hedges_suppressed_total", obs::label("node", node_));
  if (effective_replication() > 1) {
    obs_read_failovers_ = &obs->metrics.counter(
        "client_read_failovers_total", obs::label("node", node_));
    obs_quorum_writes_ = &obs->metrics.counter("client_quorum_writes_total",
                                               obs::label("node", node_));
  } else {
    obs_read_failovers_ = nullptr;
    obs_quorum_writes_ = nullptr;
  }
  obs_overloaded_ = &obs->metrics.counter("client_overloaded_total",
                                          obs::label("node", node_));
  obs_fast_fails_ = &obs->metrics.counter("client_breaker_fast_fails_total",
                                          obs::label("node", node_));
  obs_retries_ =
      &obs->metrics.counter("client_retries_total", obs::label("node", node_));
  obs_timeouts_ = &obs->metrics.counter("client_rpc_timeouts_total",
                                        obs::label("node", node_));
  attempt_latency_ = &obs->metrics.histogram("client_rpc_attempt_latency_ns",
                                             obs::label("node", node_));
  retry_backoff_ = &obs->metrics.histogram("client_retry_backoff_ns",
                                           obs::label("node", node_));
}

Client::OpTrace Client::begin_op(OpKind op) {
  DTIO_DEBUG("cli" << node_ << " -> " << op_name(op));
  OpTrace t;
  if (obs_ == nullptr) return t;
  t.start = sched_->now();
  t.trace = obs_->spans.new_trace();
  t.span = obs_->spans.begin(op_name(op), node_, t.start, 0, t.trace);
  return t;
}

void Client::finish_op(OpKind op, const OpTrace& t) {
  if (obs_ == nullptr) return;
  const SimTime now = sched_->now();
  obs_->spans.end(t.span, now);
  op_latency_[static_cast<int>(op)]->record(now - t.start);
}

// ---- Metadata ---------------------------------------------------------------

sim::Task<MetaResult> Client::create(std::string path) {
  return meta_op(OpKind::kMetaCreate, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::open(std::string path) {
  return meta_op(OpKind::kMetaOpen, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::remove(std::string path) {
  return meta_op(OpKind::kMetaRemove, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::stat(std::string path) {
  return stat_impl(Box<std::string>(std::move(path)));
}

sim::Task<Status> Client::lock(std::uint64_t handle) {
  // Lock boundary: staged writes must be durable before lock-protected
  // readers can be granted the file.
  if (write_behind_enabled() && wb_total_bytes_ > 0) {
    const Status flushed = co_await wb_flush_all("lock");
    if (!flushed.is_ok()) co_return flushed;
  }
  const OpTrace t = begin_op(OpKind::kMetaLock);
  Request request;
  request.op = OpKind::kMetaLock;
  request.client_node = node_;
  request.reply_tag = next_reply_tag();
  request.payload = MetaPayload{"", handle};
  request.trace_id = t.trace;
  request.parent_span = t.span;
  const std::uint64_t tag = request.reply_tag;
  sim::Message msg(node_, kTagRequest, 48, std::move(request));
  msg.trace = t.trace;
  msg.span = t.span;
  msg.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
  co_await network_->send(node_, 0, std::move(msg));
  (void)co_await network_->mailbox(node_).recv(0, tag);  // grant
  finish_op(OpKind::kMetaLock, t);
  co_return Status::ok();
}

sim::Task<Status> Client::unlock(std::uint64_t handle) {
  // Data written under the lock lands before the lock is released.
  if (write_behind_enabled() && wb_total_bytes_ > 0) {
    const Status flushed = co_await wb_flush_all("lock");
    if (!flushed.is_ok()) co_return flushed;
  }
  const OpTrace t = begin_op(OpKind::kMetaUnlock);
  Request request;
  request.op = OpKind::kMetaUnlock;
  request.client_node = node_;
  request.reply_tag = next_reply_tag();
  request.payload = MetaPayload{"", handle};
  request.trace_id = t.trace;
  request.parent_span = t.span;
  const std::uint64_t tag = request.reply_tag;
  sim::Message msg(node_, kTagRequest, 48, std::move(request));
  msg.trace = t.trace;
  msg.span = t.span;
  msg.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
  co_await network_->send(node_, 0, std::move(msg));
  (void)co_await network_->mailbox(node_).recv(0, tag);
  finish_op(OpKind::kMetaUnlock, t);
  co_return Status::ok();
}

sim::Task<MetaResult> Client::meta_op(OpKind op, Box<std::string> path) {
  if (op == OpKind::kMetaRemove && write_behind_enabled() &&
      wb_total_bytes_ > 0) {
    // Settle staged data before namespace mutation; a flush after the
    // remove would resurrect per-server bstream bytes for a dead name.
    const Status flushed = co_await wb_flush_all("flush");
    if (!flushed.is_ok()) {
      MetaResult failed;
      failed.status = flushed;
      co_return failed;
    }
  }
  const OpTrace t = begin_op(op);
  RpcSlot slot;
  slot.server = 0;  // metadata server
  slot.request.op = op;
  slot.request.client_node = node_;
  slot.request.payload = MetaPayload{path.take(), 0};
  slot.request.trace_id = t.trace;
  slot.request.parent_span = t.span;
  if (op == OpKind::kMetaCreate || op == OpKind::kMetaRemove) {
    // Namespace mutations are replay-protected: a retried create must be
    // re-acknowledged, not answered "already exists".
    slot.request.op_seq = ++op_seq_;
  }
  slot.wire_bytes = request_descriptor_bytes(slot.request,
                                             config_->list_io_bytes_per_region);
  co_await sched_->delay(config_->client.issue_overhead);
  co_await rpc_attempts(&slot);

  MetaResult result;
  result.handle = slot.reply.handle;
  result.status = slot.status;
  finish_op(op, t);
  co_return result;
}

sim::Fire Client::send_fire(int dst, Box<sim::Message> message) {
  co_await network_->send(node_, dst, message.take());
}

// ---- Per-server lanes: flow control, health, circuit breaker ----------------

Client::Lane& Client::lane(int server) {
  Lane& l = lanes_[static_cast<std::size_t>(server)];
  // Seeded lazily so a config tweaked after construction still takes.
  if (l.window < 0) l.window = config_->client.flow_window;
  return l;
}

Client::LaneHealth Client::lane_health(int server) const {
  const Lane& l = lanes_[static_cast<std::size_t>(server)];
  LaneHealth h;
  h.window = l.window < 0 ? config_->client.flow_window : l.window;
  h.outstanding = l.outstanding;
  h.ewma_latency_ns = l.ewma_latency_ns;
  h.failure_rate = l.failure_rate;
  h.consecutive_failures = l.consecutive_failures;
  h.breaker = static_cast<int>(l.breaker);
  return h;
}

bool Client::LaneGate::await_ready() {
  Lane& l = client->lane(server);
  if (l.window <= 0 || l.outstanding < l.window) {
    ++l.outstanding;
    return true;
  }
  return false;
}

void Client::LaneGate::await_suspend(std::coroutine_handle<> h) {
  client->lane(server).waiters.push_back(h);
}

void Client::lane_release(int server) {
  Lane& l = lane(server);
  --l.outstanding;
  lane_grant(l);
}

void Client::lane_grant(Lane& l) {
  while (!l.waiters.empty() && (l.window <= 0 || l.outstanding < l.window)) {
    ++l.outstanding;
    const std::coroutine_handle<> h = l.waiters.front();
    l.waiters.pop_front();
    sched_->schedule_at(sched_->now(), h);
  }
}

void Client::note_window_increase(Lane& l) {
  const int cap = config_->client.flow_window;
  if (cap <= 0 || l.window <= 0 || l.window >= cap) return;
  // Additive increase: one slot per full window of successes.
  l.window_credit += 1.0 / static_cast<double>(l.window);
  if (l.window_credit >= 1.0) {
    l.window_credit = 0;
    ++l.window;
    lane_grant(l);
  }
}

void Client::note_window_decrease(Lane& l) {
  if (config_->client.flow_window <= 0 || l.window <= 1) return;
  l.window = std::max(1, l.window / 2);  // multiplicative decrease, floor 1
  l.window_credit = 0;
}

void Client::health_note(Lane& l, SimTime latency, bool failed, bool hedged) {
  const double a = config_->client.health_ewma_alpha;
  l.failure_rate = a * (failed ? 1.0 : 0.0) + (1.0 - a) * l.failure_rate;
  if (failed) return;
  l.ewma_latency_ns =
      l.ewma_latency_ns == 0
          ? static_cast<double>(latency)
          : a * static_cast<double>(latency) + (1.0 - a) * l.ewma_latency_ns;
  if (hedged) return;  // keep the deadline quantile on the healthy baseline
  l.attempt_latency.record(latency);
  ++l.samples;
}

bool Client::breaker_try_pass(Lane& l, int server) {
  if (config_->client.breaker_failures <= 0) return true;
  if (l.breaker == Lane::Breaker::kOpen) {
    if (sched_->now() < l.open_until) return false;
    // Cool-down elapsed: admit probes one at a time until one resolves.
    l.breaker = Lane::Breaker::kHalfOpen;
    l.probe_in_flight = false;
    if (tracer_ != nullptr) {
      tracer_->record({sched_->now(), "breaker_half_open", node_, server, 0,
                       0, ""});
    }
  }
  if (l.breaker == Lane::Breaker::kHalfOpen) {
    if (l.probe_in_flight) return false;
    l.probe_in_flight = true;
  }
  return true;
}

void Client::breaker_on_success(Lane& l, int server) {
  l.consecutive_failures = 0;
  if (config_->client.breaker_failures <= 0) return;
  if (l.breaker == Lane::Breaker::kClosed) return;
  l.breaker = Lane::Breaker::kClosed;
  l.probe_in_flight = false;
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "breaker_close", node_, server, 0, 0, ""});
  }
}

void Client::breaker_on_failure(Lane& l, int server) {
  ++l.consecutive_failures;
  const int threshold = config_->client.breaker_failures;
  if (threshold <= 0) return;
  const bool trip =
      l.breaker == Lane::Breaker::kHalfOpen ||
      (l.breaker == Lane::Breaker::kClosed &&
       l.consecutive_failures >= threshold);
  if (!trip) return;
  l.breaker = Lane::Breaker::kOpen;
  l.open_until = sched_->now() + config_->client.breaker_open_duration;
  l.probe_in_flight = false;
  if (tracer_ != nullptr) {
    tracer_->record({sched_->now(), "breaker_open", node_, server, 0,
                     static_cast<std::uint64_t>(l.consecutive_failures), ""});
  }
}

// ---- RPC reliability core ---------------------------------------------------

sim::Task<void> Client::rpc_attempts(RpcSlot* slot) {
  const net::ClientConfig& cc = config_->client;
  const bool reliable = cc.rpc_timeout > 0;
  const int max_attempts =
      !reliable ? 1
                : (slot->max_attempts_override > 0
                       ? slot->max_attempts_override
                       : std::max(1, cc.rpc_max_attempts));
  Status last = internal_error("rpc: no attempt ran");
  bool all_timeouts = true;
  // Set by a kOverloaded reply: the server's backlog-drain estimate, which
  // replaces a smaller blind backoff before the next attempt.
  SimTime retry_after_hint = 0;

  Lane& ln = lane(slot->server);
  // Circuit breaker: when this server's lane is open, fail fast with
  // kUnavailable instead of burning a timeout — the caller's error path
  // runs in microseconds rather than rpc_timeout.
  if (reliable && !breaker_try_pass(ln, slot->server)) {
    ++breaker_fast_fails_;
    if (obs_fast_fails_ != nullptr) obs_fast_fails_->add(1);
    slot->status = unavailable("circuit breaker open for server " +
                               std::to_string(slot->server));
    co_return;
  }
  // AIMD flow control: acquire one window slot on this server's lane for
  // the whole RPC (all attempts); LaneReleaser's destructor releases it on
  // every exit path.
  LaneReleaser window_slot;
  if (reliable && cc.flow_window > 0) {
    obs::SpanId queue_span = 0;
    if (obs_ != nullptr) {
      queue_span = obs_->spans.begin(
          "client_queue", node_, sched_->now(),
          slot->rpc_span != 0 ? slot->rpc_span : slot->request.parent_span,
          slot->request.trace_id, obs::Phase::kClientQueue);
    }
    co_await LaneGate{this, slot->server};
    if (obs_ != nullptr) obs_->spans.end(queue_span, sched_->now());
    window_slot.client = this;
    window_slot.server = slot->server;
  }
  const bool is_data_read = slot->request.op == OpKind::kContigRead ||
                            slot->request.op == OpKind::kListRead ||
                            slot->request.op == OpKind::kDatatypeRead;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      // Exponential backoff with deterministic jitter before each retry.
      SimTime backoff = cc.rpc_backoff_base;
      for (int i = 2; i < attempt; ++i) {
        backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                       cc.rpc_backoff_multiplier);
      }
      if (cc.rpc_backoff_jitter > 0) {
        backoff += static_cast<SimTime>(rng_.next_double() *
                                        cc.rpc_backoff_jitter *
                                        static_cast<double>(backoff));
      }
      if (retry_after_hint > 0) {
        backoff = std::max(backoff, retry_after_hint);
        retry_after_hint = 0;
      }
      ++rpc_retries_;
      ++stats_.requests_sent;
      if (obs_retries_ != nullptr) {
        obs_retries_->add(1);
        retry_backoff_->record(backoff);
      }
      DTIO_DEBUG("cli" << node_ << " rpc retry " << attempt << "/"
                       << max_attempts << " to srv" << slot->server);
      obs::SpanId backoff_span = 0;
      if (obs_ != nullptr) {
        backoff_span = obs_->spans.begin(
            "client_backoff", node_, sched_->now(),
            slot->rpc_span != 0 ? slot->rpc_span : slot->request.parent_span,
            slot->request.trace_id, obs::Phase::kClientBackoff);
      }
      co_await sched_->delay(backoff);
      if (obs_ != nullptr) obs_->spans.end(backoff_span, sched_->now());
    }

    // Fresh reply tag per attempt: a delayed duplicate reply to an earlier
    // attempt can never satisfy this one (reusing tags across attempts is
    // the classic stale-reply hazard).
    Request request = slot->request;
    request.reply_tag = next_reply_tag();
    const std::uint64_t tag = request.reply_tag;
    const SimTime attempt_start = sched_->now();
    obs::SpanId attempt_span = 0;
    if (obs_ != nullptr && reliable) {
      attempt_span = obs_->spans.begin(
          "rpc_attempt", node_, attempt_start,
          slot->rpc_span != 0 ? slot->rpc_span : slot->request.parent_span,
          request.trace_id);
      request.parent_span = attempt_span;
    }
    ++slot->attempts;

    sim::Message out(node_, kTagRequest, slot->wire_bytes, std::move(request));
    out.trace = slot->request.trace_id;
    out.span = attempt_span != 0
                   ? attempt_span
                   : (slot->rpc_span != 0 ? slot->rpc_span
                                          : slot->request.parent_span);
    out.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
    co_await network_->send(node_, slot->server, std::move(out));

    sim::Message msg;
    bool hedge_sent = false;
    bool hedge_won = false;
    if (!reliable) {
      msg = co_await network_->mailbox(node_).recv(slot->server, tag);
    } else {
      std::optional<sim::Message> maybe;
      // Hedged reads: once this lane has enough latency samples, wait only
      // to the configured latency quantile; if the primary reply has not
      // arrived by then, issue one hedge (fresh reply tag, same op_seq)
      // and await BOTH tags for a fresh full rpc_timeout — first reply
      // wins, and a slow-but-alive primary still counts. Reads only:
      // hedging a write would double-apply without replay protection, and
      // read hedges are idempotent by nature.
      SimTime hedge_delay = 0;
      if (cc.hedge_quantile > 0 && is_data_read &&
          ln.samples >= static_cast<std::uint64_t>(
                            std::max(1, cc.hedge_min_samples)) &&
          ln.breaker == Lane::Breaker::kClosed) {
        // The log-linear histogram reports bucket midpoints, which can sit
        // just below the true quantile sample — close enough for a healthy
        // reply to race its own hedge. One bucket width of headroom makes
        // the estimate an upper bound on the bucketed sample.
        hedge_delay = static_cast<SimTime>(
            ln.attempt_latency.percentile(cc.hedge_quantile) *
            (1.0 + 1.0 / obs::Histogram::kSubBuckets));
        if (hedge_delay <= 0 || hedge_delay >= cc.rpc_timeout) hedge_delay = 0;
      }
      if (hedge_delay > 0) {
        maybe = co_await network_->mailbox(node_).recv_for(slot->server, tag,
                                                           hedge_delay);
        if (!maybe.has_value() && ln.breaker != Lane::Breaker::kClosed) {
          // The breaker opened while we waited out the hedge delay (a
          // concurrent RPC to this server tripped it). Issuing the hedge
          // now would aim a second copy at a server already judged
          // unhealthy — the one place extra load cannot help. Suppress it
          // and give the primary reply the full timeout instead.
          ++hedges_suppressed_;
          if (obs_hedges_suppressed_ != nullptr) obs_hedges_suppressed_->add(1);
          if (tracer_ != nullptr) {
            tracer_->record({sched_->now(), "hedge_suppressed", node_,
                             slot->server, tag, 0, op_name(slot->request.op)});
          }
          maybe = co_await network_->mailbox(node_).recv_for(slot->server, tag,
                                                             cc.rpc_timeout);
        } else if (!maybe.has_value()) {
          Request hedge = slot->request;
          hedge.reply_tag = next_reply_tag();
          const std::uint64_t hedge_tag = hedge.reply_tag;
          if (attempt_span != 0) hedge.parent_span = attempt_span;
          hedge_sent = true;
          ++hedges_issued_;
          ++stats_.requests_sent;
          if (obs_hedges_issued_ != nullptr) obs_hedges_issued_->add(1);
          if (tracer_ != nullptr) {
            tracer_->record({sched_->now(), "hedge", node_, slot->server,
                             hedge_tag, 0, op_name(slot->request.op)});
          }
          sim::Message out2(node_, kTagRequest, slot->wire_bytes,
                            std::move(hedge));
          out2.trace = slot->request.trace_id;
          out2.span = attempt_span != 0
                          ? attempt_span
                          : (slot->rpc_span != 0 ? slot->rpc_span
                                                 : slot->request.parent_span);
          out2.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
          co_await network_->send(node_, slot->server, std::move(out2));
          maybe = co_await network_->mailbox(node_).recv2_for(
              slot->server, tag, hedge_tag, cc.rpc_timeout);
          if (maybe.has_value() && maybe->tag == hedge_tag) hedge_won = true;
        }
      } else {
        maybe = co_await network_->mailbox(node_).recv_for(slot->server, tag,
                                                           cc.rpc_timeout);
      }
      if (!maybe.has_value()) {
        ++rpc_timeouts_;
        health_note(ln, 0, /*failed=*/true);
        note_window_decrease(ln);
        breaker_on_failure(ln, slot->server);
        last = timed_out_error("rpc to server " +
                               std::to_string(slot->server) +
                               " timed out (attempt " +
                               std::to_string(attempt) + ")");
        if (obs_ != nullptr) {
          obs_timeouts_->add(1);
          attempt_latency_->record(sched_->now() - attempt_start);
          obs_->spans.end(attempt_span, sched_->now());
        }
        continue;
      }
      msg = std::move(*maybe);
      if (hedge_won) {
        ++hedges_won_;
        if (obs_hedges_won_ != nullptr) obs_hedges_won_->add(1);
      }
    }
    Reply reply = msg.take<Reply>();
    if (obs_ != nullptr && reliable) {
      attempt_latency_->record(sched_->now() - attempt_start);
      obs_->spans.end(attempt_span, sched_->now());
    }
    if (reliable) {
      // Any reply — OK, shed, or application-level error — proves the
      // server alive: settle the breaker now, on arrival. Otherwise a
      // half-open probe answered with a definitive error would co_return
      // with probe_in_flight stuck set (every later RPC fails fast
      // forever), and an error reply would leave a stale near-threshold
      // consecutive_failures count on a responsive server.
      breaker_on_success(ln, slot->server);
    }
    // Read-data integrity: corrupted reply payloads must not reach the
    // caller's buffer; treat like a lost reply and retry.
    if (reply.has_payload_crc && reply.data &&
        crc32(*reply.data) != reply.payload_crc) {
      all_timeouts = false;
      if (reliable) health_note(ln, 0, /*failed=*/true);
      last = data_loss("read reply payload CRC mismatch from server " +
                       std::to_string(slot->server));
      continue;
    }
    if (!reply.ok) {
      all_timeouts = false;
      const StatusCode code =
          reply.code == StatusCode::kOk ? StatusCode::kInternal : reply.code;
      last = Status(code, reply.error);
      if (code == StatusCode::kOverloaded && reliable) {
        // The server shed this request at admission. Retryable like
        // kDataLoss, with two twists: the window halves (the shed IS the
        // backpressure signal), and the server's retry_after hint floors
        // the next backoff. Sheds are deliberate, cheap, and prove the
        // server alive — they do not count toward the breaker.
        ++overloads_seen_;
        if (obs_overloaded_ != nullptr) obs_overloaded_->add(1);
        // One reply, one decrease: a shed batch halves the AIMD window
        // once, regardless of how many sub-ops it carried.
        health_note(ln, 0, /*failed=*/true);
        note_window_decrease(ln);
        retry_after_hint = reply.retry_after;
        if (attempt < max_attempts) {
          wb_strip_acked(slot, reply);
          continue;
        }
      }
      // kDataLoss marks a transient corruption rejection — retry; every
      // other error class is definitive. A partially-applied batch sheds
      // its acknowledged sub-ops first so only the rejected remainder is
      // resent.
      if (code == StatusCode::kDataLoss && reliable) {
        health_note(ln, 0, /*failed=*/true);
        wb_strip_acked(slot, reply);
        continue;
      }
      slot->status = last;
      slot->reply = std::move(reply);
      co_return;
    }
    if (reliable) {
      health_note(ln, sched_->now() - attempt_start, /*failed=*/false,
                  hedge_sent);
      note_window_increase(ln);
    }
    slot->status = Status::ok();
    slot->reply = std::move(reply);
    co_return;
  }

  // Retries exhausted. All-timeouts after multiple attempts means the
  // server is effectively unreachable; a single timeout stays kTimedOut.
  if (all_timeouts && max_attempts > 1) {
    slot->status = unavailable("server " + std::to_string(slot->server) +
                               " unreachable after " +
                               std::to_string(max_attempts) + " attempts");
  } else {
    slot->status = last;
  }
}

sim::Fire Client::rpc_fire(RpcSlot* slot, sim::WaitGroup* wg) {
  co_await rpc_attempts(slot);
  wg->done();
}

// ---- Replication: read failover and quorum writes ---------------------------

sim::Task<void> Client::rpc_attempts_failover(RpcSlot* slot) {
  const net::ClientConfig& cc = config_->client;
  const int repl = effective_replication();
  const bool is_data_read = slot->request.op == OpKind::kContigRead ||
                            slot->request.op == OpKind::kListRead ||
                            slot->request.op == OpKind::kDatatypeRead;
  if (repl <= 1 || !is_data_read) {
    co_await rpc_attempts(slot);
    co_return;
  }

  // Walk the replica ring, one attempt per replica: a failed primary costs
  // at most one rpc_timeout (or microseconds once its breaker is open)
  // before the mirrored copy answers. Per-replica retry budget is 1 —
  // retrying here, at the ring level, reaches a healthy copy sooner than
  // hammering the same dead server rpc_max_attempts times would.
  const int primary = slot->home;
  const Request base = slot->request;
  const int rounds = std::max(1, cc.rpc_max_attempts);
  for (int round = 0; round < rounds; ++round) {
    if (round > 0 && cc.rpc_backoff_base > 0) {
      // Every replica refused or timed out: back off like a retry before
      // sweeping the ring again (restarting servers finish resync, open
      // breakers reach their cool-down).
      SimTime backoff = cc.rpc_backoff_base;
      for (int i = 1; i < round; ++i) {
        backoff = static_cast<SimTime>(static_cast<double>(backoff) *
                                       cc.rpc_backoff_multiplier);
      }
      co_await sched_->delay(backoff);
    }
    for (int k = 0; k < repl; ++k) {
      slot->server = layout_.replica_server(primary, k);
      slot->request = base;
      slot->request.replica_of = k == 0 ? -1 : primary;
      slot->max_attempts_override = 1;
      if (k > 0 || round > 0) ++stats_.requests_sent;
      if (k > 0) {
        ++read_failovers_;
        if (obs_read_failovers_ != nullptr) obs_read_failovers_->add(1);
        if (tracer_ != nullptr) {
          tracer_->record({sched_->now(), "read_failover", node_,
                           slot->server, 0,
                           static_cast<std::uint64_t>(primary),
                           op_name(base.op)});
        }
      }
      co_await rpc_attempts(slot);
      if (slot->status.is_ok()) co_return;
      const StatusCode code = slot->status.code();
      // Only "this copy is unreachable" moves the read along the ring;
      // every other error class is definitive for the whole read.
      if (code != StatusCode::kUnavailable && code != StatusCode::kTimedOut) {
        co_return;
      }
    }
  }
}

sim::Fire Client::failover_fire(RpcSlot* slot, sim::WaitGroup* wg) {
  co_await rpc_attempts_failover(slot);
  wg->done();
}

std::shared_ptr<Client::QuorumGroup> Client::quorum_spawn(
    const RpcSlot& base, sim::WaitGroup& wg) {
  const int repl = effective_replication();
  const int wq = config_->client.write_quorum;
  auto group = std::make_shared<QuorumGroup>();
  group->quorum = wq > 0 ? std::min(wq, repl) : repl;
  group->wg = &wg;
  group->slots.reserve(static_cast<std::size_t>(repl));
  for (int k = 0; k < repl; ++k) {
    auto slot = std::make_unique<RpcSlot>();
    slot->home = base.home;
    slot->server = layout_.replica_server(base.home, k);
    // Same op_seq (and, for batches, per-sub-op op_seqs + CRCs) on every
    // copy: each replica's replay window dedups its own retries, and the
    // payload's data buffers are shared_ptr-shared across the copies.
    slot->request = base.request;
    if (k > 0) slot->request.replica_of = base.home;
    slot->wire_bytes = base.wire_bytes;
    if (k == 0) {
      slot->rpc_span = base.rpc_span;
    } else if (obs_ != nullptr) {
      slot->rpc_span =
          obs_->spans.begin("rpc_replica", node_, sched_->now(),
                            base.rpc_span, base.request.trace_id);
      slot->request.parent_span = slot->rpc_span;
    }
    if (k > 0) ++stats_.requests_sent;
    group->slots.push_back(std::move(slot));
  }
  ++quorum_writes_;
  if (obs_quorum_writes_ != nullptr) obs_quorum_writes_->add(1);
  for (auto& slot : group->slots) {
    sched_->start(quorum_fire(group, slot.get()));
  }
  return group;
}

sim::Fire Client::quorum_fire(std::shared_ptr<QuorumGroup> group,
                              RpcSlot* slot) {
  co_await rpc_attempts(slot);
  if (obs_ != nullptr && slot->rpc_span != 0) {
    obs_->spans.end(slot->rpc_span, sched_->now());
  }
  QuorumGroup& g = *group;
  if (slot->status.is_ok()) {
    ++g.acks;
    if (!g.have_reply) {
      g.reply = slot->reply;
      g.have_reply = true;
    }
  } else {
    ++g.fails;
    if (g.error.is_ok()) g.error = slot->status;
  }
  // Settle exactly once: at quorum, or as soon as quorum is impossible.
  // Laggard drivers (g.wg already null) just finish their delivery — that
  // is the durability the quorum write promised the still-pending copies.
  const int total = static_cast<int>(g.slots.size());
  if (g.wg != nullptr && (g.acks >= g.quorum || g.fails > total - g.quorum)) {
    sim::WaitGroup* wg = g.wg;
    g.wg = nullptr;
    wg->done();
  }
}

void Client::quorum_outcome(const QuorumGroup& group, RpcSlot& slot) {
  if (group.acks >= group.quorum) {
    slot.status = Status::ok();
    slot.reply = group.reply;
  } else {
    slot.status = group.error.is_ok()
                      ? internal_error("write quorum unreachable")
                      : group.error;
  }
}

sim::Task<MetaResult> Client::stat_impl(Box<std::string> path) {
  MetaResult opened = co_await meta_op(OpKind::kMetaOpen,
                                       Box<std::string>(path.take()));
  if (!opened.status.is_ok()) co_return opened;
  co_return co_await stat_handle(opened.handle);
}

sim::Task<MetaResult> Client::stat_handle(std::uint64_t handle) {
  // The logical size must include staged-but-unflushed bytes; the servers
  // can only report what they have.
  if (write_behind_enabled() && wb_total_bytes_ > 0) {
    const Status flushed = co_await wb_flush_all("stat");
    if (!flushed.is_ok()) {
      MetaResult failed;
      failed.status = flushed;
      co_return failed;
    }
  }
  const OpTrace t = begin_op(OpKind::kMetaStat);
  // Query every I/O server's bstream size for this handle; the logical
  // size is the highest logical byte implied by any server-local size.
  auto slots = std::make_unique<std::vector<RpcSlot>>(
      static_cast<std::size_t>(config_->num_servers));
  for (int s = 0; s < config_->num_servers; ++s) {
    RpcSlot& slot = (*slots)[static_cast<std::size_t>(s)];
    slot.server = s;
    slot.request.op = OpKind::kMetaStat;
    slot.request.client_node = node_;
    slot.request.payload = MetaPayload{"", handle};
    slot.request.trace_id = t.trace;
    slot.request.parent_span = t.span;
    slot.wire_bytes = request_descriptor_bytes(
        slot.request, config_->list_io_bytes_per_region);
  }
  if (config_->client.rpc_timeout <= 0) {
    // Legacy shape (reliability off): sends awaited inline in server
    // order, then replies collected in the same order.
    for (RpcSlot& slot : *slots) {
      slot.request.reply_tag = next_reply_tag();
      Request request = slot.request;
      sim::Message out(node_, kTagRequest, slot.wire_bytes,
                       std::move(request));
      out.trace = t.trace;
      out.span = t.span;
      out.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
      co_await network_->send(node_, slot.server, std::move(out));
    }
    for (RpcSlot& slot : *slots) {
      sim::Message msg = co_await network_->mailbox(node_).recv(
          slot.server, slot.request.reply_tag);
      slot.reply = msg.take<Reply>();
    }
  } else {
    // Concurrent per-server RPCs, each with its own timeout/retry driver.
    sim::WaitGroup wg(*sched_);
    for (RpcSlot& slot : *slots) {
      wg.add(1);
      sched_->start(rpc_fire(&slot, &wg));
    }
    co_await wg.wait();
  }
  MetaResult result;
  result.handle = handle;
  std::int64_t size = 0;
  for (RpcSlot& slot : *slots) {
    if (!slot.status.is_ok()) {
      result.status = slot.status;
      continue;
    }
    if (slot.reply.local_size > 0) {
      size = std::max(
          size, layout_.logical(slot.server, slot.reply.local_size - 1) + 1);
    }
  }
  result.size = size;
  finish_op(OpKind::kMetaStat, t);
  co_return result;
}

// ---- Access-list building ----------------------------------------------------

std::int64_t Client::build_access(std::span<const Region> logical,
                                  std::vector<ServerAccess>& out) const {
  out.assign(static_cast<std::size_t>(config_->num_servers), ServerAccess{});
  std::int64_t pieces = 0;
  layout_.map_regions(logical,
                      [&](int server, Region phys, std::int64_t stream_pos) {
                        auto& acc = out[static_cast<std::size_t>(server)];
                        acc.pieces.push_back(phys);
                        acc.stream_at.push_back(stream_pos);
                        acc.total_bytes += phys.length;
                        ++pieces;
                      });
  return pieces;
}

std::int64_t Client::build_access_datatype(
    const dl::DataloopPtr& filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    std::vector<ServerAccess>& out) const {
  out.assign(static_cast<std::size_t>(config_->num_servers), ServerAccess{});
  std::int64_t pieces = 0;
  std::int64_t pos = 0;  // position within the stream window
  dl::Cursor cursor(filetype, displacement, count);
  cursor.seek(stream_offset);
  cursor.process(
      std::numeric_limits<std::int64_t>::max(), stream_length,
      [&](std::int64_t off, std::int64_t len) {
        layout_.map_region(
            Region{off, len},
            [&](int server, Region phys, std::int64_t rel) {
              auto& acc = out[static_cast<std::size_t>(server)];
              acc.pieces.push_back(phys);
              acc.stream_at.push_back(pos + rel);
              acc.total_bytes += phys.length;
              ++pieces;
            });
        pos += len;
      });
  return pieces;
}

// ---- Data operations -----------------------------------------------------------

sim::Task<Status> Client::write_contig(std::uint64_t handle,
                                       std::int64_t offset,
                                       const std::uint8_t* data,
                                       std::int64_t length) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const Region region{offset, length};
  const std::int64_t pieces =
      build_access(std::span<const Region>(&region, 1), *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kContigWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ContigPayload{offset, length, nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)), data,
                      nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_contig(std::uint64_t handle,
                                      std::int64_t offset, std::uint8_t* out,
                                      std::int64_t length) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const Region region{offset, length};
  const std::int64_t pieces =
      build_access(std::span<const Region>(&region, 1), *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kContigRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ContigPayload{offset, length, nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, out, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::write_list(std::uint64_t handle,
                                     std::vector<Region> regions,
                                     const std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces = build_access(regions, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kListWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ListPayload{std::move(regions), nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      stream, nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_list(std::uint64_t handle,
                                    std::vector<Region> regions,
                                    std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces = build_access(regions, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kListRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ListPayload{std::move(regions), nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, stream, Box<Request>(std::move(prototype)));
}

namespace {

DatatypePayload make_datatype_payload(const dl::DataloopPtr& filetype,
                                      std::int64_t displacement,
                                      std::int64_t count,
                                      std::int64_t stream_offset,
                                      std::int64_t stream_length) {
  auto encoded = std::make_shared<std::vector<std::uint8_t>>();
  dl::encode(*filetype, *encoded);
  DatatypePayload payload{std::move(encoded), filetype->node_count(),
                          displacement,       count,
                          stream_offset,      stream_length,
                          nullptr};
  // Descriptor integrity: the server verifies this before decoding, so a
  // corrupted-in-flight dataloop is rejected instead of decoded.
  payload.loop_crc = crc32(*payload.encoded_loop);
  return payload;
}

}  // namespace

sim::Task<Status> Client::write_datatype(
    std::uint64_t handle, dl::DataloopPtr filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    const std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces =
      build_access_datatype(filetype, displacement, count, stream_offset,
                            stream_length, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kDatatypeWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = make_datatype_payload(filetype, displacement, count,
                                            stream_offset, stream_length);
  return run_requests(config_->client.dataloop_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      stream, nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_datatype(
    std::uint64_t handle, dl::DataloopPtr filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces =
      build_access_datatype(filetype, displacement, count, stream_offset,
                            stream_length, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kDatatypeRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = make_datatype_payload(filetype, displacement, count,
                                            stream_offset, stream_length);
  return run_requests(config_->client.dataloop_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, stream, Box<Request>(std::move(prototype)));
}

// ---- Request fan-out -------------------------------------------------------------

sim::Task<Status> Client::run_requests(
    SimTime client_cpu_cost, Box<std::vector<ServerAccess>> access_box,
    const std::uint8_t* write_stream, std::uint8_t* read_stream,
    Box<Request> prototype_box) {
  const std::vector<ServerAccess> access = access_box.take();
  const Request prototype = prototype_box.take();
  const bool is_write = prototype.op == OpKind::kContigWrite ||
                        prototype.op == OpKind::kListWrite ||
                        prototype.op == OpKind::kDatatypeWrite;

  std::int64_t total_bytes = 0;
  for (const ServerAccess& acc : access) total_bytes += acc.total_bytes;

  // Read-after-write overlap: a read touching staged bytes first drains
  // that server's whole buffer, so the bytes it returns are the bytes the
  // program wrote (the byte-identical-vs-oracle contract).
  if (!is_write && write_behind_enabled() && wb_total_bytes_ > 0) {
    for (int s = 0; s < config_->num_servers; ++s) {
      const ServerAccess& acc = access[static_cast<std::size_t>(s)];
      if (acc.total_bytes == 0) continue;
      if (!wb_read_overlaps(s, prototype.handle, acc.pieces)) continue;
      const Status flushed = co_await wb_flush_server(s, "read_overlap",
                                                      /*charge_prep=*/true);
      if (!flushed.is_ok()) co_return flushed;
    }
  }

  // Root span + latency histogram for the whole operation; one rpc child
  // span per involved server, which the network and server layers parent
  // their own spans under (via the request's trace fields).
  const OpTrace op_trace = begin_op(prototype.op);
  if (obs_ != nullptr) obs_->spans.set_value(op_trace.span, total_bytes);

  // Client-side processing: building the per-server job/access lists plus
  // one buffer copy to segment (write) or reassemble (read) the stream.
  obs::SpanId prep_span = 0;
  if (obs_ != nullptr) {
    prep_span = obs_->spans.begin("client_prep", node_, sched_->now(),
                                  op_trace.span, op_trace.trace,
                                  obs::Phase::kClientPrep);
  }
  co_await sched_->delay(
      config_->client.issue_overhead + client_cpu_cost +
      transfer_time(static_cast<std::uint64_t>(total_bytes),
                    config_->client.memcpy_bandwidth_bytes_per_s));
  if (obs_ != nullptr) obs_->spans.end(prep_span, sched_->now());

  // Write-behind absorb: instead of sending per-server RPCs now, stage the
  // already-clipped physical runs into the per-server buffers and return.
  // The op completes immediately after the client-side prep charge; network
  // and server costs are paid later, by flushes, in kBatchWrite envelopes.
  if (is_write && write_behind_enabled()) {
    wb_resolve_obs();
    for (int s = 0; s < config_->num_servers; ++s) {
      const ServerAccess& acc = access[static_cast<std::size_t>(s)];
      if (acc.total_bytes == 0) continue;
      for (std::size_t i = 0; i < acc.pieces.size(); ++i) {
        const std::uint8_t* src =
            (transfer_data_ && write_stream != nullptr)
                ? write_stream + acc.stream_at[i]
                : nullptr;
        wb_stage_run(s, prototype.handle, acc.pieces[i], src);
      }
      stats_.accessed_bytes += static_cast<std::uint64_t>(acc.total_bytes);
    }
    ++wb_staged_ops_;
    if (obs_wb_staged_ != nullptr) obs_wb_staged_->add(total_bytes);

    // High watermark: any server whose staging buffer crossed the limit
    // flushes now, inline, so a hot server cannot grow its buffer without
    // bound while cold servers stay staged.
    Status staged = Status::ok();
    for (int s = 0; s < config_->num_servers; ++s) {
      if (static_cast<std::size_t>(s) >= wb_.size()) break;
      if (wb_[static_cast<std::size_t>(s)].bytes <
          config_->client.write_behind_bytes) {
        continue;
      }
      const Status flushed =
          co_await wb_flush_server(s, "watermark", /*charge_prep=*/true);
      if (!flushed.is_ok() && staged.is_ok()) staged = flushed;
    }
    finish_op(prototype.op, op_trace);
    co_return staged;
  }

  // Build one RpcSlot per involved server. Start at this rank's "home"
  // server and walk the ring: staggering the per-client server order
  // spreads first-request load and prevents every server serving clients
  // in the same order (which would convoy client flows through the shared
  // links).
  const int nservers = config_->num_servers;
  auto slots = std::make_unique<std::vector<RpcSlot>>();
  slots->reserve(static_cast<std::size_t>(nservers));
  for (int i = 0; i < nservers; ++i) {
    const int s = (rank_ + i) % nservers;
    const ServerAccess& acc = access[static_cast<std::size_t>(s)];
    if (acc.total_bytes == 0) continue;

    RpcSlot slot;
    slot.server = s;
    slot.home = s;
    slot.request = prototype;
    slot.request.client_node = node_;
    // Each per-server request is its own replay-protected logical op:
    // the sequence stays fixed across retry attempts.
    if (is_write) slot.request.op_seq = ++op_seq_;

    if (obs_ != nullptr) {
      slot.rpc_span = obs_->spans.begin("rpc", node_, sched_->now(),
                                        op_trace.span, op_trace.trace);
      obs_->spans.set_value(slot.rpc_span, acc.total_bytes);
      slot.request.trace_id = op_trace.trace;
      slot.request.parent_span = slot.rpc_span;
    }

    // Segment outgoing data for this server, in its stream order, and
    // stamp its CRC so the server can reject in-flight corruption.
    if (is_write && transfer_data_ && write_stream != nullptr) {
      auto buffer = std::make_shared<std::vector<std::uint8_t>>(
          static_cast<std::size_t>(acc.total_bytes));
      std::size_t at = 0;
      for (std::size_t i = 0; i < acc.pieces.size(); ++i) {
        const auto len = static_cast<std::size_t>(acc.pieces[i].length);
        std::memcpy(buffer->data() + at, write_stream + acc.stream_at[i], len);
        at += len;
      }
      slot.request.payload_crc = crc32(*buffer);
      slot.request.has_payload_crc = true;
      std::visit([&](auto& payload) {
        if constexpr (requires { payload.data; }) payload.data = buffer;
      }, slot.request.payload);
    }

    const std::uint64_t descriptor = request_descriptor_bytes(
        slot.request, config_->list_io_bytes_per_region);
    slot.wire_bytes =
        descriptor + (is_write ? static_cast<std::uint64_t>(acc.total_bytes)
                               : 0);
    ++stats_.requests_sent;
    stats_.request_bytes += descriptor;
    stats_.accessed_bytes += static_cast<std::uint64_t>(acc.total_bytes);
    slots->push_back(std::move(slot));
  }

  // Scatter one server's gathered bytes back into the stream buffer. The
  // access list is indexed by the slot's HOME server: a failover read may
  // have been answered by a replica, but the bytes are the home strips'.
  auto scatter = [&](const RpcSlot& slot) {
    const ServerAccess& acc = access[static_cast<std::size_t>(slot.home)];
    std::size_t at = 0;
    for (std::size_t i = 0; i < acc.pieces.size(); ++i) {
      const auto len = static_cast<std::size_t>(acc.pieces[i].length);
      std::memcpy(read_stream + acc.stream_at[i], slot.reply.data->data() + at,
                  len);
      at += len;
    }
  };

  if (config_->client.rpc_timeout <= 0) {
    // Legacy fast path (reliability off): requests to all involved servers
    // stream CONCURRENTLY via detached sends — the tx link serializes at
    // packet granularity, so flows interleave like PVFS's parallel
    // per-server sockets — then replies are awaited in issue order. This
    // is event-for-event the pre-reliability client.
    for (RpcSlot& slot : *slots) {
      slot.request.reply_tag = next_reply_tag();
      Request request = slot.request;
      sim::Message out(node_, kTagRequest, slot.wire_bytes,
                       std::move(request));
      out.trace = op_trace.trace;
      out.span = slot.rpc_span;
      out.phase = static_cast<std::uint8_t>(obs::Phase::kNetRequest);
      sched_->start(send_fire(slot.server, Box<sim::Message>(std::move(out))));
    }
    for (RpcSlot& slot : *slots) {
      sim::Message msg = co_await network_->mailbox(node_).recv(
          slot.server, slot.request.reply_tag);
      Reply reply = msg.take<Reply>();
      if (obs_ != nullptr) obs_->spans.end(slot.rpc_span, sched_->now());
      if (!reply.ok) {
        finish_op(prototype.op, op_trace);
        co_return Status(reply.code == StatusCode::kOk ? StatusCode::kInternal
                                                       : reply.code,
                         reply.error);
      }
      if (reply.has_payload_crc && reply.data &&
          crc32(*reply.data) != reply.payload_crc) {
        finish_op(prototype.op, op_trace);
        co_return data_loss("read reply payload CRC mismatch from server " +
                            std::to_string(slot.server));
      }
      const ServerAccess& acc = access[static_cast<std::size_t>(slot.server)];
      if (reply.bytes != acc.total_bytes) {
        finish_op(prototype.op, op_trace);
        co_return internal_error("server byte count mismatch");
      }
      slot.reply = std::move(reply);
      if (!is_write && read_stream != nullptr && transfer_data_ &&
          slot.reply.data) {
        scatter(slot);
      }
    }
    finish_op(prototype.op, op_trace);
    co_return Status::ok();
  }

  // Reliable path: one concurrent RPC driver per server, each with its own
  // timeout/retry loop (a straggler or outage on one server must not stall
  // retries to the others); join, then validate and scatter. Under
  // replication, writes fan out to every replica of their home server and
  // join at write quorum (laggard copies finish in the background), and
  // reads get the failover driver.
  const int repl = effective_replication();
  sim::WaitGroup wg(*sched_);
  std::vector<std::shared_ptr<QuorumGroup>> groups;
  if (is_write && repl > 1) {
    groups.reserve(slots->size());
    for (RpcSlot& slot : *slots) {
      wg.add(1);
      groups.push_back(quorum_spawn(slot, wg));
      // The replica drivers own the rpc spans now (a laggard may outlive
      // this frame); ending span 0 below is a no-op.
      slot.rpc_span = 0;
    }
  } else if (!is_write && repl > 1) {
    for (RpcSlot& slot : *slots) {
      wg.add(1);
      sched_->start(failover_fire(&slot, &wg));
    }
  } else {
    for (RpcSlot& slot : *slots) {
      wg.add(1);
      sched_->start(rpc_fire(&slot, &wg));
    }
  }
  co_await wg.wait();
  for (std::size_t i = 0; i < groups.size(); ++i) {
    quorum_outcome(*groups[i], (*slots)[i]);
  }

  Status result = Status::ok();
  for (RpcSlot& slot : *slots) {
    if (obs_ != nullptr) obs_->spans.end(slot.rpc_span, sched_->now());
    if (!slot.status.is_ok()) {
      if (result.is_ok()) result = slot.status;
      continue;
    }
    const ServerAccess& acc = access[static_cast<std::size_t>(slot.home)];
    if (slot.reply.bytes != acc.total_bytes) {
      if (result.is_ok()) result = internal_error("server byte count mismatch");
      continue;
    }
    if (!is_write && read_stream != nullptr && transfer_data_ &&
        slot.reply.data) {
      scatter(slot);
    }
  }
  finish_op(prototype.op, op_trace);
  co_return result;
}

// ---- Write-behind staging ---------------------------------------------------
//
// Per-server buffers hold already-clipped PHYSICAL runs keyed by
// (handle, physical offset) in a std::map, so flush order — and therefore
// the whole event sequence — is deterministic. Staging merges overlapping
// and adjacent runs in arrival order (new data overwrites old), and a flush
// ships the buffer as one kBatchWrite envelope whose sub-ops each carry
// their own op_seq + CRC: the server's idempotent-replay window then applies
// each coalesced write exactly once even when the envelope is retried.

sim::Task<Status> Client::flush_write_behind() {
  co_return co_await wb_flush_all("explicit");
}

void Client::wb_stage_run(int server, std::uint64_t handle, Region phys,
                          const std::uint8_t* src) {
  if (phys.length <= 0) return;
  if (wb_.size() < static_cast<std::size_t>(config_->num_servers)) {
    wb_.resize(static_cast<std::size_t>(config_->num_servers));
  }
  WbServerBuf& buf = wb_[static_cast<std::size_t>(server)];

  std::int64_t new_lo = phys.offset;
  std::int64_t new_hi = phys.end();

  // Find the first existing run that could touch [lo, hi]: step back one if
  // the previous same-handle run reaches (or abuts) our start.
  auto it = buf.runs.lower_bound({handle, new_lo});
  if (it != buf.runs.begin()) {
    auto prev = std::prev(it);
    if (prev->first.first == handle &&
        prev->first.second + prev->second.length >= new_lo) {
      it = prev;
    }
  }

  // Absorb every run overlapping or adjacent to the new one. Old data is
  // kept (copied into the merged buffer first); the new bytes land last so
  // arrival order wins on overlap.
  std::vector<std::pair<std::int64_t, WbRun>> absorbed;
  std::uint64_t absorbed_ops = 0;
  while (it != buf.runs.end() && it->first.first == handle &&
         it->first.second <= new_hi) {
    new_lo = std::min(new_lo, it->first.second);
    new_hi = std::max(new_hi, it->first.second + it->second.length);
    buf.bytes -= it->second.length;
    wb_total_bytes_ -= it->second.length;
    if (it->second.data) {
      absorbed.emplace_back(it->first.second, std::move(it->second));
    }
    ++absorbed_ops;
    it = buf.runs.erase(it);
  }

  WbRun merged;
  merged.length = new_hi - new_lo;
  if (src != nullptr) {
    merged.data = std::make_shared<std::vector<std::uint8_t>>(
        static_cast<std::size_t>(merged.length));
    for (const auto& [off, old] : absorbed) {
      std::memcpy(merged.data->data() + (off - new_lo), old.data->data(),
                  static_cast<std::size_t>(old.length));
    }
    std::memcpy(merged.data->data() + (phys.offset - new_lo), src,
                static_cast<std::size_t>(phys.length));
  }
  buf.bytes += merged.length;
  wb_total_bytes_ += merged.length;
  buf.runs.emplace(std::make_pair(handle, new_lo), std::move(merged));

  wb_coalesced_ += absorbed_ops;
  if (obs_wb_coalesced_ != nullptr && absorbed_ops > 0) {
    obs_wb_coalesced_->add(static_cast<std::int64_t>(absorbed_ops));
  }
}

bool Client::wb_read_overlaps(int server, std::uint64_t handle,
                              const std::vector<Region>& pieces) const {
  if (static_cast<std::size_t>(server) >= wb_.size()) return false;
  const WbServerBuf& buf = wb_[static_cast<std::size_t>(server)];
  if (buf.runs.empty()) return false;
  for (const Region& piece : pieces) {
    auto it = buf.runs.lower_bound({handle, piece.offset});
    if (it != buf.runs.begin()) {
      auto prev = std::prev(it);
      if (prev->first.first == handle &&
          prev->first.second + prev->second.length > piece.offset) {
        return true;
      }
    }
    if (it != buf.runs.end() && it->first.first == handle &&
        it->first.second < piece.end()) {
      return true;
    }
  }
  return false;
}

sim::Task<Status> Client::wb_flush_server(int server, const char* reason,
                                          bool charge_prep) {
  if (static_cast<std::size_t>(server) >= wb_.size()) co_return Status::ok();
  WbServerBuf& buf = wb_[static_cast<std::size_t>(server)];
  if (buf.runs.empty()) co_return Status::ok();

  // Detach the buffer before the first co_await: writes issued while this
  // flush is in flight stage into a fresh buffer and ride the next flush.
  std::map<std::pair<std::uint64_t, std::int64_t>, WbRun> runs;
  runs.swap(buf.runs);
  const std::int64_t flush_bytes = buf.bytes;
  buf.bytes = 0;
  wb_total_bytes_ -= flush_bytes;

  ++wb_flushes_;
  wb_note_flush(reason, runs.size());

  // The flush is its own root trace: staged writes already closed their op
  // spans, so deferred network/server time is attributed to client_flush.
  obs::SpanId flush_span = 0;
  std::uint64_t trace = 0;
  const SimTime flush_start = sched_->now();
  if (obs_ != nullptr) {
    trace = obs_->spans.new_trace();
    flush_span = obs_->spans.begin("client_flush", node_, flush_start, 0,
                                   trace, obs::Phase::kClientFlush);
    obs_->spans.set_value(flush_span, flush_bytes);
  }

  RpcSlot slot;
  slot.server = server;
  slot.request.op = OpKind::kBatchWrite;
  slot.request.client_node = node_;
  slot.request.carry_data = transfer_data_;
  slot.request.trace_id = trace;
  slot.request.parent_span = flush_span;

  BatchPayload batch;
  batch.sub_ops.reserve(runs.size());
  for (auto& [key, run] : runs) {
    BatchSubOp sub;
    sub.handle = key.first;
    sub.offset = key.second;
    sub.length = run.length;
    sub.data = std::move(run.data);
    // Each sub-op is its own replay-protected logical write; the sequence
    // stays fixed across envelope retries so the server dedups per sub-op.
    sub.op_seq = ++op_seq_;
    if (sub.data) {
      sub.payload_crc = crc32(*sub.data);
      sub.has_payload_crc = true;
    }
    batch.sub_ops.push_back(std::move(sub));
  }
  slot.request.payload = std::move(batch);

  const std::uint64_t descriptor = request_descriptor_bytes(
      slot.request, config_->list_io_bytes_per_region);
  slot.wire_bytes = descriptor + static_cast<std::uint64_t>(flush_bytes);
  ++stats_.requests_sent;
  stats_.request_bytes += descriptor;

  if (charge_prep) {
    // Issue overhead plus one staging-buffer copy into the wire buffer.
    // wb_flush_all charges a single combined prep instead.
    co_await sched_->delay(
        config_->client.issue_overhead +
        transfer_time(static_cast<std::uint64_t>(flush_bytes),
                      config_->client.memcpy_bandwidth_bytes_per_s));
  }

  if (obs_ != nullptr) {
    slot.rpc_span = obs_->spans.begin("rpc", node_, sched_->now(), flush_span,
                                      trace);
    obs_->spans.set_value(slot.rpc_span, flush_bytes);
    slot.request.parent_span = slot.rpc_span;
  }
  if (effective_replication() > 1) {
    // Replicated flush: the batch envelope (same per-sub-op op_seqs and
    // CRCs on every copy) fans out to all replicas of this server and
    // completes at write quorum; laggard copies deliver in the background.
    slot.home = server;
    sim::WaitGroup wg(*sched_);
    wg.add(1);
    auto group = quorum_spawn(slot, wg);
    co_await wg.wait();
    quorum_outcome(*group, slot);
    if (obs_ != nullptr) obs_->spans.end(flush_span, sched_->now());
    ++wb_batches_;
    co_return slot.status;
  }
  co_await rpc_attempts(&slot);
  if (obs_ != nullptr) {
    obs_->spans.end(slot.rpc_span, sched_->now());
    obs_->spans.end(flush_span, sched_->now());
  }
  ++wb_batches_;
  co_return slot.status;
}

sim::Fire Client::wb_flush_fire(int server, const char* reason, Status* out,
                                sim::WaitGroup* wg) {
  *out = co_await wb_flush_server(server, reason, /*charge_prep=*/false);
  wg->done();
}

sim::Task<Status> Client::wb_flush_all(const char* reason) {
  if (wb_.empty() || wb_total_bytes_ <= 0) co_return Status::ok();

  // Staggered server order, like run_requests, so concurrent clients do not
  // convoy their flush flows through the shared links in the same order.
  const int nservers = config_->num_servers;
  std::vector<int> involved;
  for (int i = 0; i < nservers; ++i) {
    const int s = (rank_ + i) % nservers;
    if (static_cast<std::size_t>(s) < wb_.size() &&
        !wb_[static_cast<std::size_t>(s)].runs.empty()) {
      involved.push_back(s);
    }
  }
  if (involved.empty()) co_return Status::ok();

  // One combined prep charge for the whole drain; per-server flushes then
  // run with charge_prep=false and overlap on the network.
  co_await sched_->delay(
      config_->client.issue_overhead +
      transfer_time(static_cast<std::uint64_t>(wb_total_bytes_),
                    config_->client.memcpy_bandwidth_bytes_per_s));

  if (involved.size() == 1) {
    co_return co_await wb_flush_server(involved[0], reason,
                                       /*charge_prep=*/false);
  }

  auto results = std::make_unique<std::vector<Status>>(involved.size());
  sim::WaitGroup wg(*sched_);
  for (std::size_t i = 0; i < involved.size(); ++i) {
    wg.add(1);
    sched_->start(wb_flush_fire(involved[i], reason, &(*results)[i], &wg));
  }
  co_await wg.wait();
  for (const Status& st : *results) {
    if (!st.is_ok()) co_return st;
  }
  co_return Status::ok();
}

void Client::wb_strip_acked(RpcSlot* slot, const Reply& reply) {
  auto* batch = std::get_if<BatchPayload>(&slot->request.payload);
  if (batch == nullptr ||
      reply.sub_acked.size() != batch->sub_ops.size()) {
    return;
  }
  std::vector<BatchSubOp> rest;
  std::uint64_t rest_bytes = 0;
  for (std::size_t i = 0; i < batch->sub_ops.size(); ++i) {
    if (reply.sub_acked[i] != 0) continue;
    rest_bytes += static_cast<std::uint64_t>(batch->sub_ops[i].length);
    rest.push_back(std::move(batch->sub_ops[i]));
  }
  if (rest.size() == batch->sub_ops.size()) return;  // nothing acked
  batch->sub_ops = std::move(rest);
  slot->wire_bytes = request_descriptor_bytes(slot->request,
                                              config_->list_io_bytes_per_region) +
                     rest_bytes;
}

void Client::wb_resolve_obs() {
  if (obs_ == nullptr || wb_batch_subops_ != nullptr) return;
  // Resolved lazily, on first staged write, so runs with write-behind off
  // register no wb_* metrics and their exports stay byte-identical.
  obs_wb_staged_ = &obs_->metrics.counter("client_wb_staged_bytes_total",
                                          obs::label("node", node_));
  obs_wb_coalesced_ = &obs_->metrics.counter("client_wb_coalesced_ops_total",
                                             obs::label("node", node_));
  wb_batch_subops_ = &obs_->metrics.histogram("client_wb_batch_subops",
                                              obs::label("node", node_));
}

void Client::wb_note_flush(const char* reason, std::size_t sub_ops) {
  if (obs_ == nullptr) return;
  obs_->metrics
      .counter("client_wb_flushes_total",
               obs::label("reason", reason, "node", node_))
      .add(1);
  wb_resolve_obs();
  wb_batch_subops_->record(static_cast<std::int64_t>(sub_ops));
}

}  // namespace dtio::pfs
