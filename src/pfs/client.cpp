#include "pfs/client.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "dataloop/cursor.h"
#include "dataloop/serialize.h"

namespace dtio::pfs {

Client::Client(sim::Scheduler& sched, net::Network& network,
               const net::ClusterConfig& config, int rank)
    : sched_(&sched),
      network_(&network),
      config_(&config),
      rank_(rank),
      node_(config.client_node(rank)),
      layout_(config.num_servers,
              static_cast<std::int64_t>(config.strip_size)) {}

// ---- Observability ----------------------------------------------------------

void Client::set_observability(obs::Observability* obs) {
  obs_ = obs;
  for (int i = 0; i < kNumOps; ++i) {
    op_latency_[i] =
        obs == nullptr
            ? nullptr
            : &obs->metrics.histogram(
                  "client_op_latency_ns",
                  obs::label("op", op_name(static_cast<OpKind>(i)), "node",
                             node_));
  }
}

Client::OpTrace Client::begin_op(OpKind op) {
  DTIO_DEBUG("cli" << node_ << " -> " << op_name(op));
  OpTrace t;
  if (obs_ == nullptr) return t;
  t.start = sched_->now();
  t.trace = obs_->spans.new_trace();
  t.span = obs_->spans.begin(op_name(op), node_, t.start, 0, t.trace);
  return t;
}

void Client::finish_op(OpKind op, const OpTrace& t) {
  if (obs_ == nullptr) return;
  const SimTime now = sched_->now();
  obs_->spans.end(t.span, now);
  op_latency_[static_cast<int>(op)]->record(now - t.start);
}

// ---- Metadata ---------------------------------------------------------------

sim::Task<MetaResult> Client::create(std::string path) {
  return meta_op(OpKind::kMetaCreate, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::open(std::string path) {
  return meta_op(OpKind::kMetaOpen, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::remove(std::string path) {
  return meta_op(OpKind::kMetaRemove, Box<std::string>(std::move(path)));
}
sim::Task<MetaResult> Client::stat(std::string path) {
  return stat_impl(Box<std::string>(std::move(path)));
}

sim::Task<Status> Client::lock(std::uint64_t handle) {
  const OpTrace t = begin_op(OpKind::kMetaLock);
  Request request;
  request.op = OpKind::kMetaLock;
  request.client_node = node_;
  request.reply_tag = next_reply_tag();
  request.payload = MetaPayload{"", handle};
  request.trace_id = t.trace;
  request.parent_span = t.span;
  const std::uint64_t tag = request.reply_tag;
  sim::Message msg(node_, kTagRequest, 48, std::move(request));
  msg.trace = t.trace;
  msg.span = t.span;
  co_await network_->send(node_, 0, std::move(msg));
  (void)co_await network_->mailbox(node_).recv(0, tag);  // grant
  finish_op(OpKind::kMetaLock, t);
  co_return Status::ok();
}

sim::Task<Status> Client::unlock(std::uint64_t handle) {
  const OpTrace t = begin_op(OpKind::kMetaUnlock);
  Request request;
  request.op = OpKind::kMetaUnlock;
  request.client_node = node_;
  request.reply_tag = next_reply_tag();
  request.payload = MetaPayload{"", handle};
  request.trace_id = t.trace;
  request.parent_span = t.span;
  const std::uint64_t tag = request.reply_tag;
  sim::Message msg(node_, kTagRequest, 48, std::move(request));
  msg.trace = t.trace;
  msg.span = t.span;
  co_await network_->send(node_, 0, std::move(msg));
  (void)co_await network_->mailbox(node_).recv(0, tag);
  finish_op(OpKind::kMetaUnlock, t);
  co_return Status::ok();
}

sim::Task<MetaResult> Client::meta_op(OpKind op, Box<std::string> path) {
  const OpTrace t = begin_op(op);
  Request request;
  request.op = op;
  request.client_node = node_;
  request.reply_tag = next_reply_tag();
  request.payload = MetaPayload{path.take(), 0};
  request.trace_id = t.trace;
  request.parent_span = t.span;

  const std::uint64_t descriptor = request_descriptor_bytes(
      request, config_->list_io_bytes_per_region);
  const std::uint64_t tag = request.reply_tag;
  co_await sched_->delay(config_->client.issue_overhead);
  sim::Message out(node_, kTagRequest, descriptor, std::move(request));
  out.trace = t.trace;
  out.span = t.span;
  co_await network_->send(node_, /*metadata server*/ 0, std::move(out));
  sim::Message msg = co_await network_->mailbox(node_).recv(0, tag);
  Reply reply = msg.take<Reply>();

  MetaResult result;
  result.handle = reply.handle;
  if (!reply.ok) result.status = not_found(reply.error);
  finish_op(op, t);
  co_return result;
}

sim::Fire Client::send_fire(int dst, Box<sim::Message> message) {
  co_await network_->send(node_, dst, message.take());
}

sim::Task<MetaResult> Client::stat_impl(Box<std::string> path) {
  MetaResult opened = co_await meta_op(OpKind::kMetaOpen,
                                       Box<std::string>(path.take()));
  if (!opened.status.is_ok()) co_return opened;
  co_return co_await stat_handle(opened.handle);
}

sim::Task<MetaResult> Client::stat_handle(std::uint64_t handle) {
  const OpTrace t = begin_op(OpKind::kMetaStat);
  // Query every I/O server's bstream size for this handle; the logical
  // size is the highest logical byte implied by any server-local size.
  std::vector<std::uint64_t> tags(static_cast<std::size_t>(
      config_->num_servers));
  for (int s = 0; s < config_->num_servers; ++s) {
    Request request;
    request.op = OpKind::kMetaStat;
    request.client_node = node_;
    request.reply_tag = tags[static_cast<std::size_t>(s)] = next_reply_tag();
    request.payload = MetaPayload{"", handle};
    request.trace_id = t.trace;
    request.parent_span = t.span;
    sim::Message out(node_, kTagRequest,
                     request_descriptor_bytes(
                         request, config_->list_io_bytes_per_region),
                     std::move(request));
    out.trace = t.trace;
    out.span = t.span;
    co_await network_->send(node_, s, std::move(out));
  }
  MetaResult result;
  result.handle = handle;
  std::int64_t size = 0;
  for (int s = 0; s < config_->num_servers; ++s) {
    sim::Message msg = co_await network_->mailbox(node_).recv(
        s, tags[static_cast<std::size_t>(s)]);
    Reply reply = msg.take<Reply>();
    if (reply.local_size > 0) {
      size = std::max(size, layout_.logical(s, reply.local_size - 1) + 1);
    }
  }
  result.size = size;
  finish_op(OpKind::kMetaStat, t);
  co_return result;
}

// ---- Access-list building ----------------------------------------------------

std::int64_t Client::build_access(std::span<const Region> logical,
                                  std::vector<ServerAccess>& out) const {
  out.assign(static_cast<std::size_t>(config_->num_servers), ServerAccess{});
  std::int64_t pieces = 0;
  layout_.map_regions(logical,
                      [&](int server, Region phys, std::int64_t stream_pos) {
                        auto& acc = out[static_cast<std::size_t>(server)];
                        acc.pieces.push_back(phys);
                        acc.stream_at.push_back(stream_pos);
                        acc.total_bytes += phys.length;
                        ++pieces;
                      });
  return pieces;
}

std::int64_t Client::build_access_datatype(
    const dl::DataloopPtr& filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    std::vector<ServerAccess>& out) const {
  out.assign(static_cast<std::size_t>(config_->num_servers), ServerAccess{});
  std::int64_t pieces = 0;
  std::int64_t pos = 0;  // position within the stream window
  dl::Cursor cursor(filetype, displacement, count);
  cursor.seek(stream_offset);
  cursor.process(
      std::numeric_limits<std::int64_t>::max(), stream_length,
      [&](std::int64_t off, std::int64_t len) {
        layout_.map_region(
            Region{off, len},
            [&](int server, Region phys, std::int64_t rel) {
              auto& acc = out[static_cast<std::size_t>(server)];
              acc.pieces.push_back(phys);
              acc.stream_at.push_back(pos + rel);
              acc.total_bytes += phys.length;
              ++pieces;
            });
        pos += len;
      });
  return pieces;
}

// ---- Data operations -----------------------------------------------------------

sim::Task<Status> Client::write_contig(std::uint64_t handle,
                                       std::int64_t offset,
                                       const std::uint8_t* data,
                                       std::int64_t length) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const Region region{offset, length};
  const std::int64_t pieces =
      build_access(std::span<const Region>(&region, 1), *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kContigWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ContigPayload{offset, length, nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)), data,
                      nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_contig(std::uint64_t handle,
                                      std::int64_t offset, std::uint8_t* out,
                                      std::int64_t length) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const Region region{offset, length};
  const std::int64_t pieces =
      build_access(std::span<const Region>(&region, 1), *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kContigRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ContigPayload{offset, length, nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, out, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::write_list(std::uint64_t handle,
                                     std::vector<Region> regions,
                                     const std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces = build_access(regions, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kListWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ListPayload{std::move(regions), nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      stream, nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_list(std::uint64_t handle,
                                    std::vector<Region> regions,
                                    std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces = build_access(regions, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kListRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = ListPayload{std::move(regions), nullptr};
  return run_requests(config_->client.flatten_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, stream, Box<Request>(std::move(prototype)));
}

namespace {

DatatypePayload make_datatype_payload(const dl::DataloopPtr& filetype,
                                      std::int64_t displacement,
                                      std::int64_t count,
                                      std::int64_t stream_offset,
                                      std::int64_t stream_length) {
  auto encoded = std::make_shared<std::vector<std::uint8_t>>();
  dl::encode(*filetype, *encoded);
  return DatatypePayload{std::move(encoded), filetype->node_count(),
                         displacement,       count,
                         stream_offset,      stream_length,
                         nullptr};
}

}  // namespace

sim::Task<Status> Client::write_datatype(
    std::uint64_t handle, dl::DataloopPtr filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    const std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces =
      build_access_datatype(filetype, displacement, count, stream_offset,
                            stream_length, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kDatatypeWrite;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = make_datatype_payload(filetype, displacement, count,
                                            stream_offset, stream_length);
  return run_requests(config_->client.dataloop_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      stream, nullptr, Box<Request>(std::move(prototype)));
}

sim::Task<Status> Client::read_datatype(
    std::uint64_t handle, dl::DataloopPtr filetype, std::int64_t displacement,
    std::int64_t count, std::int64_t stream_offset, std::int64_t stream_length,
    std::uint8_t* stream) {
  ++stats_.io_ops;
  auto access = std::make_unique<std::vector<ServerAccess>>();
  const std::int64_t pieces =
      build_access_datatype(filetype, displacement, count, stream_offset,
                            stream_length, *access);
  stats_.regions_client += static_cast<std::uint64_t>(pieces);

  Request prototype;
  prototype.op = OpKind::kDatatypeRead;
  prototype.handle = handle;
  prototype.carry_data = transfer_data_;
  prototype.payload = make_datatype_payload(filetype, displacement, count,
                                            stream_offset, stream_length);
  return run_requests(config_->client.dataloop_cost_per_region * pieces,
                      Box<std::vector<ServerAccess>>(std::move(*access)),
                      nullptr, stream, Box<Request>(std::move(prototype)));
}

// ---- Request fan-out -------------------------------------------------------------

sim::Task<Status> Client::run_requests(
    SimTime client_cpu_cost, Box<std::vector<ServerAccess>> access_box,
    const std::uint8_t* write_stream, std::uint8_t* read_stream,
    Box<Request> prototype_box) {
  const std::vector<ServerAccess> access = access_box.take();
  const Request prototype = prototype_box.take();
  const bool is_write = prototype.op == OpKind::kContigWrite ||
                        prototype.op == OpKind::kListWrite ||
                        prototype.op == OpKind::kDatatypeWrite;

  std::int64_t total_bytes = 0;
  for (const ServerAccess& acc : access) total_bytes += acc.total_bytes;

  // Root span + latency histogram for the whole operation; one rpc child
  // span per involved server, which the network and server layers parent
  // their own spans under (via the request's trace fields).
  const OpTrace op_trace = begin_op(prototype.op);
  if (obs_ != nullptr) obs_->spans.set_value(op_trace.span, total_bytes);

  // Client-side processing: building the per-server job/access lists plus
  // one buffer copy to segment (write) or reassemble (read) the stream.
  co_await sched_->delay(
      config_->client.issue_overhead + client_cpu_cost +
      transfer_time(static_cast<std::uint64_t>(total_bytes),
                    config_->client.memcpy_bandwidth_bytes_per_s));

  struct Outstanding {
    int server;
    std::uint64_t tag;
    obs::SpanId rpc_span;
  };
  std::vector<Outstanding> outstanding;

  // Start at this rank's "home" server and walk the ring: staggering the
  // per-client server order spreads first-request load and prevents every
  // server serving clients in the same order (which would convoy client
  // flows through the shared links).
  const int nservers = config_->num_servers;
  for (int i = 0; i < nservers; ++i) {
    const int s = (rank_ + i) % nservers;
    const ServerAccess& acc = access[static_cast<std::size_t>(s)];
    if (acc.total_bytes == 0) continue;

    Request request = prototype;
    request.client_node = node_;
    request.reply_tag = next_reply_tag();

    obs::SpanId rpc_span = 0;
    if (obs_ != nullptr) {
      rpc_span = obs_->spans.begin("rpc", node_, sched_->now(), op_trace.span,
                                   op_trace.trace);
      obs_->spans.set_value(rpc_span, acc.total_bytes);
      request.trace_id = op_trace.trace;
      request.parent_span = rpc_span;
    }

    // Segment outgoing data for this server, in its stream order.
    if (is_write && transfer_data_ && write_stream != nullptr) {
      auto buffer = std::make_shared<std::vector<std::uint8_t>>(
          static_cast<std::size_t>(acc.total_bytes));
      std::size_t at = 0;
      for (std::size_t i = 0; i < acc.pieces.size(); ++i) {
        const auto len = static_cast<std::size_t>(acc.pieces[i].length);
        std::memcpy(buffer->data() + at, write_stream + acc.stream_at[i], len);
        at += len;
      }
      std::visit([&](auto& payload) {
        if constexpr (requires { payload.data; }) payload.data = buffer;
      }, request.payload);
    }

    const std::uint64_t descriptor = request_descriptor_bytes(
        request, config_->list_io_bytes_per_region);
    const std::uint64_t wire =
        descriptor + (is_write ? static_cast<std::uint64_t>(acc.total_bytes)
                               : 0);
    ++stats_.requests_sent;
    stats_.request_bytes += descriptor;
    stats_.accessed_bytes += static_cast<std::uint64_t>(acc.total_bytes);

    outstanding.push_back({s, request.reply_tag, rpc_span});
    // Requests to all involved servers stream CONCURRENTLY: the tx link
    // serializes at packet granularity, so flows interleave like PVFS's
    // parallel per-server sockets instead of convoying server by server.
    sim::Message out(node_, kTagRequest, wire, std::move(request));
    out.trace = op_trace.trace;
    out.span = rpc_span;
    sched_->start(send_fire(s, Box<sim::Message>(std::move(out))));
  }

  for (const Outstanding& o : outstanding) {
    sim::Message msg = co_await network_->mailbox(node_).recv(o.server, o.tag);
    Reply reply = msg.take<Reply>();
    if (obs_ != nullptr) obs_->spans.end(o.rpc_span, sched_->now());
    if (!reply.ok) {
      finish_op(prototype.op, op_trace);
      co_return internal_error(reply.error);
    }

    const ServerAccess& acc = access[static_cast<std::size_t>(o.server)];
    if (reply.bytes != acc.total_bytes) {
      finish_op(prototype.op, op_trace);
      co_return internal_error("server byte count mismatch");
    }
    if (!is_write && read_stream != nullptr && transfer_data_ && reply.data) {
      // Scatter this server's gathered bytes back into the stream buffer.
      std::size_t at = 0;
      for (std::size_t i = 0; i < acc.pieces.size(); ++i) {
        const auto len = static_cast<std::size_t>(acc.pieces[i].length);
        std::memcpy(read_stream + acc.stream_at[i], reply.data->data() + at,
                    len);
        at += len;
      }
    }
  }
  finish_op(prototype.op, op_trace);
  co_return Status::ok();
}

}  // namespace dtio::pfs
