// File striping: PVFS's user-visible data distribution.
//
// A file is striped round-robin over N I/O servers in strips of
// `strip_size` bytes (the paper's configuration: 16 servers, 64 KiB strips
// = 1 MiB stripes). All logical<->physical mapping in the repository goes
// through this one class, on both client (data segmentation) and server
// (access clipping) sides, so the two ends always agree.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>

#include "common/region.h"

namespace dtio::pfs {

class FileLayout {
 public:
  FileLayout(int num_servers, std::int64_t strip_size)
      : num_servers_(num_servers), strip_size_(strip_size) {}

  [[nodiscard]] int num_servers() const noexcept { return num_servers_; }
  [[nodiscard]] std::int64_t strip_size() const noexcept { return strip_size_; }
  [[nodiscard]] std::int64_t stripe_size() const noexcept {
    return strip_size_ * num_servers_;
  }

  /// Which server holds logical byte `offset`, and where on that server.
  struct Placement {
    int server = 0;          ///< server index in [0, num_servers)
    std::int64_t physical = 0;  ///< byte offset within that server's bstream
  };
  [[nodiscard]] Placement place(std::int64_t offset) const noexcept {
    const std::int64_t stripe = offset / stripe_size();
    const std::int64_t within = offset % stripe_size();
    return Placement{static_cast<int>(within / strip_size_),
                     stripe * strip_size_ + within % strip_size_};
  }

  /// Logical offset of a server-local physical byte (inverse of place()).
  [[nodiscard]] std::int64_t logical(int server,
                                     std::int64_t physical) const noexcept {
    const std::int64_t strip = physical / strip_size_;
    return strip * stripe_size() + server * strip_size_ +
           physical % strip_size_;
  }

  /// Walk logical regions in order, invoking
  ///   cb(server, physical_region, stream_pos)
  /// for each maximal single-server piece. `stream_pos` is the running
  /// byte position within the concatenated region data — the order in
  /// which a data stream maps onto the pieces, which is how clients
  /// segment outgoing data per server and servers locate their slice.
  template <typename Callback>
  void map_regions(std::span<const Region> regions, Callback&& cb) const {
    std::int64_t stream_pos = 0;
    for (const Region& r : regions) {
      std::int64_t offset = r.offset;
      std::int64_t remaining = r.length;
      while (remaining > 0) {
        const Placement p = place(offset);
        const std::int64_t run =
            std::min(remaining, strip_size_ - offset % strip_size_);
        cb(p.server, Region{p.physical, run}, stream_pos);
        offset += run;
        remaining -= run;
        stream_pos += run;
      }
    }
  }

  /// Single-region convenience overload.
  template <typename Callback>
  void map_region(Region region, Callback&& cb) const {
    map_regions(std::span<const Region>(&region, 1),
                std::forward<Callback>(cb));
  }

  /// Number of distinct servers a logical range touches.
  [[nodiscard]] int servers_touched(Region region) const noexcept;

  /// k-th replica of a strip whose primary is `primary`: replica 0 is the
  /// primary itself, replica k lives k servers along the ring. All
  /// replicas of a strip store it at the SAME server-local physical
  /// offsets (the primary's), so the replica bstream is an exact mirror.
  [[nodiscard]] int replica_server(int primary, int k) const noexcept {
    return (primary + k) % num_servers_;
  }

  /// Does `server` hold a replica (primary included) of strips whose
  /// primary is `primary`, under replication factor `r`?
  [[nodiscard]] bool holds_replica_of(int server, int primary,
                                      int r) const noexcept {
    const int delta = (server - primary + num_servers_) % num_servers_;
    return delta < r;
  }

  /// Does any byte of logical range [region.offset, region.end()) land on
  /// `server`? O(1): find the first strip of `server` at or after the
  /// range start and test it against the range end. This is the pruning
  /// predicate servers hand to Cursor::set_filter — a subtree whose file
  /// span fails it holds no bytes of this server's strips, so the server
  /// need not expand it at all.
  [[nodiscard]] bool intersects_server(Region region, int server) const noexcept {
    if (region.length <= 0) return false;
    const std::int64_t S = stripe_size();
    // Floor-divide (offset may be negative for exotic resized types).
    const std::int64_t off = region.offset;
    const std::int64_t k = off >= 0 ? off / S : -((-off + S - 1) / S);
    std::int64_t start = k * S + server * strip_size_;
    if (start + strip_size_ <= off) start += S;  // strip k ends before range
    return start < region.end();
  }

  /// Upper bound on the bytes of a logical window of `window_bytes` that
  /// can land on any one server: full strips per stripe plus partial
  /// strips at both ends. A cheap sizing hint for reply buffers.
  [[nodiscard]] std::int64_t max_server_bytes(
      std::int64_t window_bytes) const noexcept {
    if (window_bytes <= 0) return 0;
    return std::min(window_bytes,
                    (window_bytes / stripe_size() + 2) * strip_size_);
  }

 private:
  int num_servers_;
  std::int64_t strip_size_;
};

}  // namespace dtio::pfs
