// The PVFS-like request/reply protocol between clients and I/O servers.
//
// Three data interfaces, mirroring the paper's progression:
//   * contiguous (POSIX-style)  — offset + length
//   * list I/O                  — explicit offset-length region list
//   * datatype I/O              — encoded dataloop + displacement + count
// plus metadata operations (create/open/remove/stat) served by the
// metadata server (node 0, which doubles as an I/O server, §4.1).
//
// All structs are carried inside sim::Message bodies (std::any), never as
// raw coroutine parameters, so implicit move constructors are fine here.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/region.h"
#include "common/status.h"
#include "common/units.h"

namespace dtio {
class Rng;
namespace sim {
struct Message;
}  // namespace sim
}  // namespace dtio

namespace dtio::pfs {

/// Mailbox tag for all requests arriving at a server.
inline constexpr std::uint64_t kTagRequest = 0x5046'5301;
/// Reply tags are allocated per client request: kTagReplyBase + sequence.
inline constexpr std::uint64_t kTagReplyBase = 0x5046'5400'0000'0000ULL;

enum class OpKind : std::uint8_t {
  kContigRead,
  kContigWrite,
  kListRead,
  kListWrite,
  kDatatypeRead,
  kDatatypeWrite,
  kMetaCreate,
  kMetaOpen,
  kMetaRemove,
  kMetaStat,
  kMetaLock,    ///< whole-file advisory lock (FIFO); PVFS itself has no
  kMetaUnlock,  ///< locks — the config gates whether methods may use these
  kBatchWrite,  ///< write-behind flush: many coalesced sub-writes, one RPC
  kResyncPull,  ///< server-to-server: restarting replica pulls diverged strips
};

using DataBuffer = std::shared_ptr<std::vector<std::uint8_t>>;

/// Contiguous access: logical [offset, offset+length); the server clips to
/// its own strips. For writes, `data` holds exactly this server's bytes in
/// stream order (nullptr in timing-only mode).
struct ContigPayload {
  std::int64_t offset = 0;
  std::int64_t length = 0;
  DataBuffer data;
};

/// List access: logical regions in access order (bounded by the list-I/O
/// region cap at the I/O method layer). Every involved server receives the
/// full list — shipping these lists is list I/O's documented overhead.
struct ListPayload {
  std::vector<Region> regions;
  DataBuffer data;
};

/// Datatype access: `count` instances of the encoded dataloop anchored at
/// byte `displacement`, restricted to the stream window
/// [stream_offset, stream_offset + stream_length). The server expands the
/// dataloop itself — no region list crosses the wire.
struct DatatypePayload {
  std::shared_ptr<std::vector<std::uint8_t>> encoded_loop;
  std::int64_t loop_node_count = 0;  ///< decode cost driver
  std::int64_t displacement = 0;
  std::int64_t count = 0;
  std::int64_t stream_offset = 0;
  std::int64_t stream_length = 0;
  DataBuffer data;
  /// CRC32 of *encoded_loop (0 when unset): verified before decode so a
  /// corrupted descriptor is rejected instead of poisoning the dataloop
  /// cache or decoding into a wrong-but-valid access pattern.
  std::uint32_t loop_crc = 0;
};

struct MetaPayload {
  std::string path;
  /// For kMetaStat to non-metadata servers: look up by handle (the
  /// namespace lives only on server 0); 0 = resolve `path` instead.
  std::uint64_t handle = 0;
};

/// Per-strip write epoch: a copy's logical-write count for the strip
/// identified by (handle, primary server, primary-physical strip index).
/// Every replica of a strip applies the same multiset of logical writes,
/// so equal epochs imply identical bytes; a copy whose epoch trails a
/// peer's is stale and must be re-pulled.
struct StripEpoch {
  std::uint64_t handle = 0;
  int primary = 0;          ///< primary server of the strip
  std::int64_t strip = 0;   ///< strip index in primary-physical space
  std::uint64_t epoch = 0;
  friend bool operator==(const StripEpoch&, const StripEpoch&) = default;
};

/// kResyncPull request payload: a restarting server ships its own strip
/// epochs; the peer answers with the extents (and epochs) of every strip
/// both servers replicate where the peer's epoch is ahead. Control-plane:
/// carries no client data on the request side, and the fault corruptor
/// leaves it alone (like MetaPayload).
struct ResyncPayload {
  int requester = -1;  ///< server index pulling (also the reply dst node)
  std::vector<StripEpoch> epochs;  ///< requester's current epochs
};

/// One strip's worth of recovery data in a kResyncPull reply.
struct ResyncExtent {
  std::uint64_t handle = 0;
  int primary = 0;
  std::int64_t strip = 0;        ///< strip index in primary-physical space
  std::uint64_t epoch = 0;       ///< peer's epoch for this strip
  std::int64_t offset = 0;       ///< primary-physical byte offset
  std::int64_t length = 0;       ///< bytes present at the peer
  DataBuffer data;               ///< nullptr in timing-only runs
};

/// One coalesced write run inside a kBatchWrite envelope. Offsets are
/// PHYSICAL (server-local): the client already clipped the logical access
/// to this server's strips while staging, so the server applies the run
/// directly — no layout walk, which is half the batching win. Each sub-op
/// carries its own (client, op_seq) replay identity and payload CRC so the
/// idempotent-replay and integrity machinery applies exactly-once per
/// sub-op even though many share one envelope.
struct BatchSubOp {
  std::uint64_t handle = 0;
  std::int64_t offset = 0;  ///< physical, server-local
  std::int64_t length = 0;
  DataBuffer data;          ///< nullptr in timing-only mode
  std::uint64_t op_seq = 0;
  std::uint32_t payload_crc = 0;
  bool has_payload_crc = false;
};

/// Multi-op batch envelope: the unit a client's write-behind buffer
/// flushes. The envelope itself is unsequenced (Request::op_seq == 0);
/// replay protection lives per sub-op. Sub-ops are applied independently
/// and atomically-per-sub-op; the reply's `sub_acked` bitmap tells a
/// retrying client which sub-ops to strip before resending.
struct BatchPayload {
  std::vector<BatchSubOp> sub_ops;
};

struct Request {
  OpKind op = OpKind::kContigRead;
  std::uint64_t handle = 0;
  int client_node = -1;
  std::uint64_t reply_tag = 0;
  /// false = timing-only mode: sizes and wire costs are simulated exactly,
  /// but no real bytes are stored or returned (large benchmark sweeps).
  bool carry_data = true;
  /// Observability context (0 = untraced): the trace id of the client op
  /// this request belongs to and the client-side span to parent server
  /// work under. Pure annotations — no effect on simulated behavior.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  /// Host-side copy of Message::delivered_at, filled by the server's run
  /// loop when it pulls the carrying message from its mailbox; -1 when
  /// unknown. Feeds the retroactive server_queue span. No sim effect.
  SimTime delivered_at = -1;
  /// Logical-operation sequence number for idempotent replay (0 = replay
  /// protection off). Identical across retry attempts of the same logical
  /// op — only the reply_tag is fresh per attempt — so the server can
  /// recognise a retried write and re-acknowledge without re-applying.
  std::uint64_t op_seq = 0;
  /// CRC32 of the write payload (`payload.data`), set when has_payload_crc
  /// is true; the server rejects mismatches with kDataLoss.
  std::uint32_t payload_crc = 0;
  bool has_payload_crc = false;
  /// Replication: -1 (default) targets the receiving server's own primary
  /// strips — the single-copy legacy meaning. >= 0 names the PRIMARY whose
  /// replica the receiving server holds: the server clips/prunes as that
  /// primary and applies bytes to the (handle, primary) replica bstream
  /// instead of its own store. Set by replica write fan-out and by read
  /// fail-over; never set at replication factor 1.
  int replica_of = -1;
  std::variant<ContigPayload, ListPayload, DatatypePayload, MetaPayload,
               BatchPayload, ResyncPayload>
      payload;
};

struct Reply {
  bool ok = true;
  /// Machine-readable error class when !ok (kOk here means "unclassified";
  /// the client maps it to kInternal). kDataLoss marks transient
  /// corruption rejections, which are the retryable class.
  StatusCode code = StatusCode::kOk;
  std::string error;
  std::int64_t bytes = 0;       ///< data bytes this server moved
  DataBuffer data;              ///< read replies (nullptr in timing-only mode)
  std::uint64_t handle = 0;     ///< metadata create/open
  std::int64_t local_size = 0;  ///< metadata stat: this server's bstream size
  /// CRC32 of `data` for read replies, mirroring Request::payload_crc.
  std::uint32_t payload_crc = 0;
  bool has_payload_crc = false;
  /// kOverloaded replies only: the server's cost-model estimate of its
  /// backlog drain time — the client waits at least this long (instead of
  /// its own blind backoff) before retrying a shed request.
  std::int64_t retry_after = 0;  ///< simulated ns; 0 = no hint
  /// kBatchWrite replies: parallel to the request's sub_ops; 1 = applied
  /// (or replay-suppressed — effects stand either way). A retrying client
  /// strips acked sub-ops so only the unacked remainder is resent. Empty
  /// for every other op (and for shed replies, which saw no sub-ops).
  std::vector<std::uint8_t> sub_acked;
  /// kResyncPull replies: the strips the peer is ahead on, with their
  /// bytes. Empty for every other op.
  std::vector<ResyncExtent> resync;
};

/// Human-readable operation name ("contig_read", "meta_stat", ...), used
/// by logging, tracing, and metric labels.
[[nodiscard]] const char* op_name(OpKind op) noexcept;

/// Wire-size accounting for the request descriptor (excludes bulk data,
/// which is added separately). These sizes drive the cost model: list I/O
/// pays per-region descriptor bytes, datatype I/O pays the encoded loop.
[[nodiscard]] std::uint64_t request_descriptor_bytes(const Request& request,
                                                     std::uint64_t list_bytes_per_region);

/// Fault-injection corruptor for protocol messages (installed into a
/// net::FaultPlan by Cluster::set_fault_plan): flips one random bit in the
/// message's corruptible payload — write data, read-reply data, or a
/// datatype request's encoded dataloop. Copy-on-write: the shared buffer
/// is cloned before the flip, so the sender's copy (which a retry resends)
/// stays clean. Returns false when the message carries nothing to corrupt.
bool corrupt_message_payload(sim::Message& msg, Rng& rng);

}  // namespace dtio::pfs
