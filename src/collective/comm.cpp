#include "collective/comm.h"

#include <utility>

namespace dtio::coll {

Communicator::Communicator(sim::Scheduler& sched, net::Network& network,
                           const net::ClusterConfig& config, int nranks)
    : sched_(&sched),
      network_(&network),
      config_(&config),
      nranks_(nranks),
      seq_(static_cast<std::size_t>(nranks), 0) {}

sim::Task<std::vector<std::int64_t>> Communicator::allgather64(
    int rank, Box<std::vector<std::int64_t>> mine) {
  const std::uint64_t block = reserve_block(rank);
  std::vector<std::int64_t> values = mine.take();
  const auto width = static_cast<std::size_t>(values.size());
  const std::uint64_t wire = width * 8;
  const int me = node_of(rank);

  if (rank != 0) {
    co_await network_->send(
        me, node_of(0), sim::Message(me, block, wire, std::move(values)));
    sim::Message msg =
        co_await network_->mailbox(me).recv(node_of(0), block + 1);
    co_return msg.take<std::vector<std::int64_t>>();
  }

  std::vector<std::int64_t> all(width * static_cast<std::size_t>(nranks_));
  std::copy(values.begin(), values.end(), all.begin());
  for (int src = 1; src < nranks_; ++src) {
    sim::Message msg =
        co_await network_->mailbox(me).recv(node_of(src), block);
    auto theirs = msg.take<std::vector<std::int64_t>>();
    std::copy(theirs.begin(), theirs.end(),
              all.begin() + static_cast<std::ptrdiff_t>(
                                width * static_cast<std::size_t>(src)));
  }
  const std::uint64_t all_wire = all.size() * 8;
  for (int dst = 1; dst < nranks_; ++dst) {
    co_await network_->send(
        me, node_of(dst),
        sim::Message(me, block + 1, all_wire, all));
  }
  co_return all;
}

sim::Task<void> Communicator::barrier(int rank) {
  const std::uint64_t block = reserve_block(rank);
  const int me = node_of(rank);
  if (rank != 0) {
    co_await network_->send(me, node_of(0),
                            sim::Message(me, block, 0, 0));
    (void)co_await network_->mailbox(me).recv(node_of(0), block + 1);
    co_return;
  }
  for (int src = 1; src < nranks_; ++src) {
    (void)co_await network_->mailbox(me).recv(node_of(src), block);
  }
  for (int dst = 1; dst < nranks_; ++dst) {
    co_await network_->send(me, node_of(dst),
                            sim::Message(me, block + 1, 0, 0));
  }
}

sim::Task<void> Communicator::send_exchange(int src_rank, int dst_rank,
                                            std::uint64_t tag,
                                            Box<ExchangePayload> payload,
                                            std::uint64_t wire_payload_bytes) {
  const int src = node_of(src_rank);
  co_await network_->send(src, node_of(dst_rank),
                          sim::Message(src, tag, wire_payload_bytes,
                                       payload.take()));
}

sim::Task<ExchangePayload> Communicator::recv_exchange(int my_rank,
                                                       int src_rank,
                                                       std::uint64_t tag) {
  sim::Message msg = co_await network_->mailbox(node_of(my_rank))
                         .recv(node_of(src_rank), tag);
  co_return msg.take<ExchangePayload>();
}

}  // namespace dtio::coll
