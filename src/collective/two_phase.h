// Two-phase collective I/O (§2.3, Thakur et al.): aggregators perform
// large contiguous file accesses over dynamically computed file domains;
// data is redistributed between aggregators and owners across the
// interconnect. All application processes act as aggregators (ROMIO's
// default on this style of cluster); writes use read-modify-write when a
// round's coverage has holes — permitted by MPI-IO consistency semantics
// even without file locks (paper §4.1).
//
// Every rank of the communicator must call these collectively and in the
// same order.
#pragma once

#include "collective/comm.h"
#include "io/methods.h"

namespace dtio::coll {

sim::Task<Status> two_phase_write(io::Context& ctx, Communicator& comm,
                                  int rank, std::uint64_t handle,
                                  const io::FileView& view,
                                  std::int64_t offset, const void* buf,
                                  std::int64_t count,
                                  const types::Datatype& memtype);

sim::Task<Status> two_phase_read(io::Context& ctx, Communicator& comm,
                                 int rank, std::uint64_t handle,
                                 const io::FileView& view, std::int64_t offset,
                                 void* buf, std::int64_t count,
                                 const types::Datatype& memtype);

}  // namespace dtio::coll
