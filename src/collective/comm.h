// Rank-addressed message passing among the simulated application
// processes — the MPI-1 substrate ROMIO's collective I/O builds on
// (paper §2.3 notes two-phase "relies on the MPI implementation providing
// high-performance data movement"; here that movement crosses the same
// simulated links as file-system traffic, so the trade-off is physical).
//
// Tag discipline: every collective entry reserves a tag block with
// reserve_block(); all ranks call collectives in the same order, so the
// per-rank counters stay aligned without any coordination.
#pragma once

#include <cstdint>
#include <vector>

#include "common/box.h"
#include "common/region.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "pfs/protocol.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace dtio::coll {

/// One rank's contribution to a two-phase exchange round: file regions
/// (sorted, disjoint) and, for data-bearing messages, the bytes in region
/// order. Carried inside sim::Message bodies.
struct ExchangePayload {
  std::vector<Region> regions;
  pfs::DataBuffer data;
};

class Communicator {
 public:
  Communicator(sim::Scheduler& sched, net::Network& network,
               const net::ClusterConfig& config, int nranks);

  [[nodiscard]] int size() const noexcept { return nranks_; }

  /// Reserve a tag block for one collective call (call once per rank per
  /// collective, in program order).
  [[nodiscard]] std::uint64_t reserve_block(int rank) noexcept {
    return kBlockBase + kBlockStride * seq_[static_cast<std::size_t>(rank)]++;
  }

  /// Gather `mine` from every rank and return all values rank-ordered
  /// (gather to rank 0, broadcast back; 2(n-1) small messages).
  sim::Task<std::vector<std::int64_t>> allgather64(
      int rank, Box<std::vector<std::int64_t>> mine);

  /// All ranks must arrive before any returns.
  sim::Task<void> barrier(int rank);

  /// Point-to-point exchange for two-phase rounds. `wire_payload_bytes`
  /// covers the region descriptors and data carried by the message.
  sim::Task<void> send_exchange(int src_rank, int dst_rank, std::uint64_t tag,
                                Box<ExchangePayload> payload,
                                std::uint64_t wire_payload_bytes);
  sim::Task<ExchangePayload> recv_exchange(int my_rank, int src_rank,
                                           std::uint64_t tag);

  [[nodiscard]] int node_of(int rank) const noexcept {
    return config_->client_node(rank);
  }

 private:
  static constexpr std::uint64_t kBlockBase = 0x434F'4C4C'0000'0000ULL;
  static constexpr std::uint64_t kBlockStride = 1 << 20;

  sim::Scheduler* sched_;
  net::Network* network_;
  const net::ClusterConfig* config_;
  int nranks_;
  std::vector<std::uint64_t> seq_;
};

}  // namespace dtio::coll
