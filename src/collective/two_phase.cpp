#include "collective/two_phase.h"

#include <algorithm>

#include "dataloop/dataloop.h"
#include <cstring>
#include <limits>
#include <vector>

namespace dtio::coll {

namespace {

/// Shared per-call geometry: this rank's flattened access and the global
/// file-domain partition computed from the allgathered extents.
struct Plan {
  std::vector<Region> regions;        ///< my file regions, sorted disjoint
  std::vector<std::int64_t> prefix;   ///< stream offset of each region
  std::int64_t total = 0;             ///< my bytes
  std::int64_t min_st = 0;            ///< global first byte
  std::int64_t max_end = 0;           ///< global last byte (exclusive)
  std::int64_t fd_len = 0;            ///< file-domain length per aggregator
  std::int64_t ntimes = 0;            ///< rounds (cb-buffer windows per fd)
  bool any_data = false;

  [[nodiscard]] Region window(int aggregator, std::int64_t round,
                              std::int64_t cb) const noexcept {
    const std::int64_t fd_start = min_st + aggregator * fd_len;
    const std::int64_t fd_end = std::min(fd_start + fd_len, max_end);
    const std::int64_t lo = fd_start + round * cb;
    const std::int64_t hi = std::min(lo + cb, fd_end);
    return hi > lo ? Region{lo, hi - lo} : Region{lo, 0};
  }
};

/// My pieces overlapping [lo, hi), with their stream offsets.
struct Clipped {
  std::vector<Region> file;
  std::vector<std::int64_t> stream_at;
  std::int64_t bytes = 0;
};

Clipped clip(const Plan& plan, std::int64_t lo, std::int64_t hi) {
  Clipped out;
  if (hi <= lo || plan.regions.empty()) return out;
  // Regions are sorted and disjoint, so their ends are sorted too: find
  // the first region ending after lo.
  auto it = std::lower_bound(
      plan.regions.begin(), plan.regions.end(), lo,
      [](const Region& r, std::int64_t v) { return r.end() <= v; });
  for (; it != plan.regions.end() && it->offset < hi; ++it) {
    const std::int64_t begin = std::max(it->offset, lo);
    const std::int64_t end = std::min(it->end(), hi);
    if (begin >= end) continue;
    const auto idx = static_cast<std::size_t>(it - plan.regions.begin());
    out.file.push_back(Region{begin, end - begin});
    out.stream_at.push_back(plan.prefix[idx] + (begin - it->offset));
    out.bytes += end - begin;
  }
  return out;
}

/// Flatten my access, exchange extents, and carve the file domains.
sim::Task<Plan> make_plan(io::Context& ctx, Communicator& comm, int rank,
                          const io::FileView& view, std::int64_t offset,
                          std::int64_t total) {
  Plan plan;
  plan.total = total;
  const io::StreamWindow window = io::make_window(view, offset, total);
  plan.regions = io::detail::flatten_file_side(view, window);
  plan.prefix.reserve(plan.regions.size());
  std::int64_t at = 0;
  for (const Region& r : plan.regions) {
    plan.prefix.push_back(at);
    at += r.length;
  }
  co_await ctx.sched.delay(ctx.config.client.flatten_cost_per_region *
                           static_cast<std::int64_t>(plan.regions.size()));

  constexpr std::int64_t kNone = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> mine{
      plan.regions.empty() ? kNone : plan.regions.front().offset,
      plan.regions.empty() ? -1 : plan.regions.back().end()};
  const std::vector<std::int64_t> all =
      co_await comm.allgather64(rank, Box<std::vector<std::int64_t>>(
                                          std::move(mine)));

  std::int64_t min_st = kNone;
  std::int64_t max_end = -1;
  for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
    min_st = std::min(min_st, all[i]);
    max_end = std::max(max_end, all[i + 1]);
  }
  plan.any_data = max_end > 0 && min_st != kNone && max_end > min_st;
  if (plan.any_data) {
    plan.min_st = min_st;
    plan.max_end = max_end;
    const auto nag = static_cast<std::int64_t>(comm.size());
    plan.fd_len = (max_end - min_st + nag - 1) / nag;
    const auto cb = static_cast<std::int64_t>(ctx.config.cb_buffer_size);
    plan.ntimes = (plan.fd_len + cb - 1) / cb;
  }
  co_return plan;
}

std::uint64_t exchange_wire_bytes(const net::ClusterConfig& config,
                                  const Clipped& pieces, bool with_data) {
  return pieces.file.size() * config.list_io_bytes_per_region +
         (with_data ? static_cast<std::uint64_t>(pieces.bytes) : 0);
}

/// Aggregator-side view of one received contribution.
struct Contribution {
  Region region;
  const std::uint8_t* data;   ///< null in timing-only mode
  int src;
  std::int64_t src_stream_at;  ///< read: where the piece sits in src's data
};

}  // namespace

sim::Task<Status> two_phase_write(io::Context& ctx, Communicator& comm,
                                  int rank, std::uint64_t handle,
                                  const io::FileView& view,
                                  std::int64_t offset, const void* buf,
                                  std::int64_t count,
                                  const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  const obs::SpanId tp_span =
      io::detail::begin_method_span(ctx, "two_phase_write", total);
  Plan plan = co_await make_plan(ctx, comm, rank, view, offset, total);
  if (!plan.any_data) {
    io::detail::end_method_span(ctx, tp_span);
    co_return Status::ok();
  }
  io::detail::count_method_units(ctx, "tp_rounds_total", plan.ntimes);

  const bool transfer = ctx.client.transfer_data() && buf != nullptr;
  const bool mem_contig = memtype.is_contiguous();

  // Stage my outgoing data as one contiguous stream.
  std::vector<std::uint8_t> stream_store;
  const std::uint8_t* stream = nullptr;
  if (transfer) {
    if (mem_contig) {
      stream = static_cast<const std::uint8_t*>(buf);
    } else {
      stream_store.resize(static_cast<std::size_t>(total));
      io::detail::pack_memory(memtype, count, buf, stream_store);
      stream = stream_store.data();
    }
  }
  if (!mem_contig) {
    co_await io::detail::charge_mem_staging(
        ctx, memtype, count, total, ctx.config.client.flatten_cost_per_region);
  }

  const auto cb = static_cast<std::int64_t>(ctx.config.cb_buffer_size);
  const std::uint64_t block = comm.reserve_block(rank);
  const int nag = comm.size();
  std::vector<std::uint8_t> cb_buf;

  for (std::int64_t r = 0; r < plan.ntimes; ++r) {
    const obs::SpanId round_span =
        io::detail::begin_child_span(ctx, "tp_round", tp_span, r);
    // ---- Phase 1: scatter my pieces to the round's aggregators.
    for (int a = 0; a < nag; ++a) {
      const Region win = plan.window(a, r, cb);
      Clipped pieces = clip(plan, win.offset, win.end());
      ExchangePayload payload;
      payload.regions = pieces.file;
      if (transfer && pieces.bytes > 0) {
        payload.data = std::make_shared<std::vector<std::uint8_t>>(
            static_cast<std::size_t>(pieces.bytes));
        std::size_t at = 0;
        for (std::size_t i = 0; i < pieces.file.size(); ++i) {
          const auto len = static_cast<std::size_t>(pieces.file[i].length);
          std::memcpy(payload.data->data() + at,
                      stream + pieces.stream_at[i], len);
          at += len;
        }
      }
      if (a != rank) {
        ctx.client.stats().resent_bytes +=
            static_cast<std::uint64_t>(pieces.bytes);
      }
      co_await comm.send_exchange(
          rank, a, block + static_cast<std::uint64_t>(r),
          Box<ExchangePayload>(std::move(payload)),
          exchange_wire_bytes(ctx.config, pieces, /*with_data=*/true));
    }

    // ---- Phase 2: as aggregator, merge contributions and write.
    std::vector<ExchangePayload> inbox;
    inbox.reserve(static_cast<std::size_t>(nag));
    for (int src = 0; src < nag; ++src) {
      inbox.push_back(co_await comm.recv_exchange(
          rank, src, block + static_cast<std::uint64_t>(r)));
    }

    std::vector<Contribution> contributions;
    std::int64_t received_bytes = 0;
    for (int src = 0; src < nag; ++src) {
      const ExchangePayload& p = inbox[static_cast<std::size_t>(src)];
      std::int64_t at = 0;
      for (const Region& piece : p.regions) {
        contributions.push_back(Contribution{
            piece, p.data ? p.data->data() + at : nullptr, src, 0});
        at += piece.length;
        received_bytes += piece.length;
      }
    }
    if (contributions.empty()) {
      io::detail::end_method_span(ctx, round_span);
      continue;
    }

    std::sort(contributions.begin(), contributions.end(),
              [](const Contribution& a, const Contribution& b) {
                return a.region.offset < b.region.offset;
              });
    const std::int64_t lo = contributions.front().region.offset;
    std::int64_t hi = lo;
    bool holes = false;
    for (const Contribution& c : contributions) {
      if (c.region.offset > hi) holes = true;
      hi = std::max(hi, c.region.end());
    }

    const net::CbWriteMode mode = ctx.config.cb_write_noncontig;
    if (holes && mode != net::CbWriteMode::kRmw) {
      // §5 extension: write ONLY the contributed regions through a
      // noncontiguous interface — no RMW read, no hole bytes touched.
      std::vector<Region> regions;
      regions.reserve(contributions.size());
      if (transfer) cb_buf.clear();
      for (const Contribution& c : contributions) {
        regions.push_back(c.region);
        if (transfer && c.data != nullptr) {
          cb_buf.insert(cb_buf.end(), c.data,
                        c.data + c.region.length);
        }
      }
      coalesce_adjacent(regions);  // stream order is preserved by merging
      co_await ctx.sched.delay(
          transfer_time(static_cast<std::uint64_t>(received_bytes),
                        ctx.config.client.memcpy_bandwidth_bytes_per_s));
      Status status;
      if (mode == net::CbWriteMode::kList) {
        status = co_await ctx.client.write_list(
            handle, regions, transfer ? cb_buf.data() : nullptr);
      } else {
        std::vector<std::int64_t> lens, offs;
        lens.reserve(regions.size());
        offs.reserve(regions.size());
        for (const Region& reg : regions) {
          lens.push_back(reg.length);
          offs.push_back(reg.offset);
        }
        auto loop = dl::make_indexed(lens, offs, dl::make_leaf(1));
        status = co_await ctx.client.write_datatype(
            handle, loop, 0, 1, 0, loop->size,
            transfer ? cb_buf.data() : nullptr);
      }
      if (!status.is_ok()) {
        io::detail::end_method_span(ctx, round_span);
        io::detail::end_method_span(ctx, tp_span);
        co_return status;
      }
      io::detail::end_method_span(ctx, round_span);
      continue;
    }
    if (transfer) cb_buf.assign(static_cast<std::size_t>(hi - lo), 0);
    if (holes) {
      // Read-modify-write to preserve the bytes between contributions.
      Status status = co_await ctx.client.read_contig(
          handle, lo, transfer ? cb_buf.data() : nullptr, hi - lo);
      if (!status.is_ok()) {
        io::detail::end_method_span(ctx, round_span);
        io::detail::end_method_span(ctx, tp_span);
        co_return status;
      }
    }
    if (transfer) {
      for (const Contribution& c : contributions) {
        if (c.data == nullptr) continue;
        std::memcpy(cb_buf.data() + (c.region.offset - lo), c.data,
                    static_cast<std::size_t>(c.region.length));
      }
    }
    co_await ctx.sched.delay(
        transfer_time(static_cast<std::uint64_t>(received_bytes),
                      ctx.config.client.memcpy_bandwidth_bytes_per_s));
    Status status = co_await ctx.client.write_contig(
        handle, lo, transfer ? cb_buf.data() : nullptr, hi - lo);
    io::detail::end_method_span(ctx, round_span);
    if (!status.is_ok()) {
      io::detail::end_method_span(ctx, tp_span);
      co_return status;
    }
  }
  io::detail::end_method_span(ctx, tp_span);
  co_return Status::ok();
}

sim::Task<Status> two_phase_read(io::Context& ctx, Communicator& comm,
                                 int rank, std::uint64_t handle,
                                 const io::FileView& view, std::int64_t offset,
                                 void* buf, std::int64_t count,
                                 const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  const obs::SpanId tp_span =
      io::detail::begin_method_span(ctx, "two_phase_read", total);
  Plan plan = co_await make_plan(ctx, comm, rank, view, offset, total);
  if (!plan.any_data) {
    io::detail::end_method_span(ctx, tp_span);
    co_return Status::ok();
  }
  io::detail::count_method_units(ctx, "tp_rounds_total", plan.ntimes);

  const bool transfer = ctx.client.transfer_data() && buf != nullptr;
  const bool mem_contig = memtype.is_contiguous();
  std::vector<std::uint8_t> stream_store;
  std::uint8_t* stream = nullptr;
  if (transfer) {
    if (mem_contig) {
      stream = static_cast<std::uint8_t*>(buf);
    } else {
      stream_store.resize(static_cast<std::size_t>(total));
      stream = stream_store.data();
    }
  }

  const auto cb = static_cast<std::int64_t>(ctx.config.cb_buffer_size);
  const std::uint64_t block = comm.reserve_block(rank);
  const int nag = comm.size();
  std::vector<std::uint8_t> cb_buf;

  for (std::int64_t r = 0; r < plan.ntimes; ++r) {
    const obs::SpanId round_span =
        io::detail::begin_child_span(ctx, "tp_round", tp_span, r);
    const std::uint64_t req_tag = block + 2 * static_cast<std::uint64_t>(r);
    const std::uint64_t resp_tag = req_tag + 1;

    // ---- Phase 1: tell each aggregator which pieces I need this round.
    // Remember my requests so responses can be placed without recomputing.
    std::vector<Clipped> my_requests(static_cast<std::size_t>(nag));
    for (int a = 0; a < nag; ++a) {
      const Region win = plan.window(a, r, cb);
      Clipped pieces = clip(plan, win.offset, win.end());
      ExchangePayload payload;
      payload.regions = pieces.file;
      co_await comm.send_exchange(
          rank, a, req_tag, Box<ExchangePayload>(std::move(payload)),
          exchange_wire_bytes(ctx.config, pieces, /*with_data=*/false));
      my_requests[static_cast<std::size_t>(a)] = std::move(pieces);
    }

    // ---- Phase 2: as aggregator, read the hull once and serve everyone.
    std::vector<ExchangePayload> requests;
    requests.reserve(static_cast<std::size_t>(nag));
    for (int src = 0; src < nag; ++src) {
      requests.push_back(co_await comm.recv_exchange(rank, src, req_tag));
    }
    std::int64_t lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t hi = -1;
    for (const ExchangePayload& p : requests) {
      for (const Region& piece : p.regions) {
        lo = std::min(lo, piece.offset);
        hi = std::max(hi, piece.end());
      }
    }
    if (hi > lo) {
      if (transfer) cb_buf.assign(static_cast<std::size_t>(hi - lo), 0);
      Status status = co_await ctx.client.read_contig(
          handle, lo, transfer ? cb_buf.data() : nullptr, hi - lo);
      if (!status.is_ok()) {
        io::detail::end_method_span(ctx, round_span);
        io::detail::end_method_span(ctx, tp_span);
        co_return status;
      }
    }
    std::int64_t served_bytes = 0;
    for (int src = 0; src < nag; ++src) {
      const ExchangePayload& req = requests[static_cast<std::size_t>(src)];
      ExchangePayload response;
      response.regions = req.regions;
      std::int64_t bytes = 0;
      for (const Region& piece : req.regions) bytes += piece.length;
      if (transfer && bytes > 0) {
        response.data = std::make_shared<std::vector<std::uint8_t>>(
            static_cast<std::size_t>(bytes));
        std::size_t at = 0;
        for (const Region& piece : req.regions) {
          std::memcpy(response.data->data() + at,
                      cb_buf.data() + (piece.offset - lo),
                      static_cast<std::size_t>(piece.length));
          at += static_cast<std::size_t>(piece.length);
        }
      }
      if (src != rank) {
        ctx.client.stats().resent_bytes += static_cast<std::uint64_t>(bytes);
      }
      served_bytes += bytes;
      Clipped sized;
      sized.file = response.regions;
      sized.bytes = bytes;
      co_await comm.send_exchange(rank, src, resp_tag,
                                  Box<ExchangePayload>(std::move(response)),
                                  exchange_wire_bytes(ctx.config, sized,
                                                      /*with_data=*/true));
    }
    co_await ctx.sched.delay(
        transfer_time(static_cast<std::uint64_t>(served_bytes),
                      ctx.config.client.memcpy_bandwidth_bytes_per_s));

    // ---- Phase 3: place the responses into my stream buffer.
    for (int a = 0; a < nag; ++a) {
      ExchangePayload response = co_await comm.recv_exchange(rank, a, resp_tag);
      const Clipped& want = my_requests[static_cast<std::size_t>(a)];
      if (stream != nullptr && response.data) {
        std::size_t at = 0;
        for (std::size_t i = 0; i < want.file.size(); ++i) {
          const auto len = static_cast<std::size_t>(want.file[i].length);
          std::memcpy(stream + want.stream_at[i], response.data->data() + at,
                      len);
          at += len;
        }
      }
    }
    io::detail::end_method_span(ctx, round_span);
  }

  if (transfer && !mem_contig) {
    io::detail::unpack_memory(memtype, count, buf, stream_store);
  }
  if (!mem_contig) {
    co_await io::detail::charge_mem_staging(
        ctx, memtype, count, total, ctx.config.client.flatten_cost_per_region);
  }
  io::detail::end_method_span(ctx, tp_span);
  co_return Status::ok();
}

}  // namespace dtio::coll
