#include "types/datatype.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "dataloop/cursor.h"

namespace dtio::types {

std::string_view combiner_name(Combiner combiner) noexcept {
  switch (combiner) {
    case Combiner::kNamed:
      return "named";
    case Combiner::kContiguous:
      return "contiguous";
    case Combiner::kVector:
      return "vector";
    case Combiner::kHvector:
      return "hvector";
    case Combiner::kIndexed:
      return "indexed";
    case Combiner::kHindexed:
      return "hindexed";
    case Combiner::kIndexedBlock:
      return "indexed_block";
    case Combiner::kStruct:
      return "struct";
    case Combiner::kResized:
      return "resized";
    case Combiner::kSubarray:
      return "subarray";
  }
  return "?";
}

namespace detail {

struct TypeNode {
  Combiner combiner = Combiner::kNamed;
  std::string name;                       ///< named types only
  std::int64_t el_size = 0;               ///< named types only
  std::vector<std::int64_t> integers;     ///< per-combiner (see contents())
  std::vector<std::int64_t> addresses;    ///< byte displacements
  std::vector<Datatype> subtypes;

  // Derived at construction per MPI composition rules; cross-checked
  // against the dataloop in tests.
  std::int64_t size = 0;
  std::int64_t extent = 0;
  std::int64_t lb = 0;

  // Built lazily by the envelope/contents walk (the conversion path the
  // paper's §3.2 prototype uses), cached because the node is immutable.
  mutable dl::DataloopPtr loop;
};

}  // namespace detail

namespace {

using detail::TypeNode;

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("datatype: " + what);
}

void require(bool ok, const char* what) {
  if (!ok) fail(what);
}

/// Convert a type to its dataloop via the public introspection interface
/// only — mirroring the paper's recursive MPI_Type_get_envelope /
/// MPI_Type_get_contents conversion, which keeps this portable across
/// "MPI implementations" (here: independent of TypeNode internals).
dl::DataloopPtr build_dataloop(const Datatype& type) {
  const TypeContents c = type.contents();
  switch (c.combiner) {
    case Combiner::kNamed:
      return dl::make_leaf(type.size());
    case Combiner::kContiguous:
      return dl::make_contig(c.integers[0], c.datatypes[0].dataloop());
    case Combiner::kVector: {
      const std::int64_t stride_bytes =
          c.integers[2] * c.datatypes[0].extent();
      return dl::make_vector(c.integers[0], c.integers[1], stride_bytes,
                             c.datatypes[0].dataloop());
    }
    case Combiner::kHvector:
      return dl::make_vector(c.integers[0], c.integers[1], c.addresses[0],
                             c.datatypes[0].dataloop());
    case Combiner::kIndexed: {
      const std::int64_t count = c.integers[0];
      const std::int64_t ext = c.datatypes[0].extent();
      std::vector<std::int64_t> blocklens(
          c.integers.begin() + 1, c.integers.begin() + 1 + count);
      std::vector<std::int64_t> displs;
      displs.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        displs.push_back(c.integers[static_cast<std::size_t>(1 + count + i)] *
                         ext);
      }
      return dl::make_indexed(blocklens, displs, c.datatypes[0].dataloop());
    }
    case Combiner::kHindexed: {
      const std::int64_t count = c.integers[0];
      std::vector<std::int64_t> blocklens(
          c.integers.begin() + 1, c.integers.begin() + 1 + count);
      return dl::make_indexed(blocklens, c.addresses,
                              c.datatypes[0].dataloop());
    }
    case Combiner::kIndexedBlock: {
      const std::int64_t count = c.integers[0];
      const std::int64_t blocklen = c.integers[1];
      const std::int64_t ext = c.datatypes[0].extent();
      std::vector<std::int64_t> displs;
      displs.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        displs.push_back(c.integers[static_cast<std::size_t>(2 + i)] * ext);
      }
      return dl::make_blockindexed(count, blocklen, displs,
                                   c.datatypes[0].dataloop());
    }
    case Combiner::kStruct: {
      const std::int64_t count = c.integers[0];
      std::vector<std::int64_t> blocklens(
          c.integers.begin() + 1, c.integers.begin() + 1 + count);
      std::vector<dl::DataloopPtr> children;
      children.reserve(static_cast<std::size_t>(count));
      for (const Datatype& t : c.datatypes) children.push_back(t.dataloop());
      return dl::make_struct(blocklens, c.addresses, children);
    }
    case Combiner::kResized:
      return dl::make_resized(c.datatypes[0].dataloop(), c.addresses[0],
                              c.addresses[1]);
    case Combiner::kSubarray: {
      const auto ndims = static_cast<std::size_t>(c.integers[0]);
      std::span<const std::int64_t> sizes(c.integers.data() + 1, ndims);
      std::span<const std::int64_t> subsizes(c.integers.data() + 1 + ndims,
                                             ndims);
      std::span<const std::int64_t> starts(c.integers.data() + 1 + 2 * ndims,
                                           ndims);
      const Order order =
          c.integers[1 + 3 * ndims] == 0 ? Order::kC : Order::kFortran;
      const Datatype& el = c.datatypes[0];

      // Dimension traversal from fastest-varying to slowest: last dim for
      // C order, first for Fortran.
      std::vector<std::size_t> dims(ndims);
      std::iota(dims.begin(), dims.end(), std::size_t{0});
      if (order == Order::kC) std::reverse(dims.begin(), dims.end());

      dl::DataloopPtr loop = el.dataloop();
      std::int64_t dim_stride = el.extent();  // bytes between neighbours
      std::int64_t start_offset = 0;
      bool innermost = true;
      for (const std::size_t d : dims) {
        start_offset += starts[d] * dim_stride;
        if (innermost) {
          loop = dl::make_contig(subsizes[d], std::move(loop));
          innermost = false;
        } else {
          loop = dl::make_vector(subsizes[d], 1, dim_stride, std::move(loop));
        }
        dim_stride *= sizes[d];
      }
      if (start_offset != 0) {
        const std::int64_t offs[] = {start_offset};
        loop = dl::make_blockindexed(1, 1, offs, std::move(loop));
      }
      // The subarray's extent is the full array, so consecutive instances
      // tile whole arrays (MPI_Type_create_subarray semantics).
      return dl::make_resized(std::move(loop), 0, dim_stride);
    }
  }
  fail("unknown combiner");
}

}  // namespace

// ---- Datatype methods -------------------------------------------------------

std::int64_t Datatype::size() const noexcept { return node_->size; }
std::int64_t Datatype::extent() const noexcept { return node_->extent; }
std::int64_t Datatype::lb() const noexcept { return node_->lb; }

bool Datatype::is_contiguous() const noexcept {
  const auto& loop = dataloop();
  return loop->solid && loop->data_lb == 0 && loop->extent == loop->size;
}

Combiner Datatype::combiner() const noexcept { return node_->combiner; }

TypeContents Datatype::contents() const {
  return TypeContents{node_->combiner, node_->integers, node_->addresses,
                      node_->subtypes};
}

const dl::DataloopPtr& Datatype::dataloop() const {
  if (!node_->loop) node_->loop = build_dataloop(*this);
  return node_->loop;
}

std::int64_t Datatype::type_node_count() const noexcept {
  std::int64_t n = 1;
  for (const Datatype& t : node_->subtypes) n += t.type_node_count();
  return n;
}

std::vector<Region> Datatype::flatten(std::int64_t base,
                                      std::int64_t count) const {
  return dl::flatten(dataloop(), base, count);
}

std::string Datatype::to_string() const {
  std::ostringstream out;
  if (node_->combiner == Combiner::kNamed) {
    out << node_->name;
  } else {
    out << combiner_name(node_->combiner) << "(";
    for (std::size_t i = 0; i < node_->integers.size() && i < 6; ++i) {
      if (i) out << ",";
      out << node_->integers[i];
    }
    if (node_->integers.size() > 6) out << ",...";
    out << ")[";
    for (std::size_t i = 0; i < node_->subtypes.size() && i < 2; ++i) {
      if (i) out << ",";
      out << node_->subtypes[i].to_string();
    }
    if (node_->subtypes.size() > 2) out << ",...";
    out << "]";
  }
  return out.str();
}

// The builders construct TypeNodes and wrap them through Datatype's
// private constructor.
class TypeBuilderAccess {
 public:
  static Datatype wrap(std::shared_ptr<const TypeNode> node) {
    return Datatype(std::move(node));
  }
};

namespace {

Datatype finish(std::shared_ptr<TypeNode> node) {
  return TypeBuilderAccess::wrap(std::move(node));
}

void require_valid(const Datatype& t, const char* what) {
  require(t.valid(), what);
}

}  // namespace

// ---- Named types -------------------------------------------------------------

Datatype make_named(std::string name, std::int64_t el_size) {
  require(el_size > 0, "named type element size must be positive");
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kNamed;
  node->name = std::move(name);
  node->el_size = el_size;
  node->size = el_size;
  node->extent = el_size;
  node->lb = 0;
  return finish(std::move(node));
}

namespace {
Datatype named_singleton(const char* name, std::int64_t el_size) {
  return make_named(name, el_size);
}
}  // namespace

Datatype byte_t() {
  static const Datatype t = named_singleton("byte", 1);
  return t;
}
Datatype char_t() {
  static const Datatype t = named_singleton("char", 1);
  return t;
}
Datatype int32_t_() {
  static const Datatype t = named_singleton("int32", 4);
  return t;
}
Datatype int64_t_() {
  static const Datatype t = named_singleton("int64", 8);
  return t;
}
Datatype float_t() {
  static const Datatype t = named_singleton("float", 4);
  return t;
}
Datatype double_t() {
  static const Datatype t = named_singleton("double", 8);
  return t;
}

// ---- Derived constructors ------------------------------------------------------

Datatype contiguous(std::int64_t count, const Datatype& old) {
  require(count >= 0, "contiguous count must be >= 0");
  require_valid(old, "contiguous old type invalid");
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kContiguous;
  node->integers = {count};
  node->subtypes = {old};
  node->size = count * old.size();
  node->extent = count * old.extent();
  node->lb = count == 0 ? 0 : old.lb();
  return finish(std::move(node));
}

namespace {

Datatype make_strided(Combiner combiner, std::int64_t count,
                      std::int64_t blocklen, std::int64_t stride_bytes,
                      std::int64_t stride_input, const Datatype& old) {
  require(count >= 0, "vector count must be >= 0");
  require(blocklen >= 0, "vector blocklen must be >= 0");
  auto node = std::make_shared<TypeNode>();
  node->combiner = combiner;
  if (combiner == Combiner::kVector) {
    node->integers = {count, blocklen, stride_input};
  } else {
    node->integers = {count, blocklen};
    node->addresses = {stride_bytes};
  }
  node->subtypes = {old};
  node->size = count * blocklen * old.size();
  if (count == 0 || blocklen == 0) {
    node->extent = 0;
    node->lb = 0;
  } else {
    const std::int64_t last = (count - 1) * stride_bytes;
    node->lb = old.lb() + std::min<std::int64_t>(0, last);
    node->extent = std::max<std::int64_t>(0, last) + blocklen * old.extent() -
                   std::min<std::int64_t>(0, last);
  }
  return finish(std::move(node));
}

}  // namespace

Datatype vector(std::int64_t count, std::int64_t blocklen, std::int64_t stride,
                const Datatype& old) {
  require_valid(old, "vector old type invalid");
  return make_strided(Combiner::kVector, count, blocklen,
                      stride * old.extent(), stride, old);
}

Datatype hvector(std::int64_t count, std::int64_t blocklen,
                 std::int64_t stride_bytes, const Datatype& old) {
  require_valid(old, "hvector old type invalid");
  return make_strided(Combiner::kHvector, count, blocklen, stride_bytes, 0,
                      old);
}

namespace {

Datatype make_indexed_like(Combiner combiner,
                           std::span<const std::int64_t> blocklens,
                           std::span<const std::int64_t> displ_bytes,
                           std::span<const std::int64_t> displ_input,
                           const Datatype& old) {
  const auto count = static_cast<std::int64_t>(blocklens.size());
  auto node = std::make_shared<TypeNode>();
  node->combiner = combiner;
  node->integers.push_back(count);
  node->integers.insert(node->integers.end(), blocklens.begin(),
                        blocklens.end());
  if (combiner == Combiner::kIndexed) {
    node->integers.insert(node->integers.end(), displ_input.begin(),
                          displ_input.end());
  } else {
    node->addresses.assign(displ_bytes.begin(), displ_bytes.end());
  }
  node->subtypes = {old};

  std::int64_t size = 0;
  bool first = true;
  std::int64_t lo = 0, hi = 0;
  for (std::int64_t b = 0; b < count; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    require(blocklens[bi] >= 0, "indexed blocklens must be >= 0");
    size += blocklens[bi] * old.size();
    if (blocklens[bi] == 0) continue;
    const std::int64_t begin = displ_bytes[bi] + old.lb();
    const std::int64_t end =
        displ_bytes[bi] + blocklens[bi] * old.extent() + old.lb();
    if (first) {
      lo = begin;
      hi = end;
      first = false;
    } else {
      lo = std::min(lo, begin);
      hi = std::max(hi, end);
    }
  }
  node->size = size;
  node->lb = lo;
  node->extent = hi - lo;
  return finish(std::move(node));
}

}  // namespace

Datatype indexed(std::span<const std::int64_t> blocklens,
                 std::span<const std::int64_t> displacements,
                 const Datatype& old) {
  require_valid(old, "indexed old type invalid");
  require(blocklens.size() == displacements.size(),
          "indexed blocklens/displacements length mismatch");
  std::vector<std::int64_t> displ_bytes;
  displ_bytes.reserve(displacements.size());
  for (const std::int64_t d : displacements) {
    displ_bytes.push_back(d * old.extent());
  }
  return make_indexed_like(Combiner::kIndexed, blocklens, displ_bytes,
                           displacements, old);
}

Datatype hindexed(std::span<const std::int64_t> blocklens,
                  std::span<const std::int64_t> displacement_bytes,
                  const Datatype& old) {
  require_valid(old, "hindexed old type invalid");
  require(blocklens.size() == displacement_bytes.size(),
          "hindexed blocklens/displacements length mismatch");
  return make_indexed_like(Combiner::kHindexed, blocklens, displacement_bytes,
                           {}, old);
}

Datatype indexed_block(std::int64_t blocklen,
                       std::span<const std::int64_t> displacements,
                       const Datatype& old) {
  require_valid(old, "indexed_block old type invalid");
  require(blocklen >= 0, "indexed_block blocklen must be >= 0");
  const auto count = static_cast<std::int64_t>(displacements.size());
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kIndexedBlock;
  node->integers.push_back(count);
  node->integers.push_back(blocklen);
  node->integers.insert(node->integers.end(), displacements.begin(),
                        displacements.end());
  node->subtypes = {old};
  node->size = count * blocklen * old.size();
  if (count == 0 || blocklen == 0) {
    node->extent = 0;
    node->lb = 0;
  } else {
    std::int64_t lo = displacements[0], hi = displacements[0];
    for (const std::int64_t d : displacements) {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    node->lb = lo * old.extent() + old.lb();
    node->extent = (hi - lo) * old.extent() + blocklen * old.extent();
  }
  return finish(std::move(node));
}

Datatype create_struct(std::span<const std::int64_t> blocklens,
                       std::span<const std::int64_t> displacement_bytes,
                       std::span<const Datatype> types) {
  require(blocklens.size() == displacement_bytes.size() &&
              blocklens.size() == types.size(),
          "struct blocklens/displacements/types length mismatch");
  const auto count = static_cast<std::int64_t>(blocklens.size());
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kStruct;
  node->integers.push_back(count);
  node->integers.insert(node->integers.end(), blocklens.begin(),
                        blocklens.end());
  node->addresses.assign(displacement_bytes.begin(), displacement_bytes.end());
  node->subtypes.assign(types.begin(), types.end());

  std::int64_t size = 0;
  bool first = true;
  std::int64_t lo = 0, hi = 0;
  for (std::int64_t b = 0; b < count; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    require_valid(types[bi], "struct member type invalid");
    require(blocklens[bi] >= 0, "struct blocklens must be >= 0");
    size += blocklens[bi] * types[bi].size();
    if (blocklens[bi] == 0 || types[bi].size() == 0) continue;
    const std::int64_t begin = displacement_bytes[bi] + types[bi].lb();
    const std::int64_t end = displacement_bytes[bi] +
                             blocklens[bi] * types[bi].extent() +
                             types[bi].lb();
    if (first) {
      lo = begin;
      hi = end;
      first = false;
    } else {
      lo = std::min(lo, begin);
      hi = std::max(hi, end);
    }
  }
  node->size = size;
  node->lb = lo;
  node->extent = hi - lo;
  return finish(std::move(node));
}

Datatype resized(const Datatype& old, std::int64_t lb, std::int64_t extent) {
  require_valid(old, "resized old type invalid");
  require(extent >= 0, "resized extent must be >= 0");
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kResized;
  node->addresses = {lb, extent};
  node->subtypes = {old};
  node->size = old.size();
  node->lb = lb;
  node->extent = extent;
  return finish(std::move(node));
}

Datatype subarray(std::span<const std::int64_t> sizes,
                  std::span<const std::int64_t> subsizes,
                  std::span<const std::int64_t> starts, Order order,
                  const Datatype& element) {
  require_valid(element, "subarray element type invalid");
  require(!sizes.empty(), "subarray needs at least one dimension");
  require(sizes.size() == subsizes.size() && sizes.size() == starts.size(),
          "subarray sizes/subsizes/starts length mismatch");
  std::int64_t total_elems = 1;
  std::int64_t sub_elems = 1;
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    require(sizes[d] > 0, "subarray sizes must be positive");
    require(subsizes[d] > 0, "subarray subsizes must be positive");
    require(starts[d] >= 0 && starts[d] + subsizes[d] <= sizes[d],
            "subarray slab must fit inside the array");
    total_elems *= sizes[d];
    sub_elems *= subsizes[d];
  }
  auto node = std::make_shared<TypeNode>();
  node->combiner = Combiner::kSubarray;
  node->integers.push_back(static_cast<std::int64_t>(sizes.size()));
  node->integers.insert(node->integers.end(), sizes.begin(), sizes.end());
  node->integers.insert(node->integers.end(), subsizes.begin(),
                        subsizes.end());
  node->integers.insert(node->integers.end(), starts.begin(), starts.end());
  node->integers.push_back(order == Order::kC ? 0 : 1);
  node->subtypes = {element};
  node->size = sub_elems * element.size();
  node->extent = total_elems * element.extent();
  node->lb = 0;
  return finish(std::move(node));
}

Datatype darray(int size, int rank, std::span<const std::int64_t> gsizes,
                std::span<const Distribution> distribs,
                std::span<const std::int64_t> psizes, Order order,
                const Datatype& element) {
  require(size >= 1, "darray needs a positive grid size");
  require(rank >= 0 && rank < size, "darray rank outside the grid");
  require(gsizes.size() == psizes.size() &&
              gsizes.size() == distribs.size(),
          "darray gsizes/distribs/psizes length mismatch");
  std::int64_t grid = 1;
  for (const std::int64_t p : psizes) {
    require(p >= 1, "darray psizes must be positive");
    grid *= p;
  }
  require(grid == size, "darray psizes must multiply to size");

  // Rank-major process coordinates (C order: last dimension varies
  // fastest, matching MPI's darray definition).
  const std::size_t ndims = gsizes.size();
  std::vector<std::int64_t> coords(ndims);
  {
    std::int64_t rest = rank;
    for (std::size_t d = ndims; d-- > 0;) {
      coords[d] = rest % psizes[d];
      rest /= psizes[d];
    }
  }

  std::vector<std::int64_t> subsizes(ndims);
  std::vector<std::int64_t> starts(ndims);
  for (std::size_t d = 0; d < ndims; ++d) {
    if (distribs[d] == Distribution::kNone) {
      require(psizes[d] == 1, "darray: NONE distribution needs psize 1");
      subsizes[d] = gsizes[d];
      starts[d] = 0;
      continue;
    }
    // MPI_DISTRIBUTE_BLOCK with default dargs: block = ceil(g / p).
    const std::int64_t block = (gsizes[d] + psizes[d] - 1) / psizes[d];
    starts[d] = coords[d] * block;
    require(starts[d] < gsizes[d],
            "darray: rank's block is empty (grid larger than array)");
    subsizes[d] = std::min(block, gsizes[d] - starts[d]);
  }
  return subarray(gsizes, subsizes, starts, order, element);
}

}  // namespace dtio::types
