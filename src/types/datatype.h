// MPI-like datatypes: the structured-data vocabulary applications use.
//
// This layer mirrors the MPI type constructors (contiguous, vector,
// hvector, indexed, hindexed, indexed_block, struct, resized, subarray)
// with MPI's unit conventions (element-typed strides/displacements for
// vector/indexed, byte displacements for the h* and struct forms). Each
// type exposes an envelope/contents pair — the introspection interface the
// paper's prototype uses to convert MPI datatypes to dataloops — and a
// cached dataloop built exactly by that recursive contents walk.
//
// Datatype is an immutable value handle; copies are cheap shared refs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/region.h"
#include "dataloop/dataloop.h"

namespace dtio::types {

enum class Combiner {
  kNamed = 0,
  kContiguous,
  kVector,
  kHvector,
  kIndexed,
  kHindexed,
  kIndexedBlock,
  kStruct,
  kResized,
  kSubarray,
};

std::string_view combiner_name(Combiner combiner) noexcept;

/// Array storage order for subarray construction.
enum class Order { kC, kFortran };

class Datatype;

/// What MPI_Type_get_envelope/get_contents return: the constructor call
/// that produced this type.
struct TypeContents {
  Combiner combiner = Combiner::kNamed;
  std::vector<std::int64_t> integers;   ///< counts, blocklengths, sizes...
  std::vector<std::int64_t> addresses;  ///< byte displacements
  std::vector<Datatype> datatypes;      ///< input types
};

namespace detail {
struct TypeNode;
}

class Datatype {
 public:
  Datatype() = default;  ///< null handle; only assignment/validity allowed

  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  /// Data bytes one instance carries (MPI_Type_size).
  [[nodiscard]] std::int64_t size() const noexcept;
  /// Spacing between consecutive instances (MPI_Type_get_extent).
  [[nodiscard]] std::int64_t extent() const noexcept;
  /// Lower bound displacement.
  [[nodiscard]] std::int64_t lb() const noexcept;
  /// True if one instance is a single contiguous run.
  [[nodiscard]] bool is_contiguous() const noexcept;

  /// Constructor introspection (MPI_Type_get_envelope + get_contents).
  [[nodiscard]] Combiner combiner() const noexcept;
  [[nodiscard]] TypeContents contents() const;

  /// The dataloop representation (built on first use by the recursive
  /// envelope/contents walk, then cached on the immutable node).
  [[nodiscard]] const dl::DataloopPtr& dataloop() const;

  /// Number of nodes in the MPI-level constructor tree.
  [[nodiscard]] std::int64_t type_node_count() const noexcept;

  /// Flatten `count` instances anchored at byte `base` into a coalesced
  /// offset-length list (what list I/O and POSIX I/O work from).
  [[nodiscard]] std::vector<Region> flatten(std::int64_t base,
                                            std::int64_t count) const;

  /// Debug rendering ("vector(3, 2, 10)[int32]").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Datatype& a, const Datatype& b) noexcept {
    return a.node_ == b.node_;
  }

 private:
  friend Datatype make_named(std::string name, std::int64_t el_size);
  friend class TypeBuilderAccess;
  explicit Datatype(std::shared_ptr<const detail::TypeNode> node) noexcept
      : node_(std::move(node)) {}

  std::shared_ptr<const detail::TypeNode> node_;
};

// ---- Named (basic) types ---------------------------------------------------

Datatype byte_t();
Datatype char_t();
Datatype int32_t_();
Datatype int64_t_();
Datatype float_t();
Datatype double_t();
/// Arbitrary named elementary type of `el_size` bytes.
Datatype make_named(std::string name, std::int64_t el_size);

// ---- Derived-type constructors ---------------------------------------------
//
// Unit conventions follow MPI: `stride`/`displacements` are in elements of
// `old` (i.e. multiples of old.extent()) for vector/indexed/indexed_block,
// and in bytes for hvector/hindexed/create_struct. Invalid arguments throw
// std::invalid_argument.

Datatype contiguous(std::int64_t count, const Datatype& old);
Datatype vector(std::int64_t count, std::int64_t blocklen, std::int64_t stride,
                const Datatype& old);
Datatype hvector(std::int64_t count, std::int64_t blocklen,
                 std::int64_t stride_bytes, const Datatype& old);
Datatype indexed(std::span<const std::int64_t> blocklens,
                 std::span<const std::int64_t> displacements,
                 const Datatype& old);
Datatype hindexed(std::span<const std::int64_t> blocklens,
                  std::span<const std::int64_t> displacement_bytes,
                  const Datatype& old);
Datatype indexed_block(std::int64_t blocklen,
                       std::span<const std::int64_t> displacements,
                       const Datatype& old);
Datatype create_struct(std::span<const std::int64_t> blocklens,
                       std::span<const std::int64_t> displacement_bytes,
                       std::span<const Datatype> types);
Datatype resized(const Datatype& old, std::int64_t lb, std::int64_t extent);

/// MPI_Type_create_subarray: an n-dimensional slab [starts, starts+subsizes)
/// out of an array of `sizes`, with the full array as the type's extent so
/// instances tile whole arrays.
Datatype subarray(std::span<const std::int64_t> sizes,
                  std::span<const std::int64_t> subsizes,
                  std::span<const std::int64_t> starts, Order order,
                  const Datatype& element);

/// Distribution kinds for darray (MPI_DISTRIBUTE_*).
enum class Distribution { kBlock, kNone };

/// MPI_Type_create_darray (block and none distributions): the piece of a
/// `gsizes` global array owned by `rank` of a `psizes` process grid in
/// rank-major order. Equivalent to the subarray of the rank's block, which
/// is how ROMIO's coll_perf builds its 3-D access. Throws when the rank's
/// block would be empty (gsizes smaller than the grid).
Datatype darray(int size, int rank, std::span<const std::int64_t> gsizes,
                std::span<const Distribution> distribs,
                std::span<const std::int64_t> psizes, Order order,
                const Datatype& element);

}  // namespace dtio::types
