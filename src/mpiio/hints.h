// ROMIO-style MPI_Info hints: string key/value pairs that tune buffering
// and select access strategies, using ROMIO's own key vocabulary so MPI-IO
// muscle memory applies:
//
//   cb_buffer_size        two-phase collective buffer (default 4 MiB)
//   romio_cb_read/write   enable|disable|automatic — collective buffering
//   ind_rd_buffer_size    data-sieving read buffer (default 4 MiB)
//   ind_wr_buffer_size    data-sieving write buffer
//   romio_ds_read/write   enable|disable|automatic — data sieving
//   striping_unit         PVFS strip size
//   pvfs_listio_max_regions   regions per list-I/O request (default 64)
//   pvfs_dtype_cache      enable|disable — server-side dataloop cache
//
// Unknown keys are ignored (MPI semantics); malformed values are errors.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"
#include "mpiio/file.h"
#include "net/cost_model.h"

namespace dtio::mpiio {

enum class Toggle { kAutomatic, kEnable, kDisable };

struct Hints {
  std::uint64_t cb_buffer_size = 4 * kMiB;
  std::uint64_t ind_rd_buffer_size = 4 * kMiB;
  std::uint64_t ind_wr_buffer_size = 4 * kMiB;
  std::uint64_t striping_unit = 64 * kKiB;
  std::uint64_t listio_max_regions = 64;
  Toggle cb_read = Toggle::kAutomatic;
  Toggle cb_write = Toggle::kAutomatic;
  Toggle ds_read = Toggle::kAutomatic;
  Toggle ds_write = Toggle::kAutomatic;
  bool dtype_cache = false;

  /// Parse key/value pairs. Unknown keys are ignored; bad values for known
  /// keys return kInvalidArgument.
  static Result<Hints> parse(
      std::span<const std::pair<std::string_view, std::string_view>> pairs);

  /// Fold these hints into a cluster configuration (buffer sizes, strip
  /// size, list cap, server datatype cache).
  void apply(net::ClusterConfig& config) const;

  /// The method an independent read/write should use, given the hint
  /// toggles: data sieving when enabled (or automatic), datatype I/O when
  /// sieving is disabled — mirroring ROMIO's ADIO dispatch on PVFS with
  /// datatype I/O available.
  [[nodiscard]] Method choose_independent(bool is_write) const;

  /// The method a collective call should use: two-phase unless collective
  /// buffering is disabled, then the independent choice.
  [[nodiscard]] Method choose_collective(bool is_write) const;
};

}  // namespace dtio::mpiio
