#include "mpiio/file.h"

#include <utility>

namespace dtio::mpiio {

std::string_view method_name(Method method) noexcept {
  switch (method) {
    case Method::kPosix:
      return "POSIX I/O";
    case Method::kDataSieving:
      return "Data Sieving I/O";
    case Method::kTwoPhase:
      return "Two-Phase I/O";
    case Method::kList:
      return "List I/O";
    case Method::kDatatype:
      return "Datatype I/O";
  }
  return "?";
}

sim::Task<Status> File::open(std::string path, bool create) {
  return open_impl(Box<std::string>(std::move(path)), create);
}

sim::Task<Status> File::open_impl(Box<std::string> path, bool create) {
  std::string name = path.take();
  // NOTE: co_await must not appear inside a conditional operator on this
  // compiler (double destruction of the selected temporary); use if/else.
  pfs::MetaResult result;
  if (create) {
    result = co_await ctx_.client.create(name);
  } else {
    result = co_await ctx_.client.open(name);
  }
  if (!result.status.is_ok() && create &&
      result.status.code() == StatusCode::kAlreadyExists) {
    // Create-or-open semantics: the file is already there, open it.
    result = co_await ctx_.client.open(name);
  }
  if (!result.status.is_ok()) co_return result.status;
  handle_ = result.handle;
  open_ = true;
  co_return Status::ok();
}

sim::Task<std::int64_t> File::size() {
  // stat() needs the path; the facade tracks only the handle, so query all
  // servers directly through a dedicated metadata round.
  pfs::MetaResult result = co_await ctx_.client.stat_handle(handle_);
  co_return result.size;
}

sim::Task<Status> File::write_at(std::int64_t offset, const void* buf,
                                 std::int64_t count,
                                 const types::Datatype& memtype,
                                 Method method) {
  switch (method) {
    case Method::kPosix:
      return io::posix_write(ctx_, handle_, view_, offset, buf, count,
                             memtype);
    case Method::kDataSieving:
      return io::sieve_write(ctx_, handle_, view_, offset, buf, count,
                             memtype);
    case Method::kList:
      return io::list_write(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDatatype:
      return io::datatype_write(ctx_, handle_, view_, offset, buf, count,
                                memtype);
    case Method::kTwoPhase:
      break;
  }
  return [](io::Context&) -> sim::Task<Status> {
    co_return invalid_argument(
        "two-phase is collective: use write_at_all");
  }(ctx_);
}

sim::Task<Status> File::read_at(std::int64_t offset, void* buf,
                                std::int64_t count,
                                const types::Datatype& memtype,
                                Method method) {
  switch (method) {
    case Method::kPosix:
      return io::posix_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDataSieving:
      return io::sieve_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kList:
      return io::list_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDatatype:
      return io::datatype_read(ctx_, handle_, view_, offset, buf, count,
                               memtype);
    case Method::kTwoPhase:
      break;
  }
  return [](io::Context&) -> sim::Task<Status> {
    co_return invalid_argument("two-phase is collective: use read_at_all");
  }(ctx_);
}

// ---- Split-phase operations -------------------------------------------------

sim::Fire File::io_fire(Box<std::shared_ptr<IoRequest::State>> state_box,
                        std::int64_t offset, const void* wbuf, void* rbuf,
                        std::int64_t count, Method method) {
  std::shared_ptr<IoRequest::State> st = state_box.take();
  Status status;
  if (st->is_write) {
    status = co_await write_at(offset, wbuf, count, st->memtype, method);
  } else {
    status = co_await read_at(offset, rbuf, count, st->memtype, method);
  }
  st->status = status;
  st->done = true;
  if (st->waiter) {
    // Resume the parked wait() through the event queue, never inline:
    // event ordering stays the single source of interleaving truth.
    ctx_.sched.schedule_at(ctx_.sched.now(),
                           std::exchange(st->waiter, nullptr));
  }
}

IoRequest File::iwrite_at(std::int64_t offset, const void* buf,
                          std::int64_t count, const types::Datatype& memtype,
                          Method method) {
  IoRequest req;
  req.state_ = std::make_shared<IoRequest::State>();
  req.state_->is_write = true;
  req.state_->memtype = memtype;
  ctx_.sched.start(io_fire(
      Box<std::shared_ptr<IoRequest::State>>(
          std::shared_ptr<IoRequest::State>(req.state_)),
      offset, buf, nullptr, count, method));
  return req;
}

IoRequest File::iread_at(std::int64_t offset, void* buf, std::int64_t count,
                         const types::Datatype& memtype, Method method) {
  IoRequest req;
  req.state_ = std::make_shared<IoRequest::State>();
  req.state_->is_write = false;
  req.state_->memtype = memtype;
  ctx_.sched.start(io_fire(
      Box<std::shared_ptr<IoRequest::State>>(
          std::shared_ptr<IoRequest::State>(req.state_)),
      offset, nullptr, buf, count, method));
  return req;
}

sim::Task<Status> File::wait(IoRequest& req) {
  if (req.state_ == nullptr) co_return Status::ok();  // MPI_REQUEST_NULL
  if (!req.state_->done) co_await IoWaiter{req.state_.get()};
  const Status status = req.state_->status;
  req.state_.reset();  // retire, like MPI_Wait freeing the request
  co_return status;
}

bool File::test(IoRequest& req, Status* out) {
  if (req.state_ == nullptr) {
    if (out != nullptr) *out = Status::ok();
    return true;
  }
  if (!req.state_->done) return false;
  if (out != nullptr) *out = req.state_->status;
  req.state_.reset();
  return true;
}

sim::Task<Status> File::wait_all(std::vector<IoRequest>& reqs) {
  Status result = Status::ok();
  for (IoRequest& req : reqs) {
    const Status status = co_await wait(req);
    if (!status.is_ok() && result.is_ok()) result = status;
  }
  co_return result;
}

sim::Task<Status> File::flush() { return ctx_.client.flush_write_behind(); }

sim::Task<Status> File::close() {
  const Status flushed = co_await ctx_.client.flush_write_behind();
  open_ = false;
  co_return flushed;
}

// ---- Collective operations --------------------------------------------------

sim::Task<Status> File::write_at_all(coll::Communicator& comm, int rank,
                                     std::int64_t offset, const void* buf,
                                     std::int64_t count,
                                     const types::Datatype& memtype,
                                     Method method) {
  if (method == Method::kTwoPhase) {
    if (!ctx_.client.write_behind_enabled()) {
      return coll::two_phase_write(ctx_, comm, rank, handle_, view_, offset,
                                   buf, count, memtype);
    }
    // Aggregator writes staged by write-behind drain before the closing
    // barrier, so the collective returns with the data server-side.
    return [](File& file, coll::Communicator& c, int r, std::int64_t off,
              const void* b, std::int64_t n,
              const types::Datatype& t) -> sim::Task<Status> {
      Status status = co_await coll::two_phase_write(
          file.ctx_, c, r, file.handle_, file.view_, off, b, n, t);
      if (status.is_ok()) {
        status = co_await file.ctx_.client.flush_write_behind();
      }
      co_await c.barrier(r);
      co_return status;
    }(*this, comm, rank, offset, buf, count, memtype);
  }
  return [](File& file, coll::Communicator& c, int r, std::int64_t off,
            const void* b, std::int64_t n, const types::Datatype& t,
            Method m) -> sim::Task<Status> {
    Status status = co_await file.write_at(off, b, n, t, m);
    // Post-all fast path: with write-behind on, every rank's write above
    // merely staged; one flush per rank at the closing barrier ships each
    // rank's whole contribution as single per-server batch envelopes.
    if (status.is_ok() && file.ctx_.client.write_behind_enabled()) {
      status = co_await file.ctx_.client.flush_write_behind();
    }
    co_await c.barrier(r);
    co_return status;
  }(*this, comm, rank, offset, buf, count, memtype, method);
}

sim::Task<Status> File::read_at_all(coll::Communicator& comm, int rank,
                                    std::int64_t offset, void* buf,
                                    std::int64_t count,
                                    const types::Datatype& memtype,
                                    Method method) {
  if (method == Method::kTwoPhase) {
    return coll::two_phase_read(ctx_, comm, rank, handle_, view_, offset, buf,
                                count, memtype);
  }
  return [](File& file, coll::Communicator& c, int r, std::int64_t off,
            void* b, std::int64_t n, const types::Datatype& t,
            Method m) -> sim::Task<Status> {
    Status status = co_await file.read_at(off, b, n, t, m);
    co_await c.barrier(r);
    co_return status;
  }(*this, comm, rank, offset, buf, count, memtype, method);
}

}  // namespace dtio::mpiio
