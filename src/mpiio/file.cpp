#include "mpiio/file.h"

namespace dtio::mpiio {

std::string_view method_name(Method method) noexcept {
  switch (method) {
    case Method::kPosix:
      return "POSIX I/O";
    case Method::kDataSieving:
      return "Data Sieving I/O";
    case Method::kTwoPhase:
      return "Two-Phase I/O";
    case Method::kList:
      return "List I/O";
    case Method::kDatatype:
      return "Datatype I/O";
  }
  return "?";
}

sim::Task<Status> File::open(std::string path, bool create) {
  return open_impl(Box<std::string>(std::move(path)), create);
}

sim::Task<Status> File::open_impl(Box<std::string> path, bool create) {
  std::string name = path.take();
  // NOTE: co_await must not appear inside a conditional operator on this
  // compiler (double destruction of the selected temporary); use if/else.
  pfs::MetaResult result;
  if (create) {
    result = co_await ctx_.client.create(name);
  } else {
    result = co_await ctx_.client.open(name);
  }
  if (!result.status.is_ok() && create &&
      result.status.code() == StatusCode::kAlreadyExists) {
    // Create-or-open semantics: the file is already there, open it.
    result = co_await ctx_.client.open(name);
  }
  if (!result.status.is_ok()) co_return result.status;
  handle_ = result.handle;
  open_ = true;
  co_return Status::ok();
}

sim::Task<std::int64_t> File::size() {
  // stat() needs the path; the facade tracks only the handle, so query all
  // servers directly through a dedicated metadata round.
  pfs::MetaResult result = co_await ctx_.client.stat_handle(handle_);
  co_return result.size;
}

sim::Task<Status> File::write_at(std::int64_t offset, const void* buf,
                                 std::int64_t count,
                                 const types::Datatype& memtype,
                                 Method method) {
  switch (method) {
    case Method::kPosix:
      return io::posix_write(ctx_, handle_, view_, offset, buf, count,
                             memtype);
    case Method::kDataSieving:
      return io::sieve_write(ctx_, handle_, view_, offset, buf, count,
                             memtype);
    case Method::kList:
      return io::list_write(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDatatype:
      return io::datatype_write(ctx_, handle_, view_, offset, buf, count,
                                memtype);
    case Method::kTwoPhase:
      break;
  }
  return [](io::Context&) -> sim::Task<Status> {
    co_return invalid_argument(
        "two-phase is collective: use write_at_all");
  }(ctx_);
}

sim::Task<Status> File::read_at(std::int64_t offset, void* buf,
                                std::int64_t count,
                                const types::Datatype& memtype,
                                Method method) {
  switch (method) {
    case Method::kPosix:
      return io::posix_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDataSieving:
      return io::sieve_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kList:
      return io::list_read(ctx_, handle_, view_, offset, buf, count, memtype);
    case Method::kDatatype:
      return io::datatype_read(ctx_, handle_, view_, offset, buf, count,
                               memtype);
    case Method::kTwoPhase:
      break;
  }
  return [](io::Context&) -> sim::Task<Status> {
    co_return invalid_argument("two-phase is collective: use read_at_all");
  }(ctx_);
}

sim::Task<Status> File::write_at_all(coll::Communicator& comm, int rank,
                                     std::int64_t offset, const void* buf,
                                     std::int64_t count,
                                     const types::Datatype& memtype,
                                     Method method) {
  if (method == Method::kTwoPhase) {
    return coll::two_phase_write(ctx_, comm, rank, handle_, view_, offset,
                                 buf, count, memtype);
  }
  return [](File& file, coll::Communicator& c, int r, std::int64_t off,
            const void* b, std::int64_t n, const types::Datatype& t,
            Method m) -> sim::Task<Status> {
    Status status = co_await file.write_at(off, b, n, t, m);
    co_await c.barrier(r);
    co_return status;
  }(*this, comm, rank, offset, buf, count, memtype, method);
}

sim::Task<Status> File::read_at_all(coll::Communicator& comm, int rank,
                                    std::int64_t offset, void* buf,
                                    std::int64_t count,
                                    const types::Datatype& memtype,
                                    Method method) {
  if (method == Method::kTwoPhase) {
    return coll::two_phase_read(ctx_, comm, rank, handle_, view_, offset, buf,
                                count, memtype);
  }
  return [](File& file, coll::Communicator& c, int r, std::int64_t off,
            void* b, std::int64_t n, const types::Datatype& t,
            Method m) -> sim::Task<Status> {
    Status status = co_await file.read_at(off, b, n, t, m);
    co_await c.barrier(r);
    co_return status;
  }(*this, comm, rank, offset, buf, count, memtype, method);
}

}  // namespace dtio::mpiio
