// MPI-IO-style facade: the API the example applications and benches use.
//
// Mirrors the ROMIO surface the paper exercises: open, set_view
// (displacement + etype + filetype), independent read_at/write_at, and
// collective read_at_all/write_at_all. The access method is explicit
// (in ROMIO it is chosen via hints/ADIO); every method from the paper's
// evaluation is selectable so benches can sweep them.
#pragma once

#include <coroutine>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "collective/comm.h"
#include "collective/two_phase.h"
#include "common/box.h"
#include "io/methods.h"

namespace dtio::mpiio {

enum class Method {
  kPosix,        ///< one contiguous op per joint piece (§2.1)
  kDataSieving,  ///< bounding-window + extraction (§2.2)
  kTwoPhase,     ///< collective aggregation (§2.3); collective calls only
  kList,         ///< bounded offset-length lists (§2.4)
  kDatatype,     ///< dataloops shipped to servers (§3)
};

std::string_view method_name(Method method) noexcept;

class File;

/// Split-phase request handle (MPI_Request analogue) returned by
/// File::iwrite_at / File::iread_at. The operation runs as a background
/// simulated process; File::wait / File::test retire the handle and
/// surface the operation's Status. Copyable (shared state); a retired
/// handle becomes null, and wait/test on a null handle succeed trivially
/// (MPI_REQUEST_NULL semantics). At most one waiter may block on a given
/// request at a time.
class IoRequest {
 public:
  IoRequest() = default;
  /// False once retired by wait()/test() (or never issued).
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  /// Completion flag, observable without retiring the request.
  [[nodiscard]] bool done() const noexcept {
    return state_ == nullptr || state_->done;
  }

 private:
  friend class File;
  struct State {
    bool done = false;
    bool is_write = false;
    Status status;
    std::coroutine_handle<> waiter;  ///< parked wait(), resumed on finish
    types::Datatype memtype;         ///< kept alive for the background op
  };
  std::shared_ptr<State> state_;
};

class File {
 public:
  explicit File(io::Context ctx) : ctx_(ctx) {}

  /// Open (optionally creating) the file at `path`.
  sim::Task<Status> open(std::string path, bool create);

  [[nodiscard]] std::uint64_t handle() const noexcept { return handle_; }
  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// MPI_File_set_view. Offsets to read/write_at are then in etypes.
  void set_view(std::int64_t displacement, types::Datatype etype,
                types::Datatype filetype) {
    view_ = io::FileView{displacement, std::move(etype), std::move(filetype)};
  }
  [[nodiscard]] const io::FileView& view() const noexcept { return view_; }

  /// Logical file size (PVFS-style stat across servers).
  sim::Task<std::int64_t> size();

  // ---- Independent operations -------------------------------------------------
  sim::Task<Status> write_at(std::int64_t offset, const void* buf,
                             std::int64_t count,
                             const types::Datatype& memtype, Method method);
  sim::Task<Status> read_at(std::int64_t offset, void* buf, std::int64_t count,
                            const types::Datatype& memtype, Method method);

  // ---- Split-phase (nonblocking) operations -----------------------------------
  // MPI_File_iwrite_at / iread_at analogues: post the operation as a
  // background simulated process and return immediately; the caller
  // overlaps compute (sim::delay) and retires the handle with wait/test.
  // The buffer must stay valid until the request is retired. Overlapping
  // outstanding iwrites to the same bytes are undefined (as in MPI).
  [[nodiscard]] IoRequest iwrite_at(std::int64_t offset, const void* buf,
                                    std::int64_t count,
                                    const types::Datatype& memtype,
                                    Method method);
  [[nodiscard]] IoRequest iread_at(std::int64_t offset, void* buf,
                                   std::int64_t count,
                                   const types::Datatype& memtype,
                                   Method method);

  /// Block until `req` completes; retires the handle and returns its
  /// Status. Null/retired handles return OK immediately.
  sim::Task<Status> wait(IoRequest& req);
  /// Nonblocking probe: true (and retires `req`, filling `*out` when
  /// non-null) if complete; false if still in flight.
  static bool test(IoRequest& req, Status* out = nullptr);
  /// Waits every request; first error wins.
  sim::Task<Status> wait_all(std::vector<IoRequest>& reqs);

  /// Drain this client's write-behind staging buffers (MPI_File_sync).
  /// No-op when write-behind is off.
  sim::Task<Status> flush();
  /// Flush, then mark the file closed.
  sim::Task<Status> close();

  // ---- Collective operations ----------------------------------------------------
  // All ranks of `comm` must call together. kTwoPhase aggregates; any other
  // method runs independently inside the collective (how ROMIO behaves when
  // collective buffering is disabled), followed by a barrier.
  sim::Task<Status> write_at_all(coll::Communicator& comm, int rank,
                                 std::int64_t offset, const void* buf,
                                 std::int64_t count,
                                 const types::Datatype& memtype,
                                 Method method);
  sim::Task<Status> read_at_all(coll::Communicator& comm, int rank,
                                std::int64_t offset, void* buf,
                                std::int64_t count,
                                const types::Datatype& memtype, Method method);

 private:
  sim::Task<Status> open_impl(Box<std::string> path, bool create);

  /// Background driver for a split-phase op. NOTE: coroutine parameters
  /// must stay trivially destructible (see common/box.h); the shared state
  /// rides in a Box and the datatype lives inside that state.
  sim::Fire io_fire(Box<std::shared_ptr<IoRequest::State>> state_box,
                    std::int64_t offset, const void* wbuf, void* rbuf,
                    std::int64_t count, Method method);

  /// Parks wait() until the background process flips `done`.
  struct IoWaiter {
    IoRequest::State* st;
    [[nodiscard]] bool await_ready() const noexcept { return st->done; }
    void await_suspend(std::coroutine_handle<> h) const noexcept {
      st->waiter = h;
    }
    void await_resume() const noexcept {}
  };

  io::Context ctx_;
  io::FileView view_;
  std::uint64_t handle_ = 0;
  bool open_ = false;
};

}  // namespace dtio::mpiio
