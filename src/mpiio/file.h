// MPI-IO-style facade: the API the example applications and benches use.
//
// Mirrors the ROMIO surface the paper exercises: open, set_view
// (displacement + etype + filetype), independent read_at/write_at, and
// collective read_at_all/write_at_all. The access method is explicit
// (in ROMIO it is chosen via hints/ADIO); every method from the paper's
// evaluation is selectable so benches can sweep them.
#pragma once

#include <string>
#include <string_view>

#include "collective/comm.h"
#include "collective/two_phase.h"
#include "common/box.h"
#include "io/methods.h"

namespace dtio::mpiio {

enum class Method {
  kPosix,        ///< one contiguous op per joint piece (§2.1)
  kDataSieving,  ///< bounding-window + extraction (§2.2)
  kTwoPhase,     ///< collective aggregation (§2.3); collective calls only
  kList,         ///< bounded offset-length lists (§2.4)
  kDatatype,     ///< dataloops shipped to servers (§3)
};

std::string_view method_name(Method method) noexcept;

class File {
 public:
  explicit File(io::Context ctx) : ctx_(ctx) {}

  /// Open (optionally creating) the file at `path`.
  sim::Task<Status> open(std::string path, bool create);

  [[nodiscard]] std::uint64_t handle() const noexcept { return handle_; }
  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// MPI_File_set_view. Offsets to read/write_at are then in etypes.
  void set_view(std::int64_t displacement, types::Datatype etype,
                types::Datatype filetype) {
    view_ = io::FileView{displacement, std::move(etype), std::move(filetype)};
  }
  [[nodiscard]] const io::FileView& view() const noexcept { return view_; }

  /// Logical file size (PVFS-style stat across servers).
  sim::Task<std::int64_t> size();

  // ---- Independent operations -------------------------------------------------
  sim::Task<Status> write_at(std::int64_t offset, const void* buf,
                             std::int64_t count,
                             const types::Datatype& memtype, Method method);
  sim::Task<Status> read_at(std::int64_t offset, void* buf, std::int64_t count,
                            const types::Datatype& memtype, Method method);

  // ---- Collective operations ----------------------------------------------------
  // All ranks of `comm` must call together. kTwoPhase aggregates; any other
  // method runs independently inside the collective (how ROMIO behaves when
  // collective buffering is disabled), followed by a barrier.
  sim::Task<Status> write_at_all(coll::Communicator& comm, int rank,
                                 std::int64_t offset, const void* buf,
                                 std::int64_t count,
                                 const types::Datatype& memtype,
                                 Method method);
  sim::Task<Status> read_at_all(coll::Communicator& comm, int rank,
                                std::int64_t offset, void* buf,
                                std::int64_t count,
                                const types::Datatype& memtype, Method method);

 private:
  sim::Task<Status> open_impl(Box<std::string> path, bool create);

  io::Context ctx_;
  io::FileView view_;
  std::uint64_t handle_ = 0;
  bool open_ = false;
};

}  // namespace dtio::mpiio
