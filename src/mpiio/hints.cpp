#include "mpiio/hints.h"

#include <charconv>

namespace dtio::mpiio {

namespace {

bool parse_bytes(std::string_view value, std::uint64_t& out) {
  std::uint64_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), n);
  if (ec != std::errc{} || n == 0) return false;
  std::string_view rest(ptr, static_cast<std::size_t>(
                                 value.data() + value.size() - ptr));
  if (rest.empty()) {
    out = n;
  } else if (rest == "k" || rest == "K") {
    out = n * kKiB;
  } else if (rest == "m" || rest == "M") {
    out = n * kMiB;
  } else {
    return false;
  }
  return true;
}

bool parse_toggle(std::string_view value, Toggle& out) {
  if (value == "enable") {
    out = Toggle::kEnable;
  } else if (value == "disable") {
    out = Toggle::kDisable;
  } else if (value == "automatic") {
    out = Toggle::kAutomatic;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Result<Hints> Hints::parse(
    std::span<const std::pair<std::string_view, std::string_view>> pairs) {
  Hints hints;
  for (const auto& [key, value] : pairs) {
    bool ok = true;
    if (key == "cb_buffer_size") {
      ok = parse_bytes(value, hints.cb_buffer_size);
    } else if (key == "ind_rd_buffer_size") {
      ok = parse_bytes(value, hints.ind_rd_buffer_size);
    } else if (key == "ind_wr_buffer_size") {
      ok = parse_bytes(value, hints.ind_wr_buffer_size);
    } else if (key == "striping_unit") {
      ok = parse_bytes(value, hints.striping_unit);
    } else if (key == "pvfs_listio_max_regions") {
      ok = parse_bytes(value, hints.listio_max_regions);
    } else if (key == "romio_cb_read") {
      ok = parse_toggle(value, hints.cb_read);
    } else if (key == "romio_cb_write") {
      ok = parse_toggle(value, hints.cb_write);
    } else if (key == "romio_ds_read") {
      ok = parse_toggle(value, hints.ds_read);
    } else if (key == "romio_ds_write") {
      ok = parse_toggle(value, hints.ds_write);
    } else if (key == "pvfs_dtype_cache") {
      Toggle t{};
      ok = parse_toggle(value, t);
      hints.dtype_cache = t == Toggle::kEnable;
    }
    // Unknown keys: ignored, per MPI_Info semantics.
    if (!ok) {
      return invalid_argument("bad hint value: " + std::string(key) + "=" +
                              std::string(value));
    }
  }
  return hints;
}

void Hints::apply(net::ClusterConfig& config) const {
  config.cb_buffer_size = cb_buffer_size;
  // The simulator uses a single sieve buffer; read-size governs (ROMIO
  // sizes them independently, but PVFS never sieves writes anyway).
  config.sieve_buffer_size = ind_rd_buffer_size;
  config.strip_size = striping_unit;
  config.list_io_max_regions = listio_max_regions;
  config.server.dataloop_cache = dtype_cache;
}

Method Hints::choose_independent(bool is_write) const {
  const Toggle ds = is_write ? ds_write : ds_read;
  // Datatype I/O is the native noncontiguous path; sieving only when the
  // user forces it (and never for writes on lock-free PVFS).
  if (ds == Toggle::kEnable && !is_write) return Method::kDataSieving;
  return Method::kDatatype;
}

Method Hints::choose_collective(bool is_write) const {
  const Toggle cb = is_write ? cb_write : cb_read;
  if (cb == Toggle::kDisable) return choose_independent(is_write);
  return Method::kTwoPhase;
}

}  // namespace dtio::mpiio
