#include <limits>

#include "dataloop/pack.h"
#include "io/methods.h"

namespace dtio::io::detail {

sim::Task<std::int64_t> charge_mem_staging(Context& ctx,
                                           const types::Datatype& memtype,
                                           std::int64_t count,
                                           std::int64_t bytes,
                                           SimTime per_region_cost) {
  const std::int64_t regions =
      memtype.dataloop()->region_count() * count;
  co_await ctx.sched.delay(
      per_region_cost * regions +
      transfer_time(static_cast<std::uint64_t>(bytes),
                    ctx.config.client.memcpy_bandwidth_bytes_per_s));
  co_return regions;
}

void pack_memory(const types::Datatype& memtype, std::int64_t count,
                 const void* buf, std::span<std::uint8_t> out) {
  if (buf == nullptr) return;
  dl::Cursor cursor = make_mem_cursor(memtype, count);
  dl::pack(static_cast<const std::uint8_t*>(buf), cursor, out);
}

void unpack_memory(const types::Datatype& memtype, std::int64_t count,
                   void* buf, std::span<const std::uint8_t> in) {
  if (buf == nullptr) return;
  dl::Cursor cursor = make_mem_cursor(memtype, count);
  dl::unpack(static_cast<std::uint8_t*>(buf), cursor, in);
}

std::vector<Region> flatten_file_side(const FileView& view,
                                      const StreamWindow& window) {
  dl::Cursor cursor = make_file_cursor(view, window);
  std::vector<Region> regions;
  cursor.process(std::numeric_limits<std::int64_t>::max(), window.length,
                 [&](std::int64_t off, std::int64_t len) {
                   regions.push_back(Region{off, len});
                 });
  return regions;
}

obs::SpanId begin_method_span(Context& ctx, std::string_view name,
                              std::int64_t bytes) {
  obs::Observability* obs = ctx.client.observability();
  if (obs == nullptr) return 0;
  const obs::SpanId span =
      obs->spans.begin(name, ctx.client.node_id(), ctx.sched.now(), 0,
                       obs->spans.new_trace());
  obs->spans.set_value(span, bytes);
  return span;
}

obs::SpanId begin_child_span(Context& ctx, std::string_view name,
                             obs::SpanId parent, std::int64_t value) {
  obs::Observability* obs = ctx.client.observability();
  if (obs == nullptr) return 0;
  const obs::Span* p = obs->spans.find(parent);
  const obs::SpanId span =
      obs->spans.begin(name, ctx.client.node_id(), ctx.sched.now(), parent,
                       p != nullptr ? p->trace : 0);
  if (value != 0) obs->spans.set_value(span, value);
  return span;
}

void end_method_span(Context& ctx, obs::SpanId span) {
  obs::Observability* obs = ctx.client.observability();
  if (obs == nullptr) return;
  obs->spans.end(span, ctx.sched.now());
}

void count_method_units(Context& ctx, std::string_view name, std::int64_t n) {
  obs::Observability* obs = ctx.client.observability();
  if (obs == nullptr || n <= 0) return;
  obs->metrics
      .counter(name, obs::label("node", ctx.client.node_id()))
      .add(static_cast<std::uint64_t>(n));
}

}  // namespace dtio::io::detail
