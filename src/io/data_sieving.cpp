// Data sieving (§2.2): access a bounding window of the desired data with a
// few large contiguous operations and pick the wanted bytes out of (or
// into) a client-side buffer. Efficient when the desired regions are
// spatially dense; pathological when they are spread out (the 3-D block
// test reads 4x the desired data). Writes are read-modify-write and need
// a file lock, which PVFS does not offer — sieve_write reports
// kUnsupported under the default configuration exactly as ROMIO does on
// PVFS (§4.1), and performs locked RMW when the config models a locking
// file system.
#include <algorithm>
#include <cstring>
#include <vector>

#include "io/methods.h"

namespace dtio::io {

namespace {

struct SievePlan {
  std::vector<Region> file_regions;  ///< sorted, coalesced
  std::int64_t total = 0;            ///< desired bytes
  Region hull{0, 0};
};

SievePlan plan_access(const FileView& view, std::int64_t offset,
                      std::int64_t total) {
  SievePlan plan;
  plan.total = total;
  const StreamWindow window = make_window(view, offset, total);
  plan.file_regions = detail::flatten_file_side(view, window);
  plan.hull = bounding_hull(plan.file_regions);
  return plan;
}

/// Copy desired bytes between the sieve window buffer and the stream
/// buffer. `region_idx`/`region_done` persist across windows (regions are
/// sorted, windows ascend). Returns bytes moved in this window.
std::int64_t exchange_window(const SievePlan& plan, Region window,
                             std::uint8_t* window_buf, std::uint8_t* stream,
                             std::int64_t& stream_pos, std::size_t& region_idx,
                             std::int64_t& region_done, bool to_stream) {
  std::int64_t moved = 0;
  while (region_idx < plan.file_regions.size()) {
    const Region& r = plan.file_regions[region_idx];
    const std::int64_t begin = r.offset + region_done;
    if (begin >= window.end()) break;
    const std::int64_t len = std::min(r.end(), window.end()) - begin;
    if (window_buf != nullptr && stream != nullptr) {
      if (to_stream) {
        std::memcpy(stream + stream_pos, window_buf + (begin - window.offset),
                    static_cast<std::size_t>(len));
      } else {
        std::memcpy(window_buf + (begin - window.offset), stream + stream_pos,
                    static_cast<std::size_t>(len));
      }
    }
    stream_pos += len;
    region_done += len;
    moved += len;
    if (region_done == r.length) {
      ++region_idx;
      region_done = 0;
    }
  }
  return moved;
}

}  // namespace

sim::Task<Status> sieve_read(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             void* buf, std::int64_t count,
                             const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  if (total == 0) co_return Status::ok();
  const obs::SpanId span = detail::begin_method_span(ctx, "sieve_read", total);

  const SievePlan plan = plan_access(view, offset, total);
  co_await ctx.sched.delay(
      ctx.config.client.flatten_cost_per_region *
      static_cast<std::int64_t>(plan.file_regions.size()));

  const bool transfer = ctx.client.transfer_data() && buf != nullptr;
  const bool mem_contig = memtype.is_contiguous();
  std::vector<std::uint8_t> stream_store;
  std::uint8_t* stream = nullptr;
  if (transfer) {
    if (mem_contig) {
      stream = static_cast<std::uint8_t*>(buf);
    } else {
      stream_store.resize(static_cast<std::size_t>(total));
      stream = stream_store.data();
    }
  }

  const auto sieve = static_cast<std::int64_t>(ctx.config.sieve_buffer_size);
  std::vector<std::uint8_t> window_buf;
  if (transfer) {
    window_buf.resize(static_cast<std::size_t>(
        std::min(sieve, plan.hull.length)));
  }

  std::int64_t stream_pos = 0;
  std::size_t region_idx = 0;
  std::int64_t region_done = 0;
  std::int64_t windows = 0;
  for (std::int64_t wstart = plan.hull.offset; wstart < plan.hull.end();
       wstart += sieve) {
    ++windows;
    const std::int64_t wlen = std::min(sieve, plan.hull.end() - wstart);
    Status status = co_await ctx.client.read_contig(
        handle, wstart, transfer ? window_buf.data() : nullptr, wlen);
    if (!status.is_ok()) {
      detail::count_method_units(ctx, "io_sieve_windows_total", windows);
      detail::end_method_span(ctx, span);
      co_return status;
    }

    const std::int64_t moved = exchange_window(
        plan, Region{wstart, wlen}, transfer ? window_buf.data() : nullptr,
        stream, stream_pos, region_idx, region_done, /*to_stream=*/true);
    co_await ctx.sched.delay(
        transfer_time(static_cast<std::uint64_t>(moved),
                      ctx.config.client.memcpy_bandwidth_bytes_per_s));
  }

  if (transfer && !mem_contig) {
    detail::unpack_memory(memtype, count, buf, stream_store);
  }
  if (!mem_contig) {
    co_await detail::charge_mem_staging(
        ctx, memtype, count, total, ctx.config.client.flatten_cost_per_region);
  }
  detail::count_method_units(ctx, "io_sieve_windows_total", windows);
  detail::end_method_span(ctx, span);
  co_return Status::ok();
}

sim::Task<Status> sieve_write(Context& ctx, std::uint64_t handle,
                              const FileView& view, std::int64_t offset,
                              const void* buf, std::int64_t count,
                              const types::Datatype& memtype) {
  if (!ctx.config.file_locking) {
    co_return unsupported(
        "data sieving writes need file locking; PVFS provides none");
  }
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  if (total == 0) co_return Status::ok();
  const obs::SpanId span = detail::begin_method_span(ctx, "sieve_write",
                                                     total);

  const SievePlan plan = plan_access(view, offset, total);
  co_await ctx.sched.delay(
      ctx.config.client.flatten_cost_per_region *
      static_cast<std::int64_t>(plan.file_regions.size()));

  const bool transfer = ctx.client.transfer_data() && buf != nullptr;
  const bool mem_contig = memtype.is_contiguous();
  std::vector<std::uint8_t> stream_store;
  const std::uint8_t* stream = nullptr;
  if (transfer) {
    if (mem_contig) {
      stream = static_cast<const std::uint8_t*>(buf);
    } else {
      stream_store.resize(static_cast<std::size_t>(total));
      detail::pack_memory(memtype, count, buf, stream_store);
      stream = stream_store.data();
    }
  }
  if (!mem_contig) {
    co_await detail::charge_mem_staging(
        ctx, memtype, count, total, ctx.config.client.flatten_cost_per_region);
  }

  const auto sieve = static_cast<std::int64_t>(ctx.config.sieve_buffer_size);
  std::vector<std::uint8_t> window_buf;
  if (transfer) {
    window_buf.resize(static_cast<std::size_t>(
        std::min(sieve, plan.hull.length)));
  }

  // Lock the whole modified range for the read-modify-write sequence.
  (void)co_await ctx.client.lock(handle);

  std::int64_t stream_pos = 0;
  std::size_t region_idx = 0;
  std::int64_t region_done = 0;
  std::int64_t windows = 0;
  Status status = Status::ok();
  for (std::int64_t wstart = plan.hull.offset; wstart < plan.hull.end();
       wstart += sieve) {
    ++windows;
    const std::int64_t wlen = std::min(sieve, plan.hull.end() - wstart);
    status = co_await ctx.client.read_contig(
        handle, wstart, transfer ? window_buf.data() : nullptr, wlen);
    if (!status.is_ok()) break;

    const std::int64_t moved = exchange_window(
        plan, Region{wstart, wlen}, transfer ? window_buf.data() : nullptr,
        const_cast<std::uint8_t*>(stream), stream_pos, region_idx, region_done,
        /*to_stream=*/false);
    co_await ctx.sched.delay(
        transfer_time(static_cast<std::uint64_t>(moved),
                      ctx.config.client.memcpy_bandwidth_bytes_per_s));

    status = co_await ctx.client.write_contig(
        handle, wstart, transfer ? window_buf.data() : nullptr, wlen);
    if (!status.is_ok()) break;
  }

  (void)co_await ctx.client.unlock(handle);
  detail::count_method_units(ctx, "io_sieve_windows_total", windows);
  detail::end_method_span(ctx, span);
  co_return status;
}

}  // namespace dtio::io
