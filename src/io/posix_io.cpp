// POSIX I/O: the naive baseline. Each piece that is contiguous in both
// memory and file becomes one contiguous file-system operation — the
// paper's Figure 1 access pattern costs five calls; its FLASH checkpoint
// costs 983 040 per client.
#include "io/joint.h"
#include "io/methods.h"

namespace dtio::io {

namespace {

sim::Task<Status> posix_rw(Context& ctx, bool is_write, std::uint64_t handle,
                           const FileView& view, std::int64_t offset,
                           const void* wbuf, void* rbuf, std::int64_t count,
                           const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  const StreamWindow window = make_window(view, offset, total);
  const obs::SpanId span = detail::begin_method_span(
      ctx, is_write ? "posix_write" : "posix_read", total);

  JointWalker walker(make_mem_cursor(memtype, count),
                     make_file_cursor(view, window));
  JointWalker::Piece piece;
  std::int64_t pieces = 0;
  while (walker.next(piece)) {
    ++pieces;
    Status status;
    if (is_write) {
      const auto* src =
          wbuf == nullptr
              ? nullptr
              : static_cast<const std::uint8_t*>(wbuf) + piece.mem_offset;
      status = co_await ctx.client.write_contig(handle, piece.file_offset,
                                                src, piece.length);
    } else {
      auto* dst = rbuf == nullptr
                      ? nullptr
                      : static_cast<std::uint8_t*>(rbuf) + piece.mem_offset;
      status = co_await ctx.client.read_contig(handle, piece.file_offset, dst,
                                               piece.length);
    }
    if (!status.is_ok()) {
      detail::count_method_units(ctx, "io_posix_pieces_total", pieces);
      detail::end_method_span(ctx, span);
      co_return status;
    }
  }
  detail::count_method_units(ctx, "io_posix_pieces_total", pieces);
  detail::end_method_span(ctx, span);
  co_return Status::ok();
}

}  // namespace

sim::Task<Status> posix_write(Context& ctx, std::uint64_t handle,
                              const FileView& view, std::int64_t offset,
                              const void* buf, std::int64_t count,
                              const types::Datatype& memtype) {
  return posix_rw(ctx, true, handle, view, offset, buf, nullptr, count,
                  memtype);
}

sim::Task<Status> posix_read(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             void* buf, std::int64_t count,
                             const types::Datatype& memtype) {
  return posix_rw(ctx, false, handle, view, offset, nullptr, buf, count,
                  memtype);
}

}  // namespace dtio::io
