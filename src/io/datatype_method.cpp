// Datatype I/O (§3): the paper's contribution. The memory datatype is
// processed locally (pack/unpack through the dataloop engine); the file
// datatype is converted to a dataloop, serialised, and shipped to the I/O
// servers, which expand it themselves. One file-system operation per MPI-IO
// call, no offset-length list on the wire.
#include <vector>

#include "io/methods.h"

namespace dtio::io {

namespace {

sim::Task<Status> datatype_rw(Context& ctx, bool is_write,
                              std::uint64_t handle, const FileView& view,
                              std::int64_t offset, const void* wbuf,
                              void* rbuf, std::int64_t count,
                              const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  if (total == 0) co_return Status::ok();
  const obs::SpanId span = detail::begin_method_span(
      ctx, is_write ? "datatype_write" : "datatype_read", total);
  const StreamWindow window = make_window(view, offset, total);

  // The MPI datatypes are converted to dataloops at every operation
  // (paper §3.2: "slightly higher overhead in the local portion").
  const std::int64_t build_nodes = memtype.dataloop()->node_count() +
                                   view.filetype.dataloop()->node_count();
  co_await ctx.sched.delay(ctx.config.client.dataloop_build_cost_per_node *
                           build_nodes);

  const bool transfer = ctx.client.transfer_data();
  const bool mem_contig = memtype.is_contiguous();

  std::vector<std::uint8_t> stream_store;
  if (is_write) {
    const std::uint8_t* stream = nullptr;
    if (transfer && wbuf != nullptr) {
      if (mem_contig) {
        stream = static_cast<const std::uint8_t*>(wbuf);
      } else {
        stream_store.resize(static_cast<std::size_t>(total));
        detail::pack_memory(memtype, count, wbuf, stream_store);
        stream = stream_store.data();
      }
    }
    if (!mem_contig) {
      co_await detail::charge_mem_staging(
          ctx, memtype, count, total,
          ctx.config.client.dataloop_cost_per_region);
    }
    Status wstatus = co_await ctx.client.write_datatype(
        handle, view.filetype.dataloop(), view.displacement, window.instances,
        window.offset, window.length, stream);
    detail::count_method_units(ctx, "io_datatype_ops_total", 1);
    detail::end_method_span(ctx, span);
    co_return wstatus;
  }

  std::uint8_t* stream = nullptr;
  if (transfer && rbuf != nullptr) {
    if (mem_contig) {
      stream = static_cast<std::uint8_t*>(rbuf);
    } else {
      stream_store.resize(static_cast<std::size_t>(total));
      stream = stream_store.data();
    }
  }
  Status status = co_await ctx.client.read_datatype(
      handle, view.filetype.dataloop(), view.displacement, window.instances,
      window.offset, window.length, stream);
  detail::count_method_units(ctx, "io_datatype_ops_total", 1);
  if (!status.is_ok()) {
    detail::end_method_span(ctx, span);
    co_return status;
  }
  if (!mem_contig) {
    if (stream != nullptr) {
      detail::unpack_memory(memtype, count, rbuf, stream_store);
    }
    co_await detail::charge_mem_staging(
        ctx, memtype, count, total, ctx.config.client.dataloop_cost_per_region);
  }
  detail::end_method_span(ctx, span);
  co_return Status::ok();
}

}  // namespace

sim::Task<Status> datatype_write(Context& ctx, std::uint64_t handle,
                                 const FileView& view, std::int64_t offset,
                                 const void* buf, std::int64_t count,
                                 const types::Datatype& memtype) {
  return datatype_rw(ctx, true, handle, view, offset, buf, nullptr, count,
                     memtype);
}

sim::Task<Status> datatype_read(Context& ctx, std::uint64_t handle,
                                const FileView& view, std::int64_t offset,
                                void* buf, std::int64_t count,
                                const types::Datatype& memtype) {
  return datatype_rw(ctx, false, handle, view, offset, nullptr, buf, count,
                     memtype);
}

}  // namespace dtio::io
