// The ADIO-like access-method layer: every noncontiguous-I/O strategy the
// paper evaluates, implemented against the PVFS-like client.
//
//   POSIX I/O        one contiguous file-system op per joint piece (§2.1)
//   Data sieving     bounding-window reads + client-side extraction; writes
//                    need file locking, which PVFS lacks (§2.2, §4.1)
//   List I/O         joint (mem, file) pieces shipped in <=64-region
//                    batches (§2.4)
//   Datatype I/O     dataloops shipped to servers; memory side packed or
//                    consumed in place (§3)
//
// Two-phase collective I/O lives in src/collective/ (it needs a
// communicator). All methods share one signature; `buf` may be null when
// the owning client is in timing-only mode.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "io/view.h"
#include "net/cost_model.h"
#include "pfs/client.h"
#include "sim/scheduler.h"
#include "sim/task.h"
#include "types/datatype.h"

namespace dtio::io {

/// Per-simulated-process handle bundle for the method layer.
struct Context {
  sim::Scheduler& sched;
  pfs::Client& client;
  const net::ClusterConfig& config;
};

// All offsets are in etypes within the view (MPI_File_read_at semantics);
// the access covers count * memtype.size() bytes.

sim::Task<Status> posix_write(Context& ctx, std::uint64_t handle,
                              const FileView& view, std::int64_t offset,
                              const void* buf, std::int64_t count,
                              const types::Datatype& memtype);
sim::Task<Status> posix_read(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             void* buf, std::int64_t count,
                             const types::Datatype& memtype);

sim::Task<Status> sieve_read(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             void* buf, std::int64_t count,
                             const types::Datatype& memtype);
/// Read-modify-write under a whole-file lock; returns kUnsupported when
/// the configuration models PVFS (no locking), as in the paper.
sim::Task<Status> sieve_write(Context& ctx, std::uint64_t handle,
                              const FileView& view, std::int64_t offset,
                              const void* buf, std::int64_t count,
                              const types::Datatype& memtype);

sim::Task<Status> list_write(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             const void* buf, std::int64_t count,
                             const types::Datatype& memtype);
sim::Task<Status> list_read(Context& ctx, std::uint64_t handle,
                            const FileView& view, std::int64_t offset,
                            void* buf, std::int64_t count,
                            const types::Datatype& memtype);

sim::Task<Status> datatype_write(Context& ctx, std::uint64_t handle,
                                 const FileView& view, std::int64_t offset,
                                 const void* buf, std::int64_t count,
                                 const types::Datatype& memtype);
sim::Task<Status> datatype_read(Context& ctx, std::uint64_t handle,
                                const FileView& view, std::int64_t offset,
                                void* buf, std::int64_t count,
                                const types::Datatype& memtype);

// ---- Shared internals (exposed for the collective layer and tests) ----------

namespace detail {

/// Charge memory-side staging: per-region processing plus one memcpy pass.
/// Returns the estimated region count charged.
sim::Task<std::int64_t> charge_mem_staging(Context& ctx,
                                           const types::Datatype& memtype,
                                           std::int64_t count,
                                           std::int64_t bytes,
                                           SimTime per_region_cost);

/// Pack `count` instances of memtype from `buf` into a stream buffer
/// (no-op when buf is null). `out` must be presized to the stream length.
void pack_memory(const types::Datatype& memtype, std::int64_t count,
                 const void* buf, std::span<std::uint8_t> out);
/// Inverse of pack_memory.
void unpack_memory(const types::Datatype& memtype, std::int64_t count,
                   void* buf, std::span<const std::uint8_t> in);

/// Flatten the file side of an access into logical regions (sorted,
/// coalesced — MPI file views are monotonic).
std::vector<Region> flatten_file_side(const FileView& view,
                                      const StreamWindow& window);

/// Opens a root span (its own trace) for one method-level operation on
/// this client's node, with the desired byte count as the span value.
/// Returns 0 — at one pointer test of cost — when observability is
/// detached.
obs::SpanId begin_method_span(Context& ctx, std::string_view name,
                              std::int64_t bytes);
void end_method_span(Context& ctx, obs::SpanId span);

/// Opens a span under `parent` (same trace), e.g. one two-phase round
/// under the collective's method span.
obs::SpanId begin_child_span(Context& ctx, std::string_view name,
                             obs::SpanId parent, std::int64_t value = 0);

/// Bumps counter `name` by `n` in the attached registry; no-op when
/// observability is detached.
void count_method_units(Context& ctx, std::string_view name, std::int64_t n);

}  // namespace detail

}  // namespace dtio::io
