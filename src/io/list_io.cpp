// List I/O: flatten both datatypes into joint (memory, file) pieces and
// ship them in bounded batches (default 64 regions per file-system
// request, paper §2.4). The batches keep request sizes bounded but leave a
// linear relationship between pieces and requests — the deficiency
// datatype I/O removes.
#include <cstring>
#include <vector>

#include "io/joint.h"
#include "io/methods.h"

namespace dtio::io {

namespace {

sim::Task<Status> list_rw(Context& ctx, bool is_write, std::uint64_t handle,
                          const FileView& view, std::int64_t offset,
                          const void* wbuf, void* rbuf, std::int64_t count,
                          const types::Datatype& memtype) {
  const std::int64_t total = count * memtype.size();
  ctx.client.stats().desired_bytes += static_cast<std::uint64_t>(total);
  const StreamWindow window = make_window(view, offset, total);
  const auto cap = static_cast<std::size_t>(ctx.config.list_io_max_regions);
  const bool transfer = ctx.client.transfer_data();
  const obs::SpanId span = detail::begin_method_span(
      ctx, is_write ? "list_write" : "list_read", total);
  std::int64_t batches = 0;

  JointWalker walker(make_mem_cursor(memtype, count),
                     make_file_cursor(view, window));

  std::vector<Region> file_batch;
  std::vector<std::int64_t> mem_offsets;
  std::vector<std::uint8_t> stage;
  file_batch.reserve(cap);
  mem_offsets.reserve(cap);

  JointWalker::Piece piece;
  bool more = walker.next(piece);
  while (more) {
    ++batches;
    file_batch.clear();
    mem_offsets.clear();
    std::int64_t batch_bytes = 0;
    do {
      file_batch.push_back(Region{piece.file_offset, piece.length});
      mem_offsets.push_back(piece.mem_offset);
      batch_bytes += piece.length;
      more = walker.next(piece);
    } while (more && file_batch.size() < cap);

    // Flattening both types into this batch of joint pieces is the
    // client-side cost list I/O pays on every request.
    co_await ctx.sched.delay(ctx.config.client.flatten_cost_per_region *
                             static_cast<std::int64_t>(file_batch.size()));

    Status status;
    if (is_write) {
      const std::uint8_t* stream = nullptr;
      if (transfer && wbuf != nullptr) {
        stage.resize(static_cast<std::size_t>(batch_bytes));
        std::size_t at = 0;
        for (std::size_t i = 0; i < file_batch.size(); ++i) {
          const auto len = static_cast<std::size_t>(file_batch[i].length);
          std::memcpy(stage.data() + at,
                      static_cast<const std::uint8_t*>(wbuf) + mem_offsets[i],
                      len);
          at += len;
        }
        stream = stage.data();
      }
      co_await ctx.sched.delay(
          transfer_time(static_cast<std::uint64_t>(batch_bytes),
                        ctx.config.client.memcpy_bandwidth_bytes_per_s));
      status = co_await ctx.client.write_list(handle, file_batch, stream);
    } else {
      std::uint8_t* stream = nullptr;
      if (transfer && rbuf != nullptr) {
        stage.assign(static_cast<std::size_t>(batch_bytes), 0);
        stream = stage.data();
      }
      status = co_await ctx.client.read_list(handle, file_batch, stream);
      if (stream != nullptr) {
        std::size_t at = 0;
        for (std::size_t i = 0; i < file_batch.size(); ++i) {
          const auto len = static_cast<std::size_t>(file_batch[i].length);
          std::memcpy(static_cast<std::uint8_t*>(rbuf) + mem_offsets[i],
                      stage.data() + at, len);
          at += len;
        }
      }
      co_await ctx.sched.delay(
          transfer_time(static_cast<std::uint64_t>(batch_bytes),
                        ctx.config.client.memcpy_bandwidth_bytes_per_s));
    }
    if (!status.is_ok()) {
      detail::count_method_units(ctx, "io_list_batches_total", batches);
      detail::end_method_span(ctx, span);
      co_return status;
    }
  }
  detail::count_method_units(ctx, "io_list_batches_total", batches);
  detail::end_method_span(ctx, span);
  co_return Status::ok();
}

}  // namespace

sim::Task<Status> list_write(Context& ctx, std::uint64_t handle,
                             const FileView& view, std::int64_t offset,
                             const void* buf, std::int64_t count,
                             const types::Datatype& memtype) {
  return list_rw(ctx, true, handle, view, offset, buf, nullptr, count,
                 memtype);
}

sim::Task<Status> list_read(Context& ctx, std::uint64_t handle,
                            const FileView& view, std::int64_t offset,
                            void* buf, std::int64_t count,
                            const types::Datatype& memtype) {
  return list_rw(ctx, false, handle, view, offset, nullptr, buf, count,
                 memtype);
}

}  // namespace dtio::io
