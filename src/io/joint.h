// JointWalker: lockstep traversal of a memory datatype and a file view.
//
// Produces maximal (memory offset, file offset, length) triples — the
// pieces that are contiguous on BOTH sides simultaneously. This is the
// granularity POSIX I/O must issue operations at, and the pair granularity
// ROMIO's flattening feeds to list I/O (which is why the paper's FLASH
// run needs 983 040 pieces: 8-byte elements are the joint granularity even
// though the file side alone is 4 KiB-contiguous).
//
// Streaming: nothing is materialised, so arbitrarily fine-grained accesses
// walk in O(1) memory.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/region.h"
#include "dataloop/cursor.h"

namespace dtio::io {

class JointWalker {
 public:
  /// Both cursors must cover the same number of stream bytes.
  JointWalker(dl::Cursor mem, dl::Cursor file)
      : mem_(std::move(mem)), file_(std::move(file)) {}

  struct Piece {
    std::int64_t mem_offset = 0;
    std::int64_t file_offset = 0;
    std::int64_t length = 0;
  };

  /// Next joint piece; false at end of stream.
  bool next(Piece& out) {
    Region m, f;
    if (!mem_.peek(m) || !file_.peek(f)) return false;
    const std::int64_t len = std::min(m.length, f.length);
    out = Piece{m.offset, f.offset, len};
    mem_.advance(len);
    file_.advance(len);
    return true;
  }

  /// Next joint piece, bounded by a byte budget.
  bool next_bounded(std::int64_t max_len, Piece& out) {
    Region m, f;
    if (max_len <= 0 || !mem_.peek(m) || !file_.peek(f)) return false;
    const std::int64_t len =
        std::min({m.length, f.length, max_len});
    out = Piece{m.offset, f.offset, len};
    mem_.advance(len);
    file_.advance(len);
    return true;
  }

  [[nodiscard]] bool done() { return mem_.done() || file_.done(); }

 private:
  dl::Cursor mem_;
  dl::Cursor file_;
};

}  // namespace dtio::io
