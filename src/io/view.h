// MPI-IO file views and the access arithmetic shared by all methods.
//
// A view is (displacement, etype, filetype): the file's visible data
// stream is `filetype` tiled from byte `displacement`, and offsets are
// counted in etypes within that stream. An access of `count` instances of
// `memtype` at view offset `offset` touches the stream window
//   [offset * etype.size(), + count * memtype.size()).
#pragma once

#include <cstdint>

#include "dataloop/cursor.h"
#include "types/datatype.h"

namespace dtio::io {

struct FileView {
  std::int64_t displacement = 0;
  types::Datatype etype = types::byte_t();
  types::Datatype filetype = types::byte_t();
};

/// The stream window of an access through `view`.
struct StreamWindow {
  std::int64_t offset = 0;  ///< first stream byte
  std::int64_t length = 0;  ///< bytes accessed
  std::int64_t instances = 0;  ///< filetype instances needed to cover it

  [[nodiscard]] std::int64_t end() const noexcept { return offset + length; }
};

[[nodiscard]] inline StreamWindow make_window(const FileView& view,
                                              std::int64_t offset_etypes,
                                              std::int64_t bytes) {
  StreamWindow w;
  w.offset = offset_etypes * view.etype.size();
  w.length = bytes;
  const std::int64_t per_instance = view.filetype.size();
  w.instances = per_instance == 0 ? 0 : (w.end() + per_instance - 1) / per_instance;
  return w;
}

/// Cursor over the file-side byte stream of an access, already positioned
/// at the window start.
[[nodiscard]] inline dl::Cursor make_file_cursor(const FileView& view,
                                                 const StreamWindow& window) {
  dl::Cursor cursor(view.filetype.dataloop(), view.displacement,
                    window.instances);
  cursor.seek(window.offset);
  return cursor;
}

/// Cursor over the memory-side byte stream (buffer-relative offsets).
[[nodiscard]] inline dl::Cursor make_mem_cursor(const types::Datatype& memtype,
                                                std::int64_t count) {
  return dl::Cursor(memtype.dataloop(), 0, count);
}

}  // namespace dtio::io
