// ncio: a Parallel-netCDF-flavoured high-level I/O library built on the
// MPI-IO facade — the top layer of the stack the paper's introduction
// describes (application → high-level API → MPI-IO → parallel file
// system). Scientists describe named dimensions and typed variables;
// ncio turns (start, count) subarray accesses into datatypes, and the
// layers below turn those into dataloops on the wire.
//
// File format (all little-endian):
//   magic "DNC1"
//   u32 ndims; per dim: u32 name_len, name bytes, i64 length
//   u32 nvars; per var: u32 name_len, name bytes, u8 type, u32 ndims,
//              u32 dim_ids..., i64 data_offset
//   variable data blocks follow, each var contiguous in row-major order,
//   starting at a 4 KiB-aligned offset past the header.
//
// Lifecycle mirrors netCDF: create() enters define mode (def_dim/def_var),
// enddef() freezes the schema, computes the layout and writes the header;
// open() parses an existing header. Data access is put_vara/get_vara
// (independent) and put_vara_all/get_vara_all (collective).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "collective/comm.h"
#include "common/status.h"
#include "mpiio/file.h"

namespace dtio::ncio {

enum class NcType : std::uint8_t { kByte = 0, kInt = 1, kFloat = 2, kDouble = 3 };

[[nodiscard]] std::int64_t nc_type_size(NcType type) noexcept;
[[nodiscard]] types::Datatype nc_type_datatype(NcType type);

struct Dim {
  std::string name;
  std::int64_t length = 0;
};

struct Var {
  std::string name;
  NcType type = NcType::kByte;
  std::vector<int> dim_ids;
  std::int64_t data_offset = 0;  ///< byte offset of this var's block

  [[nodiscard]] std::int64_t num_elements(
      std::span<const Dim> dims) const noexcept;
};

class Dataset {
 public:
  explicit Dataset(io::Context ctx) : file_(ctx) {}

  // ---- Define mode ---------------------------------------------------------
  /// Create a new dataset and enter define mode.
  sim::Task<Status> create(std::string path);
  /// Define a dimension; returns its id (or -1 with no effect after
  /// enddef / on duplicates — check last_error()).
  int def_dim(std::string name, std::int64_t length);
  /// Define a variable over previously defined dimensions (row-major,
  /// first dimension slowest); returns its id or -1.
  int def_var(std::string name, NcType type, std::span<const int> dim_ids);
  /// Freeze the schema, compute the layout, write the header.
  sim::Task<Status> enddef();

  // ---- Open mode -------------------------------------------------------------
  /// Open an existing dataset and parse its header.
  sim::Task<Status> open(std::string path);

  // ---- Inquiry ---------------------------------------------------------------
  [[nodiscard]] const std::vector<Dim>& dims() const noexcept { return dims_; }
  [[nodiscard]] const std::vector<Var>& vars() const noexcept { return vars_; }
  [[nodiscard]] int find_var(std::string_view name) const noexcept;
  [[nodiscard]] int find_dim(std::string_view name) const noexcept;
  [[nodiscard]] bool defined() const noexcept { return frozen_; }
  [[nodiscard]] const Status& last_error() const noexcept { return error_; }

  // ---- Data access (netCDF vara semantics) --------------------------------------
  // starts/counts are per-dimension element indices of the accessed slab.
  sim::Task<Status> put_vara(int varid, std::span<const std::int64_t> starts,
                             std::span<const std::int64_t> counts,
                             const void* buf,
                             mpiio::Method method = mpiio::Method::kDatatype);
  sim::Task<Status> get_vara(int varid, std::span<const std::int64_t> starts,
                             std::span<const std::int64_t> counts, void* buf,
                             mpiio::Method method = mpiio::Method::kDatatype);
  /// Collective variants: all ranks of `comm` call together.
  sim::Task<Status> put_vara_all(coll::Communicator& comm, int rank,
                                 int varid,
                                 std::span<const std::int64_t> starts,
                                 std::span<const std::int64_t> counts,
                                 const void* buf,
                                 mpiio::Method method = mpiio::Method::kTwoPhase);
  sim::Task<Status> get_vara_all(coll::Communicator& comm, int rank,
                                 int varid,
                                 std::span<const std::int64_t> starts,
                                 std::span<const std::int64_t> counts,
                                 void* buf,
                                 mpiio::Method method = mpiio::Method::kTwoPhase);

  /// Total bytes of the header + all variable blocks.
  [[nodiscard]] std::int64_t file_bytes() const noexcept;

 private:
  struct Access {
    Status status;
    types::Datatype filetype;  ///< subarray of the var (whole var extent)
    types::Datatype memtype;
    std::int64_t displacement = 0;
  };
  [[nodiscard]] Access plan_access(int varid,
                                   std::span<const std::int64_t> starts,
                                   std::span<const std::int64_t> counts) const;

  std::vector<std::uint8_t> encode_header() const;
  Status decode_header(std::span<const std::uint8_t> bytes);
  sim::Task<Status> open_impl(Box<std::string> path);
  sim::Task<Status> create_impl(Box<std::string> path);

  mpiio::File file_;
  std::vector<Dim> dims_;
  std::vector<Var> vars_;
  bool frozen_ = false;
  Status error_;
  std::int64_t header_bytes_ = 0;
};

}  // namespace dtio::ncio
