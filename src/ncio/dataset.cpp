#include "ncio/dataset.h"

#include <algorithm>

namespace dtio::ncio {

namespace {

constexpr char kMagic[4] = {'D', 'N', 'C', '1'};
constexpr std::int64_t kDataAlignment = 4096;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(
        static_cast<std::uint64_t>(v) >> (8 * i)));
  }
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}
  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return false;
    v = in_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool i64(std::int64_t& v) {
    if (pos_ + 8 > in_.size()) return false;
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i) {
      u |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    v = static_cast<std::int64_t>(u);
    return true;
  }
  bool str(std::string& v) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > in_.size() || len > 4096) return false;
    v.assign(reinterpret_cast<const char*>(in_.data() + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

std::int64_t align_up(std::int64_t v, std::int64_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace

std::int64_t nc_type_size(NcType type) noexcept {
  switch (type) {
    case NcType::kByte:
      return 1;
    case NcType::kInt:
    case NcType::kFloat:
      return 4;
    case NcType::kDouble:
      return 8;
  }
  return 1;
}

types::Datatype nc_type_datatype(NcType type) {
  switch (type) {
    case NcType::kByte:
      return types::byte_t();
    case NcType::kInt:
      return types::int32_t_();
    case NcType::kFloat:
      return types::float_t();
    case NcType::kDouble:
      return types::double_t();
  }
  return types::byte_t();
}

std::int64_t Var::num_elements(std::span<const Dim> dims) const noexcept {
  std::int64_t n = 1;
  for (const int d : dim_ids) {
    n *= dims[static_cast<std::size_t>(d)].length;
  }
  return n;
}

sim::Task<Status> Dataset::create(std::string path) {
  return create_impl(Box<std::string>(std::move(path)));
}

sim::Task<Status> Dataset::create_impl(Box<std::string> path) {
  Status status = co_await file_.open(path.take(), /*create=*/true);
  if (!status.is_ok()) co_return status;
  dims_.clear();
  vars_.clear();
  frozen_ = false;
  co_return Status::ok();
}

int Dataset::def_dim(std::string name, std::int64_t length) {
  if (frozen_) {
    error_ = invalid_argument("def_dim after enddef");
    return -1;
  }
  if (length <= 0) {
    error_ = invalid_argument("dimension length must be positive");
    return -1;
  }
  if (find_dim(name) >= 0) {
    error_ = already_exists("dimension " + name);
    return -1;
  }
  dims_.push_back(Dim{std::move(name), length});
  return static_cast<int>(dims_.size()) - 1;
}

int Dataset::def_var(std::string name, NcType type,
                     std::span<const int> dim_ids) {
  if (frozen_) {
    error_ = invalid_argument("def_var after enddef");
    return -1;
  }
  if (find_var(name) >= 0) {
    error_ = already_exists("variable " + name);
    return -1;
  }
  for (const int d : dim_ids) {
    if (d < 0 || d >= static_cast<int>(dims_.size())) {
      error_ = invalid_argument("def_var: unknown dimension id");
      return -1;
    }
  }
  Var var;
  var.name = std::move(name);
  var.type = type;
  var.dim_ids.assign(dim_ids.begin(), dim_ids.end());
  vars_.push_back(std::move(var));
  return static_cast<int>(vars_.size()) - 1;
}

std::vector<std::uint8_t> Dataset::encode_header() const {
  std::vector<std::uint8_t> out(kMagic, kMagic + 4);
  put_u32(out, static_cast<std::uint32_t>(dims_.size()));
  for (const Dim& d : dims_) {
    put_u32(out, static_cast<std::uint32_t>(d.name.size()));
    out.insert(out.end(), d.name.begin(), d.name.end());
    put_i64(out, d.length);
  }
  put_u32(out, static_cast<std::uint32_t>(vars_.size()));
  for (const Var& v : vars_) {
    put_u32(out, static_cast<std::uint32_t>(v.name.size()));
    out.insert(out.end(), v.name.begin(), v.name.end());
    out.push_back(static_cast<std::uint8_t>(v.type));
    put_u32(out, static_cast<std::uint32_t>(v.dim_ids.size()));
    for (const int d : v.dim_ids) {
      put_u32(out, static_cast<std::uint32_t>(d));
    }
    put_i64(out, v.data_offset);
  }
  return out;
}

Status Dataset::decode_header(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  std::uint8_t magic[4];
  for (auto& m : magic) {
    if (!r.u8(m)) return internal_error("ncio: truncated header");
  }
  if (!std::equal(magic, magic + 4, kMagic)) {
    return invalid_argument("ncio: bad magic (not a DNC1 dataset)");
  }
  std::uint32_t ndims = 0;
  if (!r.u32(ndims) || ndims > 4096) return internal_error("ncio: bad dims");
  dims_.clear();
  for (std::uint32_t i = 0; i < ndims; ++i) {
    Dim d;
    if (!r.str(d.name) || !r.i64(d.length) || d.length <= 0) {
      return internal_error("ncio: bad dimension record");
    }
    dims_.push_back(std::move(d));
  }
  std::uint32_t nvars = 0;
  if (!r.u32(nvars) || nvars > 4096) return internal_error("ncio: bad vars");
  vars_.clear();
  for (std::uint32_t i = 0; i < nvars; ++i) {
    Var v;
    std::uint8_t type = 0;
    std::uint32_t var_ndims = 0;
    if (!r.str(v.name) || !r.u8(type) || type > 3 || !r.u32(var_ndims) ||
        var_ndims > ndims) {
      return internal_error("ncio: bad variable record");
    }
    v.type = static_cast<NcType>(type);
    for (std::uint32_t d = 0; d < var_ndims; ++d) {
      std::uint32_t id = 0;
      if (!r.u32(id) || id >= ndims) {
        return internal_error("ncio: bad variable dimension id");
      }
      v.dim_ids.push_back(static_cast<int>(id));
    }
    if (!r.i64(v.data_offset)) return internal_error("ncio: bad offset");
    vars_.push_back(std::move(v));
  }
  return Status::ok();
}

sim::Task<Status> Dataset::enddef() {
  if (frozen_) co_return invalid_argument("enddef called twice");
  // Layout: variables sequentially after the aligned header.
  header_bytes_ = static_cast<std::int64_t>(encode_header().size());
  std::int64_t at = align_up(header_bytes_, kDataAlignment);
  for (Var& v : vars_) {
    v.data_offset = at;
    at += v.num_elements(dims_) * nc_type_size(v.type);
  }
  frozen_ = true;

  const std::vector<std::uint8_t> header = encode_header();
  file_.set_view(0, types::byte_t(), types::byte_t());
  auto memtype = types::contiguous(
      static_cast<std::int64_t>(header.size()), types::byte_t());
  co_return co_await file_.write_at(0, header.data(), 1, memtype,
                                    mpiio::Method::kDatatype);
}

sim::Task<Status> Dataset::open(std::string path) {
  return open_impl(Box<std::string>(std::move(path)));
}

sim::Task<Status> Dataset::open_impl(Box<std::string> path) {
  Status status = co_await file_.open(path.take(), /*create=*/false);
  if (!status.is_ok()) co_return status;
  // Read a generous fixed-size header window, then parse. A second read
  // would be needed for huge schemas; 64 KiB covers thousands of entries.
  std::vector<std::uint8_t> header(64 * 1024, 0);
  file_.set_view(0, types::byte_t(), types::byte_t());
  auto memtype = types::contiguous(
      static_cast<std::int64_t>(header.size()), types::byte_t());
  status = co_await file_.read_at(0, header.data(), 1, memtype,
                                  mpiio::Method::kDataSieving);
  if (!status.is_ok()) co_return status;
  status = decode_header(header);
  if (!status.is_ok()) co_return status;
  frozen_ = true;
  co_return Status::ok();
}

int Dataset::find_var(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Dataset::find_dim(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (dims_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::int64_t Dataset::file_bytes() const noexcept {
  if (vars_.empty()) return header_bytes_;
  const Var& last = vars_.back();
  return last.data_offset + last.num_elements(dims_) * nc_type_size(last.type);
}

Dataset::Access Dataset::plan_access(
    int varid, std::span<const std::int64_t> starts,
    std::span<const std::int64_t> counts) const {
  Access access;
  if (!frozen_) {
    access.status = invalid_argument("data access before enddef/open");
    return access;
  }
  if (varid < 0 || varid >= static_cast<int>(vars_.size())) {
    access.status = not_found("no such variable id");
    return access;
  }
  const Var& var = vars_[static_cast<std::size_t>(varid)];
  const std::size_t ndims = var.dim_ids.size();
  if (starts.size() != ndims || counts.size() != ndims) {
    access.status = invalid_argument("starts/counts arity mismatch");
    return access;
  }
  std::vector<std::int64_t> sizes;
  std::int64_t elements = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    const std::int64_t dim_len =
        dims_[static_cast<std::size_t>(var.dim_ids[d])].length;
    if (starts[d] < 0 || counts[d] <= 0 || starts[d] + counts[d] > dim_len) {
      access.status = out_of_range("vara slab outside the variable");
      return access;
    }
    sizes.push_back(dim_len);
    elements *= counts[d];
  }
  auto element = nc_type_datatype(var.type);
  if (ndims == 0) {
    access.filetype = element;  // scalar variable
  } else {
    access.filetype = types::subarray(sizes, counts, starts,
                                      types::Order::kC, element);
  }
  access.memtype =
      types::contiguous(elements * nc_type_size(var.type), types::byte_t());
  access.displacement = var.data_offset;
  access.status = Status::ok();
  return access;
}

sim::Task<Status> Dataset::put_vara(int varid,
                                    std::span<const std::int64_t> starts,
                                    std::span<const std::int64_t> counts,
                                    const void* buf, mpiio::Method method) {
  const Access access = plan_access(varid, starts, counts);
  if (!access.status.is_ok()) co_return access.status;
  file_.set_view(access.displacement, types::byte_t(), access.filetype);
  co_return co_await file_.write_at(0, buf, 1, access.memtype, method);
}

sim::Task<Status> Dataset::get_vara(int varid,
                                    std::span<const std::int64_t> starts,
                                    std::span<const std::int64_t> counts,
                                    void* buf, mpiio::Method method) {
  const Access access = plan_access(varid, starts, counts);
  if (!access.status.is_ok()) co_return access.status;
  file_.set_view(access.displacement, types::byte_t(), access.filetype);
  co_return co_await file_.read_at(0, buf, 1, access.memtype, method);
}

sim::Task<Status> Dataset::put_vara_all(coll::Communicator& comm, int rank,
                                        int varid,
                                        std::span<const std::int64_t> starts,
                                        std::span<const std::int64_t> counts,
                                        const void* buf,
                                        mpiio::Method method) {
  const Access access = plan_access(varid, starts, counts);
  if (!access.status.is_ok()) co_return access.status;
  file_.set_view(access.displacement, types::byte_t(), access.filetype);
  co_return co_await file_.write_at_all(comm, rank, 0, buf, 1,
                                        access.memtype, method);
}

sim::Task<Status> Dataset::get_vara_all(coll::Communicator& comm, int rank,
                                        int varid,
                                        std::span<const std::int64_t> starts,
                                        std::span<const std::int64_t> counts,
                                        void* buf, mpiio::Method method) {
  const Access access = plan_access(varid, starts, counts);
  if (!access.status.is_ok()) co_return access.status;
  file_.set_view(access.displacement, types::byte_t(), access.filetype);
  co_return co_await file_.read_at_all(comm, rank, 0, buf, 1, access.memtype,
                                       method);
}

}  // namespace dtio::ncio
