// Time-resolved telemetry: bounded ring-buffer time series fed by the
// cluster's sim-clock-driven sampler (Cluster::set_observability arms it
// when ObsConfig::sample_period > 0). Each series is one counter on one
// node — mailbox queue depth/bytes, disk/cpu busy fraction over the
// sample window, cache occupancy and dirty bytes, client flow windows and
// breaker states, network in-flight bytes. Series are exported as
// Perfetto counter tracks (chrome_trace.h) and as the `timeline` section
// of BENCH_*.json (run_report.h).
//
// The sampler runs on the scheduler's telemetry side-channel
// (Scheduler::schedule_telemetry): it consumes no event-queue sequence
// numbers, so a run with sampling attached is bit-identical to a
// detached run — the "record, never perturb" contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace dtio::obs {

/// Observability tuning knobs, carried on the Observability context.
struct ObsConfig {
  /// Timeline sampling period in simulated time; 0 (default) disables the
  /// sampler entirely — no series, no telemetry callbacks.
  SimTime sample_period = 0;
  /// Retained points per timeline series (ring buffer; oldest overwritten).
  std::size_t timeline_capacity = 4096;
};

struct TimelinePoint {
  SimTime time = 0;
  double value = 0;
};

/// One bounded counter series. Summary statistics (min/max/mean/peak)
/// cover every point ever pushed; the ring retains only the newest
/// `capacity` points, counting the overwritten ones as dropped.
class TimelineSeries {
 public:
  TimelineSeries(std::string name, int node, std::size_t capacity)
      : name_(std::move(name)), node_(node),
        capacity_(capacity == 0 ? 1 : capacity) {}

  void push(SimTime t, double v);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int node() const noexcept { return node_; }
  /// Points ever pushed (>= points().size()).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Points overwritten by the ring.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ - static_cast<std::uint64_t>(ring_.size());
  }
  /// Retained points in time order (unwinds the ring).
  [[nodiscard]] std::vector<TimelinePoint> points() const;

  [[nodiscard]] double min() const noexcept { return total_ ? min_ : 0; }
  [[nodiscard]] double max() const noexcept { return total_ ? max_ : 0; }
  [[nodiscard]] double mean() const noexcept {
    return total_ ? sum_ / static_cast<double>(total_) : 0;
  }
  [[nodiscard]] double peak_value() const noexcept { return total_ ? max_ : 0; }
  /// Time of the first sample that reached the all-time maximum.
  [[nodiscard]] SimTime peak_time() const noexcept { return peak_time_; }

 private:
  std::string name_;
  int node_;
  std::size_t capacity_;
  std::vector<TimelinePoint> ring_;
  std::size_t head_ = 0;  ///< next overwrite position once full
  std::uint64_t total_ = 0;
  double min_ = 0, max_ = 0, sum_ = 0;
  SimTime peak_time_ = 0;
};

/// The set of series for one run. Lookup creates on first use; export
/// order is insertion order, which the sampler keeps deterministic.
class Timeline {
 public:
  [[nodiscard]] TimelineSeries& series(std::string_view name, int node);

  [[nodiscard]] const std::vector<std::unique_ptr<TimelineSeries>>& all()
      const noexcept {
    return series_;
  }
  [[nodiscard]] bool empty() const noexcept { return series_.empty(); }

  /// Capacity applied to series created after this call.
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_ = 4096;
  std::vector<std::unique_ptr<TimelineSeries>> series_;
};

}  // namespace dtio::obs
