// Minimal JSON plumbing for the observability exporters: a stream-style
// writer that handles commas/escaping, a strict syntax validator used by
// tests, and a small DOM parser (json_parse) used by dtio_inspect to read
// run reports and trace files back — all without an external JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtio::obs {

/// Appends escaped JSON to a caller-owned string. Scopes (object/array)
/// are explicit; the writer inserts commas between siblings. Misuse (e.g.
/// a value where a key is required) is a programming error, asserted in
/// debug builds and emitted as-is otherwise.
class JsonWriter {
 public:
  explicit JsonWriter(std::string& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by exactly one value/scope.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool b);

  /// key + value in one call, for the common case.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

 private:
  void separate();

  std::string* out_;
  std::vector<bool> needs_comma_;  ///< one entry per open scope
  bool after_key_ = false;
};

/// Appends `s` with JSON string escaping (no surrounding quotes).
void json_escape(std::string_view s, std::string& out);

/// Strict RFC-8259 syntax check of a complete JSON document. Used by the
/// exporter tests; returns false on any trailing garbage or malformed
/// construct.
[[nodiscard]] bool json_valid(std::string_view text);

/// A parsed JSON document node. Objects keep member insertion order;
/// numbers are doubles (sim-time nanoseconds up to ~2^53 round-trip
/// exactly, far beyond any bench horizon).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> items;  ///< kArray elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Member's number, or `fallback` when absent / not a number.
  [[nodiscard]] double num(std::string_view key, double fallback = 0)
      const noexcept;
  /// Member's string, or "" when absent / not a string.
  [[nodiscard]] std::string_view str(std::string_view key) const noexcept;
};

/// Parses a complete JSON document (same strictness as json_valid);
/// nullopt on any syntax error or trailing garbage.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace dtio::obs
