// Request spans: the causal skeleton of a simulated run. Every client
// operation opens a root span and allocates a trace id; the ids ride the
// request/reply protocol so servers and the network attach their own
// child spans (decode, dataloop expansion, disk, transmission) to the
// same trace. Counter samples (queue depths, utilization) share the
// collector so one export carries both tracks.
//
// Capacity is bounded with a keep-first policy: once full, new spans are
// dropped (begin() returns the null id) and `dropped()` counts them, so
// long runs degrade gracefully instead of exhausting memory while the
// front of the timeline stays intact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"

namespace dtio::obs {

/// 1-based handle into the collector; 0 means "no span" and is accepted
/// (and ignored) everywhere, so disabled paths can pass it through.
using SpanId = std::uint64_t;

/// Typed latency phase of a span, for per-request attribution: the
/// analyzer (phase.h) decomposes a client op's latency into the union of
/// its typed descendant intervals, so "p99 is 83% server queue-wait" is a
/// computed fact. kNone marks structural spans (op root, rpc, rpc_attempt,
/// server_handle) that group children but claim no time of their own.
enum class Phase : std::uint8_t {
  kNone = 0,
  kClientPrep,     ///< issue overhead + segment/reassemble processing
  kClientQueue,    ///< AIMD flow-window wait before an RPC may start
  kClientBackoff,  ///< retry backoff sleep between attempts
  kNetRequest,     ///< request transit: first byte out -> mailbox delivery
  kServerQueue,    ///< delivered to the server mailbox -> dequeued
  kServerDecode,   ///< request decode overhead + dataloop decode
  kServerExpand,   ///< region walk / dataloop expansion CPU
  kServerCache,    ///< buffer-cache synchronous disk segments (miss fills)
  kServerDisk,     ///< uncached synchronous disk charge
  kNetReply,       ///< reply transit: first byte out -> mailbox delivery
  kClientFlush,    ///< write-behind flush: batch build + staged-data memcpy
  kServerResync,   ///< restart resync: replica pull round-trips + apply
};
inline constexpr int kPhaseCount = 13;

/// Stable wire name ("server_queue", ...); "none" for kNone.
[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// Inverse of phase_name; kNone for unknown names (tolerant parsing).
[[nodiscard]] Phase phase_from_name(std::string_view name) noexcept;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;          ///< 0 = root
  std::uint64_t trace = 0;    ///< groups one logical request chain
  std::string name;
  int node = -1;
  SimTime start = 0;
  SimTime end = -1;           ///< -1 while open
  std::int64_t value = 0;     ///< span-specific payload (e.g. bytes)
  Phase phase = Phase::kNone; ///< typed latency phase (kNone = structural)
};

struct CounterSample {
  std::string name;
  int node = -1;
  SimTime time = 0;
  double value = 0;
};

class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  /// Allocates a trace id for a new logical request chain.
  [[nodiscard]] std::uint64_t new_trace() noexcept { return ++trace_seq_; }

  /// Opens a span; returns 0 (and records nothing) once at capacity.
  SpanId begin(std::string_view name, int node, SimTime start,
               SpanId parent = 0, std::uint64_t trace = 0,
               Phase phase = Phase::kNone);

  /// Closes a span; id 0 and out-of-range ids are ignored.
  void end(SpanId id, SimTime end) noexcept;

  /// Attaches a numeric payload (bytes moved, regions walked, ...).
  void set_value(SpanId id, std::int64_t value) noexcept;

  /// Records one point of a counter time series (Perfetto counter track).
  void sample(std::string_view name, int node, SimTime time, double value);

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<CounterSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Lookup by id (1-based); nullptr for 0 / dropped ids.
  [[nodiscard]] const Span* find(SpanId id) const noexcept {
    return (id == 0 || id > spans_.size()) ? nullptr : &spans_[id - 1];
  }

 private:
  std::size_t capacity_;
  std::uint64_t trace_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::vector<CounterSample> samples_;
};

}  // namespace dtio::obs
