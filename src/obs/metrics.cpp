#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.h"

namespace dtio::obs {

// ---- Histogram --------------------------------------------------------------

int Histogram::bucket_index(std::int64_t value) noexcept {
  if (value <= 0) return 0;
  const auto v = static_cast<std::uint64_t>(value);
  const int exp = std::bit_width(v) - 1;  // floor(log2(v))
  if (exp == 0) return 1;                 // value == 1
  // Linear sub-bucket within [2^exp, 2^(exp+1)).
  const std::uint64_t low = std::uint64_t{1} << exp;
  const auto sub = static_cast<int>(((v - low) * kSubBuckets) >> exp);
  return 1 + (exp - 1) * kSubBuckets + std::min(sub, kSubBuckets - 1) + 1;
}

double Histogram::bucket_mid(int index) noexcept {
  if (index <= 0) return 0.0;
  if (index == 1) return 1.0;
  const int rel = index - 2;
  const int exp = 1 + rel / kSubBuckets;
  const int sub = rel % kSubBuckets;
  const double low = std::ldexp(1.0, exp);
  const double width = low / kSubBuckets;
  return low + (sub + 0.5) * width;
}

void Histogram::record(std::int64_t value) noexcept {
  const std::int64_t v = std::max<std::int64_t>(value, 0);
  ++buckets_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank on the bucketed distribution.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (cum >= std::max<std::uint64_t>(target, 1)) {
      const double mid = bucket_mid(i);
      return std::clamp(mid, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

// ---- Labels -----------------------------------------------------------------

std::string label(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 1);
  out += key;
  out += '=';
  out += value;
  return out;
}

std::string label(std::string_view key, std::int64_t value) {
  return label(key, std::string_view(std::to_string(value)));
}

std::string label(std::string_view k1, std::string_view v1,
                  std::string_view k2, std::int64_t v2) {
  std::string out = label(k1, v1);
  out += ',';
  out += label(k2, v2);
  return out;
}

// ---- Registry ---------------------------------------------------------------

namespace {

template <typename Map, typename T = typename Map::mapped_type::element_type>
T& lookup(Map& map, std::string_view name, std::string_view labels) {
  const auto it = map.find(
      std::pair(std::string(name), std::string(labels)));
  if (it != map.end()) return *it->second;
  auto [pos, inserted] = map.emplace(
      std::pair(std::string(name), std::string(labels)),
      std::make_unique<T>());
  return *pos->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view labels) {
  return lookup(counters_, name, labels);
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view labels) {
  return lookup(gauges_, name, labels);
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view labels) {
  return lookup(histograms_, name, labels);
}

Histogram MetricsRegistry::merged_histogram(std::string_view name) const {
  Histogram merged;
  for (const auto& [key, hist] : histograms_) {
    if (key.first == name) merged.merge(*hist);
  }
  return merged;
}

Histogram MetricsRegistry::merged_histogram(
    std::string_view name, std::string_view label_contains) const {
  Histogram merged;
  for (const auto& [key, hist] : histograms_) {
    if (key.first == name &&
        key.second.find(label_contains) != std::string::npos) {
      merged.merge(*hist);
    }
  }
  return merged;
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [key, ctr] : counters_) {
    if (key.first == name) total += ctr->value();
  }
  return total;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_array();
  for (const auto& [key, ctr] : counters_) {
    w.begin_object();
    w.kv("name", key.first).kv("labels", key.second).kv("value", ctr->value());
    w.end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& [key, g] : gauges_) {
    w.begin_object();
    w.kv("name", key.first).kv("labels", key.second).kv("value", g->value());
    w.end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& [key, h] : histograms_) {
    w.begin_object();
    w.kv("name", key.first).kv("labels", key.second);
    w.kv("count", h->count()).kv("mean", h->mean());
    w.kv("min", h->min()).kv("max", h->max());
    w.kv("p50", h->percentile(50)).kv("p90", h->percentile(90));
    w.kv("p99", h->percentile(99));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  JsonWriter w(out);
  write_json(w);
  return out;
}

}  // namespace dtio::obs
