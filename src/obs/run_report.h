// Machine-readable bench reports. Every figure/table bench builds a
// RunReport — bench name, parameters, one MethodReport per access method
// with bandwidth, IoStats counters, and a client-op latency summary — and
// writes it as BENCH_<name>.json, so plotting and regression tooling
// consume structured output instead of scraping stdout tables.
//
// Schema (see EXPERIMENTS.md):
//   { "schema": "dtio-bench-report-v2", "schema_version": 2, "bench": ...,
//     "params": {...}, "methods": [...], "scalars": {...},
//     "timeline": [...], "phases": {...} }
// v2 adds: schema_version, per-method span accounting ("spans"), and the
// optional "timeline" (sampler series) and "phases" (latency attribution)
// sections, emitted only when populated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "obs/phase.h"
#include "obs/timeline.h"

namespace dtio::obs {

class Histogram;
class JsonWriter;

/// Current report schema version, mirrored in the "schema" string.
inline constexpr int kReportSchemaVersion = 2;

/// Latency distribution in microseconds, extracted from a nanosecond
/// histogram (typically the merged "client_op_latency_ns" metric).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  [[nodiscard]] static LatencySummary from(const Histogram& ns_histogram);
};

struct MethodReport {
  std::string method;
  bool supported = true;
  double sim_seconds = 0;
  double bandwidth_mb_s = 0;  ///< aggregate desired bytes / sim second, MB/s
  std::uint64_t events = 0;   ///< simulator events consumed
  IoStats per_client;         ///< rank 0's counters
  LatencySummary latency;     ///< client op latency (empty when obs is off)
  /// Span-collector accounting for this arm: how many spans were kept and
  /// how many begin() calls were refused at capacity. A nonzero dropped
  /// means the trace (and any phase attribution over it) is truncated.
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
};

/// Value snapshot of one sampler series, for the report's "timeline"
/// section (the live Timeline holds ring buffers; the report is a copy).
struct TimelineSeriesReport {
  std::string name;
  int node = -1;
  std::uint64_t total = 0;    ///< samples ever pushed
  std::uint64_t dropped = 0;  ///< overwritten by the ring
  double min = 0, max = 0, mean = 0;
  SimTime peak_time = 0;  ///< when the all-time max was first reached
  std::vector<TimelinePoint> points;
};

struct RunReport {
  std::string bench;
  std::map<std::string, double> params;   ///< run configuration
  std::vector<MethodReport> methods;
  std::map<std::string, double> scalars;  ///< bench-specific extras
  /// Sampler series snapshots; empty (and omitted from JSON) unless the
  /// bench called add_timeline().
  std::vector<TimelineSeriesReport> timeline;
  /// Phase-attribution tables keyed by op filter (e.g. "contig_read");
  /// empty (and omitted from JSON) unless the bench attached one.
  std::vector<std::pair<std::string, PhaseReport>> phases;

  /// Snapshots every series of `tl` into the timeline section.
  void add_timeline(const Timeline& tl);

  void write_json(JsonWriter& writer) const;
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() + newline to `path`; false if the file won't open.
  [[nodiscard]] bool write_file(const std::string& path) const;
};

}  // namespace dtio::obs
