// Machine-readable bench reports. Every figure/table bench builds a
// RunReport — bench name, parameters, one MethodReport per access method
// with bandwidth, IoStats counters, and a client-op latency summary — and
// writes it as BENCH_<name>.json, so plotting and regression tooling
// consume structured output instead of scraping stdout tables.
//
// Schema (see EXPERIMENTS.md):
//   { "schema": "dtio-bench-report-v1", "bench": ..., "params": {...},
//     "methods": [...], "scalars": {...} }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace dtio::obs {

class Histogram;
class JsonWriter;

/// Latency distribution in microseconds, extracted from a nanosecond
/// histogram (typically the merged "client_op_latency_ns" metric).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;

  [[nodiscard]] static LatencySummary from(const Histogram& ns_histogram);
};

struct MethodReport {
  std::string method;
  bool supported = true;
  double sim_seconds = 0;
  double bandwidth_mb_s = 0;  ///< aggregate desired bytes / sim second, MB/s
  std::uint64_t events = 0;   ///< simulator events consumed
  IoStats per_client;         ///< rank 0's counters
  LatencySummary latency;     ///< client op latency (empty when obs is off)
};

struct RunReport {
  std::string bench;
  std::map<std::string, double> params;   ///< run configuration
  std::vector<MethodReport> methods;
  std::map<std::string, double> scalars;  ///< bench-specific extras

  void write_json(JsonWriter& writer) const;
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() + newline to `path`; false if the file won't open.
  [[nodiscard]] bool write_file(const std::string& path) const;
};

}  // namespace dtio::obs
