#include "obs/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dtio::obs {

// ---- Writer -----------------------------------------------------------------

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already emitted ':'
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) *out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  *out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  *out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  *out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!needs_comma_.empty());
  needs_comma_.pop_back();
  *out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!after_key_);
  separate();
  *out_ += '"';
  json_escape(k, *out_);
  *out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  *out_ += '"';
  json_escape(s, *out_);
  *out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {  // JSON has no inf/nan
    *out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", d);
  *out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  *out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  *out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  *out_ += b ? "true" : "false";
  return *this;
}

void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ---- Validator ---------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t at = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool done() const noexcept { return at >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[at]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++at;
    }
  }

  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++at;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(at, word.size()) != word) return false;
    at += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[at++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (done()) return false;
        const char e = text[at++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (done() || std::isxdigit(static_cast<unsigned char>(
                              text[at])) == 0) {
              return false;
            }
            ++at;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    std::size_t start = at;
    while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++at;
    return at > start;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++at;
      if (!done() && (peek() == '+' || peek() == '-')) ++at;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (done()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(); break;
      case '[': ok = array(); break;
      case '"': ok = string(); break;
      case 't': ok = literal("true"); break;
      case 'f': ok = literal("false"); break;
      case 'n': ok = literal("null"); break;
      default: ok = number(); break;
    }
    --depth;
    return ok;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.done();
}

// ---- DOM parser -------------------------------------------------------------

namespace {

/// Same grammar and strictness as the validator, but builds JsonValues.
struct DomParser {
  std::string_view text;
  std::size_t at = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  [[nodiscard]] bool done() const noexcept { return at >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[at]; }

  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++at;
    }
  }

  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++at;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(at, word.size()) != word) return false;
    at += word.size();
    return true;
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[at++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (done()) return false;
      const char e = text[at++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (done()) return false;
            const char h = text[at++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // reassembled — the exporters never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool number(double& out) {
    const std::size_t start = at;
    Parser checker{text, at};
    if (!checker.number()) return false;
    at = checker.at;
    out = std::strtod(std::string(text.substr(start, at - start)).c_str(),
                      nullptr);
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    if (done()) return false;
    bool ok = false;
    switch (peek()) {
      case '{': ok = object(out); break;
      case '[': ok = array(out); break;
      case '"':
        out.kind = JsonValue::Kind::kString;
        ok = string(out.string);
        break;
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        ok = literal("null");
        break;
      default:
        out.kind = JsonValue::Kind::kNumber;
        ok = number(out.number);
        break;
    }
    --depth;
    return ok;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue member;
      if (!value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num(std::string_view key, double fallback) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string_view JsonValue::str(std::string_view key) const noexcept {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kString)
             ? std::string_view(v->string)
             : std::string_view();
}

std::optional<JsonValue> json_parse(std::string_view text) {
  DomParser p{text};
  JsonValue root;
  if (!p.value(root)) return std::nullopt;
  p.skip_ws();
  if (!p.done()) return std::nullopt;
  return root;
}

}  // namespace dtio::obs
