#include "obs/span.h"

namespace dtio::obs {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kNone: return "none";
    case Phase::kClientPrep: return "client_prep";
    case Phase::kClientQueue: return "client_queue";
    case Phase::kClientBackoff: return "client_backoff";
    case Phase::kNetRequest: return "net_request";
    case Phase::kServerQueue: return "server_queue";
    case Phase::kServerDecode: return "server_decode";
    case Phase::kServerExpand: return "server_expand";
    case Phase::kServerCache: return "server_cache";
    case Phase::kServerDisk: return "server_disk";
    case Phase::kNetReply: return "net_reply";
    case Phase::kClientFlush: return "client_flush";
    case Phase::kServerResync: return "server_resync";
  }
  return "none";
}

Phase phase_from_name(std::string_view name) noexcept {
  for (int i = 1; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    if (name == phase_name(p)) return p;
  }
  return Phase::kNone;
}

SpanId SpanCollector::begin(std::string_view name, int node, SimTime start,
                            SpanId parent, std::uint64_t trace, Phase phase) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.trace = trace;
  span.name = name;
  span.node = node;
  span.start = start;
  span.phase = phase;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanCollector::end(SpanId id, SimTime end) noexcept {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end = end;
}

void SpanCollector::set_value(SpanId id, std::int64_t value) noexcept {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].value = value;
}

void SpanCollector::sample(std::string_view name, int node, SimTime time,
                           double value) {
  if (samples_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  samples_.push_back(CounterSample{std::string(name), node, time, value});
}

}  // namespace dtio::obs
