#include "obs/span.h"

namespace dtio::obs {

SpanId SpanCollector::begin(std::string_view name, int node, SimTime start,
                            SpanId parent, std::uint64_t trace) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.trace = trace;
  span.name = name;
  span.node = node;
  span.start = start;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void SpanCollector::end(SpanId id, SimTime end) noexcept {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].end = end;
}

void SpanCollector::set_value(SpanId id, std::int64_t value) noexcept {
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].value = value;
}

void SpanCollector::sample(std::string_view name, int node, SimTime time,
                           double value) {
  if (samples_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  samples_.push_back(CounterSample{std::string(name), node, time, value});
}

}  // namespace dtio::obs
