// Per-request latency attribution: decomposes each client op's span tree
// into typed phase contributions (span.h's Phase), producing the
// "where did the p99 go" table the PVFS papers argued with — request time
// split into client posting, transfer, server queue-wait, decode/expand,
// and disk.
//
// Method: for every closed root span (a client op), collect the typed
// spans of its trace, clip their intervals to the op's window, and take
// the per-phase interval UNION — so three overlapping disk spans from a
// fan-out count once, and an abandoned attempt's server work counts only
// while the op was still waiting. Retry and hedge attempts contribute
// naturally: their spans share the op's trace. `attributed` is the union
// across ALL typed phases; attributed/duration is the coverage figure CI
// gates on (>= 95% on the overload convoy).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/span.h"

namespace dtio::obs {

class SpanCollector;

/// One analyzed client op (a closed root span with at least one typed
/// span on its trace).
struct OpBreakdown {
  SpanId root = 0;
  std::uint64_t trace = 0;
  std::string name;  ///< root span name ("contig_read", ...)
  int node = -1;
  SimTime start = 0;
  SimTime end = 0;
  /// Per-phase interval union, clipped to [start, end], in ns.
  std::array<double, kPhaseCount> phase_ns{};
  /// Union across all typed phases, clipped to [start, end], in ns.
  double attributed_ns = 0;

  [[nodiscard]] double duration_ns() const noexcept {
    return static_cast<double>(end - start);
  }
  [[nodiscard]] double coverage() const noexcept {
    const double d = duration_ns();
    return d <= 0 ? 0 : attributed_ns / d;
  }
};

/// Phase contributions for one latency quantile: nearest-rank op latency
/// plus mean per-phase time and time-weighted coverage over the tail set
/// (every op at or above the quantile — p99 averages the slowest 1%).
struct PhaseQuantile {
  double quantile = 0;      ///< 50, 99, 99.9
  double latency_ns = 0;    ///< nearest-rank op latency
  std::array<double, kPhaseCount> phase_ns{};  ///< mean over the tail set
  double attributed_ns = 0;  ///< mean over the tail set
  double coverage = 0;       ///< sum(attributed) / sum(duration), tail set
  Phase dominant = Phase::kNone;  ///< largest mean phase in the tail set
};

/// The phase-breakdown table for a set of ops.
struct PhaseReport {
  std::uint64_t ops = 0;
  double mean_ns = 0;
  std::array<double, kPhaseCount> mean_phase_ns{};
  double mean_attributed_ns = 0;
  double mean_coverage = 0;  ///< sum(attributed) / sum(duration), all ops
  std::vector<PhaseQuantile> quantiles;  ///< p50, p99, p999

  [[nodiscard]] const PhaseQuantile* quantile(double q) const noexcept {
    for (const PhaseQuantile& pq : quantiles) {
      if (pq.quantile == q) return &pq;
    }
    return nullptr;
  }
};

/// Analyzes every closed root span (parent == 0, trace != 0, end >= start)
/// that has at least one typed span on its trace. Works on a raw span
/// vector so dtio_inspect can feed spans parsed back from a trace file.
[[nodiscard]] std::vector<OpBreakdown> decompose_ops(
    const std::vector<Span>& spans);
[[nodiscard]] std::vector<OpBreakdown> decompose_ops(
    const SpanCollector& spans);

/// Aggregates breakdowns into the p50/p99/p999 table. The caller filters
/// `ops` first (e.g. to data ops only) so quantiles match the measured
/// latency distribution of interest.
[[nodiscard]] PhaseReport summarize_phases(std::vector<OpBreakdown> ops);

}  // namespace dtio::obs
