#include "obs/timeline.h"

namespace dtio::obs {

void TimelineSeries::push(SimTime t, double v) {
  if (total_ == 0) {
    min_ = max_ = v;
    peak_time_ = t;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) {
      max_ = v;
      peak_time_ = t;
    }
  }
  sum_ += v;
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(TimelinePoint{t, v});
  } else {
    ring_[head_] = TimelinePoint{t, v};
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<TimelinePoint> TimelineSeries::points() const {
  std::vector<TimelinePoint> out;
  out.reserve(ring_.size());
  // head_ is the oldest retained point once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

TimelineSeries& Timeline::series(std::string_view name, int node) {
  for (auto& s : series_) {
    if (s->node() == node && s->name() == name) return *s;
  }
  series_.push_back(
      std::make_unique<TimelineSeries>(std::string(name), node, capacity_));
  return *series_.back();
}

}  // namespace dtio::obs
