#include "obs/phase.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/span.h"

namespace dtio::obs {
namespace {

using Interval = std::pair<SimTime, SimTime>;

/// Sum of the union of `intervals` (modified in place: sorted).
double union_ns(std::vector<Interval>& intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end());
  double total = 0;
  SimTime lo = intervals[0].first;
  SimTime hi = intervals[0].second;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first > hi) {
      total += static_cast<double>(hi - lo);
      lo = intervals[i].first;
      hi = intervals[i].second;
    } else {
      hi = std::max(hi, intervals[i].second);
    }
  }
  total += static_cast<double>(hi - lo);
  return total;
}

}  // namespace

std::vector<OpBreakdown> decompose_ops(const std::vector<Span>& spans) {
  // Group typed spans and roots by trace in one pass.
  std::unordered_map<std::uint64_t, std::vector<const Span*>> typed;
  std::vector<const Span*> roots;
  for (const Span& s : spans) {
    if (s.trace == 0) continue;
    if (s.parent == 0) {
      roots.push_back(&s);
      continue;
    }
    if (s.phase != Phase::kNone && s.end >= s.start) {
      typed[s.trace].push_back(&s);
    }
  }

  std::vector<OpBreakdown> out;
  for (const Span* root : roots) {
    if (root->end < root->start) continue;  // open: run truncated mid-op
    const auto it = typed.find(root->trace);
    if (it == typed.end()) continue;  // no typed work (method-layer roots)

    OpBreakdown op;
    op.root = root->id;
    op.trace = root->trace;
    op.name = root->name;
    op.node = root->node;
    op.start = root->start;
    op.end = root->end;

    std::array<std::vector<Interval>, kPhaseCount> by_phase;
    std::vector<Interval> all;
    for (const Span* s : it->second) {
      // Clip to the op window: server work that outlived the op (the
      // client gave up and retried elsewhere) counts only while the op
      // was still waiting on it.
      const SimTime lo = std::max(s->start, op.start);
      const SimTime hi = std::min(s->end, op.end);
      if (hi <= lo) continue;
      by_phase[static_cast<std::size_t>(s->phase)].emplace_back(lo, hi);
      all.emplace_back(lo, hi);
    }
    for (int p = 0; p < kPhaseCount; ++p) {
      op.phase_ns[static_cast<std::size_t>(p)] =
          union_ns(by_phase[static_cast<std::size_t>(p)]);
    }
    op.attributed_ns = union_ns(all);
    out.push_back(std::move(op));
  }
  return out;
}

std::vector<OpBreakdown> decompose_ops(const SpanCollector& spans) {
  return decompose_ops(spans.spans());
}

PhaseReport summarize_phases(std::vector<OpBreakdown> ops) {
  PhaseReport report;
  report.ops = ops.size();
  if (ops.empty()) return report;

  std::sort(ops.begin(), ops.end(),
            [](const OpBreakdown& a, const OpBreakdown& b) {
              return a.duration_ns() < b.duration_ns();
            });

  double dur_sum = 0;
  for (const OpBreakdown& op : ops) {
    dur_sum += op.duration_ns();
    report.mean_attributed_ns += op.attributed_ns;
    for (int p = 0; p < kPhaseCount; ++p) {
      report.mean_phase_ns[static_cast<std::size_t>(p)] +=
          op.phase_ns[static_cast<std::size_t>(p)];
    }
  }
  const auto n = static_cast<double>(ops.size());
  report.mean_ns = dur_sum / n;
  report.mean_coverage = dur_sum <= 0 ? 0 : report.mean_attributed_ns / dur_sum;
  report.mean_attributed_ns /= n;
  for (double& v : report.mean_phase_ns) v /= n;

  // Tail sets: every op at or above the nearest-rank quantile. p50
  // averages the slowest half, p99 the slowest 1% — the ops whose latency
  // IS the quantile, so "p99 is 83% queue-wait" describes those ops.
  for (const double q : {50.0, 99.0, 99.9}) {
    PhaseQuantile pq;
    pq.quantile = q;
    auto rank = static_cast<std::size_t>(
        q / 100.0 * static_cast<double>(ops.size()) + 0.5);
    rank = rank == 0 ? 0 : rank - 1;
    rank = std::min(rank, ops.size() - 1);
    pq.latency_ns = ops[rank].duration_ns();

    double tail_dur = 0, tail_attr = 0;
    std::size_t count = 0;
    for (std::size_t i = rank; i < ops.size(); ++i) {
      const OpBreakdown& op = ops[i];
      tail_dur += op.duration_ns();
      tail_attr += op.attributed_ns;
      pq.attributed_ns += op.attributed_ns;
      for (int p = 0; p < kPhaseCount; ++p) {
        pq.phase_ns[static_cast<std::size_t>(p)] +=
            op.phase_ns[static_cast<std::size_t>(p)];
      }
      ++count;
    }
    const auto c = static_cast<double>(count);
    pq.attributed_ns /= c;
    for (double& v : pq.phase_ns) v /= c;
    pq.coverage = tail_dur <= 0 ? 0 : tail_attr / tail_dur;
    for (int p = 1; p < kPhaseCount; ++p) {
      if (pq.phase_ns[static_cast<std::size_t>(p)] >
          pq.phase_ns[static_cast<std::size_t>(pq.dominant)]) {
        pq.dominant = static_cast<Phase>(p);
      }
    }
    report.quantiles.push_back(pq);
  }
  return report;
}

}  // namespace dtio::obs
