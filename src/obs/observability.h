// The observability context: one object bundling the metrics registry and
// the span/counter collector. Instrumented layers (client, server,
// network, access methods, two-phase) hold a nullable pointer to one of
// these; when it is null — the default — every instrumented site costs a
// single pointer test, preserving the hot-path guarantee the Tracer
// established.
//
// Lifecycle: a bench or test constructs an Observability, attaches it via
// Cluster::set_observability() BEFORE creating clients, runs, then exports
// (chrome_trace.h for Perfetto, run_report.h for machine-readable bench
// output, MetricsRegistry::to_json for raw metrics).
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace dtio::obs {

struct Observability {
  Observability() = default;
  explicit Observability(std::size_t span_capacity) : spans(span_capacity) {}
  explicit Observability(const ObsConfig& cfg) : config(cfg) {
    timeline.set_capacity(cfg.timeline_capacity);
  }

  ObsConfig config;
  MetricsRegistry metrics;
  SpanCollector spans;
  /// Time-resolved counter series, fed by the cluster sampler when
  /// config.sample_period > 0 (see timeline.h).
  Timeline timeline;
};

}  // namespace dtio::obs
