#include "obs/chrome_trace.h"

#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/observability.h"

namespace dtio::obs {
namespace {

constexpr double kNsPerUs = 1000.0;

std::string node_name(const ChromeTraceOptions& options, int node) {
  if (node >= 0 && static_cast<std::size_t>(node) < options.node_names.size())
    return options.node_names[static_cast<std::size_t>(node)];
  if (node == -1) return "net";  // cluster-wide series (network in-flight)
  return "node" + std::to_string(node);
}

void write_process_metadata(JsonWriter& w, const ChromeTraceOptions& options,
                            const Observability& obs) {
  // One process_name metadata event per node that appears in the data, so
  // Perfetto shows "srv0" instead of "pid 0".
  std::vector<int> nodes;
  auto remember = [&nodes](int node) {
    for (int seen : nodes)
      if (seen == node) return;
    nodes.push_back(node);
  };
  for (const Span& span : obs.spans.spans()) remember(span.node);
  for (const CounterSample& s : obs.spans.samples()) remember(s.node);
  for (const auto& series : obs.timeline.all()) remember(series->node());

  for (int node : nodes) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", static_cast<std::int64_t>(node));
    w.key("args").begin_object();
    w.kv("name", node_name(options, node));
    w.end_object();
    w.end_object();
  }
}

}  // namespace

void write_chrome_trace(const Observability& obs, std::ostream& out,
                        const ChromeTraceOptions& options) {
  std::string text;
  JsonWriter w(text);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  write_process_metadata(w, options, obs);

  // Spans as complete events: pid = node (one Perfetto "process" per
  // simulated node), tid = trace id (each request chain gets its own
  // track, so overlapping fan-out requests don't interleave).
  for (const Span& span : obs.spans.spans()) {
    w.begin_object();
    w.kv("name", std::string_view(span.name));
    w.kv("ph", "X");
    w.kv("ts", static_cast<double>(span.start) / kNsPerUs);
    const SimTime end = span.end < span.start ? span.start : span.end;
    w.kv("dur", static_cast<double>(end - span.start) / kNsPerUs);
    w.kv("pid", static_cast<std::int64_t>(span.node));
    w.kv("tid", static_cast<std::int64_t>(span.trace));
    w.key("args").begin_object();
    w.kv("span", static_cast<std::int64_t>(span.id));
    w.kv("parent", static_cast<std::int64_t>(span.parent));
    // Exact integer times: "ts"/"dur" are doubles in microseconds and
    // round-trip lossily; dtio_inspect rebuilds spans from these instead.
    w.kv("start_ns", static_cast<std::int64_t>(span.start));
    w.kv("dur_ns", static_cast<std::int64_t>(end - span.start));
    if (span.phase != Phase::kNone) w.kv("phase", phase_name(span.phase));
    if (span.value != 0) w.kv("value", span.value);
    w.end_object();
    w.end_object();
  }

  // Counter samples as counter events; Perfetto turns each (name, pid)
  // pair into a stepped time-series track.
  for (const CounterSample& s : obs.spans.samples()) {
    w.begin_object();
    w.kv("name", std::string_view(s.name));
    w.kv("ph", "C");
    w.kv("ts", static_cast<double>(s.time) / kNsPerUs);
    w.kv("pid", static_cast<std::int64_t>(s.node));
    w.key("args").begin_object();
    w.kv("value", s.value);
    w.end_object();
    w.end_object();
  }

  // Timeline series (the periodic sampler) as counter tracks. Prefixed so
  // they never merge with the request-entry samples above, which can share
  // a (name, pid) pair with different sampling semantics.
  for (const auto& series : obs.timeline.all()) {
    const std::string name = "timeline." + series->name();
    for (const TimelinePoint& p : series->points()) {
      w.begin_object();
      w.kv("name", std::string_view(name));
      w.kv("ph", "C");
      w.kv("ts", static_cast<double>(p.time) / kNsPerUs);
      w.kv("pid", static_cast<std::int64_t>(series->node()));
      w.key("args").begin_object();
      w.kv("value", p.value);
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  out << text;
}

bool write_chrome_trace_file(const Observability& obs, const std::string& path,
                             const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(obs, out, options);
  out << '\n';
  return static_cast<bool>(out);
}

}  // namespace dtio::obs
