#include "obs/run_report.h"

#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace dtio::obs {
namespace {

constexpr double kNsPerUs = 1000.0;

void write_io_stats(JsonWriter& w, const IoStats& s) {
  w.begin_object();
  w.kv("desired_bytes", s.desired_bytes);
  w.kv("accessed_bytes", s.accessed_bytes);
  w.kv("io_ops", s.io_ops);
  w.kv("resent_bytes", s.resent_bytes);
  w.kv("request_bytes", s.request_bytes);
  w.kv("regions_client", s.regions_client);
  w.kv("regions_server", s.regions_server);
  w.kv("requests_sent", s.requests_sent);
  w.end_object();
}

void write_latency(JsonWriter& w, const LatencySummary& l) {
  w.begin_object();
  w.kv("count", l.count);
  w.kv("mean_us", l.mean_us);
  w.kv("p50_us", l.p50_us);
  w.kv("p90_us", l.p90_us);
  w.kv("p99_us", l.p99_us);
  w.kv("p999_us", l.p999_us);
  w.kv("max_us", l.max_us);
  w.end_object();
}

}  // namespace

LatencySummary LatencySummary::from(const Histogram& h) {
  LatencySummary s;
  s.count = h.count();
  if (s.count == 0) return s;
  s.mean_us = h.mean() / kNsPerUs;
  s.p50_us = h.percentile(50) / kNsPerUs;
  s.p90_us = h.percentile(90) / kNsPerUs;
  s.p99_us = h.percentile(99) / kNsPerUs;
  s.p999_us = h.percentile(99.9) / kNsPerUs;
  s.max_us = static_cast<double>(h.max()) / kNsPerUs;
  return s;
}

void RunReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", "dtio-bench-report-v1");
  w.kv("bench", std::string_view(bench));
  w.key("params").begin_object();
  for (const auto& [key, value] : params) w.kv(key, value);
  w.end_object();
  w.key("methods").begin_array();
  for (const MethodReport& m : methods) {
    w.begin_object();
    w.kv("method", std::string_view(m.method));
    w.kv("supported", m.supported);
    w.kv("sim_seconds", m.sim_seconds);
    w.kv("bandwidth_mb_s", m.bandwidth_mb_s);
    w.kv("events", m.events);
    w.key("io_stats");
    write_io_stats(w, m.per_client);
    w.key("latency_us");
    write_latency(w, m.latency);
    w.end_object();
  }
  w.end_array();
  w.key("scalars").begin_object();
  for (const auto& [key, value] : scalars) w.kv(key, value);
  w.end_object();
  w.end_object();
}

std::string RunReport::to_json() const {
  std::string out;
  JsonWriter w(out);
  write_json(w);
  return out;
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace dtio::obs
